"""Quickstart: run the full RT3 pipeline on a small WikiText-2-style LM.

Steps mirror the paper's Fig. 1:
  1. train an original Transformer model M;
  2. Level 1 — block-structured pruning produces the backbone C;
  3. Level 2 — build the shrunken pattern search space and run the RL
     search, binding one pattern set to each DVFS V/F level;
  4. report accuracy per level, latency per level, battery runs, and the
     run-time switch cost vs a full model reload.

Run:  python examples/quickstart.py
"""

from repro.core import BlockPruningConfig, ControllerConfig, RT3, RT3Config, SearchSpaceConfig
from repro.core.tasks import LMTask
from repro.core.trainer import TrainConfig, train_plain
from repro.data import SyntheticWikiText, WikiTextConfig
from repro.hardware import paper_scale_transformer
from repro.nn import TransformerConfig, TransformerLM


def main() -> None:
    # 1. the original model M, trained on the (synthetic) WikiText-2 corpus
    model = TransformerLM(TransformerConfig(
        vocab_size=60, dim=32, num_heads=2, ffn_dim=64,
        num_encoder_layers=2, num_decoder_layers=1,  # the paper's layout
        max_len=16, dropout=0.0, seed=0,
    ))
    corpus = SyntheticWikiText(WikiTextConfig(vocab_size=60, num_tokens=6000))
    task = LMTask(model, corpus, seq_len=12, batch_size=8,
                  max_train_batches=20, max_eval_batches=6)
    print("training the original model M ...")
    train_plain(task, epochs=5, lr=3e-3)
    print(f"  next-word accuracy: {task.evaluate():.2%}")

    # 2.-3. the RT3 two-level search against a 104 ms deadline on the
    #        Odroid-XU3's {l3, l4, l6} V/F levels
    cfg = RT3Config(
        deadline_s=0.104,
        episodes=6,
        bp=BlockPruningConfig(num_blocks=2, rate=0.3),
        space=SearchSpaceConfig(pattern_size=8, theta=3, patterns_per_set=3),
        controller=ControllerConfig(seed=0),
        episode_train=TrainConfig(epochs=1, lr=2e-3),
        finetune_train=TrainConfig(epochs=2, lr=2e-3),
        backbone_finetune_epochs=2,
    )
    rt3 = RT3(task, paper_scale_transformer(), cfg)
    print("\nrunning the RT3 search (BP -> search space -> RL episodes) ...")
    result = rt3.search()

    # 4. the deployment report
    print(f"\noriginal accuracy      : {result.original_accuracy:.2%}")
    print(f"BP backbone accuracy   : {result.backbone_accuracy:.2%} "
          f"(sparsity {result.backbone_report.overall_sparsity:.1%})")
    print("\nper-level deployment (paper Table III layout):")
    for name in sorted(result.final_accuracies, reverse=True):
        total_s = rt3.space.total_sparsity(result.best.pattern_sets[name].sparsity)
        print(f"  {name}: sparsity {total_s:6.1%}  "
              f"latency {result.final_latencies_ms[name]:7.2f} ms  "
              f"accuracy {result.final_accuracies[name]:.2%}")
    print(f"\nbattery runs per charge: {result.final_total_runs:.3e}")
    print(f"pattern-set switch     : {result.switch_ms:.2f} ms")
    print(f"full model reload (UB) : {result.reload_ms / 1e3:.2f} s "
          f"({result.reload_ms / result.switch_ms:.0f}x slower)")


if __name__ == "__main__":
    main()
