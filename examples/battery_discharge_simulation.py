"""Battery-discharge simulation: the paper's Table II motivation scenario.

Simulates one full battery charge of an Odroid-XU3 running the paper-scale
Transformer under three strategies:

  E1 — no reconfiguration: always the top V/F level (l6);
  E2 — hardware reconfiguration only: the DVFS governor scales down as the
       battery drains, but the model is fixed (misses deadlines at low
       frequency);
  E3 — hardware + software reconfiguration (RT3): each V/F level gets a
       pattern set whose sparsity restores the deadline.

Prints the number-of-runs comparison and an event-driven discharge
timeline with the governor's level transitions and switch costs.

Run:  python examples/battery_discharge_simulation.py
"""

from repro.hardware import OdroidXU3, paper_scale_transformer
from repro.hardware.energy_sim import ModeAssignment
from repro.hardware.latency import SparsityKind

DEADLINE = 0.115  # the paper's 115 ms timing constraint
S_BP = 0.6426  # model M1: the BP backbone of Table IV


def main() -> None:
    plat = OdroidXU3()
    wl = paper_scale_transformer()
    sim = plat.simulator(wl)

    def m1(level):
        return ModeAssignment(level, S_BP, SparsityKind.BLOCK)

    # E1: everything at l6
    e1 = sim.single_level_campaign(m1("l6"), DEADLINE)
    print(f"E1 (no reconfig)     : {e1.total_runs:.3e} runs, "
          f"deadline met: {e1.all_deadlines_met}")

    # E2: DVFS only — same model at every level
    e2 = sim.run_campaign([m1("l6"), m1("l4"), m1("l3")], DEADLINE,
                          charge_switches=False)
    print(f"E2 (DVFS only)       : {e2.total_runs:.3e} runs "
          f"(+{100 * (e2.total_runs / e1.total_runs - 1):.1f}%)")
    for o in e2.outcomes:
        flag = "ok" if o.meets_deadline else "MISSES DEADLINE"
        print(f"   {o.level.name}: {o.latency_s * 1e3:7.2f} ms  {flag}")

    # E3: DVFS + pattern-set swap — sparsity restores the deadline per level
    lat = plat.latency
    s4 = lat.sparsity_for_deadline(wl, plat.dvfs["l4"], 0.1006, SparsityKind.PATTERN)
    s3 = lat.sparsity_for_deadline(wl, plat.dvfs["l3"], 0.0906, SparsityKind.PATTERN)
    assignments = [
        ModeAssignment("l6", S_BP, SparsityKind.BLOCK, num_patterns=8),
        ModeAssignment("l4", s4, SparsityKind.PATTERN, num_patterns=8),
        ModeAssignment("l3", s3, SparsityKind.PATTERN, num_patterns=8),
    ]
    e3 = sim.run_campaign(assignments, DEADLINE)
    print(f"E3 (DVFS + patterns) : {e3.total_runs:.3e} runs "
          f"({e3.total_runs / e1.total_runs:.2f}x E1), "
          f"all deadlines met: {e3.all_deadlines_met}")
    print(f"   switch time per charge: {e3.switch_seconds * 1e3:.1f} ms "
          f"({e3.switch_energy_j:.4f} J)")

    # event-driven timeline of the E3 discharge
    print("\nevent-driven discharge timeline (battery fraction -> level):")
    result, timeline = sim.simulate_discharge(assignments, DEADLINE,
                                              chunk_runs=50_000)
    for fraction, level in timeline:
        lvl = plat.dvfs[level]
        print(f"   battery {fraction:6.1%} -> {level} "
              f"({lvl.freq_mhz:.0f} MHz @ {lvl.voltage_mv:.0f} mV)")
    print(f"   total inferences this charge: {result.total_runs:.3e}")
    by_level = result.runs_by_level()
    for name, runs in sorted(by_level.items(), reverse=True):
        print(f"     {name}: {runs:.3e} runs")


if __name__ == "__main__":
    main()
