"""Run-time adaptation under a fluctuating constraint (beyond DVFS).

The paper's closing motivation: "local language translation for on-line
interactive events with a fluctuating network bandwidth".  When bandwidth
drops, more work shifts on-device and the local inference deadline
tightens; RT3's millisecond pattern-set swap lets the model track those
swings, where a full model reload (tens of seconds) could not.

This example builds pattern sets at several sparsities from a BP backbone,
then replays a bandwidth trace, showing which set the adapter picks and
what the cumulative switching cost is — including the counterfactual cost
had every switch been a full model reload.

Run:  python examples/fluctuating_constraint_adaptation.py
"""

import numpy as np

from repro.core import BlockPruningConfig, apply_block_pruning
from repro.core.patterns import MaskManager
from repro.core.runtime_policy import RuntimeAdapter
from repro.core.search_space import PatternSearchSpace, SearchSpaceConfig
from repro.data import SyntheticWikiText, WikiTextConfig
from repro.core.tasks import LMTask
from repro.hardware import OdroidXU3, paper_scale_transformer
from repro.nn import TransformerConfig, TransformerLM


def bandwidth_to_deadline(mbps: float) -> float:
    """Map available uplink bandwidth to the on-device latency budget.

    With good bandwidth the device can offload and allow itself a lax
    330 ms local budget; as bandwidth collapses the interactive event
    needs local answers within ~95 ms.
    """
    return float(np.interp(mbps, [0.5, 8.0], [0.095, 0.330]))


def main() -> None:
    plat = OdroidXU3()
    wl = paper_scale_transformer()

    # backbone + pattern sets at a ladder of sparsities
    model = TransformerLM(TransformerConfig(
        vocab_size=60, dim=32, num_heads=2, ffn_dim=64, max_len=16, dropout=0.0))
    corpus = SyntheticWikiText(WikiTextConfig(vocab_size=60, num_tokens=3000))
    task = LMTask(model, corpus, seq_len=12, batch_size=8, max_train_batches=5)
    report = apply_block_pruning(task.model, BlockPruningConfig(num_blocks=2, rate=0.3))
    manager = MaskManager(task.model, report.masks)
    space = PatternSearchSpace(
        manager, wl, plat.dvfs.subset(["l3", "l4", "l6"]), deadline_s=0.104,
        cfg=SearchSpaceConfig(pattern_size=8, theta=2, patterns_per_set=3),
    )
    ladder = {}
    for name, sets in space.candidates.items():
        for ps in sets:
            ladder[round(space.total_sparsity(ps.sparsity), 4)] = ps
    print(f"pattern-set ladder (total sparsity): {sorted(ladder)}")

    adapter = RuntimeAdapter(ladder, wl, latency=plat.latency,
                             reconfigurator=plat.reconfigurator, manager=manager)

    # a bumpy conference-wifi bandwidth trace, running at the l4 level
    rng = np.random.default_rng(3)
    bandwidth = np.clip(3.0 + np.cumsum(rng.normal(-0.1, 2.0, size=12)), 0.5, 8.0)
    level = plat.dvfs["l4"]
    trace = [(level, bandwidth_to_deadline(b)) for b in bandwidth]

    print(f"\n{'bw(Mbps)':>9} {'deadline':>9} {'chosen s':>9} "
          f"{'pred lat':>9} {'switch':>7}")
    adaptation = adapter.run(trace)
    for bw, event in zip(bandwidth, adaptation.events):
        chosen = f"{event.chosen_sparsity:.1%}" if event.chosen_sparsity else "NONE"
        sw = f"{event.switch.milliseconds:.1f}ms" if event.switch else "-"
        print(f"{bw:>9.2f} {event.deadline_s * 1e3:>7.0f}ms {chosen:>9} "
              f"{event.predicted_latency_s * 1e3:>7.1f}ms {sw:>7}")

    print(f"\nswitches: {adaptation.num_switches}, total switch time "
          f"{adaptation.total_switch_seconds * 1e3:.1f} ms, "
          f"violations: {adaptation.violations}")
    reload_cost = plat.reconfigurator.model_reload(wl).seconds
    print(f"same trace with full model reloads: "
          f"{adaptation.num_switches * reload_cost:.1f} s of dead time "
          f"(RT3: {adaptation.total_switch_seconds * 1e3:.0f} ms)")


if __name__ == "__main__":
    main()
