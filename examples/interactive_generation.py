"""Interactive generation under a per-token deadline.

The paper's motivating deployment is interactive NLP on-device (e.g. live
translation).  For generation, the timing constraint applies *per produced
token*: at a low V/F level a dense model blows the token budget, so the
runtime swaps in a sparser pattern set and keeps the conversation flowing.

This example trains a small LM, builds two pattern sets (accurate/fast),
and generates a continuation at the energy-saving level l3 under a 104 ms
per-token budget — showing the deadline check failing for the dense
configuration and passing after the swap.

Run:  python examples/interactive_generation.py
"""

import numpy as np

from repro.core import BlockPruningConfig, apply_block_pruning
from repro.core.patterns import MaskManager
from repro.core.search_space import PatternSearchSpace, SearchSpaceConfig
from repro.core.tasks import LMTask
from repro.core.trainer import train_plain
from repro.data import SyntheticWikiText, WikiTextConfig
from repro.hardware import OdroidXU3, paper_scale_transformer
from repro.hardware.latency import SparsityKind
from repro.nn import TransformerConfig, TransformerLM
from repro.nn.generation import generate


def main() -> None:
    plat = OdroidXU3()
    wl = paper_scale_transformer()
    l3 = plat.dvfs["l3"]
    budget_s = 0.104

    model = TransformerLM(TransformerConfig(
        vocab_size=60, dim=32, num_heads=2, ffn_dim=64, max_len=16, dropout=0.0))
    corpus = SyntheticWikiText(WikiTextConfig(vocab_size=60, num_tokens=6000))
    task = LMTask(model, corpus, seq_len=12, batch_size=8, max_train_batches=20)
    print("training the LM ...")
    train_plain(task, epochs=4, lr=3e-3)
    print(f"  accuracy: {task.evaluate():.2%}")

    # backbone + a pattern ladder from the search space
    report = apply_block_pruning(model, BlockPruningConfig(num_blocks=2, rate=0.3))
    manager = MaskManager(model, report.masks)
    space = PatternSearchSpace(
        manager, wl, plat.dvfs.subset(["l3", "l4", "l6"]), deadline_s=budget_s,
        cfg=SearchSpaceConfig(pattern_size=8, theta=2, patterns_per_set=3))

    # dense configuration at l3: per-token latency vs the budget
    dense_lat = plat.latency.latency_s(wl, l3)
    print(f"\nper-token latency at l3, dense     : {dense_lat * 1e3:7.1f} ms "
          f"({'MISSES' if dense_lat > budget_s else 'meets'} the {budget_s * 1e3:.0f} ms budget)")

    # the l3-bound pattern set restores the budget
    pset = space.candidates["l3"][0]
    total_s = space.total_sparsity(pset.sparsity)
    sparse_lat = plat.latency.latency_s(wl, l3, total_s, SparsityKind.PATTERN)
    print(f"per-token latency at l3, s={total_s:.0%}   : {sparse_lat * 1e3:7.1f} ms "
          f"({'MISSES' if sparse_lat > budget_s else 'meets'} the budget)")
    swap = plat.reconfigurator.pattern_switch(wl, len(pset))
    print(f"pattern swap cost                  : {swap.milliseconds:7.1f} ms (one-time)")

    # generate with the sparse configuration active
    manager.apply(pset)
    prompt = corpus.test_tokens[:6]
    out = generate(model, prompt, max_new_tokens=12, top_k=5, seed=0)
    decode = corpus.vocab.decode
    print(f"\nprompt       : {' '.join(decode(prompt))}")
    print(f"continuation : {' '.join(decode(out.generated))}")
    print(f"mean token logprob: {np.mean(out.logprobs):.2f}")
    est = len(out.generated) * sparse_lat
    print(f"estimated on-device time for {len(out.generated)} tokens: {est:.2f} s "
          f"(vs {len(out.generated) * dense_lat:.2f} s dense)")


if __name__ == "__main__":
    main()
