"""DistilBERT on GLUE RTE: search, upper bound, and the interrupt story.

Reproduces the paper's DistilBERT experiment shape (Table III, RTE column):
run RT3 against a 200 ms deadline, then train each level's model
*individually* (the UB baseline) and compare

  - per-level accuracy: UB should be at or slightly above RT3's jointly
    trained backbone (the paper reports a 0.7-2.5 point gap);
  - switch cost: UB must reload a full checkpoint (~minutes-scale over a
    charge), RT3 swaps pattern sets in milliseconds.

Run:  python examples/distilbert_glue_rte.py
"""

from repro.core import BlockPruningConfig, ControllerConfig, RT3, RT3Config, SearchSpaceConfig
from repro.core.tasks import GlueTask
from repro.core.trainer import TrainConfig, train_plain
from repro.data import GlueTaskConfig, SyntheticGlueTask
from repro.hardware import paper_scale_distilbert
from repro.nn import DistilBertConfig, DistilBertForSequenceTask


def main() -> None:
    data = SyntheticGlueTask(GlueTaskConfig(
        task="rte", vocab_size=80, num_train=128, num_eval=64, seq_len=16,
    ))
    model = DistilBertForSequenceTask(DistilBertConfig(
        vocab_size=80, dim=32, num_heads=2, ffn_dim=64, num_layers=2,
        max_len=24, dropout=0.0, num_labels=2,
    ))
    task = GlueTask(model, data, batch_size=16, max_train_batches=8)
    print("fine-tuning DistilBERT on RTE ...")
    train_plain(task, epochs=5, lr=3e-3)
    print(f"  dense accuracy: {task.evaluate():.2%}")

    cfg = RT3Config(
        deadline_s=0.200,  # the paper's RTE timing constraint
        episodes=5,
        bp=BlockPruningConfig(num_blocks=2, rate=0.3),
        space=SearchSpaceConfig(pattern_size=8, theta=3, patterns_per_set=3),
        controller=ControllerConfig(seed=0),
        episode_train=TrainConfig(epochs=1, lr=2e-3),
        finetune_train=TrainConfig(epochs=2, lr=2e-3),
        backbone_finetune_epochs=2,
    )
    rt3 = RT3(task, paper_scale_distilbert(), cfg)
    print("\nsearching pattern sets for {l3, l4, l6} under T=200ms ...")
    result = rt3.search()

    print("\ntraining the upper bound (one dedicated model per level) ...")
    ub = rt3.upper_bound(result.best.pattern_sets, TrainConfig(epochs=2, lr=2e-3))

    print(f"\n{'level':<6}{'sparsity':>10}{'lat(ms)':>9}{'UB':>8}{'RT3':>8}{'gap':>8}")
    for name in sorted(result.final_accuracies, reverse=True):
        total_s = rt3.space.total_sparsity(result.best.pattern_sets[name].sparsity)
        gap = ub[name] - result.final_accuracies[name]
        print(f"{name:<6}{total_s:>9.1%}{result.final_latencies_ms[name]:>9.2f}"
              f"{ub[name]:>8.2%}{result.final_accuracies[name]:>8.2%}{gap:>+8.2%}")

    print(f"\ninterrupt (switch) cost:")
    print(f"  RT3 pattern swap : {result.switch_ms:8.2f} ms   (paper: 44.90 ms)")
    print(f"  UB model reload  : {result.reload_ms / 1e3:8.2f} s    (paper: 66.93 s)")
    print(f"  speedup          : {result.reload_ms / result.switch_ms:8.0f}x  (paper: >1000x)")


if __name__ == "__main__":
    main()
