"""Setup shim.

The offline environment has no ``wheel`` package, so ``pip install -e .``
(PEP 517 editable) cannot build. ``python setup.py develop`` works with the
vendored setuptools and produces an equivalent editable install.
"""

from setuptools import setup

setup()
