"""Micro-batching: grouping, padding exactness, scenarios, engine."""

import numpy as np
import pytest

from repro.core.patterns import MaskManager, random_pattern_set
from repro.core.runtime_policy import RuntimeAdapter
from repro.hardware.dvfs import DVFSTable
from repro.hardware.latency import LatencyModel, SparsityKind
from repro.hardware.workload import profile_from_model
from repro.nn.distilbert import DistilBertConfig, DistilBertForSequenceTask
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.serve import (
    ArtifactCache,
    InferenceRequest,
    MicroBatcher,
    ScenarioConfig,
    ServeEngine,
    build_scenario,
    pad_batch,
    run_padded,
)

LM_CFG = TransformerConfig(vocab_size=60, dim=32, num_heads=2, ffn_dim=64,
                           num_encoder_layers=2, num_decoder_layers=1,
                           max_len=16, dropout=0.0, seed=3)

BERT_CFG = DistilBertConfig(vocab_size=80, dim=32, num_heads=2, ffn_dim=64,
                            num_layers=2, max_len=24, dropout=0.0,
                            num_labels=2, seed=3)


@pytest.fixture(scope="module")
def lm():
    return TransformerLM(LM_CFG).eval()


@pytest.fixture(scope="module")
def bert():
    return DistilBertForSequenceTask(BERT_CFG).eval()


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def make_requests(rng, lengths, vocab=60, **kwargs):
    return [InferenceRequest(i, rng.integers(1, vocab, size=n), **kwargs)
            for i, n in enumerate(lengths)]


class TestInferenceRequest:
    def test_empty_tokens_rejected(self):
        with pytest.raises(ValueError):
            InferenceRequest(0, np.array([]))

    def test_bad_deadline_rejected(self):
        with pytest.raises(ValueError):
            InferenceRequest(0, np.array([1, 2]), deadline_s=0.0)

    def test_slo_defaults_to_deadline(self):
        req = InferenceRequest(0, np.array([1, 2]), deadline_s=0.5)
        assert req.slo == 0.5
        assert InferenceRequest(0, np.array([1]), deadline_s=0.5, slo_s=2.0).slo == 2.0

    @pytest.mark.parametrize("deadline", [-1.0, 0.0, float("nan")])
    def test_non_positive_or_nan_deadline_rejected(self, deadline):
        with pytest.raises(ValueError, match="deadline"):
            InferenceRequest(0, np.array([1, 2]), deadline_s=deadline)

    @pytest.mark.parametrize("slo", [-1.0, 0.0, float("nan")])
    def test_non_positive_or_nan_slo_rejected(self, slo):
        with pytest.raises(ValueError, match="slo"):
            InferenceRequest(0, np.array([1, 2]), deadline_s=0.5, slo_s=slo)

    def test_slo_below_deadline_rejected(self):
        # the end-to-end budget also covers the compute deadline; an SLO
        # tighter than the compute deadline is a contradiction
        with pytest.raises(ValueError, match="slo_s"):
            InferenceRequest(0, np.array([1, 2]), deadline_s=0.5, slo_s=0.4)

    def test_infinite_budgets_allowed(self):
        req = InferenceRequest(0, np.array([1, 2]), deadline_s=float("inf"))
        assert req.slo == float("inf")


class TestPadBatch:
    def test_uniform_lengths_skip_mask(self, rng):
        tokens, mask, lengths = pad_batch([rng.integers(1, 9, size=5) for _ in range(3)])
        assert tokens.shape == (3, 5)
        assert mask is None
        assert lengths == [5, 5, 5]

    def test_ragged_mask_positions(self, rng):
        seqs = [rng.integers(1, 9, size=n) for n in (2, 5, 3)]
        tokens, mask, lengths = pad_batch(seqs, pad_id=0)
        assert tokens.shape == (3, 5)
        assert mask.shape == (3, 1, 1, 5)
        np.testing.assert_array_equal(mask[0, 0, 0], [False, False, True, True, True])
        np.testing.assert_array_equal(mask[1, 0, 0], [False] * 5)
        np.testing.assert_array_equal(tokens[0, 2:], 0)
        np.testing.assert_array_equal(tokens[0, :2], seqs[0])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            pad_batch([])


class TestPaddingExactness:
    def test_lm_batched_equals_per_request(self, lm, rng):
        reqs = make_requests(rng, [5, 12, 9, 12, 3])
        batched = run_padded(lm, reqs)
        for req, out in zip(reqs, batched):
            solo = run_padded(lm, [req])[0]
            assert out.shape == (req.length, LM_CFG.vocab_size)
            np.testing.assert_allclose(out, solo, atol=1e-9, rtol=0)

    def test_lm_exact_under_masks(self, rng):
        model = TransformerLM(LM_CFG).eval()
        MaskManager(model).apply(random_pattern_set(4, 0.5, 2, rng))
        reqs = make_requests(rng, [4, 11, 7])
        batched = run_padded(model, reqs)
        for req, out in zip(reqs, batched):
            np.testing.assert_allclose(out, run_padded(model, [req])[0],
                                       atol=1e-9, rtol=0)

    def test_distilbert_batched_equals_per_request(self, bert, rng):
        reqs = make_requests(rng, [7, 16, 4, 10], vocab=80)
        batched = run_padded(bert, reqs)
        for req, out in zip(reqs, batched):
            solo = run_padded(bert, [req])[0]
            assert out.shape == (2,)
            np.testing.assert_allclose(out, solo, atol=1e-9, rtol=0)


class TestMicroBatcher:
    def test_chunks_at_max_batch(self, rng):
        reqs = make_requests(rng, [4] * 10)
        groups = MicroBatcher(max_batch=4).batches(reqs)
        assert [len(g) for g in groups] == [4, 4, 2]

    def test_fifo_order_preserved(self, rng):
        reqs = make_requests(rng, [4] * 6)
        groups = MicroBatcher(max_batch=3).batches(reqs)
        flat = [r.req_id for g in groups for r in g]
        assert flat == list(range(6))

    def test_incompatible_keys_never_mix(self, rng):
        reqs = make_requests(rng, [4] * 4, level_name="l6")
        reqs += [InferenceRequest(10 + i, rng.integers(1, 60, size=4), level_name="l3")
                 for i in range(4)]
        groups = MicroBatcher(max_batch=8).batches(reqs)
        assert len(groups) == 2
        for group in groups:
            assert len({r.level_name for r in group}) == 1

    def test_window_flushes_stale_groups(self, rng):
        early = InferenceRequest(0, rng.integers(1, 60, size=4), arrival_s=0.0)
        late = InferenceRequest(1, rng.integers(1, 60, size=4), arrival_s=10.0)
        groups = MicroBatcher(max_batch=8, window_s=0.05).batches([early, late])
        assert [len(g) for g in groups] == [1, 1]

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(window_s=-1.0)


class TestScenarios:
    def test_deterministic_given_seed(self, lm):
        wl = profile_from_model(lm, seq_len=12)
        cfg = ScenarioConfig(num_requests=24, seed=9)
        a = build_scenario("bursty", wl, cfg)
        b = build_scenario("bursty", wl, cfg)
        assert len(a) == len(b) == 24
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.tokens, y.tokens)
            assert x.arrival_s == y.arrival_s
            assert x.level_name == y.level_name

    def test_battery_levels_walk_down(self, lm):
        wl = profile_from_model(lm, seq_len=12)
        trace = build_scenario("battery", wl, ScenarioConfig(num_requests=64, seed=1))
        table = DVFSTable()
        freqs = [table[r.level_name].freq_mhz for r in trace]
        assert freqs == sorted(freqs, reverse=True)
        assert len({r.level_name for r in trace}) >= 2

    def test_steady_single_operating_point(self, lm):
        wl = profile_from_model(lm, seq_len=12)
        trace = build_scenario("steady", wl, ScenarioConfig(num_requests=16, seed=1))
        assert {r.level_name for r in trace} == {"l6"}
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)

    def test_unknown_scenario_raises(self, lm):
        wl = profile_from_model(lm, seq_len=12)
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("nope", wl)


def build_engine(model, *, max_batch, use_cache, seed=0, verify=False):
    wl = profile_from_model(model, seq_len=12)
    ladder = {s: random_pattern_set(8, s, 2, np.random.default_rng(seed))
              for s in (0.3, 0.5, 0.7, 0.9)}
    adapter = RuntimeAdapter(ladder, wl, manager=MaskManager(model),
                             hardware_pattern_size=8)
    cache = ArtifactCache() if use_cache else None
    return ServeEngine(model, adapter, max_batch=max_batch, cache=cache,
                       verify=verify), wl


class TestServeEngine:
    def test_steady_serving_report(self):
        model = TransformerLM(LM_CFG).eval()
        engine, wl = build_engine(model, max_batch=8, use_cache=True, verify=True)
        trace = build_scenario("steady", wl, ScenarioConfig(num_requests=48, seed=3))
        report = engine.serve(trace)
        assert report.num_requests == 48
        assert sorted(r.request.req_id for r in report.results) == list(range(48))
        assert report.num_batches == 6
        assert report.mean_batch_size == 8.0
        assert report.cache_stats.hit_rate > 0.8
        assert report.deadline_hit_rate == 1.0
        assert report.max_verify_error < 1e-9
        assert report.p95_latency_s >= report.p50_latency_s > 0
        assert report.throughput_rps > 0

    def test_batched_equals_single_request_engine(self):
        model_a, model_b = TransformerLM(LM_CFG).eval(), TransformerLM(LM_CFG).eval()
        engine_b, wl = build_engine(model_a, max_batch=8, use_cache=True)
        engine_s, _ = build_engine(model_b, max_batch=1, use_cache=False)
        trace = build_scenario("steady", wl, ScenarioConfig(num_requests=24, seed=5))
        by_id = lambda rep: {r.request.req_id: r.output for r in rep.results}  # noqa: E731
        outs_b, outs_s = by_id(engine_b.serve(trace)), by_id(engine_s.serve(list(trace)))
        assert outs_b.keys() == outs_s.keys()
        for req_id, out in outs_b.items():
            np.testing.assert_allclose(out, outs_s[req_id], atol=1e-9, rtol=0)

    def test_cache_stats_are_per_run(self):
        model = TransformerLM(LM_CFG).eval()
        engine, wl = build_engine(model, max_batch=8, use_cache=True)
        trace = build_scenario("steady", wl, ScenarioConfig(num_requests=24, seed=3))
        first = engine.serve(trace)
        second = engine.serve(list(trace))
        assert first.cache_stats.misses > 0  # cold start
        assert second.cache_stats.misses == 0  # warm: this run alone
        assert second.cache_stats.hit_rate == 1.0

    def test_adapter_driven_per_batch_not_per_request(self):
        model = TransformerLM(LM_CFG).eval()
        engine, wl = build_engine(model, max_batch=8, use_cache=True)
        trace = build_scenario("steady", wl, ScenarioConfig(num_requests=32, seed=3))
        report = engine.serve(trace)
        assert len(report.events) == report.num_batches < report.num_requests

    def test_battery_scenario_climbs_sparsity_ladder(self):
        model = TransformerLM(LM_CFG).eval()
        engine, wl = build_engine(model, max_batch=8, use_cache=True)
        trace = build_scenario("battery", wl, ScenarioConfig(num_requests=64, seed=3))
        report = engine.serve(trace)
        chosen = [e.chosen_sparsity for e in report.events
                  if e.chosen_sparsity is not None]
        assert len(set(chosen)) >= 2, "battery drain should move the ladder"
        assert chosen == sorted(chosen), "sparsity should only climb as battery drains"
        assert report.num_switches >= 2

    def test_partial_batch_charged_the_batching_window(self):
        model = TransformerLM(LM_CFG).eval()
        engine, wl = build_engine(model, max_batch=8, use_cache=True)
        lone = InferenceRequest(0, np.arange(1, 9), arrival_s=0.0, deadline_s=10.0)
        report = engine.serve([lone])
        # an online batcher cannot know the stream ended: the lone request
        # waits out the full window before dispatch
        assert report.results[0].queue_wait_s == pytest.approx(
            engine.batcher.window_s)

    def test_infeasible_deadline_no_phantom_switches(self):
        model = TransformerLM(LM_CFG).eval()
        engine, wl = build_engine(model, max_batch=8, use_cache=True)
        rng = np.random.default_rng(0)
        reqs = [InferenceRequest(i, rng.integers(1, 60, size=8),
                                 arrival_s=i * 1e-4, deadline_s=1e-12, slo_s=10.0)
                for i in range(16)]
        report = engine.serve(reqs)
        assert report.violations == report.num_batches == 2
        assert report.num_switches == 0  # the adapter itself never switched
        # served at the sparsest rung, recorded as such
        assert {r.sparsity for r in report.results} == {0.9}
        # the one real install (fallback) is charged to the first batch only
        svc = {r.batch_id: r.service_s for r in report.results}
        assert svc[0] > svc[1]

    def test_feasibility_matches_latency_model(self):
        model = TransformerLM(LM_CFG).eval()
        engine, wl = build_engine(model, max_batch=8, use_cache=True)
        latency = engine.adapter.latency
        for event in engine.serve(build_scenario(
                "bursty", wl, ScenarioConfig(num_requests=16, seed=3))).events:
            if event.chosen_sparsity is None:
                continue
            level = DVFSTable()[event.level_name]
            assert latency.latency_s(wl, level, event.chosen_sparsity,
                                     SparsityKind.PATTERN, 8) <= event.deadline_s


class TestBatchLatencyModel:
    def test_overhead_amortized_once(self):
        lm_model = TransformerLM(LM_CFG)
        wl = profile_from_model(lm_model, seq_len=12)
        lat = LatencyModel()
        level = DVFSTable()["l6"]
        single = lat.latency_s(wl, level, 0.5, SparsityKind.PATTERN, 4)
        batch8 = lat.batch_latency_s(wl, level, 8, 0.5, SparsityKind.PATTERN, 4)
        assert batch8 < 8 * single
        assert batch8 > lat.batch_latency_s(wl, level, 1, 0.5,
                                            SparsityKind.PATTERN, 4)

    def test_batch_of_one_equals_single(self):
        lm_model = TransformerLM(LM_CFG)
        wl = profile_from_model(lm_model, seq_len=12)
        lat = LatencyModel()
        level = DVFSTable()["l4"]
        assert lat.batch_latency_s(wl, level, 1, 0.3, SparsityKind.PATTERN, 4) == (
            pytest.approx(lat.latency_s(wl, level, 0.3, SparsityKind.PATTERN, 4)))

    def test_invalid_batch_rejected(self):
        lm_model = TransformerLM(LM_CFG)
        wl = profile_from_model(lm_model, seq_len=12)
        with pytest.raises(ValueError):
            LatencyModel().batch_breakdown(wl, 0)
