"""Chaos-matrix tests for the fault-tolerant serving plane.

Every test drives the real streaming engine under a deterministic
:class:`FaultPlan` and checks the two invariants the faults bench gates:

- **conservation** — ``completed + shed == submitted`` under every
  fault schedule and shed policy (no request is ever silently lost);
- **exactness** — every *completed* output is bit-identical to a
  fault-free serve of the surviving request set (failover re-execution,
  stalls, slowdowns and degradation never perturb served numerics).

Plus the schedule vocabulary itself (``ShardFault`` validation, the
CLI ``--faults`` spec parser, the seeded flaky overlay) and the edge
cases: every shard down at once, crashes landing on in-flight work,
crashes retracting live decode streams, and recovery mid-trace.
"""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.nn.generation import GenerationConfig
from repro.serve import (
    DecodeOptions,
    FaultInjector,
    FaultPlan,
    InferenceRequest,
    ScenarioConfig,
    ShardFault,
    StackConfig,
    build_scenario,
    build_serving_stack,
    flaky_fault_overlay,
)

DEVICES = 4
WINDOW_S = 2e-3          # admission window small enough to fit the SLOs
PROBE_S = 5e-3
BURST = 8
# burst families cycle through these; 0.95x dense is infeasible at every
# sparsity rung, so reject shed and degrade rescue are both exercised
FACTORS = (1.7, 1.2, 1.7, 0.95)


def make_stack(seed=0, devices=DEVICES, **kw):
    return build_serving_stack(StackConfig(
        devices=devices, seed=seed, window_s=WINDOW_S,
        probe_backoff_s=PROBE_S, **kw))


def bursty_trace(n=48, seed=0, factors=(1.7, 1.2)):
    _, workload, _ = make_stack(seed)
    return build_scenario("bursty", workload,
                          ScenarioConfig(num_requests=n, seed=seed),
                          burst_size=BURST, deadline_factors=factors)


def steady_trace(n=32, seed=0):
    _, workload, _ = make_stack(seed)
    return build_scenario("steady", workload,
                          ScenarioConfig(num_requests=n, seed=seed))


def serve(trace, faults=None, seed=0, devices=DEVICES, **kw):
    _, _, engine = make_stack(seed, devices=devices, faults=faults, **kw)
    return engine.serve(trace)


def in_flight_crash(trace, shard=1, duration_s=None):
    """Crash ``shard`` while its first batch is in flight.

    Round-robin routing sends the second burst's batch to shard 1; the
    window closes at that burst's last arrival and the pattern-switch
    charge keeps the batch busy well past close + 3 ms, so the crash
    deterministically retracts live work.
    """
    ordered = sorted(trace, key=lambda r: (r.arrival_s, r.req_id))
    close_s = max(r.arrival_s for r in ordered[BURST:2 * BURST])
    span_s = max(r.arrival_s for r in ordered)
    return FaultPlan.outage(shard, close_s + 0.003,
                            duration_s if duration_s is not None
                            else 0.3 * span_s)


def assert_exact(report, seed=0, devices=DEVICES, decode_cfg=None, **kw):
    """Completed outputs must match a fault-free serve of the survivors."""
    survivors = [replace(r.request) for r in report.results]
    _, _, ref_engine = make_stack(seed, devices=devices, **kw)
    if decode_cfg is not None:
        reference = ref_engine.serve_decode(survivors, config=decode_cfg)
    else:
        reference = ref_engine.serve(survivors)
    got = {r.request.req_id: r.output for r in report.results}
    want = {r.request.req_id: r.output for r in reference.results}
    assert set(got) == set(want)
    for rid, out in got.items():
        ref = want[rid]
        if isinstance(out, np.ndarray):
            assert np.array_equal(out, ref)
        else:  # GenerationResult from the decode lanes
            assert np.array_equal(out.tokens, ref.tokens)
            assert out.logprobs == ref.logprobs


# ---------------------------------------------------------------------------
# the schedule vocabulary
# ---------------------------------------------------------------------------

class TestShardFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            ShardFault("explode", 0, 0.1)

    def test_negative_shard_rejected(self):
        with pytest.raises(ValueError, match="shard_id"):
            ShardFault("crash", -1, 0.1)

    @pytest.mark.parametrize("at", [-0.1, float("inf"), float("nan")])
    def test_bad_time_rejected(self, at):
        with pytest.raises(ValueError, match="fault time"):
            ShardFault("crash", 0, at)

    @pytest.mark.parametrize("dur", [0.0, -1.0, float("nan")])
    def test_bad_duration_rejected(self, dur):
        with pytest.raises(ValueError, match="duration"):
            ShardFault("crash", 0, 0.1, dur)

    @pytest.mark.parametrize("kind", ["stall", "slow"])
    def test_only_crashes_may_be_permanent(self, kind):
        with pytest.raises(ValueError, match="finite duration"):
            ShardFault(kind, 0, 0.1, float("inf"),
                       factor=2.0 if kind == "slow" else 1.0)

    @pytest.mark.parametrize("factor", [1.0, 0.5])
    def test_slow_factor_must_exceed_one(self, factor):
        with pytest.raises(ValueError, match="factor"):
            ShardFault("slow", 0, 0.1, 0.2, factor)

    def test_end_time(self):
        assert ShardFault("stall", 0, 0.1, 0.2).end_s == pytest.approx(0.3)
        assert math.isinf(ShardFault("crash", 0, 0.1).end_s)


class TestFaultPlan:
    def test_parse_roundtrip(self):
        plan = FaultPlan.parse("crash:1@0.2+0.3, slow:2@0.1+0.2x3,"
                               "stall:0@0.5+0.05, crash:3@1.0")
        kinds = {(f.kind, f.shard_id) for f in plan}
        assert kinds == {("crash", 1), ("slow", 2), ("stall", 0),
                         ("crash", 3)}
        crash = next(f for f in plan if f.shard_id == 1)
        assert crash.at_s == pytest.approx(0.2)
        assert crash.duration_s == pytest.approx(0.3)
        slow = next(f for f in plan if f.kind == "slow")
        assert slow.factor == pytest.approx(3.0)
        permanent = next(f for f in plan if f.shard_id == 3)
        assert math.isinf(permanent.duration_s)

    @pytest.mark.parametrize("spec", ["", "garbage", "crash@0.2",
                                      "crash:x@0.2", "crash:1@",
                                      "boom:1@0.2"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_outage_shape(self):
        plan = FaultPlan.outage(2, 0.4, 0.25)
        assert len(plan) == 1
        fault = plan.events[0]
        assert (fault.kind, fault.shard_id) == ("crash", 2)
        assert fault.end_s == pytest.approx(0.65)

    def test_ordered_is_deterministic(self):
        plan = FaultPlan([ShardFault("stall", 1, 0.2, 0.1),
                          ShardFault("crash", 0, 0.2, 0.1),
                          ShardFault("crash", 0, 0.1, 0.05)])
        ordered = plan.ordered()
        assert [(f.at_s, f.shard_id) for f in ordered] == [
            (0.1, 0), (0.2, 0), (0.2, 1)]

    def test_validate_rejects_out_of_fleet_targets(self):
        with pytest.raises(ValueError, match="shard 7"):
            FaultPlan.outage(7, 0.1).validate(devices=4)

    def test_injector_validates_backoff(self):
        plan = FaultPlan.outage(0, 0.1)
        with pytest.raises(ValueError, match="probe_backoff_s"):
            FaultInjector(plan, devices=1, probe_backoff_s=0.0)


class TestFlakyOverlay:
    def test_seeded_and_deterministic(self):
        a = flaky_fault_overlay(4, 2.5, seed=9)
        b = flaky_fault_overlay(4, 2.5, seed=9)
        assert [(f.kind, f.shard_id, f.at_s, f.duration_s, f.factor)
                for f in a] == [(f.kind, f.shard_id, f.at_s, f.duration_s,
                                 f.factor) for f in b]
        c = flaky_fault_overlay(4, 2.5, seed=10)
        assert [(f.at_s, f.kind) for f in a] != [(f.at_s, f.kind)
                                                 for f in c]

    def test_always_crashes_and_rejoins(self):
        plan = flaky_fault_overlay(2, 1.0, seed=0)
        crashes = [f for f in plan if f.kind == "crash"]
        assert crashes  # rate 1.0 guarantees at least one
        assert all(math.isfinite(f.duration_s) for f in crashes)
        assert all(0 <= f.shard_id < 2 for f in plan)
        plan.validate(devices=2)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            flaky_fault_overlay(0, 1.0)
        with pytest.raises(ValueError):
            flaky_fault_overlay(2, float("inf"))
        with pytest.raises(ValueError):
            flaky_fault_overlay(2, 1.0, crash_rate=-1.0)


# ---------------------------------------------------------------------------
# failover
# ---------------------------------------------------------------------------

class TestFailover:
    def test_crash_retracts_in_flight_work(self):
        trace = bursty_trace(48)
        report = serve(trace, faults=in_flight_crash(trace))
        assert report.conserved
        assert report.completed == len(trace)  # failover loses nothing
        assert report.failures == 1
        assert report.recoveries == 1
        assert report.requeued_batches >= 1
        assert report.max_recovery_lag_s > 0
        assert_exact(report)

    def test_idle_crash_only_flips_health(self):
        # between bursts (gap 0.5 s) every shard is idle: the crash must
        # fail over nothing, and the shard rejoins via the probe chain
        trace = bursty_trace(32)
        plan = FaultPlan.outage(1, 0.25, 0.1)
        report = serve(trace, faults=plan)
        assert report.conserved
        assert report.completed == len(trace)
        assert report.failures == 1
        assert report.recoveries == 1
        assert report.requeued_batches == 0
        assert_exact(report)

    def test_stall_is_timing_only(self):
        trace = bursty_trace(32)
        baseline = serve(trace)
        plan = FaultPlan([ShardFault("stall", 0, 0.0005, 0.05)])
        report = serve(trace, faults=plan)
        assert report.conserved
        assert report.completed == len(trace)
        assert report.stalls >= 1
        assert report.sim_makespan_s >= baseline.sim_makespan_s
        assert_exact(report)

    def test_slow_window_is_timing_only(self):
        trace = bursty_trace(32)
        plan = FaultPlan.parse("slow:0@0.0+1.0x4")
        report = serve(trace, faults=plan)
        assert report.conserved
        assert report.completed == len(trace)
        assert_exact(report)

    def test_recovery_mid_burst_stream(self):
        # the shard comes back while later bursts are still arriving and
        # must finish the trace without losing or perturbing anything
        trace = bursty_trace(64)
        report = serve(trace, faults=in_flight_crash(trace,
                                                     duration_s=0.6))
        assert report.conserved
        assert report.completed == len(trace)
        assert report.recoveries == 1
        assert_exact(report)


class TestTotalOutage:
    def test_all_shards_down_sheds_not_hangs(self):
        trace = bursty_trace(16)
        plan = FaultPlan([ShardFault("crash", i, 0.0)
                          for i in range(DEVICES)])
        report = serve(trace, faults=plan)
        assert report.conserved
        assert report.completed == 0
        assert report.num_shed == len(trace)
        assert all(rec.reason == "no_device" for rec in report.shed)

    def test_finite_total_outage_parks_then_flushes(self):
        trace = bursty_trace(16)
        plan = FaultPlan([ShardFault("crash", i, 0.0005, 0.05)
                          for i in range(DEVICES)])
        report = serve(trace, faults=plan)
        assert report.conserved
        assert report.completed == len(trace)
        assert report.recoveries == DEVICES
        assert_exact(report)


# ---------------------------------------------------------------------------
# shed policies
# ---------------------------------------------------------------------------

class TestShedPolicies:
    def test_bounded_queue_sheds_overflow(self):
        trace = bursty_trace(32)
        report = serve(trace, max_queue=1)
        assert report.conserved
        assert report.num_shed > 0
        assert all(rec.reason == "queue_full" for rec in report.shed)
        assert_exact(report)

    def test_reject_sheds_infeasible_bursts(self):
        trace = bursty_trace(48, factors=FACTORS)
        report = serve(trace, shed_policy="reject")
        assert report.conserved
        assert report.num_shed > 0
        assert all(rec.reason == "deadline" for rec in report.shed)
        assert all(rec.est_completion_s is not None for rec in report.shed)
        assert_exact(report)

    def test_degrade_rescues_infeasible_bursts(self):
        trace = bursty_trace(48, factors=FACTORS)
        report = serve(trace, shed_policy="degrade")
        assert report.conserved
        assert report.num_shed == 0
        assert report.degraded_requests > 0
        # degraded completions remember their original deadline; the
        # restamped one is the rescue rung's latency (feasible, unlike
        # the original) and must stay inside the untouched SLO
        degraded = [r for r in report.results if r.degraded]
        assert degraded
        assert all(r.request.degraded_from_s is not None
                   and r.request.deadline_s != r.request.degraded_from_s
                   and r.request.deadline_s <= r.request.slo_s
                   for r in degraded)
        assert_exact(report)

    def test_degrade_sheds_strictly_less_than_reject(self):
        trace = bursty_trace(48, factors=FACTORS)
        plan = in_flight_crash(trace)
        reject = serve(trace, faults=plan, shed_policy="reject")
        degrade = serve(trace, faults=plan, shed_policy="degrade")
        assert reject.conserved and degrade.conserved
        assert degrade.num_shed < reject.num_shed
        assert_exact(reject)
        assert_exact(degrade)


# ---------------------------------------------------------------------------
# decode streams under faults
# ---------------------------------------------------------------------------

class TestDecodeUnderFaults:
    def decode_trace(self, vocab, n, seed=0, spacing=0.01):
        rng = np.random.default_rng(seed)
        reqs = []
        for i in range(n):
            toks = rng.integers(0, vocab,
                                size=int(rng.integers(2, 9))).tolist()
            reqs.append(InferenceRequest(req_id=i, tokens=toks,
                                         level_name=("l2", "l4")[i % 2],
                                         arrival_s=spacing * i))
        return reqs

    def test_crash_mid_decode_stream(self):
        cfg = GenerationConfig(max_new_tokens=6, seed=11)
        opts = DecodeOptions(max_new_tokens=6, seed=11)
        plan = FaultPlan.outage(1, 0.015, 0.2)
        _, _, engine = make_stack(seed=3, devices=2, faults=plan,
                                  decode=opts)
        trace = self.decode_trace(StackConfig().vocab_size, 8)
        report = engine.serve_decode(trace, config=cfg)
        assert report.conserved
        assert report.completed == len(trace)
        assert report.failures == 1
        assert_exact(report, seed=3, devices=2, decode_cfg=cfg,
                     decode=opts)


# ---------------------------------------------------------------------------
# chaos matrix: seeded overlays x scenarios x policies
# ---------------------------------------------------------------------------

def _chaos_case(scenario, seed, policy):
    trace = (bursty_trace(32, seed=seed) if scenario == "bursty"
             else steady_trace(32, seed=seed))
    horizon = max(r.arrival_s for r in trace) or 1.0
    plan = flaky_fault_overlay(DEVICES, horizon, seed=seed)
    report = serve(trace, faults=plan, seed=seed, shed_policy=policy)
    assert report.conserved
    assert report.failures >= 1
    assert_exact(report, seed=seed)


class TestChaosMatrix:
    @pytest.mark.parametrize("scenario", ["bursty", "steady"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("policy", ["none", "degrade"])
    def test_conservation_and_exactness(self, scenario, seed, policy):
        _chaos_case(scenario, seed, policy)

    @pytest.mark.slow
    @pytest.mark.parametrize("scenario", ["bursty", "steady"])
    @pytest.mark.parametrize("seed", [3, 4, 5, 6])
    @pytest.mark.parametrize("policy", ["none", "reject", "degrade"])
    def test_wider_sweep(self, scenario, seed, policy):
        _chaos_case(scenario, seed, policy)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCLIFaults:
    def test_serve_with_flaky_overlay(self, capsys):
        assert cli_main(["serve", "--scenario", "bursty", "--requests",
                         "16", "--devices", "2", "--window-ms", "2",
                         "--faults", "flaky",
                         "--shed-policy", "degrade"]) == 0
        import json
        out = json.loads(capsys.readouterr().out)
        faults = out["faults"]
        assert faults["conserved"] is True
        assert faults["failures"] >= 1
        assert faults["completed"] + faults["shed"] == faults["submitted"]
        assert faults["completed"] > 0  # the tight window actually admits

    def test_serve_with_fault_spec(self, capsys):
        assert cli_main(["serve", "--scenario", "bursty", "--requests",
                         "16", "--devices", "2", "--window-ms", "2",
                         "--faults", "crash:1@0.2+0.3", "--shed-policy",
                         "reject"]) == 0
        import json
        out = json.loads(capsys.readouterr().out)
        assert out["faults"]["failures"] == 1
