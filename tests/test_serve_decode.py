"""Continuously-batched decode through the serving stack.

Decode streams join a per-shard rolling batch at token boundaries,
grouped by operating-point compatibility; the contract is the same as
the nn layer's — every served stream's tokens and logprobs are
bit-identical to a solo eager run under the same installed pattern set —
plus the serving-side bookkeeping: completion times, switch accounting,
decode stats, and the consolidated ``DecodeOptions`` sub-config.
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.nn.generation import DecodeSession, GenerationConfig
from repro.serve import (
    DecodeOptions,
    InferenceRequest,
    StackConfig,
    build_serving_stack,
)


def decode_trace(vocab, n, seed=0, levels=("l2", "l4"), spacing=0.01):
    rng = np.random.default_rng(seed)
    reqs = []
    for i in range(n):
        toks = rng.integers(0, vocab, size=int(rng.integers(2, 9))).tolist()
        reqs.append(InferenceRequest(req_id=i, tokens=toks,
                                     level_name=levels[i % len(levels)],
                                     arrival_s=spacing * i))
    return reqs


def solo_eager(stack_seed, prompt, cfg, sparsity, stack_kwargs=None):
    """Reference: the same model, the result's pattern set installed, one
    stream decoded eagerly."""
    model, _, engine = build_serving_stack(
        StackConfig(seed=stack_seed, **(stack_kwargs or {})))
    if sparsity is not None:
        pset = dict(engine.adapter.candidates)[sparsity]
        engine.adapter.manager.apply(pset)
    session = DecodeSession(model, cfg, compiled=False)
    try:
        sid = session.submit_prompt(prompt)
        session.run()
        return session.result(sid)
    finally:
        session.close()


class TestServeDecode:
    def test_offline_serve_decode_bit_exact(self):
        cfg = StackConfig(seed=3, devices=2, policy="least-loaded",
                          decode=DecodeOptions(max_new_tokens=6, seed=11))
        _, _, engine = build_serving_stack(cfg)
        reqs = decode_trace(cfg.vocab_size, 8)
        report = engine.serve_decode(reqs)
        assert len(report.results) == 8
        gen_cfg = GenerationConfig(max_new_tokens=6, seed=11)
        for r in report.results:
            ref = solo_eager(3, list(r.request.tokens), gen_cfg, r.sparsity,
                             {"devices": 2, "policy": "least-loaded"})
            assert np.array_equal(r.output.tokens, ref.tokens)
            assert r.output.logprobs == ref.logprobs

    def test_decode_bookkeeping(self):
        cfg = StackConfig(seed=3, devices=2,
                          decode=DecodeOptions(max_new_tokens=5))
        _, _, engine = build_serving_stack(cfg)
        report = engine.serve_decode(decode_trace(cfg.vocab_size, 6))
        assert report.decode_streams == 6
        assert report.decode_tokens == 6 * 5
        summary = report.summary()
        assert summary["decode_streams"] == 6
        assert summary["decode_tokens"] == 30
        assert report.events  # decode ticks record adaptation events
        by_shard = {}
        for r in report.results:
            assert r.queue_wait_s >= -1e-12
            assert r.service_s > 0
            assert r.completion_s >= r.request.arrival_s
            by_shard.setdefault(r.shard_id, []).append(r.completion_s)

    def test_batch_only_summary_has_no_decode_keys(self):
        """Pure batch traffic must not grow new summary keys (the
        committed serve-bench digests hash the summary shape)."""
        from repro.serve import ScenarioConfig, build_scenario

        cfg = StackConfig(seed=0)
        _, workload, engine = build_serving_stack(cfg)
        trace = build_scenario("steady", workload, ScenarioConfig(
            num_requests=8, vocab_size=cfg.vocab_size, seq_len=cfg.seq_len,
            max_len=cfg.max_len, seed=0))
        report = engine.serve(trace)
        assert "decode_tokens" not in report.summary()
        assert "decode_streams" not in report.summary()

    def test_streaming_mixed_batch_and_decode(self):
        cfg = StackConfig(seed=3, streaming=True,
                          decode=DecodeOptions(max_new_tokens=4, seed=5))
        _, _, core = build_serving_stack(cfg)
        rng = np.random.default_rng(1)
        for i in range(3):
            toks = rng.integers(0, cfg.vocab_size, size=5).tolist()
            core.submit(InferenceRequest(req_id=100 + i, tokens=toks,
                                         level_name="l2",
                                         arrival_s=0.002 * i))
        for i in range(3):
            toks = rng.integers(0, cfg.vocab_size, size=4).tolist()
            core.submit_decode(InferenceRequest(req_id=200 + i, tokens=toks,
                                                level_name="l2",
                                                arrival_s=0.001 + 0.002 * i))
        core.drain()
        report = core.report()
        assert len(report.results) == 6
        decode = [r for r in report.results if r.request.req_id >= 200]
        assert all(len(r.output.tokens) == 4 + 4 for r in decode)
        batch = [r for r in report.results if r.request.req_id < 200]
        assert all(r.output is not None for r in batch)
        assert report.decode_streams == 3 and report.decode_tokens == 12

    def test_same_tick_join_and_leave(self):
        """A one-token stream finishes on the very boundary a later
        stream joins; both stay exact and both complete."""
        cfg = StackConfig(seed=3, streaming=True,
                          decode=DecodeOptions(max_new_tokens=1))
        _, _, core = build_serving_stack(cfg)
        rng = np.random.default_rng(2)
        p1 = rng.integers(0, cfg.vocab_size, size=4).tolist()
        p2 = rng.integers(0, cfg.vocab_size, size=6).tolist()
        core.submit_decode(InferenceRequest(req_id=0, tokens=p1,
                                            level_name="l2", arrival_s=0.0))
        core.submit_decode(InferenceRequest(req_id=1, tokens=p2,
                                            level_name="l2", arrival_s=0.0),
                           config=GenerationConfig(max_new_tokens=3))
        core.drain()
        report = core.report()
        assert len(report.results) == 2
        outs = {r.request.req_id: r for r in report.results}
        assert len(outs[0].output.generated) == 1
        assert len(outs[1].output.generated) == 3
        for rid, prompt, n in ((0, p1, 1), (1, p2, 3)):
            r = outs[rid]
            ref = solo_eager(3, prompt, GenerationConfig(max_new_tokens=n),
                             r.sparsity)
            assert np.array_equal(r.output.tokens, ref.tokens)

    def test_submit_decode_rejects_stale_arrival(self):
        cfg = StackConfig(seed=0, streaming=True)
        _, _, core = build_serving_stack(cfg)
        core.submit_decode(InferenceRequest(req_id=0, tokens=[1, 2, 3],
                                            level_name="l2", arrival_s=0.0))
        core.drain()
        with pytest.raises(ValueError, match="already advanced"):
            core.submit_decode(InferenceRequest(req_id=1, tokens=[1, 2],
                                                level_name="l2",
                                                arrival_s=0.0))

    def test_eager_fallback_path(self):
        """fast_forward=False decodes eagerly, same results surface."""
        _, _, engine = build_serving_stack(StackConfig(fast_forward=False))
        report = engine.serve_decode(
            [InferenceRequest(req_id=0, tokens=[1, 2, 3], level_name="l2",
                              arrival_s=0.0)],
            config=GenerationConfig(max_new_tokens=3, seed=7))
        assert list(report.results[0].output.tokens[:3]) == [1, 2, 3]
        assert len(report.results[0].output.generated) == 3


class TestDecodeOptionsConfig:
    def test_stack_config_grouped_sub_config(self):
        opts = DecodeOptions(max_new_tokens=3, top_k=2, fast_forward=False)
        cfg = StackConfig(decode=opts)
        assert cfg.decode is opts
        assert cfg.fast_forward is False  # flat read stays in sync
        _, _, engine = build_serving_stack(cfg)
        assert engine.decode_options is opts
        assert engine.fast_forward is False
        assert engine.streaming().decode_options is opts

    def test_flat_alias_overrides_grouped_default(self):
        cfg = StackConfig(fast_forward=False)
        assert cfg.decode.fast_forward is False
        cfg2 = StackConfig()
        assert cfg2.fast_forward is True
        assert cfg2.decode.fast_forward is True

    def test_generation_config_derivation(self):
        opts = DecodeOptions(max_new_tokens=4, top_k=3, temperature=0.5,
                             seed=1, eos_id=2)
        gc = opts.generation_config()
        assert (gc.max_new_tokens, gc.top_k, gc.temperature, gc.seed,
                gc.eos_id) == (4, 3, 0.5, 1, 2)
        with pytest.raises(ValueError, match="max_new_tokens"):
            DecodeOptions(max_new_tokens=0).generation_config()


class TestCLI:
    def test_generate_check(self, capsys):
        assert cli_main(["generate", "--num-streams", "2",
                         "--max-new-tokens", "4", "--check"]) == 0
        import json
        out = json.loads(capsys.readouterr().out)
        assert out["check_exact"] is True
        assert out["streams"] == 2
        assert out["compiled_decode"] is True

    def test_serve_decode_streams(self, capsys):
        assert cli_main(["serve", "--requests", "12", "--decode-streams", "4",
                         "--decode-max-new-tokens", "3"]) == 0
        import json
        out = json.loads(capsys.readouterr().out)
        assert out["decode_streams"] == 4
        assert out["decode_tokens"] == 12
        assert out["requests"] == 12
