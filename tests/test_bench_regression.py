"""Unit tests for the CI multi-bench regression gate's comparison logic."""

import importlib.util
import json
import pathlib

import pytest

SCRIPT = (pathlib.Path(__file__).resolve().parent.parent
          / "scripts" / "check_bench_regression.py")
spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def digest(sim_rps=4000.0, p95=6.0, sharded_rps=5000.0, sharded_p95=5.0,
           err=0.0):
    return {
        "requests": 96,
        "batch_size": 8,
        "sim_throughput_rps": sim_rps,
        "p95_latency_ms": p95,
        "baseline_throughput_rps": 500.0,
        "batched_throughput_rps": 3500.0,
        "speedup": 7.0,
        "max_batch_vs_single_error": err,
        "max_cross_engine_error": err,
        "sharded": {
            "devices": 4,
            "policy": "least-loaded",
            "sim_rps_sharded": sharded_rps,
            "p95_latency_ms": sharded_p95,
            "scaling": 2.8,
            "max_verify_error": err,
        },
    }


def kernels_digest(err=0.0, macs=131072, speedup=11.0, min_speedup=5.0):
    return {
        "seed": 0,
        "repeats": 5,
        "smoke": False,
        "cases": {
            "ffn-256x256-s75": {
                "shape": [256, 256],
                "op_counters": {
                    "pattern": {"macs": macs, "index_ops": 12,
                                "overhead_ops": 4096,
                                "weighted_total": macs + 24 + 4096},
                },
                "wall_ms": {"pattern": 2.0},
                "max_abs_err": {"pattern": err, "pattern_vs_loop": err},
            },
        },
        "acceptance": {"case": "ffn-256x256-s75", "min_speedup": min_speedup,
                       "speedup": speedup, "ok": speedup >= min_speedup},
    }


def verdicts(findings):
    return {f["metric"]: f["ok"] for f in findings if f["gated"]}


class TestCompare:
    def test_identical_digests_pass(self):
        findings = gate.compare(digest(), digest())
        assert all(verdicts(findings).values())

    def test_throughput_drop_beyond_tolerance_fails(self):
        findings = gate.compare(digest(), digest(sim_rps=4000.0 * 0.80))
        assert verdicts(findings)["sim_throughput_rps"] is False

    def test_throughput_drop_within_tolerance_passes(self):
        findings = gate.compare(digest(), digest(sim_rps=4000.0 * 0.90))
        assert verdicts(findings)["sim_throughput_rps"] is True

    def test_p95_rise_beyond_tolerance_fails(self):
        findings = gate.compare(digest(), digest(p95=6.0 * 1.25))
        assert verdicts(findings)["p95_latency_ms"] is False

    def test_sharded_metrics_gated_too(self):
        findings = gate.compare(
            digest(), digest(sharded_rps=5000.0 * 0.5, sharded_p95=5.0 * 2))
        got = verdicts(findings)
        assert got["sharded.sim_rps_sharded"] is False
        assert got["sharded.p95_latency_ms"] is False

    def test_exactness_always_gated(self):
        findings = gate.compare(digest(), digest(err=1e-6))
        got = verdicts(findings)
        assert got["max_batch_vs_single_error"] is False
        assert got["sharded.max_verify_error"] is False

    def test_custom_thresholds(self):
        fresh = digest(sim_rps=4000.0 * 0.90)
        strict = gate.compare(digest(), fresh, max_throughput_drop=0.05)
        assert verdicts(strict)["sim_throughput_rps"] is False

    def test_metric_missing_from_baseline_is_skipped(self):
        base = digest()
        del base["sharded"]
        findings = gate.compare(base, digest())
        got = {f["metric"]: f for f in findings}
        assert got["sharded.sim_rps_sharded"]["ok"] is True
        assert "absent from baseline" in got["sharded.sim_rps_sharded"]["note"]

    def test_metric_missing_from_fresh_run_fails(self):
        fresh = digest()
        del fresh["sim_throughput_rps"]
        findings = gate.compare(digest(), fresh)
        assert verdicts(findings)["sim_throughput_rps"] is False

    def test_wall_clock_metrics_never_gated(self):
        fresh = digest()
        fresh["batched_throughput_rps"] = 1.0  # collapses, but runner-dependent
        fresh["speedup"] = 0.01
        findings = gate.compare(digest(), fresh)
        assert all(verdicts(findings).values())
        info = {f["metric"] for f in findings if not f["gated"]}
        assert {"speedup", "batched_throughput_rps"} <= info


class TestCompareKernels:
    def test_identical_digests_pass(self):
        findings = gate.compare_kernels(kernels_digest(), kernels_digest())
        assert all(verdicts(findings).values())

    def test_exactness_breach_fails(self):
        findings = gate.compare_kernels(kernels_digest(), kernels_digest(err=1e-6))
        got = verdicts(findings)
        assert got["cases.ffn-256x256-s75.max_abs_err.pattern"] is False
        assert got["cases.ffn-256x256-s75.max_abs_err.pattern_vs_loop"] is False

    def test_op_counter_drift_fails(self):
        # op counts are deterministic: any change is a behavioural change
        findings = gate.compare_kernels(kernels_digest(),
                                        kernels_digest(macs=131073))
        got = verdicts(findings)
        assert got["cases.ffn-256x256-s75.op_counters.pattern.macs"] is False

    def test_speedup_below_floor_fails(self):
        findings = gate.compare_kernels(kernels_digest(),
                                        kernels_digest(speedup=3.0))
        assert verdicts(findings)["acceptance.speedup"] is False

    def test_speedup_above_floor_passes(self):
        findings = gate.compare_kernels(kernels_digest(),
                                        kernels_digest(speedup=5.5))
        assert verdicts(findings)["acceptance.speedup"] is True

    def test_dropped_case_fails(self):
        # removing a gated case from the bench must not silently pass
        fresh = kernels_digest()
        del fresh["cases"]["ffn-256x256-s75"]
        findings = gate.compare_kernels(kernels_digest(), fresh)
        missing = [f for f in findings if f["gated"] and not f["ok"]]
        assert missing
        assert any("missing from fresh run" in f["note"] for f in missing)

    def test_dropped_kernel_fails(self):
        fresh = kernels_digest()
        del fresh["cases"]["ffn-256x256-s75"]["op_counters"]["pattern"]
        findings = gate.compare_kernels(kernels_digest(), fresh)
        got = {f["metric"]: f for f in findings if f["gated"]}
        key = "cases.ffn-256x256-s75.op_counters.pattern"
        assert got[key]["ok"] is False

    def test_baseline_speedup_floor_is_authoritative(self):
        # the bench cannot lower its own gate by editing its threshold
        fresh = kernels_digest(speedup=3.0, min_speedup=1.0)
        fresh["acceptance"]["ok"] = True
        findings = gate.compare_kernels(kernels_digest(min_speedup=5.0), fresh)
        assert verdicts(findings)["acceptance.speedup"] is False

    def test_floor_falls_back_to_fresh_for_old_baselines(self):
        base = kernels_digest()
        del base["acceptance"]
        findings = gate.compare_kernels(base, kernels_digest(speedup=6.0))
        assert verdicts(findings)["acceptance.speedup"] is True

    def test_counter_missing_from_baseline_is_skipped(self):
        base = kernels_digest()
        del base["cases"]["ffn-256x256-s75"]["op_counters"]["pattern"]["macs"]
        findings = gate.compare_kernels(base, kernels_digest())
        got = {f["metric"]: f for f in findings}
        key = "cases.ffn-256x256-s75.op_counters.pattern.macs"
        assert got[key]["ok"] is True
        assert "absent from baseline" in got[key]["note"]

    def test_wall_clock_never_gated(self):
        fresh = kernels_digest()
        fresh["cases"]["ffn-256x256-s75"]["wall_ms"]["pattern"] = 1e6
        findings = gate.compare_kernels(kernels_digest(), fresh)
        assert all(verdicts(findings).values())
        info = {f["metric"] for f in findings if not f["gated"]}
        assert "cases.ffn-256x256-s75.wall_ms.pattern" in info


def stream_digest(err=0.0, mono=True, batches=(1.0, 3.4, 8.0),
                  efficiency=(1300.0, 1400.0, 1460.0),
                  p50=(2.1, 5.7, 9.2)):
    return {
        "requests": 64,
        "seed": 0,
        "windows_ms": [0.0, 4.0, 50.0],
        "max_oracle_err": err,
        "monotonic": {"mean_batch_size": mono,
                      "service_throughput_rps": mono,
                      "p50_latency_ms": mono},
        "sweep": [
            {"max_wait_ms": w, "mean_batch_size": b,
             "service_throughput_rps": e, "p50_latency_ms": p}
            for w, b, e, p in zip([0.0, 4.0, 50.0], batches, efficiency, p50)],
        "tradeoff": {"efficiency_gain": efficiency[-1] / efficiency[0],
                     "p50_increase_ms": p50[-1] - p50[0],
                     "batch_growth": batches[-1] / batches[0]},
    }


def table_digest(power_scale=1.0, names=("l1", "l6")):
    return {
        "table": "table1_dvfs",
        "levels": [{"name": n, "freq_mhz": 400.0 if n == "l1" else 1400.0,
                    "voltage_mv": 916.25 if n == "l1" else 1240.0,
                    "power_w": power_scale * (0.07 if n == "l1" else 0.44)}
                   for n in names],
        "governor": {"lookups": 1000, "wall_ms": 0.5,
                     "thresholds": [0.15, 0.40]},
    }


class TestCompareStream:
    def test_identical_digests_pass(self):
        findings = gate.compare_stream(stream_digest(), stream_digest())
        assert all(verdicts(findings).values())

    def test_oracle_exactness_breach_fails(self):
        findings = gate.compare_stream(stream_digest(),
                                       stream_digest(err=1e-6))
        assert verdicts(findings)["max_oracle_err"] is False

    def test_lost_monotonicity_fails(self):
        findings = gate.compare_stream(stream_digest(),
                                       stream_digest(mono=False))
        got = verdicts(findings)
        assert got["monotonic.mean_batch_size"] is False
        assert got["monotonic.p50_latency_ms"] is False

    def test_batch_size_drift_fails(self):
        findings = gate.compare_stream(
            stream_digest(), stream_digest(batches=(1.0, 4.0, 8.0)))
        assert verdicts(findings)["sweep[1].mean_batch_size"] is False

    def test_endpoint_efficiency_drop_fails(self):
        findings = gate.compare_stream(
            stream_digest(),
            stream_digest(efficiency=(1300.0, 1400.0, 1460.0 * 0.5)))
        assert verdicts(findings)["sweep[-1].service_throughput_rps"] is False

    def test_endpoint_p50_rise_fails(self):
        findings = gate.compare_stream(
            stream_digest(), stream_digest(p50=(2.1, 5.7, 9.2 * 2.0)))
        assert verdicts(findings)["sweep[-1].p50_latency_ms"] is False

    def test_drift_within_tolerance_passes(self):
        findings = gate.compare_stream(
            stream_digest(),
            stream_digest(efficiency=(1300.0, 1400.0, 1460.0 * 0.9)))
        assert verdicts(findings)["sweep[-1].service_throughput_rps"] is True


class TestCompareTable:
    def test_identical_digests_pass(self):
        findings = gate.compare_table(table_digest(), table_digest())
        assert all(verdicts(findings).values())

    def test_row_drift_fails(self):
        findings = gate.compare_table(table_digest(),
                                      table_digest(names=("l1", "l5")))
        assert verdicts(findings)["levels.row_set"] is False

    def test_power_drift_beyond_one_percent_fails(self):
        findings = gate.compare_table(table_digest(),
                                      table_digest(power_scale=1.02))
        got = verdicts(findings)
        assert got["levels.l1.power_w"] is False
        assert got["levels.l6.power_w"] is False

    def test_power_drift_within_budget_passes(self):
        findings = gate.compare_table(table_digest(),
                                      table_digest(power_scale=1.005))
        assert all(verdicts(findings).values())

    def test_wall_clock_never_gated(self):
        fresh = table_digest()
        fresh["governor"]["wall_ms"] = 1e6
        findings = gate.compare_table(table_digest(), fresh)
        assert all(verdicts(findings).values())
        info = {f["metric"] for f in findings if not f["gated"]}
        assert "governor.wall_ms" in info


def table2_digest(e3=2.5e6, meets=True):
    rows = [{"experiment": "E1", "level": "l6", "latency_ms": 114.7,
             "meets_deadline": True},
            {"experiment": "E3", "level": "l3", "latency_ms": 114.0,
             "meets_deadline": meets}]
    return {
        "table": "table2_reconfig",
        "deadline_ms": 115.0,
        "rows": rows,
        "total_runs": {"E1": 1.53e6, "E2": 1.78e6, "E3": e3},
        "improvement": {"E2_vs_E1": 1.164, "E3_vs_E1": e3 / 1.53e6},
        "wall_ms": 0.2,
    }


class TestCompareTable2:
    def test_identical_digests_pass(self):
        findings = gate.compare_table2(table2_digest(), table2_digest())
        assert all(verdicts(findings).values())

    def test_row_verdict_drift_fails(self):
        findings = gate.compare_table2(table2_digest(),
                                       table2_digest(meets=False))
        assert verdicts(findings)["rows.row_set"] is False

    def test_run_total_drift_fails(self):
        findings = gate.compare_table2(table2_digest(),
                                       table2_digest(e3=2.6e6))
        assert verdicts(findings)["total_runs.E3"] is False

    def test_wall_clock_never_gated(self):
        fresh = table2_digest()
        fresh["wall_ms"] = 1e6
        findings = gate.compare_table2(table2_digest(), fresh)
        assert all(verdicts(findings).values())
        info = {f["metric"] for f in findings if not f["gated"]}
        assert "wall_ms" in info


def forward_digest(err=0.0, nodes=238, allocs=0, speedup=3.5,
                   min_speedup=2.0, rel32=2e-7):
    return {
        "bench": "forward",
        "smoke": False,
        "seed": 0,
        "repeats": 5,
        "cases": {
            "serve.b1": {
                "model": "TransformerLM", "batch": 1, "seq_len": 12,
                "tensor_ms": 1.4, "compiled_ms": 1.4 / speedup,
                "speedup": speedup, "max_abs_err": err,
                "exact": err == 0.0, "tensor_nodes": nodes,
                "compiled_steady_allocs": allocs,
                "compiled_warm_allocs": 14,
                "float32_max_rel_err": rel32,
            },
        },
        "acceptance": {"case": "serve.b1", "speedup": speedup,
                       "min_speedup": min_speedup, "exact": err == 0.0,
                       "float32_tol": 1e-3},
    }


class TestCompareForward:
    def test_identical_digests_pass(self):
        findings = gate.compare_forward(forward_digest(), forward_digest())
        assert all(verdicts(findings).values())

    def test_any_exactness_breach_fails(self):
        # bit-exactness: even a 1e-16 deviation is a gate failure
        findings = gate.compare_forward(forward_digest(),
                                        forward_digest(err=1e-16))
        assert verdicts(findings)["cases.serve.b1.max_abs_err"] is False

    def test_node_count_drift_fails(self):
        findings = gate.compare_forward(forward_digest(),
                                        forward_digest(nodes=239))
        assert verdicts(findings)["cases.serve.b1.tensor_nodes"] is False

    def test_steady_alloc_drift_fails(self):
        findings = gate.compare_forward(forward_digest(),
                                        forward_digest(allocs=3))
        assert (verdicts(findings)["cases.serve.b1.compiled_steady_allocs"]
                is False)

    def test_speedup_below_floor_fails(self):
        findings = gate.compare_forward(forward_digest(),
                                        forward_digest(speedup=1.5))
        assert verdicts(findings)["acceptance.speedup"] is False

    def test_baseline_floor_is_authoritative(self):
        # a fresh run cannot lower the gate by shipping a smaller floor
        fresh = forward_digest(speedup=2.2)
        fresh["acceptance"]["min_speedup"] = 1.0
        findings = gate.compare_forward(forward_digest(min_speedup=2.5),
                                        fresh)
        assert verdicts(findings)["acceptance.speedup"] is False

    def test_float32_tolerance_breach_fails(self):
        findings = gate.compare_forward(forward_digest(),
                                        forward_digest(rel32=5e-3))
        assert (verdicts(findings)["cases.serve.b1.float32_max_rel_err"]
                is False)

    def test_dropped_case_fails(self):
        fresh = forward_digest()
        fresh["cases"] = {}
        findings = gate.compare_forward(forward_digest(), fresh)
        assert verdicts(findings)["cases.serve.b1"] is False

    def test_wall_clock_never_gated(self):
        fresh = forward_digest()
        fresh["cases"]["serve.b1"]["tensor_ms"] = 1e6
        fresh["cases"]["serve.b1"]["compiled_ms"] = 1e6
        findings = gate.compare_forward(forward_digest(), fresh)
        info = {f["metric"] for f in findings if not f["gated"]}
        assert "cases.serve.b1.speedup" in info


class TestRender:
    def test_render_marks_failures(self):
        findings = gate.compare(digest(), digest(sim_rps=1000.0))
        table = gate.render(findings)
        assert "FAIL" in table and "info" in table

    def test_render_titles_benches(self):
        table = gate.render(gate.compare(digest(), digest()), title="serve")
        assert table.startswith("== serve ==")


class TestMainEntry:
    def test_missing_baseline_errors(self, tmp_path, capsys):
        code = gate.main(["--baseline", str(tmp_path / "nope.json")])
        assert code == 2
        assert "no committed baseline" in capsys.readouterr().err

    def test_missing_kernels_baseline_errors(self, tmp_path, capsys):
        code = gate.main(["--bench", "kernels",
                          "--kernels-baseline", str(tmp_path / "nope.json")])
        assert code == 2
        assert "no committed baseline" in capsys.readouterr().err

    @pytest.mark.slow
    def test_end_to_end_pass_and_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        fresh = {name: tmp_path / f"{name}_fresh.json"
                 for name in ("serve", "kernels", "stream", "table",
                              "table2", "forward")}
        code = gate.main([
            "--output", str(out),
            "--fresh-output", str(fresh["serve"]),
            "--kernels-fresh-output", str(fresh["kernels"]),
            "--stream-fresh-output", str(fresh["stream"]),
            "--table-fresh-output", str(fresh["table"]),
            "--table2-fresh-output", str(fresh["table2"]),
            "--forward-fresh-output", str(fresh["forward"])])
        assert code == 0
        assert out.exists()
        # no hidden write into the repo tree
        assert all(path.exists() for path in fresh.values())
        report = json.loads(out.read_text())
        assert set(report["benches"]) == {"serve", "kernels", "stream",
                                          "table", "table2", "forward"}
        assert report["ok"] is True
        assert "no bench regression detected" in capsys.readouterr().out
