"""Unit tests for the CI multi-bench regression gate's comparison logic."""

import importlib.util
import json
import pathlib

import pytest

SCRIPT = (pathlib.Path(__file__).resolve().parent.parent
          / "scripts" / "check_bench_regression.py")
spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def digest(sim_rps=4000.0, p95=6.0, sharded_rps=5000.0, sharded_p95=5.0,
           err=0.0):
    return {
        "requests": 96,
        "batch_size": 8,
        "sim_throughput_rps": sim_rps,
        "p95_latency_ms": p95,
        "baseline_throughput_rps": 500.0,
        "batched_throughput_rps": 3500.0,
        "speedup": 7.0,
        "max_batch_vs_single_error": err,
        "max_cross_engine_error": err,
        "sharded": {
            "devices": 4,
            "policy": "least-loaded",
            "sim_rps_sharded": sharded_rps,
            "p95_latency_ms": sharded_p95,
            "scaling": 2.8,
            "max_verify_error": err,
        },
    }


def kernels_digest(err=0.0, macs=131072, speedup=11.0, min_speedup=5.0):
    return {
        "seed": 0,
        "repeats": 5,
        "smoke": False,
        "cases": {
            "ffn-256x256-s75": {
                "shape": [256, 256],
                "op_counters": {
                    "pattern": {"macs": macs, "index_ops": 12,
                                "overhead_ops": 4096,
                                "weighted_total": macs + 24 + 4096},
                },
                "wall_ms": {"pattern": 2.0},
                "max_abs_err": {"pattern": err, "pattern_vs_loop": err},
            },
        },
        "acceptance": {"case": "ffn-256x256-s75", "min_speedup": min_speedup,
                       "speedup": speedup, "ok": speedup >= min_speedup},
    }


def verdicts(findings):
    return {f["metric"]: f["ok"] for f in findings if f["gated"]}


class TestCompare:
    def test_identical_digests_pass(self):
        findings = gate.compare(digest(), digest())
        assert all(verdicts(findings).values())

    def test_throughput_drop_beyond_tolerance_fails(self):
        findings = gate.compare(digest(), digest(sim_rps=4000.0 * 0.80))
        assert verdicts(findings)["sim_throughput_rps"] is False

    def test_throughput_drop_within_tolerance_passes(self):
        findings = gate.compare(digest(), digest(sim_rps=4000.0 * 0.90))
        assert verdicts(findings)["sim_throughput_rps"] is True

    def test_p95_rise_beyond_tolerance_fails(self):
        findings = gate.compare(digest(), digest(p95=6.0 * 1.25))
        assert verdicts(findings)["p95_latency_ms"] is False

    def test_sharded_metrics_gated_too(self):
        findings = gate.compare(
            digest(), digest(sharded_rps=5000.0 * 0.5, sharded_p95=5.0 * 2))
        got = verdicts(findings)
        assert got["sharded.sim_rps_sharded"] is False
        assert got["sharded.p95_latency_ms"] is False

    def test_exactness_always_gated(self):
        findings = gate.compare(digest(), digest(err=1e-6))
        got = verdicts(findings)
        assert got["max_batch_vs_single_error"] is False
        assert got["sharded.max_verify_error"] is False

    def test_custom_thresholds(self):
        fresh = digest(sim_rps=4000.0 * 0.90)
        strict = gate.compare(digest(), fresh, max_throughput_drop=0.05)
        assert verdicts(strict)["sim_throughput_rps"] is False

    def test_metric_missing_from_baseline_is_skipped(self):
        base = digest()
        del base["sharded"]
        findings = gate.compare(base, digest())
        got = {f["metric"]: f for f in findings}
        assert got["sharded.sim_rps_sharded"]["ok"] is True
        assert "absent from baseline" in got["sharded.sim_rps_sharded"]["note"]

    def test_metric_missing_from_fresh_run_fails(self):
        fresh = digest()
        del fresh["sim_throughput_rps"]
        findings = gate.compare(digest(), fresh)
        assert verdicts(findings)["sim_throughput_rps"] is False

    def test_wall_clock_metrics_never_gated(self):
        fresh = digest()
        fresh["batched_throughput_rps"] = 1.0  # collapses, but runner-dependent
        fresh["speedup"] = 0.01
        findings = gate.compare(digest(), fresh)
        assert all(verdicts(findings).values())
        info = {f["metric"] for f in findings if not f["gated"]}
        assert {"speedup", "batched_throughput_rps"} <= info


class TestCompareKernels:
    def test_identical_digests_pass(self):
        findings = gate.compare_kernels(kernels_digest(), kernels_digest())
        assert all(verdicts(findings).values())

    def test_exactness_breach_fails(self):
        findings = gate.compare_kernels(kernels_digest(), kernels_digest(err=1e-6))
        got = verdicts(findings)
        assert got["cases.ffn-256x256-s75.max_abs_err.pattern"] is False
        assert got["cases.ffn-256x256-s75.max_abs_err.pattern_vs_loop"] is False

    def test_op_counter_drift_fails(self):
        # op counts are deterministic: any change is a behavioural change
        findings = gate.compare_kernels(kernels_digest(),
                                        kernels_digest(macs=131073))
        got = verdicts(findings)
        assert got["cases.ffn-256x256-s75.op_counters.pattern.macs"] is False

    def test_speedup_below_floor_fails(self):
        findings = gate.compare_kernels(kernels_digest(),
                                        kernels_digest(speedup=3.0))
        assert verdicts(findings)["acceptance.speedup"] is False

    def test_speedup_above_floor_passes(self):
        findings = gate.compare_kernels(kernels_digest(),
                                        kernels_digest(speedup=5.5))
        assert verdicts(findings)["acceptance.speedup"] is True

    def test_dropped_case_fails(self):
        # removing a gated case from the bench must not silently pass
        fresh = kernels_digest()
        del fresh["cases"]["ffn-256x256-s75"]
        findings = gate.compare_kernels(kernels_digest(), fresh)
        missing = [f for f in findings if f["gated"] and not f["ok"]]
        assert missing
        assert any("missing from fresh run" in f["note"] for f in missing)

    def test_dropped_kernel_fails(self):
        fresh = kernels_digest()
        del fresh["cases"]["ffn-256x256-s75"]["op_counters"]["pattern"]
        findings = gate.compare_kernels(kernels_digest(), fresh)
        got = {f["metric"]: f for f in findings if f["gated"]}
        key = "cases.ffn-256x256-s75.op_counters.pattern"
        assert got[key]["ok"] is False

    def test_baseline_speedup_floor_is_authoritative(self):
        # the bench cannot lower its own gate by editing its threshold
        fresh = kernels_digest(speedup=3.0, min_speedup=1.0)
        fresh["acceptance"]["ok"] = True
        findings = gate.compare_kernels(kernels_digest(min_speedup=5.0), fresh)
        assert verdicts(findings)["acceptance.speedup"] is False

    def test_floor_falls_back_to_fresh_for_old_baselines(self):
        base = kernels_digest()
        del base["acceptance"]
        findings = gate.compare_kernels(base, kernels_digest(speedup=6.0))
        assert verdicts(findings)["acceptance.speedup"] is True

    def test_counter_missing_from_baseline_is_skipped(self):
        base = kernels_digest()
        del base["cases"]["ffn-256x256-s75"]["op_counters"]["pattern"]["macs"]
        findings = gate.compare_kernels(base, kernels_digest())
        got = {f["metric"]: f for f in findings}
        key = "cases.ffn-256x256-s75.op_counters.pattern.macs"
        assert got[key]["ok"] is True
        assert "absent from baseline" in got[key]["note"]

    def test_wall_clock_never_gated(self):
        fresh = kernels_digest()
        fresh["cases"]["ffn-256x256-s75"]["wall_ms"]["pattern"] = 1e6
        findings = gate.compare_kernels(kernels_digest(), fresh)
        assert all(verdicts(findings).values())
        info = {f["metric"] for f in findings if not f["gated"]}
        assert "cases.ffn-256x256-s75.wall_ms.pattern" in info


def stream_digest(err=0.0, mono=True, batches=(1.0, 3.4, 8.0),
                  efficiency=(1300.0, 1400.0, 1460.0),
                  p50=(2.1, 5.7, 9.2)):
    return {
        "requests": 64,
        "seed": 0,
        "windows_ms": [0.0, 4.0, 50.0],
        "max_oracle_err": err,
        "monotonic": {"mean_batch_size": mono,
                      "service_throughput_rps": mono,
                      "p50_latency_ms": mono},
        "sweep": [
            {"max_wait_ms": w, "mean_batch_size": b,
             "service_throughput_rps": e, "p50_latency_ms": p}
            for w, b, e, p in zip([0.0, 4.0, 50.0], batches, efficiency, p50)],
        "tradeoff": {"efficiency_gain": efficiency[-1] / efficiency[0],
                     "p50_increase_ms": p50[-1] - p50[0],
                     "batch_growth": batches[-1] / batches[0]},
    }


def table_digest(power_scale=1.0, names=("l1", "l6")):
    return {
        "table": "table1_dvfs",
        "levels": [{"name": n, "freq_mhz": 400.0 if n == "l1" else 1400.0,
                    "voltage_mv": 916.25 if n == "l1" else 1240.0,
                    "power_w": power_scale * (0.07 if n == "l1" else 0.44)}
                   for n in names],
        "governor": {"lookups": 1000, "wall_ms": 0.5,
                     "thresholds": [0.15, 0.40]},
    }


class TestCompareStream:
    def test_identical_digests_pass(self):
        findings = gate.compare_stream(stream_digest(), stream_digest())
        assert all(verdicts(findings).values())

    def test_oracle_exactness_breach_fails(self):
        findings = gate.compare_stream(stream_digest(),
                                       stream_digest(err=1e-6))
        assert verdicts(findings)["max_oracle_err"] is False

    def test_lost_monotonicity_fails(self):
        findings = gate.compare_stream(stream_digest(),
                                       stream_digest(mono=False))
        got = verdicts(findings)
        assert got["monotonic.mean_batch_size"] is False
        assert got["monotonic.p50_latency_ms"] is False

    def test_batch_size_drift_fails(self):
        findings = gate.compare_stream(
            stream_digest(), stream_digest(batches=(1.0, 4.0, 8.0)))
        assert verdicts(findings)["sweep[1].mean_batch_size"] is False

    def test_endpoint_efficiency_drop_fails(self):
        findings = gate.compare_stream(
            stream_digest(),
            stream_digest(efficiency=(1300.0, 1400.0, 1460.0 * 0.5)))
        assert verdicts(findings)["sweep[-1].service_throughput_rps"] is False

    def test_endpoint_p50_rise_fails(self):
        findings = gate.compare_stream(
            stream_digest(), stream_digest(p50=(2.1, 5.7, 9.2 * 2.0)))
        assert verdicts(findings)["sweep[-1].p50_latency_ms"] is False

    def test_drift_within_tolerance_passes(self):
        findings = gate.compare_stream(
            stream_digest(),
            stream_digest(efficiency=(1300.0, 1400.0, 1460.0 * 0.9)))
        assert verdicts(findings)["sweep[-1].service_throughput_rps"] is True


class TestCompareTable:
    def test_identical_digests_pass(self):
        findings = gate.compare_table(table_digest(), table_digest())
        assert all(verdicts(findings).values())

    def test_row_drift_fails(self):
        findings = gate.compare_table(table_digest(),
                                      table_digest(names=("l1", "l5")))
        assert verdicts(findings)["levels.row_set"] is False

    def test_power_drift_beyond_one_percent_fails(self):
        findings = gate.compare_table(table_digest(),
                                      table_digest(power_scale=1.02))
        got = verdicts(findings)
        assert got["levels.l1.power_w"] is False
        assert got["levels.l6.power_w"] is False

    def test_power_drift_within_budget_passes(self):
        findings = gate.compare_table(table_digest(),
                                      table_digest(power_scale=1.005))
        assert all(verdicts(findings).values())

    def test_wall_clock_never_gated(self):
        fresh = table_digest()
        fresh["governor"]["wall_ms"] = 1e6
        findings = gate.compare_table(table_digest(), fresh)
        assert all(verdicts(findings).values())
        info = {f["metric"] for f in findings if not f["gated"]}
        assert "governor.wall_ms" in info


def table2_digest(e3=2.5e6, meets=True):
    rows = [{"experiment": "E1", "level": "l6", "latency_ms": 114.7,
             "meets_deadline": True},
            {"experiment": "E3", "level": "l3", "latency_ms": 114.0,
             "meets_deadline": meets}]
    return {
        "table": "table2_reconfig",
        "deadline_ms": 115.0,
        "rows": rows,
        "total_runs": {"E1": 1.53e6, "E2": 1.78e6, "E3": e3},
        "improvement": {"E2_vs_E1": 1.164, "E3_vs_E1": e3 / 1.53e6},
        "wall_ms": 0.2,
    }


class TestCompareTable2:
    def test_identical_digests_pass(self):
        findings = gate.compare_table2(table2_digest(), table2_digest())
        assert all(verdicts(findings).values())

    def test_row_verdict_drift_fails(self):
        findings = gate.compare_table2(table2_digest(),
                                       table2_digest(meets=False))
        assert verdicts(findings)["rows.row_set"] is False

    def test_run_total_drift_fails(self):
        findings = gate.compare_table2(table2_digest(),
                                       table2_digest(e3=2.6e6))
        assert verdicts(findings)["total_runs.E3"] is False

    def test_wall_clock_never_gated(self):
        fresh = table2_digest()
        fresh["wall_ms"] = 1e6
        findings = gate.compare_table2(table2_digest(), fresh)
        assert all(verdicts(findings).values())
        info = {f["metric"] for f in findings if not f["gated"]}
        assert "wall_ms" in info


def forward_digest(err=0.0, nodes=238, allocs=0, speedup=3.5,
                   min_speedup=2.0, rel32=2e-7):
    return {
        "bench": "forward",
        "smoke": False,
        "seed": 0,
        "repeats": 5,
        "cases": {
            "serve.b1": {
                "model": "TransformerLM", "batch": 1, "seq_len": 12,
                "tensor_ms": 1.4, "compiled_ms": 1.4 / speedup,
                "speedup": speedup, "max_abs_err": err,
                "exact": err == 0.0, "tensor_nodes": nodes,
                "compiled_steady_allocs": allocs,
                "compiled_warm_allocs": 14,
                "float32_max_rel_err": rel32,
            },
        },
        "acceptance": {"case": "serve.b1", "speedup": speedup,
                       "min_speedup": min_speedup, "exact": err == 0.0,
                       "float32_tol": 1e-3},
    }


class TestCompareForward:
    def test_identical_digests_pass(self):
        findings = gate.compare_forward(forward_digest(), forward_digest())
        assert all(verdicts(findings).values())

    def test_any_exactness_breach_fails(self):
        # bit-exactness: even a 1e-16 deviation is a gate failure
        findings = gate.compare_forward(forward_digest(),
                                        forward_digest(err=1e-16))
        assert verdicts(findings)["cases.serve.b1.max_abs_err"] is False

    def test_node_count_drift_fails(self):
        findings = gate.compare_forward(forward_digest(),
                                        forward_digest(nodes=239))
        assert verdicts(findings)["cases.serve.b1.tensor_nodes"] is False

    def test_steady_alloc_drift_fails(self):
        findings = gate.compare_forward(forward_digest(),
                                        forward_digest(allocs=3))
        assert (verdicts(findings)["cases.serve.b1.compiled_steady_allocs"]
                is False)

    def test_speedup_below_floor_fails(self):
        findings = gate.compare_forward(forward_digest(),
                                        forward_digest(speedup=1.5))
        assert verdicts(findings)["acceptance.speedup"] is False

    def test_baseline_floor_is_authoritative(self):
        # a fresh run cannot lower the gate by shipping a smaller floor
        fresh = forward_digest(speedup=2.2)
        fresh["acceptance"]["min_speedup"] = 1.0
        findings = gate.compare_forward(forward_digest(min_speedup=2.5),
                                        fresh)
        assert verdicts(findings)["acceptance.speedup"] is False

    def test_float32_tolerance_breach_fails(self):
        findings = gate.compare_forward(forward_digest(),
                                        forward_digest(rel32=5e-3))
        assert (verdicts(findings)["cases.serve.b1.float32_max_rel_err"]
                is False)

    def test_dropped_case_fails(self):
        fresh = forward_digest()
        fresh["cases"] = {}
        findings = gate.compare_forward(forward_digest(), fresh)
        assert verdicts(findings)["cases.serve.b1"] is False

    def test_wall_clock_never_gated(self):
        fresh = forward_digest()
        fresh["cases"]["serve.b1"]["tensor_ms"] = 1e6
        fresh["cases"]["serve.b1"]["compiled_ms"] = 1e6
        findings = gate.compare_forward(forward_digest(), fresh)
        info = {f["metric"] for f in findings if not f["gated"]}
        assert "cases.serve.b1.speedup" in info


def generate_digest(exact=True, err=0.0, ragged=True, speedup=2.6,
                    min_speedup=2.0):
    return {
        "bench": "generate",
        "smoke": False,
        "seed": 0,
        "repeats": 5,
        "cases": {
            "serve.dense": {
                "prompt_len": 5, "new_tokens": 10, "kv_capable": True,
                "eager_tok_ms": 1.1, "compiled_tok_ms": 1.1 / speedup,
                "speedup": speedup, "exact": exact,
                "max_abs_err": err, "ragged_exact": ragged,
            },
        },
        "batching": {"streams": 8, "new_tokens_per_stream": 10,
                     "batched_tok_ms": 0.13, "eager_tok_ms": 1.2,
                     "speedup": 9.2},
        "acceptance": {"case": "serve.dense", "speedup": speedup,
                       "min_speedup": min_speedup, "exact": exact,
                       "ragged_exact": ragged},
    }


class TestCompareGenerate:
    def test_identical_digests_pass(self):
        findings = gate.compare_generate(generate_digest(), generate_digest())
        assert all(verdicts(findings).values())

    def test_exactness_breach_fails(self):
        findings = gate.compare_generate(generate_digest(),
                                         generate_digest(exact=False))
        assert verdicts(findings)["cases.serve.dense.exact"] is False

    def test_logprob_err_breach_fails(self):
        # bit-exactness: even a 1e-16 logprob deviation is a gate failure
        findings = gate.compare_generate(generate_digest(),
                                         generate_digest(err=1e-16))
        assert verdicts(findings)["cases.serve.dense.max_abs_err"] is False

    def test_ragged_schedule_breach_fails(self):
        findings = gate.compare_generate(generate_digest(),
                                         generate_digest(ragged=False))
        assert verdicts(findings)["cases.serve.dense.ragged_exact"] is False

    def test_speedup_below_floor_fails(self):
        findings = gate.compare_generate(generate_digest(),
                                         generate_digest(speedup=1.4))
        assert verdicts(findings)["acceptance.speedup"] is False

    def test_baseline_floor_is_authoritative(self):
        # a fresh run cannot lower the gate by shipping a smaller floor
        fresh = generate_digest(speedup=2.2)
        fresh["acceptance"]["min_speedup"] = 1.0
        findings = gate.compare_generate(generate_digest(min_speedup=2.5),
                                         fresh)
        assert verdicts(findings)["acceptance.speedup"] is False

    def test_dropped_case_fails(self):
        fresh = generate_digest()
        fresh["cases"] = {}
        findings = gate.compare_generate(generate_digest(), fresh)
        assert verdicts(findings)["cases.serve.dense"] is False

    def test_wall_clock_never_gated(self):
        fresh = generate_digest(speedup=0.01)
        fresh["acceptance"]["speedup"] = 2.6  # per-case speedups are info
        fresh["batching"]["speedup"] = 0.01
        findings = gate.compare_generate(generate_digest(), fresh)
        info = {f["metric"] for f in findings if not f["gated"]}
        assert "cases.serve.dense.speedup" in info
        assert "batching.speedup" in info
        assert all(verdicts(findings).values())


def _fault_policy(shed=24, completed=72, conserved=True, exact=True,
                  degraded=0, requeued=1, retried=1, lag=0.9):
    return {
        "submitted": 96, "completed": completed, "shed": shed,
        "shed_rate": shed / 96.0, "shed_reasons": {"deadline": shed},
        "conserved": float(conserved), "exact": float(exact),
        "degraded": degraded, "failures": 1, "recoveries": 1,
        "requeued_batches": requeued, "retried_batches": retried,
        "retry_penalty_ms": 5.18, "recovery_lag_s": lag,
        "p95_latency_ms": 13.9, "sim_makespan_s": 5.6,
    }


def faults_digest(reject_shed=24, degrade_shed=0, conserved=True, exact=True,
                  lag=0.9, lag_budget=1.24, reject_ceiling=0.35,
                  degrade_ceiling=0.05):
    return {
        "scenario": "bursty", "requests": 96, "devices": 4, "seed": 0,
        "fault": {"shard": 1, "at_s": 0.5, "down_s": 1.65,
                  "down_fraction": 0.3, "span_s": 5.5},
        "policies": {
            "reject": _fault_policy(shed=reject_shed,
                                    completed=96 - reject_shed,
                                    conserved=conserved, exact=exact,
                                    lag=lag),
            "degrade": _fault_policy(shed=degrade_shed,
                                     completed=96 - degrade_shed,
                                     conserved=conserved, exact=exact,
                                     degraded=24, lag=lag),
        },
        "separation": {"reject_shed": reject_shed,
                       "degrade_shed": degrade_shed,
                       "strict": float(degrade_shed < reject_shed)},
        "acceptance": {"reject_shed_rate_ceiling": reject_ceiling,
                       "degrade_shed_rate_ceiling": degrade_ceiling,
                       "recovery_lag_budget_s": lag_budget},
        "wall_s": 0.1,
    }


class TestCompareFaults:
    def test_identical_digests_pass(self):
        findings = gate.compare_faults(faults_digest(), faults_digest())
        assert all(verdicts(findings).values())

    def test_conservation_breach_fails(self):
        findings = gate.compare_faults(faults_digest(),
                                       faults_digest(conserved=False))
        v = verdicts(findings)
        assert v["policies.reject.conserved"] is False
        assert v["policies.degrade.conserved"] is False

    def test_exactness_breach_fails(self):
        findings = gate.compare_faults(faults_digest(),
                                       faults_digest(exact=False))
        assert verdicts(findings)["policies.reject.exact"] is False

    def test_shed_count_drift_fails(self):
        # deterministic simulation: even one extra shed request fails
        findings = gate.compare_faults(faults_digest(),
                                       faults_digest(reject_shed=25))
        assert verdicts(findings)["policies.reject.shed"] is False

    def test_lost_strict_separation_fails(self):
        findings = gate.compare_faults(
            faults_digest(), faults_digest(reject_shed=24, degrade_shed=24))
        assert verdicts(findings)["separation.strict"] is False

    def test_missing_policy_fails(self):
        fresh = faults_digest()
        del fresh["policies"]["degrade"]
        findings = gate.compare_faults(faults_digest(), fresh)
        assert verdicts(findings)["policies.degrade"] is False

    def test_recovery_lag_over_budget_fails(self):
        findings = gate.compare_faults(faults_digest(),
                                       faults_digest(lag=1.5))
        assert verdicts(findings)["policies.reject.recovery_lag_s"] is False

    def test_baseline_budgets_are_authoritative(self):
        # a fresh run cannot widen the gate by shipping looser budgets
        fresh = faults_digest(lag=1.5, lag_budget=2.0)
        findings = gate.compare_faults(faults_digest(), fresh)
        assert verdicts(findings)["policies.reject.recovery_lag_s"] is False

    def test_penalty_and_latency_never_gated(self):
        fresh = faults_digest()
        fresh["policies"]["reject"]["retry_penalty_ms"] = 99.0
        fresh["policies"]["reject"]["p95_latency_ms"] = 99.0
        findings = gate.compare_faults(faults_digest(), fresh)
        info = {f["metric"] for f in findings if not f["gated"]}
        assert "policies.reject.retry_penalty_ms" in info
        assert "policies.reject.p95_latency_ms" in info
        assert all(verdicts(findings).values())


def _preempt_arm(completed=55, shed=45, cancelled=2, preemptions=12,
                 victim_misses=0, conserved=True, exact=True,
                 starved=(), hot_shed_rate=0.47):
    return {
        "submitted": 102, "completed": completed, "shed": shed,
        "shed_reasons": {"queue_full": shed}, "cancelled": cancelled,
        "cancel_where": ["inflight", "inflight"],
        "preemptions": preemptions, "requeued_batches": 0,
        "retried_batches": preemptions, "retry_penalty_ms": 140.0,
        "conserved": float(conserved), "exact": float(exact),
        "starved_tenants": list(starved),
        "tenants": {}, "victim_slo_misses": victim_misses,
        "hot_slo_misses": shed, "hot_shed_rate": hot_shed_rate,
        "victim_p95_latency_ms": 1.0, "p95_latency_ms": 8.0,
        "sim_makespan_s": 0.02,
    }


def preempt_digest(fifo_misses=6, preempt_misses=0, conserved=True,
                   exact=True, preemptions=12, cancelled=2, starved=(),
                   hot_shed_rate=0.47, miss_floor=1, miss_ceiling=0,
                   shed_ceiling=0.75):
    return {
        "scenario": "hot-tenant head-of-line", "requests": 102,
        "devices": 1, "seed": 0, "cancels": 2,
        "policies": {
            "fifo": _preempt_arm(completed=38, shed=62, preemptions=0,
                                 victim_misses=fifo_misses,
                                 conserved=conserved, exact=exact,
                                 cancelled=cancelled,
                                 hot_shed_rate=hot_shed_rate),
            "preempt": _preempt_arm(victim_misses=preempt_misses,
                                    conserved=conserved, exact=exact,
                                    preemptions=preemptions,
                                    cancelled=cancelled, starved=starved,
                                    hot_shed_rate=hot_shed_rate),
        },
        "separation": {"fifo_victim_misses": fifo_misses,
                       "preempt_victim_misses": preempt_misses,
                       "strict": float(preempt_misses < fifo_misses)},
        "acceptance": {"fifo_victim_miss_floor": miss_floor,
                       "preempt_victim_miss_ceiling": miss_ceiling,
                       "hot_shed_rate_ceiling": shed_ceiling},
        "wall_s": 0.1,
    }


class TestComparePreempt:
    def test_identical_digests_pass(self):
        findings = gate.compare_preempt(preempt_digest(), preempt_digest())
        assert all(verdicts(findings).values())

    def test_conservation_breach_fails(self):
        findings = gate.compare_preempt(preempt_digest(),
                                        preempt_digest(conserved=False))
        v = verdicts(findings)
        assert v["policies.fifo.conserved"] is False
        assert v["policies.preempt.conserved"] is False

    def test_exactness_breach_fails(self):
        findings = gate.compare_preempt(preempt_digest(),
                                        preempt_digest(exact=False))
        assert verdicts(findings)["policies.preempt.exact"] is False

    def test_counter_drift_fails(self):
        # deterministic simulation: even one extra preemption fails
        findings = gate.compare_preempt(preempt_digest(),
                                        preempt_digest(preemptions=13))
        assert verdicts(findings)["policies.preempt.preemptions"] is False

    def test_cancel_count_drift_fails(self):
        findings = gate.compare_preempt(preempt_digest(),
                                        preempt_digest(cancelled=1))
        assert verdicts(findings)["policies.fifo.cancelled"] is False

    def test_lost_strict_separation_fails(self):
        findings = gate.compare_preempt(
            preempt_digest(),
            preempt_digest(fifo_misses=6, preempt_misses=6))
        assert verdicts(findings)["separation.strict"] is False

    def test_starved_tenant_fails(self):
        findings = gate.compare_preempt(
            preempt_digest(), preempt_digest(starved=("victim",)))
        assert (verdicts(findings)["policies.preempt.starved_tenants"]
                is False)

    def test_missing_arm_fails(self):
        fresh = preempt_digest()
        del fresh["policies"]["preempt"]
        findings = gate.compare_preempt(preempt_digest(), fresh)
        assert verdicts(findings)["policies.preempt"] is False

    def test_hot_shed_rate_over_budget_fails(self):
        findings = gate.compare_preempt(preempt_digest(),
                                        preempt_digest(hot_shed_rate=0.9))
        assert verdicts(findings)["policies.fifo.hot_shed_rate"] is False

    def test_baseline_budgets_are_authoritative(self):
        # a fresh run cannot widen the gate by shipping looser budgets
        fresh = preempt_digest(hot_shed_rate=0.9, shed_ceiling=0.95)
        findings = gate.compare_preempt(preempt_digest(), fresh)
        assert verdicts(findings)["policies.fifo.hot_shed_rate"] is False

    def test_preempt_ceiling_gates_fresh_misses(self):
        # the fresh preempt arm drifting to 1 victim miss fails both the
        # exact counter and the committed ceiling
        fresh = preempt_digest(preempt_misses=1)
        v = verdicts(gate.compare_preempt(preempt_digest(), fresh))
        assert v["policies.preempt.victim_slo_misses"] is False
        assert v["policies.preempt.victim_miss_ceiling"] is False

    def test_penalty_and_latency_never_gated(self):
        fresh = preempt_digest()
        fresh["policies"]["preempt"]["retry_penalty_ms"] = 99.0
        fresh["policies"]["preempt"]["victim_p95_latency_ms"] = 99.0
        findings = gate.compare_preempt(preempt_digest(), fresh)
        info = {f["metric"] for f in findings if not f["gated"]}
        assert "policies.preempt.retry_penalty_ms" in info
        assert "policies.preempt.victim_p95_latency_ms" in info
        assert all(verdicts(findings).values())


def fig3_digest(best_aw=0.62, best_reward=0.55, front=None, feasible=6,
                l3=0.3):
    front = front if front is not None else [[0.58, 1.2e6], [0.62, 9.5e5]]
    return {
        "bench": "fig3_pareto",
        "seed": 0, "episodes": 6, "pretrain_epochs": 6,
        "searches": {
            "loose-104ms": {
                "deadline_ms": 104.0,
                "num_episodes": 6,
                "num_feasible": feasible,
                "feasible_points": front,
                "pareto_front": front,
                "best_weighted_accuracy": best_aw,
                "best_reward": best_reward,
                "heuristic_weighted_accuracy": 0.55,
                "original_accuracy": 0.66,
                "backbone_accuracy": 0.64,
                "min_sparsity": {"l3": l3, "l4": 0.4, "l6": 0.6},
            },
        },
        "wall_s": 12.0,
    }


class TestCompareFig3:
    def test_identical_digests_pass(self):
        findings = gate.compare_fig3(fig3_digest(), fig3_digest())
        assert all(verdicts(findings).values())

    def test_dropped_pareto_point_fails(self):
        # the replayed front no longer reaches the second committed point
        fresh = fig3_digest(front=[[0.58, 1.2e6]])
        findings = gate.compare_fig3(fig3_digest(), fresh)
        assert verdicts(findings)["searches.loose-104ms.pareto[1]"] is False

    def test_dominating_front_passes(self):
        fresh = fig3_digest(front=[[0.60, 1.3e6], [0.64, 9.6e5]])
        findings = gate.compare_fig3(fig3_digest(), fresh)
        assert all(v for k, v in verdicts(findings).items() if "pareto" in k)

    def test_accuracy_regression_beyond_budget_fails(self):
        findings = gate.compare_fig3(fig3_digest(), fig3_digest(best_aw=0.55))
        got = verdicts(findings)
        assert got["searches.loose-104ms.best_weighted_accuracy"] is False

    def test_accuracy_drift_within_budget_passes(self):
        findings = gate.compare_fig3(fig3_digest(), fig3_digest(best_aw=0.61))
        got = verdicts(findings)
        assert got["searches.loose-104ms.best_weighted_accuracy"] is True

    def test_lost_feasible_points_fail(self):
        findings = gate.compare_fig3(fig3_digest(), fig3_digest(feasible=4))
        assert verdicts(findings)["searches.loose-104ms.num_feasible"] is False

    def test_sparsity_grid_drift_fails(self):
        findings = gate.compare_fig3(fig3_digest(), fig3_digest(l3=0.25))
        got = verdicts(findings)
        assert got["searches.loose-104ms.min_sparsity.l3"] is False

    def test_missing_search_fails(self):
        fresh = fig3_digest()
        fresh["searches"] = {}
        findings = gate.compare_fig3(fig3_digest(), fresh)
        assert verdicts(findings)["searches.loose-104ms"] is False

    def test_wall_clock_never_gated(self):
        fresh = fig3_digest()
        fresh["wall_s"] = 1e6
        findings = gate.compare_fig3(fig3_digest(), fresh)
        assert all(verdicts(findings).values())


def fig4_digest(sparsity=0.5625, digests=("a1b2", "c3d4", "e5f6"),
                shared=0.41):
    return {
        "bench": "fig4_patterns",
        "seed": 0, "pretrain_epochs": 2, "deadline_ms": 104.0,
        "levels": [{"level": "l3", "sparsity": sparsity, "num_patterns": 3,
                    "pattern_size": 12, "pattern_digests": list(digests)}],
        "overlap": {"pair": "l3-l6", "shared_kept": shared, "chance": 0.33},
        "wall_s": 3.0,
    }


class TestCompareFig4:
    def test_identical_digests_pass(self):
        findings = gate.compare_fig4(fig4_digest(), fig4_digest())
        assert all(verdicts(findings).values())

    def test_pattern_content_drift_fails(self):
        # same sparsity/counts but different searched patterns
        fresh = fig4_digest(digests=("a1b2", "c3d4", "ffff"))
        findings = gate.compare_fig4(fig4_digest(), fresh)
        assert verdicts(findings)["levels.row_set"] is False

    def test_sparsity_drift_fails(self):
        findings = gate.compare_fig4(fig4_digest(), fig4_digest(sparsity=0.5))
        assert verdicts(findings)["levels.row_set"] is False

    def test_overlap_drift_fails(self):
        findings = gate.compare_fig4(fig4_digest(), fig4_digest(shared=0.5))
        assert verdicts(findings)["overlap.shared_kept"] is False


def fig5_digest(pruned=0.55, mean_loss=0.02):
    rows = [{"task": "wikitext2", "rate": 0.3, "dense_score": 0.57,
             "pruned_score": pruned, "score_loss": round(0.57 - pruned, 9),
             "compression": 1.43}]
    return {"bench": "fig5_block_pruning", "tasks": ["wikitext2"],
            "pretrain_epochs": 6, "finetune_epochs": 3, "rows": rows,
            "mean_score_loss": mean_loss, "wall_s": 9.0}


class TestCompareFig5:
    def test_identical_digests_pass(self):
        findings = gate.compare_fig5(fig5_digest(), fig5_digest())
        assert all(verdicts(findings).values())

    def test_score_drift_fails(self):
        findings = gate.compare_fig5(fig5_digest(), fig5_digest(pruned=0.54))
        assert verdicts(findings)["rows.row_set"] is False

    def test_mean_loss_drift_fails(self):
        findings = gate.compare_fig5(fig5_digest(),
                                     fig5_digest(mean_loss=0.03))
        assert verdicts(findings)["mean_score_loss"] is False

    def test_wall_clock_never_gated(self):
        fresh = fig5_digest()
        fresh["wall_s"] = 1e6
        findings = gate.compare_fig5(fig5_digest(), fresh)
        assert all(verdicts(findings).values())
        info = {f["metric"] for f in findings if not f["gated"]}
        assert "wall_s" in info


def table3_digest(best_reward=0.52, rt3=0.60, meets=True, speedup=5200.0,
                  switch_ms=8.75, floor=1000.0, episodes=4):
    trajectory = [None, 0.4] + [best_reward] * (episodes - 2)
    return {
        "bench": "table3_automl", "seed": 0, "episodes": episodes,
        "experiments": {
            "WikiText-2 (T:104ms)": {
                "deadline_ms": 104.0,
                "levels": [{"level": "l6", "sparsity": 0.56,
                            "latency_ms": 95.2, "ub_score": 0.62,
                            "rt3_score": rt3, "meets_deadline": meets}],
                "best_reward": best_reward,
                "best_reward_trajectory": trajectory,
                "ub_reload_ms": speedup * switch_ms,
                "rt3_switch_ms": switch_ms,
                "switch_speedup": speedup,
            },
        },
        "min_switch_speedup": floor,
        "wall_s": 30.0,
    }


class TestCompareTable3:
    def test_identical_digests_pass(self):
        findings = gate.compare_table3(table3_digest(), table3_digest())
        assert all(verdicts(findings).values())

    def test_deadline_verdict_flip_fails(self):
        findings = gate.compare_table3(table3_digest(),
                                       table3_digest(meets=False))
        assert verdicts(findings)["verdicts.row_set"] is False

    def test_best_reward_regression_beyond_budget_fails(self):
        findings = gate.compare_table3(table3_digest(),
                                       table3_digest(best_reward=0.40))
        got = verdicts(findings)
        assert got["experiments.WikiText-2 (T:104ms).best_reward"] is False

    def test_best_reward_drift_within_budget_passes(self):
        findings = gate.compare_table3(table3_digest(),
                                       table3_digest(best_reward=0.48))
        got = verdicts(findings)
        assert got["experiments.WikiText-2 (T:104ms).best_reward"] is True

    def test_rt3_score_regression_fails(self):
        findings = gate.compare_table3(table3_digest(),
                                       table3_digest(rt3=0.50))
        got = verdicts(findings)
        key = "experiments.WikiText-2 (T:104ms).levels.l6.rt3_score"
        assert got[key] is False

    def test_switch_speedup_below_floor_fails(self):
        findings = gate.compare_table3(table3_digest(),
                                       table3_digest(speedup=800.0))
        got = verdicts(findings)
        assert got["experiments.WikiText-2 (T:104ms).switch_speedup"] is False

    def test_baseline_floor_is_authoritative(self):
        # a fresh run cannot lower the gate by shipping a smaller floor
        findings = gate.compare_table3(table3_digest(floor=2000.0),
                                       table3_digest(speedup=1500.0,
                                                     floor=1.0))
        got = verdicts(findings)
        assert got["experiments.WikiText-2 (T:104ms).switch_speedup"] is False

    def test_switch_cost_rise_beyond_budget_fails(self):
        findings = gate.compare_table3(
            table3_digest(), table3_digest(switch_ms=8.75 * 1.2,
                                           speedup=5200.0 / 1.2))
        got = verdicts(findings)
        assert got["experiments.WikiText-2 (T:104ms).rt3_switch_ms"] is False

    def test_shortened_trajectory_fails(self):
        findings = gate.compare_table3(table3_digest(),
                                       table3_digest(episodes=3))
        got = verdicts(findings)
        assert got["experiments.WikiText-2 (T:104ms).trajectory_len"] is False

    def test_missing_experiment_fails(self):
        fresh = table3_digest()
        fresh["experiments"] = {}
        findings = gate.compare_table3(table3_digest(), fresh)
        assert verdicts(findings)["experiments.WikiText-2 (T:104ms)"] is False


def table4_digest(rt3_impr=4.9):
    rows = [
        {"task": "wikitext2", "method": "No-Opt", "avg_sparsity": 0.0,
         "runs": 1.2e6, "improvement": 1.0, "avg_accuracy": 0.57,
         "accuracy_loss": 0.0},
        {"task": "wikitext2", "method": "RT3", "avg_sparsity": 0.55,
         "runs": 1.2e6 * rt3_impr, "improvement": rt3_impr,
         "avg_accuracy": 0.56, "accuracy_loss": 0.01},
    ]
    return {"bench": "table4_ablation", "tasks": ["wikitext2"],
            "episodes": {"wikitext2": 4}, "pretrain_epochs": 6,
            "finetune_epochs": 2, "rows": rows, "wall_s": 40.0}


class TestCompareTable4:
    def test_identical_digests_pass(self):
        findings = gate.compare_table4(table4_digest(), table4_digest())
        assert all(verdicts(findings).values())

    def test_perturbed_row_fails(self):
        findings = gate.compare_table4(table4_digest(),
                                       table4_digest(rt3_impr=4.5))
        assert verdicts(findings)["rows.row_set"] is False

    def test_wall_clock_never_gated(self):
        fresh = table4_digest()
        fresh["wall_s"] = 1e6
        findings = gate.compare_table4(table4_digest(), fresh)
        assert all(verdicts(findings).values())


def ablations_digest(reward=0.5, total_runs=2.1e6, acc=0.6):
    return {
        "bench": "design_ablations", "seed": 0, "episodes": 3,
        "pretrain_epochs": 3,
        "pattern_size": [{"psize": 10, "latency_ms": 98.1,
                          "overhead_cycles": 5.0e4}],
        "governor": [{"thresholds": [0.1, 0.3], "low_energy_fraction": 0.4,
                      "total_runs": total_runs}],
        "kernels": [{"kernel": "pattern", "macs": 131072, "index_ops": 12,
                     "weighted_total": 1.4e5}],
        "space_size": [{"theta": 1, "m": 1, "best_reward": reward,
                        "best_weighted_accuracy": acc}],
        "wall_s": 20.0,
    }


class TestCompareAblations:
    def test_identical_digests_pass(self):
        findings = gate.compare_ablations(ablations_digest(),
                                          ablations_digest())
        assert all(verdicts(findings).values())

    def test_governor_row_drift_fails(self):
        findings = gate.compare_ablations(ablations_digest(),
                                          ablations_digest(total_runs=2.2e6))
        assert verdicts(findings)["governor.row_set"] is False

    def test_reward_regression_beyond_budget_fails(self):
        findings = gate.compare_ablations(ablations_digest(),
                                          ablations_digest(reward=0.40))
        got = verdicts(findings)
        assert got["space_size.theta1_m1.best_reward"] is False

    def test_reward_drift_within_budget_passes(self):
        findings = gate.compare_ablations(ablations_digest(),
                                          ablations_digest(reward=0.46))
        assert all(verdicts(findings).values())

    def test_dropped_space_point_fails(self):
        fresh = ablations_digest()
        fresh["space_size"] = []
        findings = gate.compare_ablations(ablations_digest(), fresh)
        got = verdicts(findings)
        assert got["space_size.theta1_m1.best_reward"] is False


class TestRender:
    def test_render_marks_failures(self):
        findings = gate.compare(digest(), digest(sim_rps=1000.0))
        table = gate.render(findings)
        assert "FAIL" in table and "info" in table

    def test_render_titles_benches(self):
        table = gate.render(gate.compare(digest(), digest()), title="serve")
        assert table.startswith("== serve ==")


class TestMainEntry:
    def test_missing_baseline_errors(self, tmp_path, capsys):
        code = gate.main(["--baseline", str(tmp_path / "nope.json")])
        assert code == 2
        assert "no committed baseline" in capsys.readouterr().err

    def test_missing_kernels_baseline_errors(self, tmp_path, capsys):
        code = gate.main(["--bench", "kernels",
                          "--kernels-baseline", str(tmp_path / "nope.json")])
        assert code == 2
        assert "no committed baseline" in capsys.readouterr().err

    def test_every_bench_has_override_flags(self, capsys):
        with pytest.raises(SystemExit):
            gate.main(["--help"])
        helptext = capsys.readouterr().out
        for name in gate.BENCHES:
            assert f"--{name}-baseline" in helptext
            assert f"--{name}-fresh-output" in helptext
        # serve's historical short flags stay as aliases
        assert "--baseline" in helptext and "--fresh-output" in helptext

    def test_update_baseline_round_trip(self, tmp_path):
        # a stale baseline fails the gate, --update-baseline refreshes it
        # in place, and the refreshed file then passes
        committed = json.loads(gate.BENCHES["table"].baseline_path.read_text())
        committed["levels"][0]["power_w"] *= 2.0
        baseline = tmp_path / "BENCH_table.json"
        baseline.write_text(json.dumps(committed))
        fresh = tmp_path / "BENCH_table.fresh.json"
        argv = ["--bench", "table", "--table-baseline", str(baseline),
                "--table-fresh-output", str(fresh),
                "--output", str(tmp_path / "report.json")]
        assert gate.main(argv) == 1
        assert gate.main(argv + ["--update-baseline"]) == 0
        assert json.loads(baseline.read_text()) == json.loads(fresh.read_text())
        assert gate.main(argv) == 0

    @pytest.mark.slow
    def test_end_to_end_pass_and_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        argv = ["--output", str(out)]
        fresh = {}
        for name in gate.BENCHES:
            fresh[name] = tmp_path / f"{name}_fresh.json"
            argv += [f"--{name}-fresh-output", str(fresh[name])]
        code = gate.main(argv)
        assert code == 0
        assert out.exists()
        # no hidden write into the repo tree
        assert all(path.exists() for path in fresh.values())
        report = json.loads(out.read_text())
        assert set(report["benches"]) == set(gate.BENCHES)
        assert report["registry"] == list(gate.BENCHES)
        assert report["failures"] == 0
        assert report["ok"] is True
        assert "no bench regression detected" in capsys.readouterr().out
