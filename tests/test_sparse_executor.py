"""SparseExecutor: per-layer kernel audits and predictor cross-validation."""

import numpy as np
import pytest

from repro.core.block_pruning import BlockPruningConfig, apply_block_pruning
from repro.core.patterns import random_pattern_set
from repro.sparse import ModelAudit, SparseExecutor, compare_formats
from repro.sparse.kernels import OpCounter


@pytest.fixture()
def bp_model(tiny_transformer):
    apply_block_pruning(tiny_transformer, BlockPruningConfig(num_blocks=2, rate=0.5))
    return tiny_transformer


class TestExecutorValidation:
    def test_unknown_format(self):
        with pytest.raises(ValueError):
            SparseExecutor("csr")

    def test_pattern_needs_set(self):
        with pytest.raises(ValueError):
            SparseExecutor("pattern")

    def test_no_prunable_layers(self):
        from repro.nn.layers import Linear
        from repro.nn.module import Module

        class Tiny(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(2, 2)

        with pytest.raises(ValueError):
            SparseExecutor("dense").audit(Tiny())


class TestAudits:
    def test_dense_audit_counts_all_macs(self, tiny_transformer):
        audit = SparseExecutor("dense", batch=2).audit(tiny_transformer)
        expected = sum(l.shape[0] * l.shape[1] * 2 for l in audit.layers)
        assert audit.total.macs == expected
        assert audit.all_correct

    def test_block_audit_correct_and_cheaper(self, bp_model):
        dense = SparseExecutor("dense", batch=2).audit(bp_model)
        block = SparseExecutor("block", num_blocks=2, batch=2).audit(bp_model)
        assert block.all_correct
        assert block.total.macs < dense.total.macs
        assert block.overall_sparsity == pytest.approx(0.5, abs=0.05)

    def test_coo_audit_correct_but_index_heavy(self, bp_model):
        coo = SparseExecutor("coo", batch=2).audit(bp_model)
        block = SparseExecutor("block", num_blocks=2, batch=2).audit(bp_model)
        assert coo.all_correct
        assert coo.total.macs == block.total.macs
        assert coo.total.index_ops > 10 * block.total.index_ops

    def test_pattern_audit_applies_set(self, bp_model):
        ps = random_pattern_set(8, 0.5, 3, np.random.default_rng(0))
        audit = SparseExecutor("pattern", pattern_set=ps, batch=2).audit(bp_model)
        assert audit.all_correct
        # pattern over the BP-masked weights: combined sparsity >= 0.5
        assert audit.overall_sparsity >= 0.45

    def test_compare_formats_keys(self, bp_model):
        ps = random_pattern_set(8, 0.4, 2, np.random.default_rng(1))
        audits = compare_formats(bp_model, num_blocks=2, pattern_set=ps, batch=2)
        assert set(audits) == {"dense", "coo", "block", "pattern"}
        assert all(a.all_correct for a in audits.values())

    def test_model_audit_totals(self):
        audit = ModelAudit()
        from repro.sparse.executor import LayerAudit

        audit.layers.append(LayerAudit("a", "dense", (4, 4), 0.0,
                                       OpCounter(10, 2, 1), 0.0))
        audit.layers.append(LayerAudit("b", "dense", (4, 4), 0.5,
                                       OpCounter(5, 1, 1), 0.0))
        assert audit.total.macs == 15
        assert audit.total.index_ops == 3
        assert audit.overall_sparsity == pytest.approx(0.25)


class TestPredictorCrossValidation:
    def test_kernel_macs_track_latency_model(self, bp_model):
        """The analytic predictor and the executable kernels must agree on
        the *relative* cost of sparsities (correlation of MACs vs predicted
        cycles across sparsity levels)."""
        from repro.hardware.latency import LatencyModel, SparsityKind
        from repro.hardware.workload import profile_from_model

        lm = LatencyModel()
        mac_counts, predicted = [], []
        for rate in (0.2, 0.4, 0.6, 0.8):
            from repro.nn.transformer import TransformerLM
            from tests.conftest import TINY_TRANSFORMER

            model = TransformerLM(TINY_TRANSFORMER)
            apply_block_pruning(model, BlockPruningConfig(num_blocks=2, rate=rate))
            audit = SparseExecutor("block", num_blocks=2, batch=1).audit(model)
            mac_counts.append(audit.total.macs)
            wl = profile_from_model(model, seq_len=1)
            predicted.append(lm.cycles(wl, audit.overall_sparsity, SparsityKind.BLOCK))
        corr = np.corrcoef(mac_counts, predicted)[0, 1]
        assert corr > 0.99
