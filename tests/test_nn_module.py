"""Module system: registration, traversal, state dicts, train/eval."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Sequential
from repro.nn.module import Module, ModuleList, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class Net(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, seed=0)
        self.fc2 = Linear(8, 2, seed=1)

    def forward(self, x):
        return self.fc2(F.relu(self.fc1(x)))


class TestRegistration:
    def test_parameters_found(self):
        net = Net()
        names = [n for n, _ in net.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names
        assert len(net.parameters()) == 4

    def test_nested_modules(self):
        outer = Sequential(Net(), Net())
        assert len(outer.parameters()) == 8

    def test_module_list(self):
        ml = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(ml) == 2
        assert len(list(ml)) == 2
        assert isinstance(ml[1], Linear)
        params = dict(ml.named_parameters())
        assert "0.weight" in params and "1.bias" in params

    def test_module_list_append(self):
        ml = ModuleList()
        ml.append(Linear(2, 2))
        assert len(ml.parameters()) == 2

    def test_register_parameter(self):
        m = Module()
        m.register_parameter("w", Parameter(np.zeros(3)))
        assert [n for n, _ in m.named_parameters()] == ["w"]

    def test_named_modules_walks_tree(self):
        net = Net()
        names = [n for n, _ in net.named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_num_parameters(self):
        net = Net()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2


class TestState:
    def test_state_dict_roundtrip(self):
        a, b = Net(), Net()
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.allclose(pa.data, pb.data)

    def test_state_dict_copies(self):
        net = Net()
        state = net.state_dict()
        state["fc1.weight"][...] = 0.0
        assert not np.allclose(net.fc1.weight.data, 0.0)

    def test_load_strict_missing_raises(self):
        net = Net()
        state = net.state_dict()
        del state["fc1.weight"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_non_strict_ignores_extra(self):
        net = Net()
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        net.load_state_dict(state, strict=False)

    def test_load_shape_mismatch_raises(self):
        net = Net()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_zero_grad_clears(self):
        net = Net()
        out = F.sum(net(Tensor(np.ones((2, 4)))))
        out.backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert net.fc1.weight.grad is None


class TestTrainEval:
    def test_train_eval_propagates(self):
        net = Net()
        net.eval()
        assert not net.training and not net.fc1.training
        net.train()
        assert net.training and net.fc2.training

    def test_forward_required(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
