"""Hypothesis property tests for the sparse, energy and text pipelines."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.tokenizer import build_vocab, tokenize
from repro.hardware.dvfs import DVFSTable
from repro.hardware.energy_sim import EnergySimulator, ModeAssignment
from repro.hardware.latency import SparsityKind
from repro.hardware.workload import paper_scale_transformer
from repro.sparse import (
    block_matmul,
    coo_matmul,
    dense_matmul,
    from_dense_block,
    from_dense_coo,
)

FINITE = dict(allow_nan=False, allow_infinity=False)


# ---------------------------------------------------------------------------
# sparse format round-trips under arbitrary masks
# ---------------------------------------------------------------------------
@given(
    rows=st.integers(2, 20),
    cols=st.integers(2, 20),
    density=st.floats(0.0, 1.0),
    seed=st.integers(0, 100),
)
@settings(max_examples=50, deadline=None)
def test_coo_round_trip_any_sparsity(rows, cols, density, seed):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)
    coo = from_dense_coo(w)
    assert np.array_equal(coo.to_dense(), w)
    assert coo.nnz == np.count_nonzero(w)


@given(
    rows=st.integers(4, 24),
    cols=st.integers(2, 16),
    blocks=st.integers(1, 4),
    density=st.floats(0.1, 1.0),
    seed=st.integers(0, 100),
)
@settings(max_examples=50, deadline=None)
def test_block_format_round_trip_and_kernel(rows, cols, blocks, density, seed):
    blocks = min(blocks, rows)
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)
    bc = from_dense_block(w, blocks)
    assert np.allclose(bc.to_dense(), w)
    x = rng.normal(size=(cols, 2))
    expected, _ = dense_matmul(w, x)
    got, counter = block_matmul(bc, x)
    assert np.allclose(got, expected)
    assert counter.macs <= rows * cols * 2  # never more work than dense


@given(
    rows=st.integers(2, 16),
    cols=st.integers(2, 16),
    seed=st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_coo_kernel_matches_dense(rows, cols, seed):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < 0.5)
    x = rng.normal(size=(cols, 3))
    expected, _ = dense_matmul(w, x)
    got, _ = coo_matmul(from_dense_coo(w), x)
    assert np.allclose(got, expected)


# ---------------------------------------------------------------------------
# energy accounting invariants
# ---------------------------------------------------------------------------
@given(
    budget=st.floats(1e3, 1e6),
    sparsity=st.floats(0.0, 0.9),
)
@settings(max_examples=30, deadline=None)
def test_runs_linear_in_budget(budget, sparsity):
    sim = EnergySimulator(paper_scale_transformer(), DVFSTable().subset(["l3", "l4", "l6"]))
    a = sim.single_level_campaign(
        ModeAssignment("l6", sparsity, SparsityKind.PATTERN), 1.0, budget_j=budget)
    b = sim.single_level_campaign(
        ModeAssignment("l6", sparsity, SparsityKind.PATTERN), 1.0, budget_j=2 * budget)
    assert b.total_runs == pytest.approx(2 * a.total_runs)


@given(s_low=st.floats(0.0, 0.5), delta=st.floats(0.05, 0.45))
@settings(max_examples=30, deadline=None)
def test_more_sparsity_never_fewer_runs(s_low, delta):
    sim = EnergySimulator(paper_scale_transformer(), DVFSTable().subset(["l3", "l4", "l6"]))
    lo = sim.single_level_campaign(
        ModeAssignment("l6", s_low, SparsityKind.PATTERN), 1.0)
    hi = sim.single_level_campaign(
        ModeAssignment("l6", s_low + delta, SparsityKind.PATTERN), 1.0)
    assert hi.total_runs >= lo.total_runs


@given(
    fracs=st.tuples(st.floats(0.05, 0.45), st.floats(0.5, 0.95)),
)
@settings(max_examples=30, deadline=None)
def test_campaign_runs_sum_of_levels(fracs):
    from repro.hardware.dvfs import BatteryGovernor

    table = DVFSTable().subset(["l3", "l4", "l6"])
    gov = BatteryGovernor(table, thresholds=sorted(fracs))
    sim = EnergySimulator(paper_scale_transformer(), table, governor=gov)
    res = sim.run_campaign(
        [ModeAssignment(n, 0.5, SparsityKind.PATTERN) for n in table.names()],
        1.0, charge_switches=False)
    assert res.total_runs == pytest.approx(sum(o.runs for o in res.outcomes))


# ---------------------------------------------------------------------------
# tokenizer invariants
# ---------------------------------------------------------------------------
@given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Nd", "Po", "Zs")),
               max_size=200))
@settings(max_examples=60, deadline=None)
def test_tokenize_never_returns_whitespace(text):
    for token in tokenize(text):
        assert token.strip() == token
        assert token != ""


@given(st.lists(st.sampled_from(["a", "b", "c", "dd", "ee"]), min_size=1, max_size=60))
@settings(max_examples=50, deadline=None)
def test_vocab_encode_decode_identity_for_known_tokens(tokens):
    vocab = build_vocab(tokens)
    assert vocab.decode(vocab.encode(tokens)) == tokens
