"""Ablation harness (Table IV) and pattern visualization (Fig. 4)."""

import numpy as np
import pytest

from repro.core.ablation import AblationConfig, AblationStudy, format_ablation_table
from repro.core.block_pruning import BlockPruningConfig
from repro.core.controller import ControllerConfig
from repro.core.patterns import Pattern, random_pattern_set
from repro.core.rt3 import RT3Config
from repro.core.search_space import SearchSpaceConfig
from repro.core.trainer import TrainConfig, train_plain
from repro.core.visualize import (
    column_correlation,
    column_profile,
    figure4_report,
    render_side_by_side,
    shared_positions,
)
from repro.hardware.workload import paper_scale_transformer


@pytest.fixture()
def study(lm_task):
    train_plain(lm_task, epochs=2, lr=3e-3)
    cfg = AblationConfig(rt3=RT3Config(
        deadline_s=0.104, episodes=2,
        bp=BlockPruningConfig(num_blocks=2, rate=0.3),
        space=SearchSpaceConfig(pattern_size=8, theta=2, patterns_per_set=2, seed=0),
        controller=ControllerConfig(seed=0),
        episode_train=TrainConfig(epochs=1, lr=2e-3),
        finetune_train=TrainConfig(epochs=1, lr=2e-3),
        backbone_finetune_epochs=1,
    ))
    return AblationStudy(lm_task, paper_scale_transformer(), cfg)


@pytest.mark.slow
class TestAblation:
    def test_no_opt_is_baseline(self, study):
        row = study.no_opt()
        assert row.avg_sparsity == 0.0
        assert row.improvement == 1.0
        assert row.accuracy_loss == 0.0

    def test_bp_variants_same_runs_structure(self, study):
        study.no_opt()
        bp = study.bp_only()
        rbp = study.rbp_only()
        # same pruning budget -> (almost) identical hardware numbers
        assert bp.runs == pytest.approx(rbp.runs, rel=0.02)
        assert bp.avg_sparsity == pytest.approx(rbp.avg_sparsity, abs=0.02)

    def test_pruned_variants_improve_runs(self, study):
        study.no_opt()
        bp = study.bp_only()
        assert bp.improvement > 1.0

    def test_pp_variants_improve_more(self, study):
        """Pattern-set configurations exploit DVFS: more runs than BP-only."""
        study.no_opt()
        bp = study.bp_only()
        rpp = study.rbp_rpp()
        assert rpp.runs > bp.runs

    def test_run_all_order_and_restoration(self, study):
        before = {k: v.copy() for k, v in study.task.model.state_dict().items()}
        rows = study.run_all()
        assert [r.method for r in rows] == [
            "No-Opt", "rBP only", "rBP+rPP", "rBP+PP", "BP only", "RT3"]
        after = study.task.model.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key])

    def test_format_table(self, study):
        rows = [study.no_opt()]
        text = format_ablation_table(rows)
        assert "No-Opt" in text and "#runs" in text


class TestVisualize:
    def _patterns(self):
        rng = np.random.default_rng(0)
        dense = random_pattern_set(8, 0.25, 1, rng)[0]
        sparse = Pattern(dense.mask * (rng.random((8, 8)) < 0.5))
        return dense, sparse

    def test_render_side_by_side(self):
        dense, sparse = self._patterns()
        out = render_side_by_side([dense, sparse], ["a", "b"])
        lines = out.splitlines()
        assert len(lines) == 9  # header + 8 rows
        assert "a" in lines[0] and "b" in lines[0]

    def test_labels_checked(self):
        dense, _ = self._patterns()
        with pytest.raises(ValueError):
            render_side_by_side([dense], ["a", "b"])

    def test_shared_positions_subset_is_one(self):
        dense, sparse = self._patterns()
        assert shared_positions(dense, sparse) == 1.0

    def test_shared_positions_disjoint_is_zero(self):
        a = Pattern(np.eye(4))
        b = Pattern(1 - np.eye(4))
        assert shared_positions(a, b) == 0.0

    def test_shared_positions_size_mismatch(self):
        with pytest.raises(ValueError):
            shared_positions(Pattern(np.eye(4)), Pattern(np.eye(8)))

    def test_column_profile(self):
        p = Pattern(np.hstack([np.ones((4, 2)), np.zeros((4, 2))]))
        assert np.allclose(column_profile(p), [1, 1, 0, 0])

    def test_column_correlation_identical(self):
        p = Pattern(np.hstack([np.ones((4, 2)), np.zeros((4, 2))]))
        assert column_correlation(p, p) == pytest.approx(1.0)

    def test_column_correlation_degenerate(self):
        p = Pattern(np.ones((4, 4)))
        assert column_correlation(p, p) == 0.0

    def test_figure4_report(self):
        rng = np.random.default_rng(1)
        sets = {
            "l6": random_pattern_set(8, 0.37, 2, rng),
            "l4": random_pattern_set(8, 0.50, 2, rng),
            "l3": random_pattern_set(8, 0.75, 2, rng),
        }
        report = figure4_report(sets)
        assert "l6" in report and "shared kept positions" in report

    def test_bp_guided_sets_share_structure(self, lm_task):
        """The Fig. 4 observation: sets from the same importance maps share
        kept positions far above chance."""
        from repro.core.block_pruning import apply_block_pruning
        from repro.core.patterns import MaskManager
        from repro.core.search_space import PatternSearchSpace
        from repro.hardware.dvfs import DVFSTable

        report = apply_block_pruning(lm_task.model, BlockPruningConfig(num_blocks=2, rate=0.3))
        manager = MaskManager(lm_task.model, report.masks)
        space = PatternSearchSpace(
            manager, paper_scale_transformer(), DVFSTable().subset(["l3", "l4", "l6"]),
            0.104, cfg=SearchSpaceConfig(pattern_size=8, theta=1, patterns_per_set=2, seed=0),
        )
        sparse = space.candidates["l3"][0][0]   # high sparsity
        dense = space.candidates["l6"][0][0]    # lower sparsity
        overlap = shared_positions(sparse, dense)
        chance = 1.0 - dense.sparsity
        assert overlap > chance + 0.1
