"""RL controller: sampling validity, REINFORCE learning signal."""

import numpy as np
import pytest

from repro.core.block_pruning import BlockPruningConfig, apply_block_pruning
from repro.core.controller import ControllerConfig, GRUCell, RNNController
from repro.core.patterns import MaskManager, PatternSet
from repro.core.search_space import PatternSearchSpace, SearchSpaceConfig
from repro.hardware.dvfs import DVFSTable
from repro.hardware.workload import paper_scale_transformer
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

LEVELS = DVFSTable().subset(["l3", "l4", "l6"])


@pytest.fixture()
def space(tiny_transformer):
    report = apply_block_pruning(tiny_transformer, BlockPruningConfig(num_blocks=2, rate=0.3))
    manager = MaskManager(tiny_transformer, report.masks)
    cfg = SearchSpaceConfig(pattern_size=8, theta=3, patterns_per_set=4, seed=0)
    return PatternSearchSpace(manager, paper_scale_transformer(), LEVELS, 0.104, cfg=cfg)


class TestGRUCell:
    def test_output_shape_and_grads(self):
        cell = GRUCell(5, 7, seed=0)
        x, h = Tensor(np.ones((1, 5))), Tensor(np.zeros((1, 7)))
        out = cell(x, h)
        assert out.shape == (1, 7)
        F.sum(out).backward()
        assert cell.x2n.weight.grad is not None

    def test_zero_update_gate_keeps_hidden(self):
        cell = GRUCell(3, 4, seed=1)
        # force z ~ 1 (keep old hidden) by biasing the z gates hugely
        cell.x2z.bias.data[...] = 100.0
        h = Tensor(np.random.default_rng(0).normal(size=(1, 4)))
        out = cell(Tensor(np.ones((1, 3))), h)
        assert np.allclose(out.data, h.data, atol=1e-6)


class TestSampling:
    def test_episode_structure(self, space):
        ctrl = RNNController(space, ControllerConfig(patterns_to_pick=2, seed=0))
        ep = ctrl.sample()
        assert set(ep.set_choices) == {"l3", "l4", "l6"}
        for name in space.level_names:
            assert 0 <= ep.set_choices[name] < space.num_set_choices(name)
            picks = ep.pattern_choices[name]
            assert len(picks) == 2
            assert len(set(picks)) == 2  # no duplicate pattern picks
            assert all(0 <= p < 4 for p in picks)

    def test_log_prob_count(self, space):
        ctrl = RNNController(space, ControllerConfig(patterns_to_pick=2, seed=1))
        ep = ctrl.sample()
        # 3 set choices + 3 levels * 2 pattern choices
        assert len(ep.log_probs) == 9
        assert len(ep.entropies) == 9

    def test_log_probs_negative(self, space):
        ctrl = RNNController(space, ControllerConfig(seed=2))
        ep = ctrl.sample()
        assert all(float(lp.data) <= 0 for lp in ep.log_probs)

    def test_k_clamped_to_set_size(self, space):
        ctrl = RNNController(space, ControllerConfig(patterns_to_pick=99, seed=3))
        ep = ctrl.sample()
        for name in space.level_names:
            assert len(ep.pattern_choices[name]) == 4

    def test_decode_materializes_sets(self, space):
        ctrl = RNNController(space, ControllerConfig(patterns_to_pick=2, seed=4))
        ep = ctrl.sample()
        sets = ctrl.decode(ep)
        for name in space.level_names:
            assert isinstance(sets[name], PatternSet)
            assert len(sets[name]) == 2
            parent = space.get_set(name, ep.set_choices[name])
            assert sets[name].sparsity == parent.sparsity

    def test_sampling_is_stochastic(self, space):
        ctrl = RNNController(space, ControllerConfig(seed=5))
        episodes = [ctrl.sample() for _ in range(12)]
        choices = {tuple(sorted(e.set_choices.items())) for e in episodes}
        assert len(choices) > 1


class TestReinforce:
    def test_update_returns_advantage_and_tracks_history(self, space):
        ctrl = RNNController(space, ControllerConfig(seed=6))
        ep = ctrl.sample()
        adv = ctrl.update(ep, reward=1.0)
        assert adv == 0.0  # first reward becomes the baseline
        assert len(ctrl.history) == 1
        ep2 = ctrl.sample()
        adv2 = ctrl.update(ep2, reward=2.0)
        assert adv2 > 0

    def test_baseline_is_ema(self, space):
        cfg = ControllerConfig(baseline_decay=0.5, seed=7)
        ctrl = RNNController(space, cfg)
        ctrl.update(ctrl.sample(), 1.0)
        ctrl.update(ctrl.sample(), 3.0)
        assert ctrl.baseline == pytest.approx(0.5 * 1.0 + 0.5 * 3.0)

    def test_rewarded_actions_become_more_likely(self, space):
        """The core REINFORCE property: rewarding one fixed action raises
        its sampling frequency."""
        rng = np.random.default_rng(8)
        cfg = ControllerConfig(lr=5e-2, entropy_weight=0.0, seed=8)
        ctrl = RNNController(space, cfg)

        target = 0  # reward choosing set 0 for level l3

        def freq(n=40):
            return float(np.mean([ctrl.sample().set_choices["l3"] == target
                                  for _ in range(n)]))

        before = freq()
        for _ in range(60):
            ep = ctrl.sample()
            reward = 1.0 if ep.set_choices["l3"] == target else -1.0
            ctrl.update(ep, reward)
        after = freq()
        assert after > before + 0.1

    def test_entropy_bonus_slows_collapse(self, space):
        def final_entropy(entropy_weight):
            ctrl = RNNController(space, ControllerConfig(
                lr=5e-2, entropy_weight=entropy_weight, seed=9))
            for _ in range(50):
                ep = ctrl.sample()
                ctrl.update(ep, 1.0 if ep.set_choices["l3"] == 0 else -1.0)
            ep = ctrl.sample()
            return float(np.mean([float(e.data) for e in ep.entropies]))

        assert final_entropy(0.5) > final_entropy(0.0) - 1e-9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ControllerConfig(hidden_size=0)
        with pytest.raises(ValueError):
            ControllerConfig(baseline_decay=1.0)
        with pytest.raises(ValueError):
            ControllerConfig(patterns_to_pick=0)
