"""Sharded dispatch: queue isolation, routing policies, time slicing."""

import numpy as np
import pytest

from repro.core.patterns import MaskManager, random_pattern_set
from repro.core.runtime_policy import RuntimeAdapter
from repro.hardware.dvfs import DVFSTable
from repro.hardware.latency import LatencyModel, SparsityKind
from repro.hardware.workload import profile_from_model
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.serve import (
    ArtifactCache,
    DeviceShard,
    Dispatcher,
    InferenceRequest,
    QueuedBatch,
    ScenarioConfig,
    ServeEngine,
    StackConfig,
    build_scenario,
    build_serving_stack,
)

LM_CFG = TransformerConfig(vocab_size=60, dim=32, num_heads=2, ffn_dim=64,
                           num_encoder_layers=2, num_decoder_layers=1,
                           max_len=16, dropout=0.0, seed=3)


def make_batch(seq, level="l6", est=1.0, n=2, ready=0.0, seed=0):
    rng = np.random.default_rng(seed + seq)
    reqs = [InferenceRequest(100 * seq + i, rng.integers(1, 60, size=6),
                             level_name=level) for i in range(n)]
    return QueuedBatch(seq, reqs, level, ready, est)


def build_engine(model, **kwargs):
    wl = profile_from_model(model, seq_len=12)
    ladder = {s: random_pattern_set(8, s, 2, np.random.default_rng(0))
              for s in (0.3, 0.5, 0.7, 0.9)}
    adapter = RuntimeAdapter(ladder, wl, manager=MaskManager(model),
                             hardware_pattern_size=8)
    return ServeEngine(model, adapter, cache=ArtifactCache(),
                       **kwargs), wl


class TestDeviceShardQueues:
    def test_per_level_queue_isolation(self):
        shard = DeviceShard(0)
        for seq, level in enumerate(["l6", "l3", "l6", "l4", "l3"]):
            shard.enqueue(make_batch(seq, level))
        assert set(shard.queues) == {"l6", "l3", "l4"}
        for level, queue in shard.queues.items():
            assert all(b.level_name == level for b in queue)
            seqs = [b.seq for b in queue]
            assert seqs == sorted(seqs)  # FIFO inside each level queue
        assert shard.backlog() == 5

    def test_drain_preserves_global_flush_order(self):
        shard = DeviceShard(0)
        order = ["l6", "l3", "l6", "l4", "l3", "l4"]
        for seq, level in enumerate(order):
            shard.enqueue(make_batch(seq, level))
        drained = [b.seq for b in shard.drain()]
        assert drained == list(range(len(order)))
        assert shard.backlog() == 0
        assert shard.pending_s == pytest.approx(0.0)

    def test_record_accumulates_stats(self):
        shard = DeviceShard(3)
        batch = make_batch(0, n=4)
        shard.enqueue(batch)
        next(shard.drain())
        shard.record(batch, service_s=0.5, completion_s=0.7, switched=True)
        assert shard.clock_s == 0.7
        assert shard.stats.requests == 4
        assert shard.stats.batches == 1
        assert shard.stats.switches == 1
        assert shard.stats.busy_s == pytest.approx(0.5)
        assert shard.stats.utilization(1.0) == pytest.approx(0.5)


class TestDispatcher:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown dispatch policy"):
            Dispatcher("fastest-first")

    def test_round_robin_cycles(self):
        shards = [DeviceShard(i) for i in range(3)]
        dispatcher = Dispatcher("round-robin")
        homes = [dispatcher.route(make_batch(seq), shards).shard_id
                 for seq in range(7)]
        assert homes == [0, 1, 2, 0, 1, 2, 0]

    def test_least_loaded_balances_estimated_backlog(self):
        shards = [DeviceShard(i) for i in range(2)]
        dispatcher = Dispatcher("least-loaded")
        # alternating heavy/light batches: round-robin would pile every
        # heavy batch onto shard 0; least-loaded interleaves them
        weights = [4.0, 1.0, 4.0, 1.0, 4.0, 1.0]
        for seq, est in enumerate(weights):
            dispatcher.route(make_batch(seq, est=est), shards)
        loads = sorted(s.pending_s for s in shards)
        # round-robin would split 12 / 3; least-loaded lands on 6 / 9
        assert loads == [pytest.approx(6.0), pytest.approx(9.0)]

    def test_least_loaded_beats_round_robin_on_skewed_traffic(self):
        def assign(policy):
            shards = [DeviceShard(i) for i in range(2)]
            dispatcher = Dispatcher(policy)
            for seq in range(8):
                est = 4.0 if seq % 2 == 0 else 0.5
                dispatcher.route(make_batch(seq, est=est), shards)
            return max(s.pending_s for s in shards)

        assert assign("least-loaded") < assign("round-robin")


class TestShardedServing:
    def test_requests_partition_across_shards(self):
        model = TransformerLM(LM_CFG).eval()
        engine, wl = build_engine(model, devices=3, policy="round-robin")
        trace = build_scenario("bursty", wl, ScenarioConfig(num_requests=48, seed=3))
        report = engine.serve(trace)
        assert report.num_requests == 48
        assert {s.shard_id for s in report.shard_stats} == {0, 1, 2}
        assert sum(s.requests for s in report.shard_stats) == 48
        served_ids = sorted(r.request.req_id for r in report.results)
        assert served_ids == list(range(48))
        assert {r.shard_id for r in report.results} == {0, 1, 2}

    def test_sharded_outputs_exactly_equal_per_request(self):
        model_a, model_b = TransformerLM(LM_CFG).eval(), TransformerLM(LM_CFG).eval()
        sharded, wl = build_engine(model_a, devices=4, policy="least-loaded")
        single, _ = build_engine(model_b, max_batch=1, devices=1)
        trace = build_scenario("bursty", wl, ScenarioConfig(num_requests=32, seed=5))
        by_id = lambda rep: {r.request.req_id: r.output for r in rep.results}  # noqa: E731
        outs_s, outs_1 = by_id(sharded.serve(trace)), by_id(single.serve(list(trace)))
        assert outs_s.keys() == outs_1.keys()
        for req_id, out in outs_s.items():
            np.testing.assert_allclose(out, outs_1[req_id], atol=1e-9, rtol=0)

    def test_each_shard_pays_its_own_switches(self):
        # bursts alternate sparsity rungs, so with round-robin every shard
        # must install both rungs itself: total switches grow with devices
        model_1, model_4 = TransformerLM(LM_CFG).eval(), TransformerLM(LM_CFG).eval()
        serial, wl = build_engine(model_1, devices=1)
        sharded, _ = build_engine(model_4, devices=4, policy="round-robin")
        trace = build_scenario("bursty", wl, ScenarioConfig(num_requests=64, seed=3),
                               burst_size=32, burst_gap_s=2e-3)
        r1, r4 = serial.serve(trace), sharded.serve(list(trace))
        assert r4.num_switches > r1.num_switches
        assert sum(s.switches for s in r4.shard_stats) == r4.num_switches

    def test_scaling_on_saturated_bursty_traffic(self):
        def run(devices):
            _, wl, engine = build_serving_stack(StackConfig(
                dim=96, devices=devices, policy="least-loaded", prewarm=True))
            trace = build_scenario("bursty", wl,
                                   ScenarioConfig(num_requests=96, seed=0),
                                   burst_size=32, burst_gap_s=2e-3,
                                   deadline_factors=(1.7, 1.7))
            return engine.serve(trace)

        r1, r4 = run(1), run(4)
        scaling = r4.sim_throughput_rps / r1.sim_throughput_rps
        assert scaling >= 2.0
        assert r4.sim_makespan_s < r1.sim_makespan_s

    def test_invalid_devices_rejected(self):
        model = TransformerLM(LM_CFG).eval()
        with pytest.raises(ValueError, match="devices"):
            build_engine(model, devices=0)

    def test_invalid_policy_rejected_eagerly(self):
        model = TransformerLM(LM_CFG).eval()
        with pytest.raises(ValueError, match="unknown dispatch policy"):
            build_engine(model, policy="fastest-first")

    def test_fallback_install_counted_in_shard_stats(self):
        # an infeasible deadline on a cold device installs the sparsest
        # set: not an adapter switch (event semantics, pinned elsewhere)
        # but a physical device install the per-shard stats must show
        model = TransformerLM(LM_CFG).eval()
        engine, wl = build_engine(model, devices=1)
        rng = np.random.default_rng(0)
        reqs = [InferenceRequest(i, rng.integers(1, 60, size=8),
                                 arrival_s=i * 1e-4, deadline_s=1e-12, slo_s=10.0)
                for i in range(16)]
        report = engine.serve(reqs)
        assert report.num_switches == 0  # adapter never switched
        assert report.shard_stats[0].switches == 1  # the device installed once

    def test_adapter_state_synced_after_serve(self):
        # direct adapter use after serving must not re-charge a switch for
        # the pattern set the engine left installed
        model = TransformerLM(LM_CFG).eval()
        engine, wl = build_engine(model, devices=2)
        trace = build_scenario("steady", wl, ScenarioConfig(num_requests=32, seed=3))
        report = engine.serve(trace)
        installed = {r.sparsity for r in report.results}
        assert engine.adapter.active_sparsity in installed
        level = DVFSTable()[trace[0].level_name]
        event = engine.adapter.adapt(level, trace[0].deadline_s)
        assert event.chosen_sparsity == engine.adapter.active_sparsity
        assert not event.switched

    def test_preinstalled_adapter_state_not_recharged(self):
        # adapter.adapt before serving installs a pattern set; the engine's
        # devices inherit that provisioning instead of re-charging it
        model = TransformerLM(LM_CFG).eval()
        engine, wl = build_engine(model, devices=2)
        trace = build_scenario("steady", wl, ScenarioConfig(num_requests=32, seed=3))
        level = DVFSTable()[trace[0].level_name]
        pre = engine.adapter.adapt(level, trace[0].deadline_s)
        assert pre.switched  # the one real install, paid up front
        report = engine.serve(trace)
        assert report.num_switches == 0
        assert all(s.switches == 0 for s in report.shard_stats)

    def test_devices_keep_installed_state_across_runs(self):
        # a device retains its masks between traces: the second run must
        # not re-charge the cold-start install
        model = TransformerLM(LM_CFG).eval()
        engine, wl = build_engine(model, devices=2)
        trace = build_scenario("steady", wl, ScenarioConfig(num_requests=32, seed=3))
        first = engine.serve(trace)
        second = engine.serve(list(trace))
        assert first.num_switches > 0  # cold start installs once per device
        assert second.num_switches == 0
        assert second.sim_makespan_s < first.sim_makespan_s


class TestTimeSlicing:
    def test_offsets_sum_to_batch_latency(self, tiny_transformer):
        wl = profile_from_model(tiny_transformer, seq_len=12)
        lat = LatencyModel()
        level = DVFSTable()["l4"]
        offsets = lat.batch_completion_offsets_s(wl, level, 8, 0.5,
                                                 SparsityKind.PATTERN, 8)
        assert len(offsets) == 8
        assert offsets == sorted(offsets)
        assert offsets[-1] == pytest.approx(
            lat.batch_latency_s(wl, level, 8, 0.5, SparsityKind.PATTERN, 8))
        # equal spacing: each member adds one request's worth of MAC work
        gaps = np.diff(offsets)
        np.testing.assert_allclose(gaps, gaps[0])

    def test_invalid_batch_rejected(self, tiny_transformer):
        wl = profile_from_model(tiny_transformer, seq_len=12)
        with pytest.raises(ValueError):
            LatencyModel().batch_completion_offsets_s(wl, DVFSTable()["l4"], 0)

    def test_time_sliced_matches_serial_engine_exactly(self):
        """Time slicing redistributes completions inside a batch only."""
        model_a, model_b = TransformerLM(LM_CFG).eval(), TransformerLM(LM_CFG).eval()
        sliced, wl = build_engine(model_a, devices=1, time_sliced=True)
        serial, _ = build_engine(model_b, devices=1, time_sliced=False)
        trace = build_scenario("steady", wl, ScenarioConfig(num_requests=48, seed=3))
        a, b = sliced.serve(trace), serial.serve(list(trace))

        def batch_end(report):
            out = {}
            for r in report.results:
                out[r.batch_id] = max(out.get(r.batch_id, 0.0), r.completion_s)
            return out

        # identical batching, identical batch end times, identical makespan
        assert [e.chosen_sparsity for e in a.events] == \
               [e.chosen_sparsity for e in b.events]
        assert batch_end(a) == batch_end(b)
        assert a.sim_makespan_s == b.sim_makespan_s
        assert a.sim_throughput_rps == b.sim_throughput_rps
        # identical outputs
        for ra, rb in zip(a.results, b.results):
            assert ra.request.req_id == rb.request.req_id
            np.testing.assert_array_equal(ra.output, rb.output)

    def test_early_members_exit_early(self):
        model = TransformerLM(LM_CFG).eval()
        engine, wl = build_engine(model, devices=1, time_sliced=True)
        trace = build_scenario("steady", wl, ScenarioConfig(num_requests=16, seed=3))
        report = engine.serve(trace)
        full = [r for r in report.results if r.batch_size == engine.batcher.max_batch]
        assert full, "expected at least one full batch"
        by_batch = {}
        for r in full:
            by_batch.setdefault(r.batch_id, []).append(r.completion_s)
        for completions in by_batch.values():
            assert len(set(completions)) == len(completions), \
                "time slicing must spread completions inside a batch"

    def test_time_slicing_sharpens_p50(self):
        model_a, model_b = TransformerLM(LM_CFG).eval(), TransformerLM(LM_CFG).eval()
        sliced, wl = build_engine(model_a, devices=1, time_sliced=True)
        serial, _ = build_engine(model_b, devices=1, time_sliced=False)
        trace = build_scenario("steady", wl, ScenarioConfig(num_requests=48, seed=3))
        assert sliced.serve(trace).p50_latency_s < serial.serve(list(trace)).p50_latency_s


class TestPrewarm:
    def test_prewarm_waives_cold_start_switch_cost(self):
        model_a, model_b = TransformerLM(LM_CFG).eval(), TransformerLM(LM_CFG).eval()
        cold, wl = build_engine(model_a, devices=2)
        warm, _ = build_engine(model_b, devices=2, prewarm=True)
        trace = build_scenario("steady", wl, ScenarioConfig(num_requests=32, seed=3))
        r_cold, r_warm = cold.serve(trace), warm.serve(list(trace))
        assert r_warm.num_switches < r_cold.num_switches
        assert r_warm.sim_makespan_s < r_cold.sim_makespan_s
        # provisioning never changes outputs
        for ra, rb in zip(r_warm.results, r_cold.results):
            np.testing.assert_array_equal(ra.output, rb.output)


class TestBandwidthScenario:
    def test_deterministic_and_jittered(self, tiny_transformer):
        wl = profile_from_model(tiny_transformer, seq_len=12)
        cfg = ScenarioConfig(num_requests=48, seed=11)
        a = build_scenario("bandwidth", wl, cfg)
        b = build_scenario("bandwidth", wl, cfg)
        assert [r.deadline_s for r in a] == [r.deadline_s for r in b]
        assert len({round(r.deadline_s, 9) for r in a}) > 10  # real jitter
        assert {r.level_name for r in a} == {"l6"}  # one V/F level: pure
        # deadline-driven adaptation, the paper's translation story

    def test_rides_the_sparsity_ladder(self):
        model = TransformerLM(LM_CFG).eval()
        engine, wl = build_engine(model, devices=1)
        trace = build_scenario("bandwidth", wl, ScenarioConfig(num_requests=96, seed=0))
        report = engine.serve(trace)
        rungs = {e.chosen_sparsity for e in report.events}
        assert None not in rungs, "bandwidth deadlines must stay feasible"
        assert len(rungs) >= 3, "fluctuating bandwidth should move the ladder"
        assert report.num_switches >= 2


class TestLevelAffinityDrain:
    def interleaved_shard(self, drain_policy="level-affinity", window=4,
                          levels=("l6", "l4"), n=12):
        shard = DeviceShard(0, drain_policy=drain_policy, fairness_window=window)
        for seq in range(n):
            shard.enqueue(make_batch(seq, levels[seq % len(levels)]))
        return shard

    def test_unknown_drain_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown drain policy"):
            DeviceShard(0, drain_policy="lifo")

    def test_invalid_fairness_window_rejected(self):
        with pytest.raises(ValueError, match="fairness_window"):
            DeviceShard(0, fairness_window=0)

    def test_serves_levels_run_to_run(self):
        # alternating enqueue order, but the drain sticks with a level:
        # runs of `window` instead of a switch per batch
        shard = self.interleaved_shard(window=4)
        drained = list(shard.drain())
        runs = []
        for batch in drained:
            if runs and runs[-1][0] == batch.level_name:
                runs[-1][1].append(batch.seq)
            else:
                runs.append((batch.level_name, [batch.seq]))
        # 6 batches per level, window 4: runs of 4,4 then the 2,2 tails —
        # 4 level runs instead of FIFO's 12 alternations
        assert len(runs) == 4
        assert [len(seqs) for _, seqs in runs] == [4, 4, 2, 2]
        # within a level, FIFO order is preserved
        for _, seqs in runs:
            assert seqs == sorted(seqs)
        assert sorted(b.seq for b in drained) == list(range(12))

    def test_fifo_still_default_and_global_order(self):
        shard = self.interleaved_shard(drain_policy="fifo")
        assert [b.seq for b in shard.drain()] == list(range(12))

    def test_fairness_window_bounds_runs(self):
        # window=2 on a 3-level interleave: no level may be served more
        # than `window` consecutive batches while another level waits
        shard = DeviceShard(0, drain_policy="level-affinity", fairness_window=2)
        levels = ["l6", "l4", "l3"]
        for seq in range(18):
            shard.enqueue(make_batch(seq, levels[seq % 3]))
        run_len, last, longest = 0, None, 0
        for batch in shard.drain():
            run_len = run_len + 1 if batch.level_name == last else 1
            last = batch.level_name
            longest = max(longest, run_len)
        assert longest <= 2

    def test_no_starvation_under_saturation(self):
        # one dominant level must not starve the minority level: the
        # minority's batches appear before the dominant queue is exhausted
        shard = DeviceShard(0, drain_policy="level-affinity", fairness_window=3)
        for seq in range(15):
            shard.enqueue(make_batch(seq, "l6"))
        shard.enqueue(make_batch(15, "l4"))
        order = [b.level_name for b in shard.drain()]
        assert "l4" in order[:4]  # served after at most `window` l6 batches
        assert len(order) == 16

    def test_exhausted_level_rotates_out(self):
        shard = DeviceShard(0, drain_policy="level-affinity", fairness_window=8)
        shard.enqueue(make_batch(0, "l6"))
        for seq in range(1, 5):
            shard.enqueue(make_batch(seq, "l4"))
        drained = [b.seq for b in shard.drain()]
        assert sorted(drained) == list(range(5))
        assert shard.backlog() == 0


class TestSwitchAwareDispatch:
    def test_prefers_shard_with_matching_pattern_set(self):
        shards = [DeviceShard(0), DeviceShard(1)]
        shards[0].expected_sparsity = 0.3
        shards[1].expected_sparsity = 0.7
        dispatcher = Dispatcher("switch-aware", switch_cost_s={0.3: 1.0, 0.7: 1.0})
        batch = make_batch(0)
        batch.sparsity = 0.7
        assert dispatcher.route(batch, shards).shard_id == 1

    def test_load_outweighs_switch_when_imbalanced(self):
        shards = [DeviceShard(0), DeviceShard(1)]
        shards[0].expected_sparsity = 0.7
        shards[0].assigned_est_s = 5.0  # matching shard, but deeply loaded
        shards[1].expected_sparsity = 0.3
        dispatcher = Dispatcher("switch-aware", switch_cost_s={0.7: 1.0})
        batch = make_batch(0, est=0.1)
        batch.sparsity = 0.7
        # 5.0 backlog vs 0.0 + 1.0 switch: the swap is the cheaper path
        assert dispatcher.route(batch, shards).shard_id == 1

    def test_enqueue_updates_expected_sparsity(self):
        shard = DeviceShard(0)
        batch = make_batch(0)
        batch.sparsity = 0.5
        shard.enqueue(batch)
        assert shard.expected_sparsity == 0.5

    def test_unresolved_sparsity_costs_nothing(self):
        # infeasible batches (sparsity None) rout purely by load
        shards = [DeviceShard(0), DeviceShard(1)]
        shards[1].assigned_est_s = 1.0
        dispatcher = Dispatcher("switch-aware", switch_cost_s={0.3: 9.0})
        assert dispatcher.route(make_batch(0), shards).shard_id == 0


class TestSwitchReductionEndToEnd:
    """Acceptance: level-affinity + switch-aware cut simulated switches on
    rung-alternating bursty traffic with throughput no worse."""

    def run(self, policy, drain, devices, trace, model=None):
        model = model or TransformerLM(LM_CFG).eval()
        engine, _ = build_engine(model, devices=devices, policy=policy,
                                 drain_policy=drain)
        return engine.serve(list(trace))

    def make_trace(self, wl, n=96):
        # saturating bursts alternating V/F rungs: the worst case for
        # global-FIFO drain (a pattern swap per burst)
        return build_scenario("bursty", wl, ScenarioConfig(num_requests=n, seed=0),
                              burst_size=8, burst_gap_s=1e-4)

    def test_level_affinity_cuts_switches_single_device(self):
        wl = profile_from_model(TransformerLM(LM_CFG).eval(), seq_len=12)
        trace = self.make_trace(wl)
        fifo = self.run("round-robin", "fifo", 1, trace)
        affinity = self.run("round-robin", "level-affinity", 1, trace)
        fifo_switches = sum(s.switches for s in fifo.shard_stats)
        affinity_switches = sum(s.switches for s in affinity.shard_stats)
        assert affinity.num_requests == fifo.num_requests
        assert affinity_switches < fifo_switches
        assert affinity.sim_throughput_rps >= fifo.sim_throughput_rps

    def test_switch_aware_routing_cuts_switches_sharded(self):
        wl = profile_from_model(TransformerLM(LM_CFG).eval(), seq_len=12)
        trace = self.make_trace(wl)
        fifo = self.run("least-loaded", "fifo", 4, trace)
        tuned = self.run("switch-aware", "level-affinity", 4, trace)
        fifo_switches = sum(s.switches for s in fifo.shard_stats)
        tuned_switches = sum(s.switches for s in tuned.shard_stats)
        assert tuned.num_requests == fifo.num_requests
        assert tuned_switches < fifo_switches
        assert tuned.sim_throughput_rps >= fifo.sim_throughput_rps

    def test_outputs_identical_across_policies(self):
        wl = profile_from_model(TransformerLM(LM_CFG).eval(), seq_len=12)
        trace = self.make_trace(wl, n=32)
        base = self.run("least-loaded", "fifo", 2, trace)
        tuned = self.run("switch-aware", "level-affinity", 2, trace)
        outs_a = {r.request.req_id: r.output for r in base.results}
        outs_b = {r.request.req_id: r.output for r in tuned.results}
        assert outs_a.keys() == outs_b.keys()
        for req_id, out in outs_a.items():
            np.testing.assert_allclose(out, outs_b[req_id], atol=1e-9, rtol=0)

    def test_engine_rejects_unknown_drain_policy(self):
        model = TransformerLM(LM_CFG).eval()
        with pytest.raises(ValueError, match="unknown drain policy"):
            build_engine(model, drain_policy="lifo")
