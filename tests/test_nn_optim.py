"""Optimizers and LR schedulers."""

import numpy as np
import pytest

from repro.nn.lr_scheduler import ConstantLR, LinearWarmupDecay, StepLR
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.tensor import functional as F


def quadratic_param(start=5.0):
    return Parameter(np.array([start]))


def minimize(opt_cls, steps=200, **kwargs):
    p = quadratic_param()
    opt = opt_cls([p], **kwargs)
    for _ in range(steps):
        loss = F.sum(F.mul(p, p))
        opt.zero_grad()
        loss.backward()
        opt.step()
    return float(p.data[0])


class TestSGD:
    def test_minimizes_quadratic(self):
        assert abs(minimize(SGD, lr=0.1)) < 1e-4

    def test_momentum_accelerates(self):
        slow = abs(minimize(SGD, steps=20, lr=0.01))
        fast = abs(minimize(SGD, steps=20, lr=0.01, momentum=0.9))
        assert fast < slow

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        # no task gradient: decay alone should shrink the weight
        p.grad = np.zeros(1)
        opt.step()
        assert abs(p.data[0]) < 1.0

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()  # no grad, no crash
        assert p.data[0] == 1.0


class TestAdam:
    def test_minimizes_quadratic(self):
        assert abs(minimize(Adam, lr=0.1)) < 1e-3

    def test_bias_correction_first_step_size(self):
        """First Adam step is ~lr regardless of gradient scale."""
        for scale in (1e-3, 1e3):
            p = Parameter(np.array([0.0]))
            opt = Adam([p], lr=0.1)
            p.grad = np.array([scale])
            opt.step()
            assert abs(abs(p.data[0]) - 0.1) < 0.01

    def test_weight_decay(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0

    def test_rosenbrock_progress(self):
        """Adam makes steady progress on a non-convex function."""
        xy = Parameter(np.array([-1.0, 1.5]))
        opt = Adam([xy], lr=0.02)

        def loss_fn():
            x, y = xy[0], xy[1]
            return F.add(F.power(F.sub(1.0, x), 2.0),
                         F.mul(100.0, F.power(F.sub(y, F.mul(x, x)), 2.0)))

        first = float(loss_fn().data)
        for _ in range(500):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert float(loss.data) < 0.25 * first


class TestOptimizerValidation:
    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], lr=0.0)

    def test_base_step_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Optimizer([quadratic_param()], lr=0.1).step()


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        p = Parameter(np.array([0.0, 0.0]))
        p.grad = np.array([30.0, 40.0])  # norm 50
        pre = clip_grad_norm([p], max_norm=5.0)
        assert pre == pytest.approx(50.0)
        assert np.linalg.norm(p.grad) == pytest.approx(5.0)

    def test_leaves_small_gradients(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        clip_grad_norm([p], max_norm=5.0)
        assert p.grad[0] == 0.5

    def test_ignores_gradless(self):
        p = Parameter(np.array([1.0]))
        assert clip_grad_norm([p], 1.0) == 0.0


class TestSchedulers:
    def _opt(self):
        return SGD([quadratic_param()], lr=1.0)

    def test_constant(self):
        sched = ConstantLR(self._opt())
        for _ in range(5):
            assert sched.step() == 1.0

    def test_step_lr_decays(self):
        sched = StepLR(self._opt(), step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(6)]
        assert lrs[0] == 1.0 and lrs[1] == 0.5 * 1.0 or lrs[1] == 1.0
        assert lrs[-1] == pytest.approx(0.125)

    def test_step_lr_validation(self):
        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=0)

    def test_warmup_then_decay(self):
        sched = LinearWarmupDecay(self._opt(), warmup_steps=5, total_steps=10)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < lrs[4]  # warming up
        assert lrs[4] == pytest.approx(1.0, abs=0.21)
        assert lrs[-1] == pytest.approx(0.0)

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            LinearWarmupDecay(self._opt(), warmup_steps=10, total_steps=10)
