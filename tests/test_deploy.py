"""Deployment bundle: round-trips, installation, export from a search."""

import numpy as np
import pytest

from repro.core.block_pruning import BlockPruningConfig, apply_block_pruning
from repro.core.patterns import random_pattern_set
from repro.deploy import (
    DeploymentBundle,
    LevelBinding,
    export_bundle,
    load_bundle,
    load_state_npz,
    save_state_npz,
)
from repro.nn.transformer import TransformerLM

from tests.conftest import TINY_TRANSFORMER


@pytest.fixture()
def bundle(tiny_transformer):
    report = apply_block_pruning(tiny_transformer, BlockPruningConfig(num_blocks=2, rate=0.3))
    rng = np.random.default_rng(0)
    bindings = [
        LevelBinding("l3", random_pattern_set(8, 0.6, 3, rng), 0.72),
        LevelBinding("l4", random_pattern_set(8, 0.4, 3, rng), 0.58),
        LevelBinding("l6", random_pattern_set(8, 0.2, 3, rng), 0.44),
    ]
    return DeploymentBundle(
        backbone_state=tiny_transformer.state_dict(),
        backbone_masks=report.masks,
        bindings=bindings,
        metadata={"deadline_ms": 104.0},
    )


class TestStateNpz:
    def test_round_trip(self, tmp_path, tiny_transformer):
        path = tmp_path / "state.npz"
        save_state_npz(tiny_transformer.state_dict(), path)
        loaded = load_state_npz(path)
        for name, value in tiny_transformer.state_dict().items():
            assert np.array_equal(loaded[name], value)


class TestBundleValidation:
    def test_needs_bindings(self, tiny_transformer):
        with pytest.raises(ValueError):
            DeploymentBundle(tiny_transformer.state_dict(), {}, [])

    def test_duplicate_levels_rejected(self, tiny_transformer):
        rng = np.random.default_rng(1)
        b = LevelBinding("l4", random_pattern_set(8, 0.5, 2, rng), 0.5)
        with pytest.raises(ValueError):
            DeploymentBundle(tiny_transformer.state_dict(), {}, [b, b])

    def test_binding_lookup(self, bundle):
        assert bundle.binding_for("l4").total_sparsity == 0.58
        with pytest.raises(KeyError):
            bundle.binding_for("l9")


class TestSaveLoad:
    def test_round_trip(self, tmp_path, bundle):
        bundle.save(tmp_path / "bundle")
        loaded = load_bundle(tmp_path / "bundle")
        # weights identical
        for name, value in bundle.backbone_state.items():
            assert np.array_equal(loaded.backbone_state[name], value)
        # masks identical
        for name, value in bundle.backbone_masks.items():
            assert np.array_equal(loaded.backbone_masks[name], value)
        # pattern sets identical per level
        for b in bundle.bindings:
            lb = loaded.binding_for(b.level_name)
            assert len(lb.pattern_set) == len(b.pattern_set)
            for pa, pb in zip(lb.pattern_set, b.pattern_set):
                assert pa == pb
            assert lb.total_sparsity == pytest.approx(b.total_sparsity)
        assert loaded.metadata["deadline_ms"] == 104.0

    def test_version_check(self, tmp_path, bundle):
        path = bundle.save(tmp_path / "bundle")
        manifest = path / "manifest.json"
        manifest.write_text(manifest.read_text().replace('"version": 1', '"version": 99'))
        with pytest.raises(ValueError):
            load_bundle(path)


class TestInstall:
    def test_install_restores_weights_and_masks(self, tmp_path, bundle):
        bundle.save(tmp_path / "b")
        loaded = load_bundle(tmp_path / "b")
        fresh = TransformerLM(TINY_TRANSFORMER)
        fresh.embed.weight.data[...] = 0.0  # scrub so load is observable
        manager = loaded.install(fresh)
        assert not np.allclose(fresh.embed.weight.data, 0.0)
        # default level is the top one (l6) -> its pattern set is active
        assert manager.active_set is loaded.binding_for("l6").pattern_set
        assert manager.combined_sparsity() > manager.backbone_sparsity()

    def test_install_specific_level(self, bundle):
        fresh = TransformerLM(TINY_TRANSFORMER)
        manager = bundle.install(fresh, level_name="l3")
        assert manager.active_set is bundle.binding_for("l3").pattern_set

    def test_switch_bytes_small(self, bundle):
        model_bytes = sum(v.nbytes for v in bundle.backbone_state.values())
        for b in bundle.bindings:
            assert bundle.switch_bytes(b.level_name) < 0.05 * model_bytes


class TestExportFromSearch:
    def test_export_and_reinstall(self, tmp_path, lm_task):
        from repro.core.controller import ControllerConfig
        from repro.core.rt3 import RT3, RT3Config
        from repro.core.search_space import SearchSpaceConfig
        from repro.core.trainer import TrainConfig, train_plain
        from repro.hardware.workload import paper_scale_transformer
        from repro.tensor.tensor import Tensor

        train_plain(lm_task, epochs=1, lr=3e-3)
        cfg = RT3Config(
            deadline_s=0.104, episodes=2,
            bp=BlockPruningConfig(num_blocks=2, rate=0.3),
            space=SearchSpaceConfig(pattern_size=8, theta=2, patterns_per_set=2),
            controller=ControllerConfig(seed=0),
            episode_train=TrainConfig(epochs=1, lr=2e-3),
            finetune_train=TrainConfig(epochs=1, lr=2e-3),
            backbone_finetune_epochs=0,
        )
        rt3 = RT3(lm_task, paper_scale_transformer(), cfg)
        result = rt3.search()
        bundle = export_bundle(rt3, result, extra_metadata={"run": "test"})
        assert bundle.metadata["run"] == "test"
        assert bundle.metadata["deadline_ms"] == pytest.approx(104.0)

        path = bundle.save(tmp_path / "search-bundle")
        loaded = load_bundle(path)
        fresh = TransformerLM(TINY_TRANSFORMER)
        manager = loaded.install(fresh, level_name="l6")

        # the reinstalled model reproduces the searched model's outputs
        toks = np.random.default_rng(0).integers(0, 60, size=(2, 8))
        rt3.manager.apply(result.best.pattern_sets["l6"])
        lm_task.model.eval()
        fresh.eval()
        expected = lm_task.model(Tensor(toks)).data
        got = fresh(Tensor(toks)).data
        assert np.allclose(got, expected)

    def test_export_requires_search(self, lm_task):
        from repro.core.rt3 import RT3, RT3Config
        from repro.hardware.workload import paper_scale_transformer

        rt3 = RT3(lm_task, paper_scale_transformer(), RT3Config())
        with pytest.raises(ValueError):
            export_bundle(rt3, None)
