"""Forward correctness + gradient checks for every functional op."""

import numpy as np
import pytest

from repro.tensor import functional as F
from repro.tensor.gradcheck import gradcheck
from repro.tensor.tensor import Tensor


def make(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(scale=scale, size=shape), requires_grad=True)


class TestForwardValues:
    def test_add(self):
        out = F.add(Tensor([1.0, 2.0]), Tensor([3.0, 4.0]))
        assert np.allclose(out.data, [4.0, 6.0])

    def test_sub(self):
        assert np.allclose(F.sub(Tensor([3.0]), 1.0).data, [2.0])

    def test_mul_broadcast(self):
        out = F.mul(Tensor(np.ones((2, 3))), Tensor([1.0, 2.0, 3.0]))
        assert np.allclose(out.data, [[1, 2, 3], [1, 2, 3]])

    def test_div(self):
        assert np.allclose(F.div(Tensor([6.0]), Tensor([2.0])).data, [3.0])

    def test_power(self):
        assert np.allclose(F.power(Tensor([2.0]), 3).data, [8.0])

    def test_exp_log_inverse(self):
        x = np.array([0.5, 1.5])
        assert np.allclose(F.log(F.exp(Tensor(x))).data, x)

    def test_sqrt(self):
        assert np.allclose(F.sqrt(Tensor([4.0, 9.0])).data, [2.0, 3.0])

    def test_tanh_range(self):
        out = F.tanh(Tensor(np.linspace(-5, 5, 11)))
        assert np.all(np.abs(out.data) < 1.0)

    def test_sigmoid_symmetry(self):
        out = F.sigmoid(Tensor([0.0]))
        assert np.allclose(out.data, [0.5])

    def test_relu(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        assert np.allclose(out.data, [0.0, 0.0, 2.0])

    def test_gelu_known_values(self):
        # GELU(0) = 0; GELU(large) ~ identity; GELU(-large) ~ 0
        out = F.gelu(Tensor([0.0, 10.0, -10.0]))
        assert abs(out.data[0]) < 1e-12
        assert abs(out.data[1] - 10.0) < 1e-3
        assert abs(out.data[2]) < 1e-3

    def test_maximum(self):
        out = F.maximum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        assert np.allclose(out.data, [3.0, 5.0])

    def test_where(self):
        out = F.where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        assert np.allclose(out.data, [1.0, 2.0])

    def test_sum_axis(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert np.allclose(F.sum(t, axis=0).data, [3.0, 5.0, 7.0])
        assert np.allclose(F.sum(t, axis=1, keepdims=True).data, [[3.0], [12.0]])

    def test_mean_axis(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert np.allclose(F.mean(t, axis=1).data, [1.0, 4.0])

    def test_max_reduction(self):
        t = Tensor(np.array([[1.0, 9.0], [4.0, 2.0]]))
        assert np.allclose(F.max(t, axis=1).data, [9.0, 4.0])

    def test_matmul_batched(self):
        a = np.random.default_rng(0).normal(size=(2, 3, 4))
        b = np.random.default_rng(1).normal(size=(2, 4, 5))
        out = F.matmul(Tensor(a), Tensor(b))
        assert np.allclose(out.data, a @ b)

    def test_reshape_transpose_roundtrip(self):
        t = Tensor(np.arange(24.0).reshape(2, 3, 4))
        back = F.transpose(F.transpose(t, (2, 0, 1)), (1, 2, 0))
        assert np.allclose(back.data, t.data)

    def test_swapaxes(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert F.swapaxes(t, 0, 1).shape == (3, 2)

    def test_cat(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((3, 2)))
        out = F.cat([a, b], axis=0)
        assert out.shape == (5, 2)

    def test_stack(self):
        a, b = Tensor(np.ones(3)), Tensor(np.zeros(3))
        out = F.stack([a, b], axis=0)
        assert out.shape == (2, 3)

    def test_softmax_rows_sum_to_one(self):
        out = F.softmax(make((4, 7)), axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_stability_large_logits(self):
        out = F.softmax(Tensor([1000.0, 1000.0]))
        assert np.allclose(out.data, [0.5, 0.5])

    def test_log_softmax_matches_log_of_softmax(self):
        x = make((3, 5), seed=2)
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data))

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = F.cross_entropy(logits, np.array([0, 3]))
        assert np.allclose(float(loss.data), np.log(4.0))

    def test_cross_entropy_sum_reduction(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = F.cross_entropy(logits, np.array([0, 3]), reduction="sum")
        assert np.allclose(float(loss.data), 2 * np.log(4.0))

    def test_cross_entropy_bad_reduction(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((1, 2))), np.array([0]), reduction="bogus")

    def test_mse_loss(self):
        loss = F.mse_loss(Tensor([1.0, 3.0]), np.array([1.0, 1.0]))
        assert np.allclose(float(loss.data), 2.0)

    def test_embedding_gathers_rows(self):
        w = Tensor(np.arange(12.0).reshape(4, 3))
        out = F.embedding(w, np.array([[0, 2]]))
        assert np.allclose(out.data, [[[0, 1, 2], [6, 7, 8]]])

    def test_masked_fill(self):
        out = F.masked_fill(Tensor(np.ones((2, 2))), np.array([[True, False], [False, True]]), -9.0)
        assert np.allclose(out.data, [[-9, 1], [1, -9]])

    def test_dropout_eval_identity(self):
        x = make((5, 5))
        assert F.dropout(x, 0.5, training=False) is x

    def test_dropout_zero_p_identity(self):
        x = make((5, 5))
        assert F.dropout(x, 0.0, training=True) is x

    def test_dropout_scales_kept(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        kept = out.data[out.data != 0]
        assert np.allclose(kept, 2.0)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_dropout_p_one_rejected(self):
        with pytest.raises(ValueError):
            F.dropout(make((2,)), 1.0, training=True)


GRADCHECK_CASES = [
    ("add", lambda a, b: F.sum(F.add(a, b)), [(3, 4), (3, 4)]),
    ("add-broadcast", lambda a, b: F.sum(F.add(a, b)), [(3, 4), (4,)]),
    ("sub", lambda a, b: F.sum(F.sub(a, b)), [(2, 3), (2, 3)]),
    ("mul", lambda a, b: F.sum(F.mul(a, b)), [(3, 4), (3, 4)]),
    ("mul-broadcast", lambda a, b: F.sum(F.mul(a, b)), [(2, 3, 4), (4,)]),
    ("div", lambda a, b: F.sum(F.div(a, F.add(F.mul(b, b), 1.0))), [(3,), (3,)]),
    ("matmul", lambda a, b: F.sum(F.matmul(a, b)), [(3, 4), (4, 5)]),
    ("matmul-batched", lambda a, b: F.sum(F.matmul(a, b)), [(2, 3, 4), (2, 4, 5)]),
    ("matmul-bcast-b", lambda a, b: F.sum(F.matmul(a, b)), [(2, 3, 4), (4, 5)]),
]


@pytest.mark.parametrize("name,fn,shapes", GRADCHECK_CASES, ids=[c[0] for c in GRADCHECK_CASES])
def test_binary_gradients(name, fn, shapes):
    a, b = make(shapes[0], seed=1), make(shapes[1], seed=2)
    assert gradcheck(lambda: fn(a, b), [a, b])


UNARY_CASES = [
    ("exp", F.exp, 0.5),
    ("tanh", F.tanh, 1.0),
    ("sigmoid", F.sigmoid, 1.0),
    ("relu", F.relu, 1.0),
    ("gelu", F.gelu, 1.0),
    ("power2", lambda t: F.power(t, 2.0), 1.0),
    ("softmax", lambda t: F.mul(F.softmax(t, axis=-1), t), 1.0),
    ("log_softmax", lambda t: F.mul(F.log_softmax(t, axis=-1), t), 1.0),
]


@pytest.mark.parametrize("name,op,scale", UNARY_CASES, ids=[c[0] for c in UNARY_CASES])
def test_unary_gradients(name, op, scale):
    # offset relu/gelu inputs away from the kink at 0
    x = make((4, 5), seed=3, scale=scale)
    x.data += np.sign(x.data) * 0.05
    assert gradcheck(lambda: F.sum(op(x)), [x], atol=1e-4)


def test_log_gradient():
    x = Tensor(np.random.default_rng(0).uniform(0.5, 2.0, size=(3, 3)), requires_grad=True)
    assert gradcheck(lambda: F.sum(F.log(x)), [x])


def test_sqrt_gradient():
    x = Tensor(np.random.default_rng(0).uniform(0.5, 2.0, size=(4,)), requires_grad=True)
    assert gradcheck(lambda: F.sum(F.sqrt(x)), [x])


@pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True), (-1, False)])
def test_sum_gradient(axis, keepdims):
    x = make((3, 4), seed=4)
    assert gradcheck(lambda: F.sum(F.mul(F.sum(x, axis=axis, keepdims=keepdims), 2.0)), [x])


@pytest.mark.parametrize("axis", [None, 0, 1])
def test_mean_gradient(axis):
    x = make((3, 4), seed=5)
    assert gradcheck(lambda: F.sum(F.mean(x, axis=axis)), [x])


def test_max_gradient_no_ties():
    x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
    assert gradcheck(lambda: F.sum(F.max(x, axis=1)), [x])


def test_max_gradient_split_on_ties():
    x = Tensor(np.ones((1, 4)), requires_grad=True)
    F.sum(F.max(x, axis=1)).backward()
    assert np.allclose(x.grad, 0.25)


def test_reshape_gradient():
    x = make((2, 6), seed=6)
    assert gradcheck(lambda: F.sum(F.mul(F.reshape(x, (3, 4)), 3.0)), [x])


def test_transpose_gradient():
    x = make((2, 3, 4), seed=7)
    const = np.random.default_rng(20).normal(size=(4, 2, 3))
    assert gradcheck(lambda: F.sum(F.mul(F.transpose(x, (2, 0, 1)), Tensor(const))), [x])


def test_getitem_gradient():
    x = make((4, 3), seed=8)
    assert gradcheck(lambda: F.sum(x[1:3]), [x])


def test_getitem_fancy_index_gradient_accumulates():
    x = Tensor(np.zeros((3, 2)), requires_grad=True)
    out = x[np.array([0, 0, 1])]
    F.sum(out).backward()
    assert np.allclose(x.grad, [[2, 2], [1, 1], [0, 0]])


def test_cat_gradient():
    a, b = make((2, 3), seed=9), make((4, 3), seed=10)
    assert gradcheck(lambda: F.sum(F.mul(F.cat([a, b], axis=0), 2.0)), [a, b])


def test_embedding_gradient():
    w = make((5, 3), seed=11)
    idx = np.array([0, 2, 2, 4])
    assert gradcheck(lambda: F.sum(F.embedding(w, idx)), [w])


def test_cross_entropy_gradient():
    logits = make((4, 6), seed=12)
    targets = np.array([0, 5, 2, 2])
    assert gradcheck(lambda: F.cross_entropy(logits, targets), [logits])


def test_mse_gradient():
    pred = make((7,), seed=13)
    target = np.random.default_rng(14).normal(size=7)
    assert gradcheck(lambda: F.mse_loss(pred, target), [pred])


def test_masked_fill_gradient():
    x = make((3, 3), seed=15)
    mask = np.eye(3, dtype=bool)
    assert gradcheck(lambda: F.sum(F.masked_fill(x, mask, -5.0)), [x])


def test_maximum_gradient():
    a, b = make((4,), seed=16), make((4,), seed=17)
    assert gradcheck(lambda: F.sum(F.maximum(a, b)), [a, b])


def test_where_gradient():
    a, b = make((4,), seed=18), make((4,), seed=19)
    cond = np.array([True, False, True, False])
    assert gradcheck(lambda: F.sum(F.where(cond, a, b)), [a, b])


def test_dropout_gradient_matches_mask():
    rng = np.random.default_rng(3)
    x = Tensor(np.ones((10, 10)), requires_grad=True)
    out = F.dropout(x, 0.3, training=True, rng=rng)
    F.sum(out).backward()
    # gradient equals the applied keep/scale mask
    assert np.allclose(x.grad, out.data)
