"""Multi-head attention: shapes, masking semantics, gradients."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadAttention, causal_mask
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


def test_output_shape():
    mha = MultiHeadAttention(16, 4, seed=0)
    x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 16)))
    assert mha(x).shape == (2, 5, 16)


def test_dim_head_divisibility_checked():
    with pytest.raises(ValueError):
        MultiHeadAttention(10, 3)


def test_causal_mask_shape_and_content():
    m = causal_mask(4)
    assert m.shape == (4, 4)
    assert not m[2, 1] and m[1, 2]  # can see past, not future
    assert not m.diagonal().any()


def test_causal_masking_blocks_future():
    """Changing a future token must not affect earlier outputs."""
    mha = MultiHeadAttention(8, 2, seed=1)
    rng = np.random.default_rng(2)
    x = rng.normal(size=(1, 4, 8))
    mask = causal_mask(4)
    out1 = mha(Tensor(x), attn_mask=mask).data.copy()
    x2 = x.copy()
    x2[0, 3] += 10.0  # perturb the last position
    out2 = mha(Tensor(x2), attn_mask=mask).data
    assert np.allclose(out1[0, :3], out2[0, :3], atol=1e-10)
    assert not np.allclose(out1[0, 3], out2[0, 3])


def test_full_mask_attends_nowhere_gives_uniform():
    """With all scores masked, softmax degrades to uniform; output finite."""
    mha = MultiHeadAttention(8, 2, seed=3)
    x = Tensor(np.random.default_rng(0).normal(size=(1, 3, 8)))
    mask = np.ones((3, 3), dtype=bool)
    out = mha(x, attn_mask=mask)
    assert np.isfinite(out.data).all()


def test_cross_attention_key_value():
    mha = MultiHeadAttention(8, 2, seed=4)
    q = Tensor(np.random.default_rng(1).normal(size=(2, 3, 8)))
    kv = Tensor(np.random.default_rng(2).normal(size=(2, 7, 8)))
    out = mha(q, key=kv)
    assert out.shape == (2, 3, 8)


def test_gradients_reach_all_projections():
    mha = MultiHeadAttention(8, 2, seed=5)
    x = Tensor(np.random.default_rng(3).normal(size=(1, 4, 8)))
    F.sum(mha(x)).backward()
    for proj in (mha.q_proj, mha.k_proj, mha.v_proj, mha.out_proj):
        assert proj.weight.grad is not None
        assert np.abs(proj.weight.grad).sum() > 0


def test_attention_is_permutation_equivariant():
    """Without positional encodings, self-attention commutes with sequence
    permutations — position info must come from the embedding stage."""
    mha = MultiHeadAttention(8, 2, seed=6)
    rng = np.random.default_rng(4)
    x = rng.normal(size=(1, 4, 8))
    out1 = mha(Tensor(x)).data
    out2 = mha(Tensor(x[:, ::-1].copy())).data
    assert np.allclose(out1, out2[:, ::-1], atol=1e-10)


def test_pruning_mask_on_projection_changes_output():
    mha = MultiHeadAttention(8, 2, seed=7)
    x = Tensor(np.random.default_rng(5).normal(size=(1, 3, 8)))
    base = mha(x).data.copy()
    mask = np.ones((8, 8))
    mask[:, :4] = 0.0
    mha.q_proj.set_mask(mask)
    assert not np.allclose(base, mha(x).data)
