"""End-to-end integration scenarios across all packages.

Each test exercises a realistic user journey rather than a single module:
train -> search -> deploy -> reconfigure, with invariants checked at every
hand-off.
"""

import numpy as np
import pytest

from repro.core import (
    BlockPruningConfig,
    ControllerConfig,
    RT3,
    RT3Config,
    RuntimeAdapter,
    SearchSpaceConfig,
)
from repro.core.trainer import TrainConfig, train_plain
from repro.deploy import export_bundle, load_bundle
from repro.hardware import OdroidXU3, paper_scale_transformer
from repro.hardware.energy_sim import ModeAssignment
from repro.hardware.latency import SparsityKind
from repro.nn.transformer import TransformerLM
from repro.tensor.tensor import Tensor

from tests.conftest import TINY_TRANSFORMER

pytestmark = pytest.mark.slow


def quick_cfg(deadline=0.104, episodes=2):
    return RT3Config(
        deadline_s=deadline, episodes=episodes,
        bp=BlockPruningConfig(num_blocks=2, rate=0.3),
        space=SearchSpaceConfig(pattern_size=8, theta=2, patterns_per_set=2),
        controller=ControllerConfig(seed=0),
        episode_train=TrainConfig(epochs=1, lr=2e-3),
        finetune_train=TrainConfig(epochs=1, lr=2e-3),
        backbone_finetune_epochs=1,
    )


@pytest.fixture()
def searched(lm_task):
    train_plain(lm_task, epochs=2, lr=3e-3)
    rt3 = RT3(lm_task, paper_scale_transformer(), quick_cfg())
    return rt3, rt3.search()


class TestSearchToDeployment:
    def test_search_deploy_adapt_roundtrip(self, tmp_path, searched):
        """Full journey: search -> bundle -> fresh device -> DVFS swaps."""
        rt3, result = searched
        bundle = export_bundle(rt3, result)
        path = bundle.save(tmp_path / "bundle")

        # "device side": fresh process, fresh model
        loaded = load_bundle(path)
        device_model = TransformerLM(TINY_TRANSFORMER)
        manager = loaded.install(device_model, level_name="l6")

        # run the governor's descent, swapping pattern sets at each level
        plat = OdroidXU3()
        sparsities_seen = []
        for level_name in ("l6", "l4", "l3"):
            manager.apply(loaded.binding_for(level_name).pattern_set)
            sparsities_seen.append(manager.combined_sparsity())
            toks = np.random.default_rng(0).integers(0, 60, size=(1, 8))
            device_model.eval()
            logits = device_model(Tensor(toks))
            assert np.isfinite(logits.data).all(), level_name
        # descending levels need ascending sparsity
        assert sparsities_seen[0] < sparsities_seen[-1]

    def test_bundle_switch_bytes_match_manager(self, searched):
        rt3, result = searched
        bundle = export_bundle(rt3, result)
        for name in ("l3", "l4", "l6"):
            manager_bytes = rt3.manager.swap_nbytes(result.best.pattern_sets[name])
            assert bundle.switch_bytes(name) == pytest.approx(manager_bytes)


class TestSearchToEnergyAccounting:
    def test_reported_runs_match_independent_simulation(self, searched):
        """RT3Result's runs must be reproducible from raw hardware models."""
        rt3, result = searched
        sim = OdroidXU3().simulator(paper_scale_transformer(),
                                    pattern_size=rt3.cfg.space.hardware_pattern_size)
        assignments = [
            ModeAssignment(
                name,
                rt3.space.total_sparsity(result.best.pattern_sets[name].sparsity),
                SparsityKind.PATTERN,
                num_patterns=len(result.best.pattern_sets[name]),
            )
            for name in ("l3", "l4", "l6")
        ]
        campaign = sim.run_campaign(assignments, rt3.cfg.deadline_s)
        assert campaign.total_runs == pytest.approx(result.final_total_runs, rel=1e-9)


class TestAdapterWithSearchedSets:
    def test_adapter_tracks_deadline_with_searched_ladder(self, searched):
        rt3, result = searched
        ladder = {
            rt3.space.total_sparsity(ps.sparsity): ps
            for ps in result.best.pattern_sets.values()
        }
        adapter = RuntimeAdapter(ladder, paper_scale_transformer(),
                                 manager=rt3.manager)
        plat = OdroidXU3()
        # generous deadline -> least sparse; tight -> sparser
        loose = adapter.adapt(plat.dvfs["l6"], 1.0)
        assert loose.chosen_sparsity == min(ladder)
        lm = plat.latency
        tight_deadline = lm.latency_s(paper_scale_transformer(), plat.dvfs["l3"],
                                      max(ladder), SparsityKind.PATTERN) * 1.01
        tight = adapter.adapt(plat.dvfs["l3"], tight_deadline)
        assert tight.chosen_sparsity == max(ladder)
        assert adapter.manager.combined_sparsity() >= max(ladder) - 0.05


class TestCrossTaskConsistency:
    def test_same_seed_same_search(self, corpus):
        """Whole-pipeline determinism under a fixed seed."""
        from repro.core.tasks import LMTask

        results = []
        for _ in range(2):
            model = TransformerLM(TINY_TRANSFORMER)
            task = LMTask(model, corpus, seq_len=12, batch_size=8,
                          max_train_batches=6, max_eval_batches=2)
            train_plain(task, epochs=1, lr=3e-3)
            rt3 = RT3(task, paper_scale_transformer(), quick_cfg(episodes=2))
            res = rt3.search()
            results.append(res)
        a, b = results
        assert a.final_total_runs == pytest.approx(b.final_total_runs)
        assert a.final_accuracies == b.final_accuracies
        assert [s.terms.reward for s in a.history] == pytest.approx(
            [s.terms.reward for s in b.history])
