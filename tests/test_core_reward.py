"""Equation (1): the three reward cases and their edge conditions."""

import math

import pytest

from repro.core.reward import (
    RewardConfig,
    accuracy_order_ok,
    compute_reward,
    runs_reward,
)


def cfg(**kwargs):
    defaults = dict(backbone_accuracy=0.9, min_accuracy=0.5, deadline_s=0.1,
                    penalty=0.3, runs_ref=1e6)
    defaults.update(kwargs)
    return RewardConfig(**defaults)


class TestConfigValidation:
    def test_ao_must_exceed_am(self):
        with pytest.raises(ValueError):
            cfg(backbone_accuracy=0.5, min_accuracy=0.5)

    def test_deadline_positive(self):
        with pytest.raises(ValueError):
            cfg(deadline_s=0.0)

    def test_runs_ref_positive(self):
        with pytest.raises(ValueError):
            cfg(runs_ref=0.0)

    def test_penalty_non_negative(self):
        with pytest.raises(ValueError):
            cfg(penalty=-0.1)

    def test_alpha_length_checked(self):
        c = cfg(alpha=[0.5, 0.5])
        with pytest.raises(ValueError):
            compute_reward(c, [0.05, 0.05, 0.05], 5e5, [0.9, 0.8, 0.7])


class TestCase1DeadlineViolated:
    def test_reward_is_minus_one_plus_rruns(self):
        terms = compute_reward(cfg(), [0.05, 0.2], 5e5, None)
        assert terms.reward == pytest.approx(-1.0 + 0.5)
        assert not terms.deadline_met

    def test_no_accuracies_needed(self):
        terms = compute_reward(cfg(), [0.2, 0.2], 0.0)
        assert math.isnan(terms.weighted_accuracy)

    def test_always_below_feasible_rewards(self):
        """A deadline violation can never beat a feasible solution with the
        same runs (assuming Aw >= Am)."""
        infeasible = compute_reward(cfg(), [0.2], 9e5)
        feasible = compute_reward(cfg(), [0.05], 9e5, [0.6])
        assert infeasible.reward < feasible.reward


class TestCase2Ordered:
    def test_full_accuracy_reward(self):
        terms = compute_reward(cfg(), [0.05, 0.06], 1e6, [0.9, 0.8])
        aw = 0.85
        expected = (aw - 0.5) / (0.9 - 0.5) + 1.0
        assert terms.reward == pytest.approx(expected)
        assert terms.deadline_met and terms.accuracy_ordered

    def test_alpha_weighting(self):
        c = cfg(alpha=[3.0, 1.0])
        terms = compute_reward(c, [0.05, 0.05], 1e6, [0.9, 0.7])
        assert terms.weighted_accuracy == pytest.approx(0.85)

    def test_accuracies_required(self):
        with pytest.raises(ValueError):
            compute_reward(cfg(), [0.05], 1e6, None)

    def test_aw_above_backbone_exceeds_one_norm(self):
        """RT3 can beat the backbone (Fig. 3 observation) — the normalized
        accuracy term then exceeds 1; no clipping."""
        terms = compute_reward(cfg(), [0.05], 0.0, [0.95])
        assert terms.reward > 1.0 - 1e-9


class TestCase3Unordered:
    def test_penalty_applied(self):
        ordered = compute_reward(cfg(), [0.05, 0.05], 1e6, [0.9, 0.8])
        swapped = compute_reward(cfg(), [0.05, 0.05], 1e6, [0.8, 0.9])
        assert swapped.reward == pytest.approx(ordered.reward - 0.3)
        assert not swapped.accuracy_ordered

    def test_ties_count_as_violation(self):
        terms = compute_reward(cfg(), [0.05, 0.05], 1e6, [0.8, 0.8])
        assert not terms.accuracy_ordered


class TestHelpers:
    def test_accuracy_order(self):
        assert accuracy_order_ok([0.9, 0.8, 0.7])
        assert not accuracy_order_ok([0.9, 0.9, 0.7])
        assert not accuracy_order_ok([0.7, 0.8])
        assert accuracy_order_ok([0.5])

    def test_runs_reward_clipped(self):
        assert runs_reward(2e6, 1e6) == 1.0
        assert runs_reward(5e5, 1e6) == 0.5
        with pytest.raises(ValueError):
            runs_reward(-1.0, 1e6)

    def test_empty_latencies_rejected(self):
        with pytest.raises(ValueError):
            compute_reward(cfg(), [], 1e5)
