"""Energy simulator: Table II anchors and analytic/event-driven agreement."""

import pytest

from repro.hardware.energy_sim import ModeAssignment
from repro.hardware.latency import SparsityKind
from repro.hardware.platform import OdroidXU3
from repro.hardware.workload import paper_scale_transformer

S_BP = 0.6426  # Table IV: BP backbone sparsity (model M1)
DEADLINE = 0.115  # Table II timing constraint


@pytest.fixture(scope="module")
def plat():
    return OdroidXU3()


@pytest.fixture(scope="module")
def sim(plat):
    return plat.simulator(paper_scale_transformer())


def m1(level):
    return ModeAssignment(level, S_BP, SparsityKind.BLOCK)


class TestTableIIAnchors:
    def test_e1_runs_near_paper(self, sim):
        """E1 (no reconfig, always l6): paper reports 1.53e6 runs."""
        e1 = sim.single_level_campaign(m1("l6"), DEADLINE)
        assert e1.total_runs == pytest.approx(1.53e6, rel=0.02)
        assert e1.all_deadlines_met

    def test_e2_improvement_near_17_percent(self, sim):
        """E2 (DVFS only): paper reports +17.30% runs over E1."""
        e1 = sim.single_level_campaign(m1("l6"), DEADLINE)
        e2 = sim.run_campaign([m1("l6"), m1("l4"), m1("l3")], DEADLINE,
                              charge_switches=False)
        improvement = e2.total_runs / e1.total_runs - 1.0
        assert 0.10 < improvement < 0.25

    def test_e2_violates_deadline_at_low_levels(self, sim):
        """The paper's point: N-Mode (160 ms) and E-Mode (201 ms) miss T."""
        e2 = sim.run_campaign([m1("l6"), m1("l4"), m1("l3")], DEADLINE,
                              charge_switches=False)
        met = {o.level.name: o.meets_deadline for o in e2.outcomes}
        assert met["l6"] and not met["l4"] and not met["l3"]

    def test_e3_improves_and_meets_deadlines(self, sim, plat):
        """E3 (HW+SW reconfig): paper reports 1.78x over E1, all deadlines."""
        wl = paper_scale_transformer()
        lat = plat.latency
        s4 = lat.sparsity_for_deadline(wl, plat.dvfs["l4"], 0.1006, SparsityKind.PATTERN)
        s3 = lat.sparsity_for_deadline(wl, plat.dvfs["l3"], 0.0906, SparsityKind.PATTERN)
        e1 = sim.single_level_campaign(m1("l6"), DEADLINE)
        e3 = sim.run_campaign(
            [ModeAssignment("l6", S_BP, SparsityKind.BLOCK, num_patterns=8),
             ModeAssignment("l4", s4, SparsityKind.PATTERN, num_patterns=8),
             ModeAssignment("l3", s3, SparsityKind.PATTERN, num_patterns=8)],
            DEADLINE,
        )
        assert e3.all_deadlines_met
        ratio = e3.total_runs / e1.total_runs
        assert 1.4 < ratio < 2.1  # paper: 1.78x

    def test_no_opt_runs_near_paper(self, sim):
        """Table IV: the dense model gets ~0.55e6 runs."""
        dense = sim.single_level_campaign(ModeAssignment("l6"), 0.4)
        assert dense.total_runs == pytest.approx(0.55e6, rel=0.05)

    def test_ordering_e3_gt_e2_gt_e1(self, sim, plat):
        wl = paper_scale_transformer()
        lat = plat.latency
        s4 = lat.sparsity_for_deadline(wl, plat.dvfs["l4"], 0.1006, SparsityKind.PATTERN)
        s3 = lat.sparsity_for_deadline(wl, plat.dvfs["l3"], 0.0906, SparsityKind.PATTERN)
        e1 = sim.single_level_campaign(m1("l6"), DEADLINE).total_runs
        e2 = sim.run_campaign([m1("l6"), m1("l4"), m1("l3")], DEADLINE,
                              charge_switches=False).total_runs
        e3 = sim.run_campaign(
            [ModeAssignment("l6", S_BP, SparsityKind.BLOCK, num_patterns=8),
             ModeAssignment("l4", s4, SparsityKind.PATTERN, num_patterns=8),
             ModeAssignment("l3", s3, SparsityKind.PATTERN, num_patterns=8)],
            DEADLINE).total_runs
        assert e3 > e2 > e1


class TestCampaignMechanics:
    def test_assignments_must_cover_levels(self, sim):
        with pytest.raises(ValueError):
            sim.run_campaign([m1("l6")], DEADLINE)

    def test_runs_split_matches_governor_fractions(self, sim):
        res = sim.run_campaign([m1("l6"), m1("l4"), m1("l3")], DEADLINE,
                               charge_switches=False)
        by = res.runs_by_level()
        # l6 gets 60% of energy; at equal energy/run it gets most runs
        assert by["l6"] > by["l4"] > by["l3"]

    def test_switch_costs_reduce_runs(self, sim):
        free = sim.run_campaign(
            [ModeAssignment("l6", 0.1, SparsityKind.PATTERN, num_patterns=4),
             ModeAssignment("l4", 0.3, SparsityKind.PATTERN, num_patterns=4),
             ModeAssignment("l3", 0.5, SparsityKind.PATTERN, num_patterns=4)],
            DEADLINE, charge_switches=False)
        charged = sim.run_campaign(
            [ModeAssignment("l6", 0.1, SparsityKind.PATTERN, num_patterns=4),
             ModeAssignment("l4", 0.3, SparsityKind.PATTERN, num_patterns=4),
             ModeAssignment("l3", 0.5, SparsityKind.PATTERN, num_patterns=4)],
            DEADLINE, charge_switches=True)
        assert charged.total_runs < free.total_runs
        assert charged.switch_seconds > 0

    def test_model_reload_switches_cost_much_more(self, sim):
        """UB-style switching (full reload) burns visibly more energy."""
        pattern = sim.run_campaign(
            [ModeAssignment("l6", 0.2, SparsityKind.PATTERN, num_patterns=4),
             ModeAssignment("l4", 0.4, SparsityKind.PATTERN, num_patterns=4),
             ModeAssignment("l3", 0.6, SparsityKind.PATTERN, num_patterns=4)],
            DEADLINE)
        reload_style = sim.run_campaign(
            [ModeAssignment("l6", 0.2, SparsityKind.PATTERN, num_patterns=0),
             ModeAssignment("l4", 0.4, SparsityKind.PATTERN, num_patterns=0),
             ModeAssignment("l3", 0.6, SparsityKind.PATTERN, num_patterns=0)],
            DEADLINE)
        assert reload_style.switch_seconds > 100 * pattern.switch_seconds

    def test_custom_budget(self, sim):
        half = sim.single_level_campaign(m1("l6"), DEADLINE, budget_j=100.0)
        full = sim.single_level_campaign(m1("l6"), DEADLINE, budget_j=200.0)
        assert full.total_runs == pytest.approx(2 * half.total_runs)


class TestEventDrivenAgreement:
    def test_matches_analytic_total(self, sim):
        assignments = [m1("l6"), m1("l4"), m1("l3")]
        analytic = sim.run_campaign(assignments, DEADLINE, charge_switches=False)
        event, timeline = sim.simulate_discharge(assignments, DEADLINE)
        assert event.total_runs == pytest.approx(analytic.total_runs, rel=0.02)

    def test_timeline_descends_through_levels(self, sim):
        assignments = [m1("l6"), m1("l4"), m1("l3")]
        _, timeline = sim.simulate_discharge(assignments, DEADLINE)
        names = [name for _, name in timeline]
        assert names == ["l6", "l4", "l3"]
        fractions = [f for f, _ in timeline]
        assert fractions == sorted(fractions, reverse=True)

    def test_event_driven_validates_coverage(self, sim):
        with pytest.raises(ValueError):
            sim.simulate_discharge([m1("l6")], DEADLINE)
