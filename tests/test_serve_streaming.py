"""Streaming serving core: admission, event loop, offline equivalence."""

import numpy as np
import pytest

from repro.core.patterns import MaskManager, random_pattern_set
from repro.core.runtime_policy import RuntimeAdapter
from repro.hardware.latency import LatencyModel, SparsityKind
from repro.hardware.dvfs import DVFSTable
from repro.hardware.workload import profile_from_model
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.serve import (
    AdmissionQueue,
    ArtifactCache,
    InferenceRequest,
    MicroBatcher,
    ScenarioConfig,
    ServeEngine,
    StreamingEngine,
    build_scenario,
    stream_scenario,
)

LM_CFG = TransformerConfig(vocab_size=60, dim=32, num_heads=2, ffn_dim=64,
                           num_encoder_layers=2, num_decoder_layers=1,
                           max_len=16, dropout=0.0, seed=3)


def req(req_id, arrival=0.0, level="l6", deadline=10.0, length=6, seed=0):
    rng = np.random.default_rng(seed + req_id)
    return InferenceRequest(req_id, rng.integers(1, 60, size=length),
                            arrival_s=arrival, deadline_s=deadline,
                            level_name=level)


def build_engine(model, **kwargs):
    wl = profile_from_model(model, seq_len=12)
    ladder = {s: random_pattern_set(8, s, 2, np.random.default_rng(0))
              for s in (0.3, 0.5, 0.7, 0.9)}
    adapter = RuntimeAdapter(ladder, wl, manager=MaskManager(model),
                             hardware_pattern_size=8)
    return ServeEngine(model, adapter, cache=ArtifactCache(), **kwargs), wl


# ---------------------------------------------------------------------------
# AdmissionQueue: the incremental half of micro-batching
# ---------------------------------------------------------------------------

class TestAdmissionQueue:
    def test_full_group_flushes_on_admission(self):
        q = AdmissionQueue(max_batch=2, max_wait_s=1.0)
        full, window = q.add(req(0, 0.0), 0.0)
        assert full is None
        assert window is not None and window[0] == pytest.approx(1.0)
        full, window = q.add(req(1, 0.1), 0.1)
        assert window is None  # joined the existing group
        assert full is not None and full.full
        assert [r.req_id for r in full.requests] == [0, 1]
        assert full.ready_s == pytest.approx(0.1)  # full: last arrival
        assert len(q) == 0

    def test_window_close_releases_partial_group(self):
        q = AdmissionQueue(max_batch=8, max_wait_s=0.05)
        _, window = q.add(req(0, 0.0), 0.0)
        deadline, key, generation = window
        assert deadline == pytest.approx(0.05)
        group = q.close_generation(key, generation)
        assert group is not None and not group.full
        assert group.ready_s == pytest.approx(0.05)  # partial: window close

    def test_stale_generation_close_is_ignored(self):
        q = AdmissionQueue(max_batch=1, max_wait_s=0.05)
        full, window = q.add(req(0, 0.0), 0.0)
        assert full is not None  # max_batch=1: flushed immediately
        deadline, key, generation = window
        assert q.close_generation(key, generation) is None  # already gone
        # a re-opened group gets a fresh generation
        _, window2 = q.add(req(1, 0.01), 0.01)
        assert window2[2] != generation

    def test_close_due_strict_vs_inclusive(self):
        q = AdmissionQueue(max_batch=8, max_wait_s=0.05)
        q.add(req(0, 0.0), 0.0)
        assert q.close_due(0.05, strict=True) == []
        assert len(q.close_due(0.05)) == 1

    def test_flush_remaining_oldest_first(self):
        q = AdmissionQueue(max_batch=8, max_wait_s=1.0)
        q.add(req(0, 0.0, level="l6"), 0.0)
        q.add(req(1, 0.1, level="l4"), 0.1)
        q.add(req(2, 0.2, level="l3"), 0.2)
        groups = q.flush_remaining()
        assert [g.requests[0].req_id for g in groups] == [0, 1, 2]
        assert q.next_deadline_s() is None

    def test_admissions_must_be_time_ordered(self):
        q = AdmissionQueue()
        q.add(req(0, 1.0), 1.0)
        with pytest.raises(ValueError, match="time-ordered"):
            q.add(req(1, 0.5), 0.5)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_batch=0)
        with pytest.raises(ValueError):
            AdmissionQueue(max_wait_s=-1.0)


# ---------------------------------------------------------------------------
# MicroBatcher is the trace replay of the admission queue — pin it against
# an independent implementation of the historical grouping algorithm
# ---------------------------------------------------------------------------

def reference_batches(requests, max_batch, window_s, key_fn):
    """The pre-refactor MicroBatcher algorithm, kept as an oracle."""
    ordered = sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
    open_groups, flush_order = {}, []

    def flush(key):
        group = open_groups.pop(key, None)
        if group:
            flush_order.append(group)

    for r in ordered:
        for key in list(open_groups):
            if r.arrival_s - open_groups[key][0].arrival_s > window_s:
                flush(key)
        key = key_fn(r)
        open_groups.setdefault(key, []).append(r)
        if len(open_groups[key]) >= max_batch:
            flush(key)
    for key in sorted(open_groups, key=lambda k: open_groups[k][0].arrival_s):
        flush(key)
    return flush_order


class TestMicroBatcherEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_traces_group_identically(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 40))
        max_batch = int(rng.integers(1, 6))
        window = float(rng.choice([0.0, 0.01, 0.05, 0.2]))
        levels = ["l6", "l4", "l3"]
        t = 0.0
        reqs = []
        for i in range(n):
            # duplicate arrival times on purpose (simultaneous arrivals)
            t += float(rng.choice([0.0, 0.005, 0.02, 0.1]))
            reqs.append(req(i, t, level=str(rng.choice(levels))))
        key_fn = lambda r: r.level_name  # noqa: E731
        got = MicroBatcher(max_batch, window, key_fn).batches(reqs)
        want = reference_batches(reqs, max_batch, window, key_fn)
        assert [[r.req_id for r in g] for g in got] == \
               [[r.req_id for r in g] for g in want]


# ---------------------------------------------------------------------------
# streaming loop semantics
# ---------------------------------------------------------------------------

class TestStreamingLoop:
    def make_core(self, model=None, **kwargs):
        model = model or TransformerLM(LM_CFG).eval()
        engine, wl = build_engine(model, **kwargs)
        return engine.streaming(), wl

    def test_submit_in_the_past_rejected(self):
        core, _ = self.make_core()
        core.tick(1.0)
        with pytest.raises(ValueError, match="arrives at"):
            core.submit(req(0, 0.5))

    def test_tick_must_advance(self):
        core, _ = self.make_core()
        core.tick(1.0)
        with pytest.raises(ValueError, match="monotonically"):
            core.tick(0.5)

    def test_submit_restamps_arrival(self):
        core, _ = self.make_core()
        r = req(0, 0.0)
        core.submit(r, arrival_s=0.25)
        assert r.arrival_s == 0.25
        assert core.next_event_s() == pytest.approx(0.25)

    def test_completions_release_with_ticks(self):
        core, wl = self.make_core(max_batch=4, window_s=0.01)
        trace = build_scenario("steady", wl, ScenarioConfig(num_requests=12,
                                                            seed=3))
        for r in trace:
            core.submit(r)
        horizon = trace[5].arrival_s
        early = core.tick(horizon)
        assert all(r.completion_s <= horizon for r in early)
        late = core.drain()
        assert len(early) + len(late) == 12
        # completions come out in completion order
        times = [r.completion_s for r in early] + [r.completion_s for r in late]
        assert times == sorted(times)
        assert core.next_event_s() is None
        assert core.backlog() == 0

    def test_window_close_flushes_without_further_arrivals(self):
        core, _ = self.make_core(max_batch=8, window_s=0.02)
        core.submit(req(0, 0.0))
        assert core.tick(0.019) == []  # window still open: nothing admitted
        done = core.tick(1.0)  # window closed at 0.02, batch executed
        assert len(done) == 1
        assert done[0].queue_wait_s >= 0.02  # waited out the full window

    def test_zero_window_serves_per_request(self):
        core, wl = self.make_core(max_batch=8, window_s=0.0)
        trace = build_scenario("steady", wl, ScenarioConfig(num_requests=10,
                                                            seed=3))
        for r in trace:  # steady arrivals are strictly increasing
            core.submit(r)
        core.drain()
        report = core.report()
        assert report.num_batches == 10
        assert report.mean_batch_size == 1.0

    def test_zero_window_still_batches_simultaneous_arrivals(self):
        core, _ = self.make_core(max_batch=8, window_s=0.0)
        for i in range(4):
            core.submit(req(i, 0.5))  # identical arrival instants
        core.drain()
        report = core.report()
        assert report.num_batches == 1
        assert report.results[0].batch_size == 4

    def test_play_batches_simultaneous_zero_window_arrivals(self):
        # the CLI/bench feeding path: per-arrival online feeding must not
        # split same-instant ties, even at a zero-width window — play()
        # ticks lagging one arrival behind, so the tie group is fully
        # admitted before its window deadline fires
        core, _ = self.make_core(max_batch=8, window_s=0.0)
        done = core.play([req(0, 0.25), req(1, 0.5), req(2, 0.5),
                          req(3, 0.5), req(4, 0.75)])
        assert len(done) == 5
        report = core.report()
        sizes = sorted(r.batch_size for r in report.results
                       if r.request.req_id in (1, 2, 3))
        assert sizes == [3, 3, 3]  # the tie stayed one batch
        assert report.num_batches == 3

    def test_retain_results_false_bounds_session_state(self):
        model = TransformerLM(LM_CFG).eval()
        engine, wl = build_engine(model)
        core = engine.streaming()
        core.retain_results = False
        trace = build_scenario("steady", wl, ScenarioConfig(num_requests=12,
                                                            seed=3))
        done = core.play(trace)
        assert len(done) == 12  # completions still handed to the caller
        report = core.report()
        assert report.results == []  # nothing retained inside the session
        assert report.num_batches > 0  # aggregate accounting still there
        assert sum(s.requests for s in report.shard_stats) == 12

    def test_tick_landing_on_window_deadline_admits_arrivals_first(self):
        # the heap orders same-instant arrivals before window closes, so
        # submitting a tie group and then ticking exactly to its instant
        # (also the zero-width window deadline) still forms one batch
        core, _ = self.make_core(max_batch=8, window_s=0.0)
        for i in range(3):
            core.submit(req(i, 0.5))
        core.tick(0.5)
        core.drain()
        assert core.report().num_batches == 1

    def test_max_batch_one_never_groups(self):
        core, _ = self.make_core(max_batch=1, window_s=10.0)
        for i in range(5):
            core.submit(req(i, 0.1 * i))
        core.drain()
        report = core.report()
        assert report.num_batches == 5
        assert {r.batch_size for r in report.results} == {1}

    def test_invalid_config_rejected(self):
        model = TransformerLM(LM_CFG).eval()
        wl = profile_from_model(model, seq_len=12)
        ladder = {0.5: random_pattern_set(8, 0.5, 2, np.random.default_rng(0))}
        adapter = RuntimeAdapter(ladder, wl, hardware_pattern_size=8)
        with pytest.raises(ValueError, match="devices"):
            StreamingEngine(model, adapter, devices=0)
        with pytest.raises(ValueError, match="dispatch policy"):
            StreamingEngine(model, adapter, policy="fastest-first")
        with pytest.raises(ValueError, match="drain policy"):
            StreamingEngine(model, adapter, drain_policy="lifo")
        with pytest.raises(ValueError, match="max_wait_s"):
            StreamingEngine(model, adapter, max_wait_s=float("inf"))


# ---------------------------------------------------------------------------
# scenario streams are lazy and agree with the materialized traces
# ---------------------------------------------------------------------------

class TestScenarioStreams:
    @pytest.mark.parametrize("name", ["steady", "bursty", "battery",
                                      "bandwidth"])
    def test_stream_matches_trace(self, name, tiny_transformer):
        wl = profile_from_model(tiny_transformer, seq_len=12)
        cfg = ScenarioConfig(num_requests=24, seed=11)
        stream = stream_scenario(name, wl, cfg)
        assert not isinstance(stream, list)  # lazy iterator, not a trace
        first = next(stream)  # pulling one does not materialize the rest
        rest = list(stream)
        trace = build_scenario(name, wl, cfg)
        assert len(rest) + 1 == len(trace)
        for a, b in zip([first] + rest, trace):
            assert a.req_id == b.req_id
            assert a.arrival_s == b.arrival_s
            assert a.deadline_s == b.deadline_s
            assert a.level_name == b.level_name
            np.testing.assert_array_equal(a.tokens, b.tokens)

    def test_unknown_scenario_rejected(self, tiny_transformer):
        wl = profile_from_model(tiny_transformer, seq_len=12)
        with pytest.raises(ValueError, match="unknown scenario"):
            stream_scenario("tsunami", wl)


# ---------------------------------------------------------------------------
# streaming-vs-offline equivalence: the offline wrapper (submit the whole
# trace, drain) and incremental online feeding must produce identical
# batching, placement, simulated timing and outputs
# ---------------------------------------------------------------------------

def assert_reports_equivalent(a, b):
    assert a.num_requests == b.num_requests
    assert a.num_batches == b.num_batches
    by_id_a = {r.request.req_id: r for r in a.results}
    by_id_b = {r.request.req_id: r for r in b.results}
    assert by_id_a.keys() == by_id_b.keys()
    for rid, ra in by_id_a.items():
        rb = by_id_b[rid]
        assert ra.batch_id == rb.batch_id
        assert ra.batch_size == rb.batch_size
        assert ra.shard_id == rb.shard_id
        assert ra.sparsity == rb.sparsity
        assert ra.queue_wait_s == rb.queue_wait_s
        assert ra.service_s == rb.service_s
        assert ra.completion_s == rb.completion_s
        np.testing.assert_array_equal(ra.output, rb.output)
    assert [e.chosen_sparsity for e in a.events] == \
           [e.chosen_sparsity for e in b.events]
    assert [e.switched for e in a.events] == [e.switched for e in b.events]
    assert [(s.shard_id, s.requests, s.batches, s.busy_s, s.switches)
            for s in a.shard_stats] == \
           [(s.shard_id, s.requests, s.batches, s.busy_s, s.switches)
            for s in b.shard_stats]


def run_offline_and_streaming(scenario, devices, policy, n=32, tick_every=1,
                              seed=7):
    offline_engine, wl = build_engine(TransformerLM(LM_CFG).eval(),
                                      devices=devices, policy=policy)
    trace = build_scenario(scenario, wl, ScenarioConfig(num_requests=n,
                                                        seed=seed))
    offline = offline_engine.serve(trace)

    online_engine, _ = build_engine(TransformerLM(LM_CFG).eval(),
                                    devices=devices, policy=policy)
    core = online_engine.streaming()
    if tick_every == 1:
        core.play(trace)
    else:
        # a coarser hand-rolled schedule, still honouring play()'s
        # lag-one-arrival contract (never tick to an instant before all
        # its arrivals are submitted)
        prev = None
        for i, r in enumerate(trace):
            if prev is not None and i % tick_every == 0 and r.arrival_s > prev:
                core.tick(prev)
            core.submit(r)
            prev = r.arrival_s
        core.drain()
    return offline, core.report()


FAST_MATRIX = [
    ("steady", 1, "round-robin"),
    ("bursty", 1, "round-robin"),
    ("battery", 1, "round-robin"),
    ("bandwidth", 1, "round-robin"),
    ("bursty", 4, "least-loaded"),
    ("bandwidth", 4, "switch-aware"),
]
FULL_MATRIX = [(s, d, p)
               for s in ("steady", "bursty", "battery", "bandwidth")
               for d in (1, 4)
               for p in ("round-robin", "least-loaded", "switch-aware")
               if (s, d, p) not in FAST_MATRIX]


class TestStreamingOfflineEquivalence:
    @pytest.mark.parametrize("scenario,devices,policy", FAST_MATRIX)
    def test_equivalence_fast_matrix(self, scenario, devices, policy):
        offline, streaming = run_offline_and_streaming(scenario, devices,
                                                       policy)
        assert_reports_equivalent(offline, streaming)

    @pytest.mark.slow
    @pytest.mark.parametrize("scenario,devices,policy", FULL_MATRIX)
    def test_equivalence_full_matrix(self, scenario, devices, policy):
        offline, streaming = run_offline_and_streaming(scenario, devices,
                                                       policy)
        assert_reports_equivalent(offline, streaming)

    def test_equivalence_independent_of_tick_granularity(self):
        a, _ = run_offline_and_streaming("bursty", 4, "least-loaded",
                                         tick_every=1)
        _, coarse = run_offline_and_streaming("bursty", 4, "least-loaded",
                                              tick_every=5)
        assert_reports_equivalent(a, coarse)

    def test_wrapper_metrics_match_streaming_summary(self):
        offline, streaming = run_offline_and_streaming("steady", 1,
                                                       "round-robin")
        assert offline.sim_throughput_rps == streaming.sim_throughput_rps
        assert offline.p50_latency_s == streaming.p50_latency_s
        assert offline.p95_latency_s == streaming.p95_latency_s
        assert offline.sim_makespan_s == streaming.sim_makespan_s


# ---------------------------------------------------------------------------
# adaptive drain: each shard picks its own policy from observed switches
# ---------------------------------------------------------------------------

def mixed_fleet_trace(wl, latency=None, bursts=40, burst=4):
    """Saturating bursts: even bursts steady (one rung), odd bursts
    alternate V/F levels *and* sparsity rungs — with round-robin routing
    on 2 devices, shard 0 sees a single operating point while shard 1 is
    rung-thrashed."""
    latency = latency or LatencyModel()
    table = DVFSTable()
    dense = {name: latency.latency_s(wl, table[name], 0.0, SparsityKind.DENSE)
             for name in ("l6", "l4", "l3")}
    reqs = []
    t = 0.0
    for b in range(bursts):
        if b % 2 == 0:
            level, factor = "l6", 1.7
        elif (b // 2) % 2 == 0:
            level, factor = "l4", 1.7
        else:
            level, factor = "l3", 1.2
        deadline = factor * dense[level]
        for _ in range(burst):
            reqs.append(InferenceRequest(
                len(reqs),
                np.random.default_rng(len(reqs)).integers(1, 60, size=6),
                arrival_s=t, deadline_s=deadline, level_name=level,
                slo_s=10.0))
        t += 1e-4  # saturating: far faster than service
    return reqs


class TestAdaptiveDrain:
    def run(self, drain_policy, trace):
        engine, _ = build_engine(TransformerLM(LM_CFG).eval(), devices=2,
                                 policy="round-robin", max_batch=4,
                                 window_s=1e-5, drain_policy=drain_policy,
                                 fairness_window=4, adaptive_window=8,
                                 adaptive_threshold=0.5)
        return engine.serve(list(trace))

    @pytest.fixture(scope="class")
    def trace(self):
        wl = profile_from_model(TransformerLM(LM_CFG).eval(), seq_len=12)
        return mixed_fleet_trace(wl)

    def test_only_the_thrashed_shard_flips(self, trace):
        report = self.run("adaptive", trace)
        stats = {s.shard_id: s for s in report.shard_stats}
        # shard 0 serves one operating point: no evidence, stays fifo
        assert stats[0].drain_policy == "fifo"
        assert stats[0].policy_flips == 0
        assert stats[0].switches <= 1  # at most the cold-start install
        # shard 1 is switch-thrashed: it must flip itself to affinity
        assert stats[1].drain_policy == "level-affinity"
        assert stats[1].policy_flips == 1

    def test_flip_cuts_switches_with_identical_outputs(self, trace):
        fifo = self.run("fifo", trace)
        adaptive = self.run("adaptive", trace)
        assert adaptive.num_requests == fifo.num_requests
        fifo_switches = sum(s.switches for s in fifo.shard_stats)
        adaptive_switches = sum(s.switches for s in adaptive.shard_stats)
        assert adaptive_switches < fifo_switches
        outs_a = {r.request.req_id: r.output for r in fifo.results}
        outs_b = {r.request.req_id: r.output for r in adaptive.results}
        assert outs_a.keys() == outs_b.keys()
        for rid, out in outs_a.items():
            np.testing.assert_allclose(out, outs_b[rid], atol=1e-9, rtol=0)

    def test_steady_adaptive_keeps_fifo_schedule(self):
        # with no switch pressure, adaptive must be indistinguishable
        # from fifo — same batches, same completions
        engine_a, wl = build_engine(TransformerLM(LM_CFG).eval(),
                                    drain_policy="adaptive")
        engine_b, _ = build_engine(TransformerLM(LM_CFG).eval(),
                                   drain_policy="fifo")
        trace = build_scenario("steady", wl, ScenarioConfig(num_requests=24,
                                                            seed=3))
        assert_reports_equivalent(engine_a.serve(trace),
                                  engine_b.serve(list(trace)))

    def test_adaptive_validation(self):
        model = TransformerLM(LM_CFG).eval()
        with pytest.raises(ValueError, match="adaptive_window"):
            build_engine(model, drain_policy="adaptive", adaptive_window=0)
        with pytest.raises(ValueError, match="adaptive_threshold"):
            build_engine(model, drain_policy="adaptive",
                         adaptive_threshold=1.5)


# ---------------------------------------------------------------------------
# adaptive hysteresis: the flip is reversible when the traffic phase changes
# ---------------------------------------------------------------------------

def phase_change_trace(wl, thrash_bursts=24, steady_bursts=48, burst=4):
    """Rung-alternating saturating bursts, then a long steady phase.

    Phase 1 alternates two operating points whose feasible sparsities
    differ, so every batch on a single device swaps pattern sets; phase 2
    sticks to one point, so the post-flip switch rate collapses to zero.
    """
    latency = LatencyModel()
    table = DVFSTable()
    dense = {name: latency.latency_s(wl, table[name], 0.0, SparsityKind.DENSE)
             for name in ("l6", "l4", "l3")}
    reqs = []
    t = 0.0
    for b in range(thrash_bursts + steady_bursts):
        if b >= thrash_bursts:
            level, factor = "l6", 1.7
        elif b % 2 == 0:
            level, factor = "l4", 1.7
        else:
            level, factor = "l3", 1.2
        deadline = factor * dense[level]
        for _ in range(burst):
            reqs.append(InferenceRequest(
                len(reqs),
                np.random.default_rng(len(reqs)).integers(1, 60, size=6),
                arrival_s=t, deadline_s=deadline, level_name=level,
                slo_s=10.0))
        t += 1e-4
    return reqs


class TestAdaptiveHysteresis:
    def run(self, drain_policy, trace, low=None):
        engine, _ = build_engine(TransformerLM(LM_CFG).eval(), devices=1,
                                 max_batch=4, window_s=1e-5,
                                 drain_policy=drain_policy,
                                 fairness_window=4, adaptive_window=8,
                                 adaptive_threshold=0.5,
                                 adaptive_low_threshold=low)
        return engine.serve(list(trace))

    @pytest.fixture(scope="class")
    def trace(self):
        wl = profile_from_model(TransformerLM(LM_CFG).eval(), seq_len=12)
        return phase_change_trace(wl)

    def test_flips_forward_then_back(self, trace):
        report = self.run("adaptive", trace, low=0.1)
        stats = report.shard_stats[0]
        # thrash phase flips fifo -> level-affinity; once the steady
        # phase drains the mixed backlog the post-flip window holds zero
        # switches and the hysteresis band flips the shard back
        assert stats.policy_flips == 2
        assert stats.drain_policy == "fifo"

    def test_without_band_the_flip_stays_one_way(self, trace):
        report = self.run("adaptive", trace, low=None)
        stats = report.shard_stats[0]
        assert stats.policy_flips == 1
        assert stats.drain_policy == "level-affinity"

    def test_outputs_identical_to_fifo_through_both_flips(self, trace):
        fifo = self.run("fifo", trace)
        hysteresis = self.run("adaptive", trace, low=0.1)
        assert hysteresis.num_requests == fifo.num_requests
        outs_a = {r.request.req_id: r.output for r in fifo.results}
        outs_b = {r.request.req_id: r.output for r in hysteresis.results}
        assert outs_a.keys() == outs_b.keys()
        for rid, out in outs_a.items():
            np.testing.assert_array_equal(out, outs_b[rid])

    def test_band_cuts_switches_vs_fifo(self, trace):
        fifo = self.run("fifo", trace)
        hysteresis = self.run("adaptive", trace, low=0.1)
        assert (sum(s.switches for s in hysteresis.shard_stats)
                < sum(s.switches for s in fifo.shard_stats))

    def test_low_threshold_validation(self):
        model = TransformerLM(LM_CFG).eval()
        with pytest.raises(ValueError, match="adaptive_low_threshold"):
            build_engine(model, drain_policy="adaptive",
                         adaptive_threshold=0.5, adaptive_low_threshold=0.5)
        with pytest.raises(ValueError, match="adaptive_low_threshold"):
            build_engine(model, drain_policy="adaptive",
                         adaptive_low_threshold=-0.1)


# ---------------------------------------------------------------------------
# compile-fallback diagnostics: a supported model that fails to compile
# must *warn* on its way to the eager path, never fall back silently
# ---------------------------------------------------------------------------

class TestCompileFallbackWarnings:
    def test_forward_compile_failure_warns(self):
        # dropout left active (training mode) is a misconfiguration of a
        # *supported* architecture: compile_inference raises ValueError,
        # and the engine must name it while falling back to eager
        cfg = TransformerConfig(vocab_size=60, dim=32, num_heads=2,
                                ffn_dim=64, num_encoder_layers=2,
                                num_decoder_layers=1, max_len=16,
                                dropout=0.1, seed=3)
        model = TransformerLM(cfg).train()
        engine, _ = build_engine(model)
        with pytest.warns(RuntimeWarning, match="compile_inference failed"):
            report = engine.serve([req(0)])
        assert report.num_requests == 1
        assert engine.fast_forward  # the offline wrapper keeps its knob

    def test_decode_compile_failure_warns(self, monkeypatch):
        import repro.serve.streaming as streaming_mod

        def boom(model, plan=None):
            raise ValueError("decode plane unavailable")

        monkeypatch.setattr(streaming_mod, "compile_decode", boom)
        model = TransformerLM(LM_CFG).eval()
        engine, _ = build_engine(model)
        core = engine.streaming()
        with pytest.warns(RuntimeWarning, match="compile_decode failed"):
            core.submit_decode(req(0))
            core.drain()
        assert core.report().num_requests == 1

    def test_unsupported_model_falls_back_silently(self, recwarn):
        # unknown architectures are the *designed* fallback: no warning
        class Opaque:
            def modules(self):
                return []

            def named_modules(self):
                return []

            def named_parameters(self):
                return []

        model = TransformerLM(LM_CFG).eval()
        engine, _ = build_engine(model)
        core = engine.streaming()
        core.model = Opaque()
        assert core._forward() is None
        assert not core.fast_forward
        runtime = [w for w in recwarn
                   if issubclass(w.category, RuntimeWarning)]
        assert not runtime
