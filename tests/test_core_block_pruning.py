"""Block-structured pruning: Algorithm 1 semantics and the rBP baseline."""

import numpy as np
import pytest

from repro.core.block_pruning import (
    BlockPruningConfig,
    ReweightedGroupLasso,
    apply_block_pruning,
    block_group_norms,
    block_prune_matrix,
    random_block_prune_matrix,
    _block_bounds,
)
from repro.nn.layers import prunable_linears


class TestBlockBounds:
    def test_even_split(self):
        assert _block_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_covers_all(self):
        bounds = _block_bounds(10, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        assert all(lo < hi for lo, hi in bounds)

    def test_too_many_blocks(self):
        with pytest.raises(ValueError):
            _block_bounds(2, 5)


class TestGroupNorms:
    def test_column_norms_shape(self):
        w = np.random.default_rng(0).normal(size=(8, 5))
        norms = block_group_norms(w, 4, "column")
        assert len(norms) == 4
        assert all(n.shape == (5,) for n in norms)

    def test_row_norms_shape(self):
        w = np.random.default_rng(0).normal(size=(8, 6))
        norms = block_group_norms(w, 3, "row")
        assert len(norms) == 3
        assert all(n.shape == (8,) for n in norms)

    def test_values_match_manual(self):
        w = np.arange(12.0).reshape(4, 3)
        norms = block_group_norms(w, 2, "column")
        assert np.allclose(norms[0], np.linalg.norm(w[:2], axis=0))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            block_group_norms(np.zeros(5), 1, "column")


class TestAlgorithm1:
    def test_rate_mode_prunes_target_fraction(self):
        w = np.random.default_rng(1).normal(size=(16, 10))
        cfg = BlockPruningConfig(num_blocks=4, rate=0.5)
        mask = block_prune_matrix(w, cfg)
        assert 1.0 - mask.mean() == pytest.approx(0.5)

    def test_pruned_are_weakest_columns_per_block(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(8, 6))
        w[:4, 0] = 0.001  # column 0 is weakest in block 0
        cfg = BlockPruningConfig(num_blocks=2, rate=1.0 / 6.0)
        mask = block_prune_matrix(w, cfg)
        assert mask[:4, 0].sum() == 0  # pruned in block 0
        assert mask[4:, 0].sum() == 4 or mask[4:, 0].sum() == 0  # per-block independent

    def test_blocks_prune_independently(self):
        """Different blocks may prune different columns — the BP advantage
        over whole-matrix structured pruning."""
        rng = np.random.default_rng(3)
        w = rng.normal(size=(8, 8))
        w[:4, 0] *= 1e-3
        w[4:, 7] *= 1e-3
        mask = block_prune_matrix(w, BlockPruningConfig(num_blocks=2, rate=0.125))
        assert mask[:4, 0].sum() == 0 and mask[:4, 7].sum() == 4
        assert mask[4:, 7].sum() == 0 and mask[4:, 0].sum() == 4

    def test_threshold_mode(self):
        w = np.ones((4, 4))
        w[:, 0] = 1e-6
        cfg = BlockPruningConfig(num_blocks=1, threshold=0.5)
        mask = block_prune_matrix(w, cfg)
        assert mask[:, 0].sum() == 0
        assert mask[:, 1:].sum() == 12

    def test_threshold_never_kills_whole_block(self):
        w = np.full((4, 4), 1e-9)
        cfg = BlockPruningConfig(num_blocks=1, threshold=1.0)
        mask = block_prune_matrix(w, cfg)
        assert mask.sum() > 0  # strongest group survives

    def test_rate_mode_keeps_one_group(self):
        w = np.random.default_rng(4).normal(size=(4, 4))
        cfg = BlockPruningConfig(num_blocks=1, rate=0.99)
        mask = block_prune_matrix(w, cfg)
        # at most cols-1 pruned
        assert mask.sum() >= 4

    def test_row_direction(self):
        w = np.random.default_rng(5).normal(size=(6, 8))
        w[0, :4] = 1e-6
        cfg = BlockPruningConfig(num_blocks=2, direction="row", rate=1.0 / 6.0)
        mask = block_prune_matrix(w, cfg)
        assert mask[0, :4].sum() == 0  # row 0 pruned in first column-block

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BlockPruningConfig(num_blocks=0)
        with pytest.raises(ValueError):
            BlockPruningConfig(direction="diagonal")
        with pytest.raises(ValueError):
            BlockPruningConfig(rate=1.0)
        with pytest.raises(ValueError):
            BlockPruningConfig(threshold=-1.0)


class TestRandomBaseline:
    def test_same_sparsity_as_bp(self):
        w = np.random.default_rng(6).normal(size=(16, 12))
        cfg = BlockPruningConfig(num_blocks=4, rate=0.5)
        bp = block_prune_matrix(w, cfg)
        rbp = random_block_prune_matrix(w, cfg)
        assert bp.mean() == pytest.approx(rbp.mean())

    def test_rbp_keeps_less_energy(self):
        """BP selects by l2 norm, so it must retain at least as much weight
        energy as a random selection — the mechanism behind Table IV's
        accuracy gap between BP and rBP."""
        rng = np.random.default_rng(7)
        w = rng.normal(size=(32, 24)) * rng.uniform(0.1, 3.0, size=(1, 24))
        cfg = BlockPruningConfig(num_blocks=4, rate=0.5)
        bp_energy = (w * block_prune_matrix(w, cfg)) ** 2
        rbp_energy = (w * random_block_prune_matrix(w, cfg, rng)) ** 2
        assert bp_energy.sum() > rbp_energy.sum()

    def test_structure_is_blockwise(self):
        w = np.random.default_rng(8).normal(size=(8, 6))
        cfg = BlockPruningConfig(num_blocks=2, rate=0.5)
        mask = random_block_prune_matrix(w, cfg)
        for lo, hi in [(0, 4), (4, 8)]:
            cols = mask[lo:hi].mean(axis=0)
            assert set(np.unique(cols)) <= {0.0, 1.0}  # whole columns per block


class TestApplyToModel:
    def test_masks_installed(self, tiny_transformer):
        report = apply_block_pruning(tiny_transformer, BlockPruningConfig(num_blocks=2, rate=0.4))
        layers = prunable_linears(tiny_transformer)
        assert set(report.masks) == set(layers)
        for name, layer in layers.items():
            assert layer.mask is not None
            assert np.array_equal(layer.mask, report.masks[name])

    def test_overall_sparsity_near_rate(self, tiny_transformer):
        report = apply_block_pruning(tiny_transformer, BlockPruningConfig(num_blocks=2, rate=0.5))
        assert report.overall_sparsity == pytest.approx(0.5, abs=0.05)

    def test_compression_ratio(self, tiny_transformer):
        report = apply_block_pruning(tiny_transformer, BlockPruningConfig(num_blocks=2, rate=0.5))
        assert report.compression_ratio == pytest.approx(2.0, rel=0.1)

    def test_forward_still_works(self, tiny_transformer):
        from repro.tensor.tensor import Tensor

        apply_block_pruning(tiny_transformer, BlockPruningConfig(num_blocks=2, rate=0.5))
        toks = np.random.default_rng(0).integers(0, 60, size=(2, 8))
        logits = tiny_transformer(Tensor(toks))
        assert np.isfinite(logits.data).all()

    def test_random_flag_gives_different_masks(self, tiny_transformer):
        r1 = apply_block_pruning(tiny_transformer, BlockPruningConfig(num_blocks=2, rate=0.5))
        r2 = apply_block_pruning(tiny_transformer, BlockPruningConfig(num_blocks=2, rate=0.5),
                                 random_baseline=True)
        different = any(not np.array_equal(r1.masks[k], r2.masks[k]) for k in r1.masks)
        assert different

    def test_no_prunable_layers_raises(self):
        from repro.nn.layers import Linear
        from repro.nn.module import Module

        class Tiny(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(2, 2)

        with pytest.raises(ValueError):
            apply_block_pruning(Tiny(), BlockPruningConfig())


class TestReweightedGroupLasso:
    def test_penalty_positive_and_differentiable(self, tiny_transformer):
        layers = prunable_linears(tiny_transformer)
        reg = ReweightedGroupLasso(num_blocks=2, strength=1e-2)
        pen = reg.penalty(layers)
        assert float(pen.data) > 0
        pen.backward()
        any_layer = next(iter(layers.values()))
        assert any_layer.weight.grad is not None

    def test_reweighting_pushes_small_groups_harder(self):
        from repro.nn.layers import Linear

        layer = Linear(8, 8, seed=0)
        layer.weight.data[:, 0] *= 0.01  # weak column
        layers = {"l": layer}
        reg = ReweightedGroupLasso(num_blocks=1, strength=1.0)
        reg.reweight(layers)
        pen = reg.penalty(layers)
        pen.backward()
        g = np.abs(layer.weight.grad)
        # reweighting makes the *relative* pull on the weak column the
        # same scale as strong ones (norm/norm ~ 1), i.e. grad magnitude
        # per unit weight much larger
        rel_weak = g[:, 0].mean() / np.abs(layer.weight.data[:, 0]).mean()
        rel_strong = g[:, 1].mean() / np.abs(layer.weight.data[:, 1]).mean()
        assert rel_weak > rel_strong

    def test_training_with_penalty_shrinks_weak_groups(self):
        """A few steps of lasso-regularized training drive weak columns
        toward zero — the orchestration step before Algorithm 1."""
        from repro.nn.layers import Linear
        from repro.nn.optim import SGD
        from repro.tensor.tensor import Tensor

        layer = Linear(8, 8, seed=1)
        layer.weight.data[:, :2] *= 0.1
        layers = {"l": layer}
        reg = ReweightedGroupLasso(num_blocks=2, strength=1e-2)
        reg.reweight(layers)  # weights fixed for this run: stable shrinkage
        opt = SGD([layer.weight], lr=0.05)
        before_weak = np.linalg.norm(layer.weight.data[:, :2])
        before_strong = np.linalg.norm(layer.weight.data[:, 2:])
        for _ in range(20):
            loss = reg.penalty(layers)
            opt.zero_grad()
            loss.backward()
            opt.step()
        after_weak = np.linalg.norm(layer.weight.data[:, :2])
        after_strong = np.linalg.norm(layer.weight.data[:, 2:])
        # weak groups shrink much faster (relatively) than strong ones
        assert after_weak / before_weak < 0.7
        assert after_weak / before_weak < after_strong / before_strong

    def test_strength_validation(self):
        with pytest.raises(ValueError):
            ReweightedGroupLasso(num_blocks=2, strength=-1.0)
