"""Word-level tokenizer and raw-text corpus pipeline."""

import numpy as np
import pytest

from repro.data.tokenizer import TextCorpus, build_vocab, tokenize
from repro.data.vocab import Vocabulary

SAMPLE = """
The quick brown fox jumps over the lazy dog . The dog sleeps , the fox
runs away . A quick fox is a happy fox ; the dog dreams of bones .
""" * 5


class TestTokenize:
    def test_splits_words_and_punct(self):
        assert tokenize("Hello, world!") == ["hello", ",", "world", "!"]

    def test_case_preserved_when_asked(self):
        assert tokenize("Hello", lowercase=False) == ["Hello"]

    def test_numbers_kept(self):
        assert tokenize("at 1400 MHz") == ["at", "1400", "mhz"]

    def test_empty(self):
        assert tokenize("") == []


class TestBuildVocab:
    def test_frequency_ordering(self):
        v = build_vocab(["a", "b", "a", "a", "b", "c"])
        ids = v.encode(["a", "b", "c"])
        assert ids[0] < ids[1] < ids[2]

    def test_max_size_cap(self):
        v = build_vocab(["a", "b", "c", "d"], max_size=6)
        assert len(v) == 6  # 4 specials + 2 most frequent

    def test_min_freq_filter(self):
        v = build_vocab(["a", "a", "b"], min_freq=2)
        assert "a" in v and "b" not in v

    def test_max_size_too_small(self):
        with pytest.raises(ValueError):
            build_vocab(["a"], max_size=4)


class TestTextCorpus:
    def test_from_text_splits(self):
        corpus = TextCorpus.from_text(SAMPLE)
        n = len(corpus.tokens)
        assert len(corpus.train_tokens) == int(0.8 * n)
        assert len(corpus.test_tokens) == n - int(0.9 * n)

    def test_stats(self):
        corpus = TextCorpus.from_text(SAMPLE, max_vocab=10)
        stats = corpus.stats()
        assert stats.vocab_size == 10
        assert 0.0 < stats.unk_fraction < 1.0

    def test_no_unk_with_full_vocab(self):
        corpus = TextCorpus.from_text(SAMPLE)
        assert corpus.stats().unk_fraction == 0.0

    def test_batches_interface_matches_synthetic(self):
        corpus = TextCorpus.from_text(SAMPLE)
        x, y = next(corpus.batches("train", seq_len=8, batch_size=2))
        assert x.shape == (2, 8)
        assert np.array_equal(x[0, 1:], y[0, :-1])

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            TextCorpus.from_text("tiny")

    def test_bad_splits_rejected(self):
        with pytest.raises(ValueError):
            TextCorpus(np.arange(100), Vocabulary(), splits=(0.9, 0.8))

    def test_from_file(self, tmp_path):
        path = tmp_path / "corpus.txt"
        path.write_text(SAMPLE)
        corpus = TextCorpus.from_file(str(path))
        assert len(corpus.tokens) > 100

    def test_lm_task_runs_on_text_corpus(self):
        """The whole point: LMTask accepts raw-text corpora unchanged."""
        from repro.core.tasks import LMTask
        from repro.core.trainer import train_plain
        from repro.nn.transformer import TransformerConfig, TransformerLM

        corpus = TextCorpus.from_text(SAMPLE)
        model = TransformerLM(TransformerConfig(
            vocab_size=len(corpus.vocab), dim=16, num_heads=2, ffn_dim=32,
            max_len=16, dropout=0.0))
        task = LMTask(model, corpus, seq_len=8, batch_size=4,
                      max_train_batches=4, max_eval_batches=2)
        losses = train_plain(task, epochs=2, lr=3e-3)
        assert losses[-1] < losses[0]
        assert 0.0 <= task.evaluate() <= 1.0
