"""Tests of the Tensor class itself: graph mechanics, grad flags, shapes."""

import numpy as np
import pytest

from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, as_tensor, is_grad_enabled, no_grad, unbroadcast


class TestConstruction:
    def test_float_data_is_float64(self):
        t = Tensor([1.0, 2.0])
        assert t.dtype == np.float64

    def test_int_data_preserved(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "i"

    def test_int_tensor_cannot_require_grad(self):
        with pytest.raises(ValueError):
            Tensor(np.array([1, 2]), requires_grad=True)

    def test_bool_data_allowed(self):
        t = Tensor(np.array([True, False]))
        assert t.data.dtype.kind == "b"

    def test_string_rejected(self):
        with pytest.raises(TypeError):
            Tensor(np.array(["a"]))

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24

    def test_repr_mentions_grad(self):
        t = Tensor([1.0], requires_grad=True)
        assert "requires_grad" in repr(t)

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalars(self):
        t = as_tensor(3.0)
        assert isinstance(t, Tensor)
        assert t.data == 3.0


class TestAutogradMechanics:
    def test_backward_requires_grad(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_non_scalar_needs_grad_arg(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = F.mul(t, 2.0)
        with pytest.raises(RuntimeError):
            out.backward()

    def test_backward_with_explicit_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = F.mul(t, 3.0)
        out.backward(np.array([1.0, 1.0]))
        assert np.allclose(t.grad, [3.0, 3.0])

    def test_grad_accumulates_across_backwards(self):
        t = Tensor([2.0], requires_grad=True)
        F.sum(F.mul(t, t)).backward()
        first = t.grad.copy()
        F.sum(F.mul(t, t)).backward()
        assert np.allclose(t.grad, 2 * first)

    def test_zero_grad(self):
        t = Tensor([2.0], requires_grad=True)
        F.sum(t).backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_gradient(self):
        # y = x*x + x*x should give dy/dx = 4x
        x = Tensor([3.0], requires_grad=True)
        a = F.mul(x, x)
        b = F.mul(x, x)
        F.sum(F.add(a, b)).backward()
        assert np.allclose(x.grad, [12.0])

    def test_reused_node_gradient(self):
        # y = (x + x) * x = 2x^2, dy/dx = 4x
        x = Tensor([5.0], requires_grad=True)
        s = F.add(x, x)
        F.sum(F.mul(s, x)).backward()
        assert np.allclose(x.grad, [20.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(2000):
            y = F.add(y, 0.001)
        F.sum(y).backward()
        assert np.allclose(x.grad, [1.0])

    def test_detach_cuts_graph(self):
        x = Tensor([2.0], requires_grad=True)
        d = F.mul(x, 3.0).detach()
        assert not d.requires_grad
        y = F.mul(d, 2.0)
        assert not y.requires_grad

    def test_no_grad_context(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = F.mul(x, 2.0)
        assert is_grad_enabled()
        assert not y.requires_grad

    def test_no_grad_nesting(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_requires_grad_propagates(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([1.0])
        assert F.add(a, b).requires_grad
        assert not F.add(b, b).requires_grad


class TestUnbroadcast:
    def test_identity_when_shapes_match(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_sums_leading_dims(self):
        g = np.ones((4, 2, 3))
        out = unbroadcast(g, (2, 3))
        assert out.shape == (2, 3)
        assert np.allclose(out, 4.0)

    def test_sums_broadcast_dims(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (1, 3))
        assert out.shape == (1, 3)
        assert np.allclose(out, 2.0)

    def test_scalar_target(self):
        g = np.ones((5, 4))
        out = unbroadcast(g, ())
        assert out.shape == ()
        assert out == 20.0


class TestOperatorOverloads:
    def test_add_radd(self):
        t = Tensor([1.0])
        assert (t + 1.0).data[0] == 2.0
        assert (1.0 + t).data[0] == 2.0

    def test_sub_rsub(self):
        t = Tensor([3.0])
        assert (t - 1.0).data[0] == 2.0
        assert (5.0 - t).data[0] == 2.0

    def test_mul_div(self):
        t = Tensor([4.0])
        assert (t * 2.0).data[0] == 8.0
        assert (t / 2.0).data[0] == 2.0
        assert (8.0 / t).data[0] == 2.0

    def test_neg_pow_matmul(self):
        t = Tensor([[1.0, 2.0]])
        assert float(F.sum(-t).data) == -3.0
        assert np.allclose((t ** 2).data, [[1.0, 4.0]])
        m = Tensor(np.eye(2))
        assert np.allclose((t @ m).data, t.data)

    def test_getitem(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        row = t[1]
        assert np.allclose(row.data, [3.0, 4.0, 5.0])
        F.sum(row).backward()
        assert np.allclose(t.grad, [[0, 0, 0], [1, 1, 1]])

    def test_transpose_property(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert t.T.shape == (3, 2)

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_method_sum_mean_max(self):
        t = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert float(t.sum().data) == 10.0
        assert float(t.mean().data) == 2.5
        assert float(t.max().data) == 4.0

    def test_reshape_and_transpose_methods(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape((3, 2)).shape == (3, 2)
        m = Tensor(np.zeros((2, 3, 4)))
        assert m.transpose(2, 0, 1).shape == (4, 2, 3)
        assert m.swapaxes(0, 2).shape == (4, 3, 2)
