"""Data substrate: vocab, synthetic WikiText, synthetic GLUE, loaders."""

import numpy as np
import pytest

from repro.data.dataloader import BatchIterator, train_eval_split
from repro.data.glue import GLUE_TASKS, GlueTaskConfig, make_glue_task
from repro.data.vocab import SPECIAL_TOKENS, Vocabulary, zipf_probs
from repro.data.wikitext import SyntheticWikiText, WikiTextConfig, make_lm_batches


class TestVocabulary:
    def test_specials_first(self):
        v = Vocabulary()
        assert v.decode([0, 1, 2, 3]) == SPECIAL_TOKENS

    def test_add_and_encode(self):
        v = Vocabulary(["hello", "world"])
        ids = v.encode(["hello", "world", "hello"])
        assert ids[0] == ids[2] != ids[1]

    def test_unknown_maps_to_unk(self):
        v = Vocabulary(["a"])
        assert v.encode(["zzz"]) == [v.unk_id]

    def test_roundtrip(self):
        v = Vocabulary(["x", "y"])
        assert v.decode(v.encode(["x", "y"])) == ["x", "y"]

    def test_contains_and_len(self):
        v = Vocabulary(["q"])
        assert "q" in v and "nope" not in v
        assert len(v) == len(SPECIAL_TOKENS) + 1

    def test_synthetic_size(self):
        v = Vocabulary.synthetic(50)
        assert len(v) == 50

    def test_synthetic_too_small(self):
        with pytest.raises(ValueError):
            Vocabulary.synthetic(3)

    def test_zipf_probs_normalized_decreasing(self):
        p = zipf_probs(100)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(np.diff(p) <= 0)


class TestSyntheticWikiText:
    def test_deterministic(self):
        a = SyntheticWikiText(WikiTextConfig(vocab_size=50, num_tokens=500, seed=1))
        b = SyntheticWikiText(WikiTextConfig(vocab_size=50, num_tokens=500, seed=1))
        assert np.array_equal(a.train_tokens, b.train_tokens)

    def test_seed_changes_corpus(self):
        a = SyntheticWikiText(WikiTextConfig(vocab_size=50, num_tokens=500, seed=1))
        b = SyntheticWikiText(WikiTextConfig(vocab_size=50, num_tokens=500, seed=2))
        assert not np.array_equal(a.train_tokens, b.train_tokens)

    def test_split_sizes(self):
        c = SyntheticWikiText(WikiTextConfig(vocab_size=50, num_tokens=1000))
        assert len(c.train_tokens) == 800
        assert len(c.valid_tokens) == 100
        assert len(c.test_tokens) == 100

    def test_tokens_in_vocab_range(self):
        c = SyntheticWikiText(WikiTextConfig(vocab_size=50, num_tokens=500))
        assert c.train_tokens.min() >= 0
        assert c.train_tokens.max() < 50

    def test_corpus_is_learnable(self):
        """Bigram statistics dominated by the chain's dominant successor."""
        cfg = WikiTextConfig(vocab_size=30, num_tokens=5000, dominant_prob=0.8)
        c = SyntheticWikiText(cfg)
        toks = c.train_tokens
        # empirical accuracy of the best bigram predictor
        from collections import Counter, defaultdict

        succ = defaultdict(Counter)
        for a, b in zip(toks[:-1], toks[1:]):
            succ[a][b] += 1
        correct = sum(c.most_common(1)[0][1] for c in succ.values())
        acc = correct / (len(toks) - 1)
        assert acc > 0.6  # far above chance (1/30)

    def test_bayes_accuracy(self):
        c = SyntheticWikiText(WikiTextConfig(vocab_size=30, num_tokens=200, dominant_prob=0.7))
        assert c.bayes_accuracy() == pytest.approx(0.7)

    def test_batches_shapes_and_shift(self):
        c = SyntheticWikiText(WikiTextConfig(vocab_size=30, num_tokens=600))
        x, y = next(c.batches("train", seq_len=10, batch_size=4))
        assert x.shape == (4, 10) and y.shape == (4, 10)
        assert np.array_equal(x[0, 1:], y[0, :-1])  # targets are inputs shifted

    def test_make_lm_batches_validation(self):
        with pytest.raises(ValueError):
            list(make_lm_batches(np.arange(10), 0, 2))

    def test_make_lm_batches_tail_batch(self):
        batches = list(make_lm_batches(np.arange(100), seq_len=9, batch_size=4))
        assert batches[-1][0].shape[0] <= 4
        total = sum(b[0].shape[0] for b in batches)
        assert total == (100 - 1) // 9


class TestSyntheticGlue:
    def test_all_nine_tasks_generate(self):
        for task in GLUE_TASKS:
            data = make_glue_task(task, num_train=16, num_eval=8, seq_len=12)
            x, y = data.train
            assert x.shape == (16, 12)
            assert len(y) == 16

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            GlueTaskConfig(task="nope")

    def test_classification_labels_valid(self):
        data = make_glue_task("mnli", num_train=32, num_eval=8)
        assert set(np.unique(data.train[1])) <= {0, 1, 2}

    def test_regression_targets_in_glue_range(self):
        data = make_glue_task("stsb", num_train=32, num_eval=8)
        y = data.train[1]
        assert y.dtype.kind == "f"
        assert y.min() >= 0.0 and y.max() <= 5.0

    def test_pair_tasks_have_separator(self):
        data = make_glue_task("rte", num_train=4, num_eval=2, seq_len=16)
        x, _ = data.train
        assert (x == data.vocab.eos_id).any(axis=1).all()

    def test_single_sentence_tasks_have_no_separator(self):
        data = make_glue_task("sst2", num_train=4, num_eval=2, seq_len=16)
        x, _ = data.train
        assert not (x == data.vocab.eos_id).any()

    def test_cls_prefix(self):
        data = make_glue_task("rte", num_train=4, num_eval=2)
        x, _ = data.train
        assert (x[:, 0] == data.vocab.bos_id).all()

    def test_deterministic_given_seed(self):
        a = make_glue_task("qnli", num_train=8, num_eval=4, seed=3)
        b = make_glue_task("qnli", num_train=8, num_eval=4, seed=3)
        assert np.array_equal(a.train[0], b.train[0])

    def test_signal_strength_validation(self):
        with pytest.raises(ValueError):
            GlueTaskConfig(task="rte", signal_strength=0.3)

    def test_task_is_learnable_by_token_counting(self):
        """A trivial signal-token counter should beat chance."""
        data = make_glue_task("sst2", num_train=200, num_eval=1, signal_strength=0.95)
        x, y = data.train
        sig1 = set(data.signal_tokens[1].tolist())
        score = np.array([[t in sig1 for t in row].count(True) for row in x])
        pred = (score > np.median(score)).astype(int)
        assert (pred == y).mean() > 0.7

    def test_metric_key_matches_convention(self):
        assert make_glue_task("cola").metric == "mcc"
        assert make_glue_task("stsb").metric == "spearman"
        assert make_glue_task("qqp").metric == "f1"
        assert make_glue_task("rte").metric == "accuracy"


class TestDataloader:
    def test_batch_iterator_covers_everything(self):
        x = np.arange(25).reshape(25, 1)
        y = np.arange(25)
        seen = []
        for bx, by in BatchIterator(x, y, batch_size=4, seed=0):
            assert len(bx) == len(by)
            seen.extend(by.tolist())
        assert sorted(seen) == list(range(25))

    def test_batch_iterator_len(self):
        it = BatchIterator(np.zeros((10, 1)), np.zeros(10), batch_size=3)
        assert len(it) == 4

    def test_no_shuffle_preserves_order(self):
        x = np.arange(6).reshape(6, 1)
        it = BatchIterator(x, np.arange(6), batch_size=2, shuffle=False)
        first = next(iter(it))
        assert np.array_equal(first[1], [0, 1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BatchIterator(np.zeros((3, 1)), np.zeros(4), batch_size=2)

    def test_train_eval_split_disjoint_and_complete(self):
        x = np.arange(20).reshape(20, 1)
        y = np.arange(20)
        (tx, ty), (ex, ey) = train_eval_split(x, y, eval_fraction=0.25, seed=1)
        assert len(ty) == 15 and len(ey) == 5
        assert set(ty) | set(ey) == set(range(20))
        assert not set(ty) & set(ey)

    def test_split_fraction_validation(self):
        with pytest.raises(ValueError):
            train_eval_split(np.zeros((4, 1)), np.zeros(4), eval_fraction=1.5)
