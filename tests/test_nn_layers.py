"""Layers: Linear (incl. masks — the pruning hook), Embedding, LayerNorm,
Dropout, activations, Sequential, prunable_linears."""

import numpy as np
import pytest

from repro.nn.layers import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    Tanh,
    prunable_linears,
)
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.gradcheck import gradcheck
from repro.tensor.tensor import Tensor


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 7, seed=0)
        out = layer(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 7)

    def test_no_bias(self):
        layer = Linear(4, 7, bias=False, seed=0)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 4))))
        assert np.allclose(out.data, 0.0)

    def test_batched_3d_input(self):
        layer = Linear(4, 5, seed=0)
        out = layer(Tensor(np.ones((2, 3, 4))))
        assert out.shape == (2, 3, 5)

    def test_matches_manual_affine(self):
        layer = Linear(3, 2, seed=1)
        x = np.random.default_rng(0).normal(size=(4, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_gradients_flow(self):
        layer = Linear(3, 2, seed=2)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3)))
        assert gradcheck(lambda: F.sum(F.tanh(layer(x))),
                         [layer.weight, layer.bias])

    def test_mask_zeroes_contribution(self):
        layer = Linear(4, 4, seed=3)
        mask = np.zeros((4, 4))
        layer.set_mask(mask)
        out = layer(Tensor(np.ones((1, 4))))
        assert np.allclose(out.data, layer.bias.data)

    def test_mask_shape_checked(self):
        layer = Linear(4, 4)
        with pytest.raises(ValueError):
            layer.set_mask(np.ones((2, 2)))

    def test_mask_clearable(self):
        layer = Linear(4, 4, seed=4)
        layer.set_mask(np.zeros((4, 4)))
        layer.set_mask(None)
        assert layer.mask is None
        assert layer.sparsity() == 0.0

    def test_sparsity_reporting(self):
        layer = Linear(4, 4)
        mask = np.ones((4, 4))
        mask[:2] = 0
        layer.set_mask(mask)
        assert layer.sparsity() == pytest.approx(0.5)

    def test_masked_weights_get_no_effective_gradient(self):
        layer = Linear(2, 2, seed=5)
        mask = np.array([[1.0, 0.0], [0.0, 1.0]])
        layer.set_mask(mask)
        out = F.sum(layer(Tensor(np.ones((1, 2)))))
        out.backward()
        # gradient through the mask product is zero at masked positions
        assert layer.weight.grad[0, 1] == 0.0
        assert layer.weight.grad[1, 0] == 0.0
        assert layer.weight.grad[0, 0] != 0.0


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, seed=0)
        out = emb(Tensor(np.array([[1, 2], [3, 3]])))
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.data[1, 0], out.data[1, 1])

    def test_gradient_accumulates_for_repeats(self):
        emb = Embedding(5, 3, seed=0)
        out = F.sum(emb(Tensor(np.array([2, 2, 2]))))
        out.backward()
        assert np.allclose(emb.weight.grad[2], 3.0)
        assert np.allclose(emb.weight.grad[0], 0.0)


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        ln = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(4, 8)))
        out = ln(x)
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_gamma_beta_applied(self):
        ln = LayerNorm(4)
        ln.gamma.data[...] = 2.0
        ln.beta.data[...] = 1.0
        x = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        out = ln(x)
        assert np.allclose(out.data.mean(axis=-1), 1.0, atol=1e-9)

    def test_gradients(self):
        ln = LayerNorm(5)
        x = Tensor(np.random.default_rng(2).normal(size=(2, 5)), requires_grad=True)
        assert gradcheck(lambda: F.sum(F.mul(ln(x), ln(x))), [x, ln.gamma, ln.beta],
                         atol=1e-4)


class TestDropoutLayer:
    def test_train_mode_drops(self):
        drop = Dropout(0.5, seed=0)
        out = drop(Tensor(np.ones((50, 50))))
        assert (out.data == 0).any()

    def test_eval_mode_identity(self):
        drop = Dropout(0.5, seed=0)
        drop.eval()
        x = Tensor(np.ones((5, 5)))
        assert drop(x) is x

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestActivationsAndSequential:
    def test_activation_modules(self):
        x = Tensor(np.array([-1.0, 2.0]))
        assert np.allclose(ReLU()(x).data, [0.0, 2.0])
        assert np.allclose(Tanh()(x).data, np.tanh([-1.0, 2.0]))
        assert GELU()(x).data[1] > 1.9

    def test_sequential_order(self):
        seq = Sequential(Linear(3, 4, seed=0), ReLU(), Linear(4, 2, seed=1))
        out = seq(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 2)
        assert len(seq) == 3
        assert isinstance(seq[1], ReLU)

    def test_sequential_registers_children(self):
        seq = Sequential(Linear(3, 4), Linear(4, 2))
        assert len(seq.parameters()) == 4


class TestPrunableLinears:
    def test_finds_linears_by_size(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.big = Linear(32, 32)
                self.tiny = Linear(2, 2)

        found = prunable_linears(M(), min_features=8)
        assert list(found) == ["big"]

    def test_nested_names(self):
        seq = Sequential(Linear(16, 16), Linear(16, 16))
        found = prunable_linears(seq, min_features=8)
        assert set(found) == {"0", "1"}
