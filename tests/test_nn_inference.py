"""Compiled zero-autograd forward plane: exactness, recompile, serving."""

import numpy as np
import pytest

from repro.core.patterns import MaskManager, random_pattern_set
from repro.nn.distilbert import DistilBertConfig, DistilBertForSequenceTask
from repro.nn.inference import CompiledForward, UnsupportedModel, compile_inference
from repro.nn.layers import Linear, prunable_linears
from repro.nn.optim import SGD
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.serve import (
    ArtifactCache,
    InferenceRequest,
    ScenarioConfig,
    StackConfig,
    build_scenario,
    build_serving_stack,
    pad_batch,
    run_padded,
)
from repro.sparse.executor import SparseExecutor
from repro.tensor.tensor import Tensor, no_grad

LM_CFG = TransformerConfig(vocab_size=60, dim=32, num_heads=2, ffn_dim=64,
                           num_encoder_layers=2, num_decoder_layers=1,
                           max_len=16, dropout=0.0, seed=3)
DB_CFG = DistilBertConfig(vocab_size=80, dim=32, num_heads=2, ffn_dim=64,
                          num_layers=2, max_len=24, dropout=0.0, seed=5)


def make_model(kind):
    if kind == "lm":
        return TransformerLM(LM_CFG).eval()
    if kind == "distilbert":
        return DistilBertForSequenceTask(DB_CFG).eval()
    return DistilBertForSequenceTask(
        DistilBertConfig(vocab_size=80, dim=32, num_heads=2, ffn_dim=64,
                         num_layers=2, max_len=24, dropout=0.0,
                         is_regression=True, seed=5)).eval()


def install_masks(model, kind):
    """Install the requested mask family on every prunable layer."""
    if kind == "none":
        return
    if kind == "pattern":
        pset = random_pattern_set(8, 0.5, 3, np.random.default_rng(0))
        MaskManager(model).apply(pset)
        return
    # block: zero the bottom half-rows of each prunable weight (the
    # block-pruning structure: whole row groups removed)
    for layer in prunable_linears(model).values():
        mask = np.ones_like(layer.weight.data)
        mask[layer.out_features // 2:, :] = 0.0
        layer.set_mask(mask)


def tokens_for(model, batch, ragged, seed=0):
    rng = np.random.default_rng(seed)
    vocab = model.cfg.vocab_size
    length = 12
    if not ragged:
        return rng.integers(1, vocab, size=(batch, length)), None
    lengths = [max(2, length - 2 * i) for i in range(batch)]
    seqs = [rng.integers(1, vocab, size=n) for n in lengths]
    toks, mask, _ = pad_batch(seqs)
    return toks, mask


def eager(model, toks, mask):
    with no_grad():
        out = model(toks) if mask is None else model(toks, attn_mask=mask)
    return out.data


# ---------------------------------------------------------------------------
# the equivalence matrix: models x mask families x padding x dtypes
# ---------------------------------------------------------------------------

class TestEquivalenceMatrix:
    @pytest.mark.parametrize("kind", ["lm", "distilbert", "regression"])
    @pytest.mark.parametrize("masks", ["none", "pattern", "block"])
    @pytest.mark.parametrize("ragged", [False, True])
    def test_float64_bit_identical(self, kind, masks, ragged):
        model = make_model(kind)
        install_masks(model, masks)
        plan = compile_inference(model)
        toks, mask = tokens_for(model, 4, ragged)
        ref = eager(model, toks, mask)
        got = plan(toks, attn_mask=mask)
        assert got.dtype == np.float64
        assert np.array_equal(ref, got)  # exact ==, not allclose

    @pytest.mark.parametrize("kind", ["lm", "distilbert"])
    def test_float32_within_documented_tolerance(self, kind):
        model = make_model(kind)
        install_masks(model, "pattern")
        plan32 = compile_inference(model, dtype="float32")
        toks, mask = tokens_for(model, 4, True)
        ref = eager(model, toks, mask)
        got = plan32(toks, attn_mask=mask)
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, ref, rtol=1e-3, atol=1e-3)
        assert not np.array_equal(ref, got.astype(np.float64))

    def test_batch_of_one_and_full_batch_agree(self):
        model = make_model("lm")
        plan = compile_inference(model)
        toks, _ = tokens_for(model, 8, False)
        full = plan(toks)
        for i in range(8):
            solo = plan(toks[i:i + 1])
            np.testing.assert_array_equal(full[i], solo[0])

    def test_run_padded_fast_path_matches_eager(self):
        model = make_model("lm")
        plan = compile_inference(model)
        rng = np.random.default_rng(7)
        reqs = [InferenceRequest(i, rng.integers(1, 60, size=n))
                for i, n in enumerate((12, 9, 6, 12))]
        eager_outs = run_padded(model, reqs)
        fast_outs = run_padded(model, reqs, forward=plan)
        for a, b in zip(eager_outs, fast_outs):
            assert np.array_equal(a, b)


# ---------------------------------------------------------------------------
# recompilation: keyed on cache_token / Parameter.version, O(1) checks
# ---------------------------------------------------------------------------

class TestRecompile:
    def test_mask_install_triggers_exactly_one_recompile(self):
        model = make_model("lm")
        plan = compile_inference(model)
        toks, _ = tokens_for(model, 4, False)
        plan(toks)
        assert plan.compiles == 1
        pset = random_pattern_set(8, 0.5, 3, np.random.default_rng(0))
        manager = MaskManager(model)
        manager.apply(pset)
        got = plan(toks)
        assert plan.compiles == 2  # masks changed -> one recompile
        assert np.array_equal(eager(model, toks, None), got)
        plan(toks)
        assert plan.compiles == 2  # stable weights -> no recompile

    def test_identical_reinstall_keeps_plan(self):
        model = make_model("lm")
        pset = random_pattern_set(8, 0.5, 3, np.random.default_rng(0))
        manager = MaskManager(model)
        manager.apply(pset)
        plan = compile_inference(model)
        toks, _ = tokens_for(model, 4, False)
        plan(toks)
        # re-installing the identical mask keeps cache_token stable
        # (content compare in set_mask), so the plan must not recompile
        manager.apply(pset)
        plan(toks)
        assert plan.compiles == 1

    def test_weight_update_triggers_recompile(self):
        model = make_model("lm")
        plan = compile_inference(model)
        toks, _ = tokens_for(model, 2, False)
        stale = plan(toks)
        opt = SGD(model.parameters(), lr=1e-2)
        loss = model.loss(Tensor(toks), Tensor(toks))
        loss.backward()
        opt.step()
        fresh = plan(toks)
        assert plan.compiles == 2
        assert np.array_equal(eager(model, toks, None), fresh)
        assert not np.array_equal(stale, fresh)

    def test_bias_only_update_triggers_recompile(self):
        model = make_model("lm")
        plan = compile_inference(model)
        plan32 = compile_inference(model, dtype="float32")
        toks, _ = tokens_for(model, 2, False)
        stale32 = plan32(toks)
        plan(toks)
        # the sanctioned in-place mutation protocol: edit data, bump
        layer = model.lm_head
        layer.bias.data[...] = layer.bias.data + 1.0
        layer.bias.bump_version()
        fresh = plan(toks)
        assert plan.compiles == 2
        assert np.array_equal(eager(model, toks, None), fresh)
        fresh32 = plan32(toks)
        assert plan32.compiles == 2  # float32 snapshots must not go stale
        assert not np.array_equal(stale32, fresh32)

    def test_recompile_rechecks_eval_mode(self):
        model = TransformerLM(TransformerConfig(
            vocab_size=60, dim=32, num_heads=2, ffn_dim=64, max_len=16,
            dropout=0.1, seed=0)).eval()
        plan = compile_inference(model)
        toks, _ = tokens_for(model, 2, False)
        plan(toks)
        model.train()
        model.embed.weight.bump_version()  # force a signature change
        with pytest.raises(ValueError, match="eval"):
            plan(toks)

    def test_signature_is_cheap_ints(self):
        model = make_model("lm")
        plan = compile_inference(model)
        sig = plan.signature()
        assert all(isinstance(v, int) for group in sig for tup in group
                   for v in (tup if isinstance(tup, tuple) else (tup,)))


# ---------------------------------------------------------------------------
# scratch pool + mask memoization
# ---------------------------------------------------------------------------

class TestScratchAndMasks:
    def test_zero_steady_state_allocations(self):
        model = make_model("lm")
        plan = compile_inference(model)
        toks, mask = tokens_for(model, 4, True)
        plan(toks, attn_mask=mask)
        misses = plan.pool.misses
        for _ in range(3):
            plan(toks, attn_mask=mask)
        assert plan.pool.misses == misses
        assert plan.pool.hits > 0

    def test_causal_mask_memoized_per_length(self):
        model = make_model("lm")
        plan = compile_inference(model)
        for _ in range(3):
            plan(np.ones((2, 8), dtype=np.int64))
            plan(np.ones((2, 12), dtype=np.int64))
        keys = [k for k in plan._mask_cache if k[0] == "causal"]
        assert sorted(k[1] for k in keys) == [8, 12]

    def test_mask_cache_bounded(self):
        model = make_model("lm")
        plan = compile_inference(model)
        rng = np.random.default_rng(0)
        for i in range(80):
            seqs = [rng.integers(1, 60, size=12),
                    rng.integers(1, 60, size=4 + (i % 8))]
            toks, mask, _ = pad_batch(seqs)
            plan(toks, attn_mask=mask)
        from repro.nn.inference import _MASK_CACHE_CAP
        assert len(plan._mask_cache) <= _MASK_CACHE_CAP


# ---------------------------------------------------------------------------
# sparse-kernel dispatch (no Tensor wrapping anywhere)
# ---------------------------------------------------------------------------

class TestSparseDispatch:
    def test_pattern_kernel_plan_matches_dense(self):
        model = make_model("lm")
        pset = random_pattern_set(8, 0.5, 3, np.random.default_rng(0))
        MaskManager(model).apply(pset)
        dense_plan = compile_inference(model)
        executor = SparseExecutor("pattern", pattern_set=pset,
                                  cache=ArtifactCache())
        sparse_plan = compile_inference(model, sparse=executor)
        toks, mask = tokens_for(model, 4, True)
        ref = dense_plan(toks, attn_mask=mask)
        got = sparse_plan(toks, attn_mask=mask)
        np.testing.assert_allclose(got, ref, atol=1e-9, rtol=0)

    def test_block_kernel_plan_matches_dense(self):
        model = make_model("lm")
        install_masks(model, "block")
        dense_plan = compile_inference(model)
        executor = SparseExecutor("block", num_blocks=4, cache=ArtifactCache())
        sparse_plan = compile_inference(model, sparse=executor)
        toks, _ = tokens_for(model, 4, False)
        np.testing.assert_allclose(sparse_plan(toks), dense_plan(toks),
                                   atol=1e-9, rtol=0)

    def test_layer_matmul_is_pure_ndarray(self):
        model = make_model("lm")
        install_masks(model, "block")
        executor = SparseExecutor("block", num_blocks=4)
        name, layer = next(iter(prunable_linears(model).items()))
        x = np.random.default_rng(0).normal(size=(layer.in_features, 3))
        created = []
        orig = Tensor.__init__

        def spy(self, *args, **kwargs):
            created.append(self)
            orig(self, *args, **kwargs)

        Tensor.__init__ = spy
        try:
            out = executor.layer_matmul(name, layer, x)
        finally:
            Tensor.__init__ = orig
        assert created == []
        w_eff = layer.weight.data * layer.mask
        np.testing.assert_allclose(out, w_eff @ x, atol=1e-9, rtol=0)

    def test_sparse_requires_float64(self):
        model = make_model("lm")
        with pytest.raises(ValueError, match="float64"):
            compile_inference(model, dtype="float32",
                              sparse=SparseExecutor("block"))


# ---------------------------------------------------------------------------
# validation / fallback
# ---------------------------------------------------------------------------

class TestValidation:
    def test_unknown_architecture_raises(self):
        with pytest.raises(UnsupportedModel):
            compile_inference(Linear(8, 8))

    def test_bad_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            compile_inference(make_model("lm"), dtype="float16")

    def test_training_dropout_rejected(self):
        model = TransformerLM(TransformerConfig(
            vocab_size=60, dim=32, num_heads=2, ffn_dim=64, max_len=16,
            dropout=0.1, seed=0))  # train mode, p > 0
        with pytest.raises(ValueError, match="eval"):
            compile_inference(model)
        assert isinstance(compile_inference(model.eval()), CompiledForward)

    def test_one_dim_tokens_rejected(self):
        plan = compile_inference(make_model("lm"))
        with pytest.raises(ValueError, match="batch, length"):
            plan(np.ones(8, dtype=np.int64))

    def test_engine_falls_back_on_unsupported_model(self):
        _, _, engine = build_serving_stack(StackConfig(seed=0))
        core = engine.streaming()
        core.model = Linear(8, 8)  # not a compilable architecture
        assert core._forward() is None
        assert core.fast_forward is False


# ---------------------------------------------------------------------------
# serving integration: fast path default, bit-identical, zero grad graph
# ---------------------------------------------------------------------------

def serve_report(fast_forward, seed=0, requests=24):
    _, workload, engine = build_serving_stack(StackConfig(
        seed=seed, fast_forward=fast_forward, verify=True))
    trace = build_scenario("bursty", workload,
                          ScenarioConfig(num_requests=requests, seed=seed))
    return engine.serve(trace)


class TestServingIntegration:
    def test_fast_and_eager_serving_bit_identical(self):
        fast = serve_report(True)
        eager_r = serve_report(False)
        # the verify error measures batched-vs-solo padding exactness;
        # bit-identical forwards mean the two engines must report the
        # *same* value (and both within the serving tolerance)
        assert fast.max_verify_error == eager_r.max_verify_error
        assert fast.max_verify_error < 1e-9
        outs_f = {r.request.req_id: r.output for r in fast.results}
        outs_e = {r.request.req_id: r.output for r in eager_r.results}
        assert outs_f.keys() == outs_e.keys()
        for rid, out in outs_f.items():
            assert np.array_equal(out, outs_e[rid])
        assert fast.sim_throughput_rps == eager_r.sim_throughput_rps
        assert fast.p95_latency_s == eager_r.p95_latency_s
        assert fast.num_switches == eager_r.num_switches

    def test_fast_serve_builds_no_tensors_at_all(self):
        _, workload, engine = build_serving_stack(StackConfig(seed=1))
        trace = build_scenario("steady", workload,
                               ScenarioConfig(num_requests=16, seed=1))
        created = []
        orig = Tensor.__init__

        def spy(self, *args, **kwargs):
            created.append(self)
            orig(self, *args, **kwargs)

        Tensor.__init__ = spy
        try:
            report = engine.serve(trace)
        finally:
            Tensor.__init__ = orig
        assert report.num_requests == 16
        # the serve path never touches the Tensor engine: zero graph
        # nodes, hence trivially zero recorded parents
        assert created == []

    def test_eager_serve_never_records_grad_graph(self):
        _, workload, engine = build_serving_stack(StackConfig(
            seed=1, fast_forward=False))
        trace = build_scenario("steady", workload,
                               ScenarioConfig(num_requests=16, seed=1))
        created = []
        orig = Tensor.__init__

        def spy(self, *args, **kwargs):
            created.append(self)
            orig(self, *args, **kwargs)

        Tensor.__init__ = spy
        try:
            report = engine.serve(trace)
        finally:
            Tensor.__init__ = orig
        assert report.num_requests == 16
        assert len(created) > 0  # the eager path does build wrappers...
        # ...but run_padded's no_grad guard means none requires grad and
        # none records parents (the regression this test pins)
        assert not any(t.requires_grad for t in created)
        assert not any(t._parents for t in created)

    def test_streaming_session_shares_fast_plan(self):
        _, workload, engine = build_serving_stack(StackConfig(seed=2))
        core = engine.streaming()
        plan = core._forward()
        assert isinstance(plan, CompiledForward)
        assert core._forward() is plan  # built once, reused

    def test_serve_engine_exposes_fast_forward_flag(self):
        _, _, engine = build_serving_stack(StackConfig(seed=0,
                                                       fast_forward=False))
        assert engine.fast_forward is False
        assert engine.streaming().fast_forward is False
