"""Lasso-orchestrated BP flow."""

import numpy as np
import pytest

from repro.core.block_pruning import BlockPruningConfig
from repro.core.bp_training import OrchestrationConfig, orchestrate_bp
from repro.core.trainer import train_plain


@pytest.fixture()
def trained(lm_task):
    train_plain(lm_task, epochs=3, lr=3e-3)
    return lm_task


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            OrchestrationConfig(warmup_epochs=-1)
        with pytest.raises(ValueError):
            OrchestrationConfig(lasso_strength=-0.1)


class TestOrchestration:
    def test_end_to_end_fields(self, trained):
        cfg = OrchestrationConfig(
            bp=BlockPruningConfig(num_blocks=2, rate=0.4),
            lasso_strength=1e-3, warmup_epochs=1, finetune_epochs=1, lr=2e-3)
        result = orchestrate_bp(trained, cfg)
        assert result.report.overall_sparsity == pytest.approx(0.4, abs=0.05)
        assert len(result.warmup_losses) == 1
        assert 0.0 <= result.accuracy_final <= 1.0
        assert np.isfinite(result.group_norm_shrinkage)

    def test_lasso_shrinks_victim_groups(self, trained):
        cfg = OrchestrationConfig(
            bp=BlockPruningConfig(num_blocks=2, rate=0.4),
            lasso_strength=5e-3, warmup_epochs=2, finetune_epochs=0, lr=2e-3)
        result = orchestrate_bp(trained, cfg)
        # the mass of to-be-pruned groups went down during warmup
        assert result.group_norm_shrinkage < 1.0

    def test_zero_warmup_equals_cold_prune(self, trained):
        cfg = OrchestrationConfig(
            bp=BlockPruningConfig(num_blocks=2, rate=0.4),
            warmup_epochs=0, finetune_epochs=0)
        result = orchestrate_bp(trained, cfg)
        assert result.warmup_losses == []
        assert result.group_norm_shrinkage == pytest.approx(1.0)
        assert result.accuracy_after_prune == result.accuracy_final

    def test_finetune_recovers_accuracy(self, trained):
        cfg = OrchestrationConfig(
            bp=BlockPruningConfig(num_blocks=2, rate=0.5),
            lasso_strength=1e-3, warmup_epochs=1, finetune_epochs=2, lr=2e-3)
        result = orchestrate_bp(trained, cfg)
        assert result.accuracy_final >= result.accuracy_after_prune - 0.02
