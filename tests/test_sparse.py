"""Sparse formats and kernels: round-trips, correctness, cost ordering."""

import numpy as np
import pytest

from repro.core.block_pruning import BlockPruningConfig, block_prune_matrix
from repro.core.patterns import pattern_mask_for_matrix, random_pattern_set
from repro.sparse import (
    BlockCompressedMatrix,
    COOMatrix,
    OpCounter,
    block_matmul,
    coo_matmul,
    dense_matmul,
    from_dense_block,
    from_dense_coo,
    from_dense_pattern,
    pattern_matmul,
    pattern_matmul_loop,
)


def bp_masked_matrix(shape=(16, 12), rate=0.5, num_blocks=4, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=shape)
    mask = block_prune_matrix(w, BlockPruningConfig(num_blocks=num_blocks, rate=rate))
    return w * mask


def pattern_masked_matrix(shape=(16, 12), psize=4, sparsity=0.5, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=shape)
    ps = random_pattern_set(psize, sparsity, 3, rng)
    mask, ids = pattern_mask_for_matrix(w, ps)
    return w * mask, [p.mask for p in ps], ids


class TestCOOFormat:
    def test_round_trip(self):
        w = bp_masked_matrix()
        coo = from_dense_coo(w)
        assert np.array_equal(coo.to_dense(), w)

    def test_nnz_and_bytes(self):
        w = np.zeros((4, 4))
        w[0, 0] = w[3, 3] = 1.0
        coo = from_dense_coo(w)
        assert coo.nnz == 2
        assert coo.nbytes() == 2 * (4 + 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            COOMatrix((2, 2), np.array([0]), np.array([0, 1]), np.array([1.0]))
        with pytest.raises(ValueError):
            COOMatrix((2, 2), np.array([5]), np.array([0]), np.array([1.0]))


class TestBlockFormat:
    def test_round_trip(self):
        w = bp_masked_matrix()
        bc = from_dense_block(w, 4)
        assert np.allclose(bc.to_dense(), w)

    def test_index_count_is_per_group(self):
        w = bp_masked_matrix(rate=0.5, num_blocks=4)
        bc = from_dense_block(w, 4)
        kept_cols_total = sum(len(c) for c in bc.kept_cols)
        assert bc.nbytes() == bc.nnz * 4 + kept_cols_total * 2

    def test_beats_coo_on_bytes_for_bp_structure(self):
        """The paper's storage argument, now on real containers."""
        w = bp_masked_matrix(shape=(64, 48), rate=0.5, num_blocks=4)
        assert from_dense_block(w, 4).nbytes() < from_dense_coo(w).nbytes()

    def test_payload_shape_validation(self):
        with pytest.raises(ValueError):
            BlockCompressedMatrix((4, 4), [(0, 4)], [np.array([0, 1])],
                                  [np.zeros((4, 3))])

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            from_dense_block(np.zeros(5), 1)


class TestPatternFormat:
    def test_round_trip_exact_tiles(self):
        w, patterns, ids = pattern_masked_matrix(shape=(16, 12), psize=4)
        pm = from_dense_pattern(w, patterns, ids)
        assert np.allclose(pm.to_dense(), w)

    def test_round_trip_padded(self):
        w, patterns, ids = pattern_masked_matrix(shape=(14, 10), psize=4)
        pm = from_dense_pattern(w, patterns, ids)
        assert np.allclose(pm.to_dense(), w)

    def test_rejects_out_of_pattern_values(self):
        w, patterns, ids = pattern_masked_matrix(psize=4)
        w = w.copy()
        # plant a nonzero where the chosen pattern has a zero
        mask0 = patterns[ids[0, 0]].astype(bool)
        zr, zc = np.argwhere(~mask0)[0]
        w[zr, zc] = 99.0
        with pytest.raises(ValueError):
            from_dense_pattern(w, patterns, ids)

    def test_bytes_include_shared_masks_once(self):
        w, patterns, ids = pattern_masked_matrix(shape=(16, 12), psize=4)
        pm = from_dense_pattern(w, patterns, ids)
        with_masks = pm.nbytes(include_patterns=True)
        without = pm.nbytes(include_patterns=False)
        assert with_masks - without == pytest.approx(len(patterns) * 16 / 8)


class TestKernelCorrectness:
    @pytest.mark.parametrize("batch", [1, 3])
    def test_all_kernels_match_dense(self, batch):
        w, patterns, ids = pattern_masked_matrix(shape=(16, 12), psize=4, seed=3)
        x = np.random.default_rng(1).normal(size=(12, batch))
        expected, _ = dense_matmul(w, x)

        got_coo, _ = coo_matmul(from_dense_coo(w), x)
        assert np.allclose(got_coo, expected)

        got_pat, _ = pattern_matmul(from_dense_pattern(w, patterns, ids), x)
        assert np.allclose(got_pat, expected)

        wb = bp_masked_matrix(shape=(16, 12), seed=3)
        expected_b, _ = dense_matmul(wb, x)
        got_blk, _ = block_matmul(from_dense_block(wb, 4), x)
        assert np.allclose(got_blk, expected_b)

    def test_vector_input_promoted(self):
        w = bp_masked_matrix(shape=(8, 6))
        x = np.random.default_rng(2).normal(size=6)
        out, _ = block_matmul(from_dense_block(w, 2), x)
        assert out.shape == (8, 1)

    def test_shape_mismatch_rejected(self):
        w = bp_masked_matrix(shape=(8, 6))
        with pytest.raises(ValueError):
            dense_matmul(w, np.zeros((5, 1)))


class TestVectorizedKernels:
    """The grouped kernels must reproduce the scalar references exactly."""

    @pytest.mark.parametrize("shape,psize,batch", [
        ((16, 12), 4, 1), ((16, 12), 4, 3), ((14, 10), 4, 2),  # ragged pad
        ((32, 32), 8, 5), ((8, 8), 8, 2),  # single tile
    ])
    def test_pattern_grouped_matches_loop(self, shape, psize, batch):
        w, patterns, ids = pattern_masked_matrix(shape=shape, psize=psize,
                                                 seed=11)
        x = np.random.default_rng(4).normal(size=(shape[1], batch))
        got, c_vec = pattern_matmul(from_dense_pattern(w, patterns, ids), x)
        ref, c_loop = pattern_matmul_loop(from_dense_pattern(w, patterns, ids), x)
        np.testing.assert_allclose(got, ref, atol=1e-12, rtol=0)
        assert c_vec == c_loop  # identical op accounting

    def test_pattern_grouped_vector_input(self):
        w, patterns, ids = pattern_masked_matrix(shape=(16, 12), psize=4)
        x = np.random.default_rng(5).normal(size=12)
        out, _ = pattern_matmul(from_dense_pattern(w, patterns, ids), x)
        assert out.shape == (16, 1)

    def test_pattern_groups_cover_every_tile_once(self):
        w, patterns, ids = pattern_masked_matrix(shape=(16, 16), psize=4, seed=2)
        pm = from_dense_pattern(w, patterns, ids)
        seen = []
        for g in pm.pattern_groups():
            assert np.all(pm.tile_ids[g.tile_rows, g.tile_cols] == g.pattern_id)
            seen.extend(zip(g.tile_rows.tolist(), g.tile_cols.tolist()))
        assert sorted(seen) == [(bi, bj) for bi in range(4) for bj in range(4)]

    def test_table_charge_once_per_matrix(self):
        """Satellite fix: kept-position tables are charged on the first
        invocation only — materialized once, amortized across calls."""
        w, patterns, ids = pattern_masked_matrix(shape=(16, 12), psize=4)
        pm = from_dense_pattern(w, patterns, ids)
        x = np.ones((12, 2))
        _, first = pattern_matmul(pm, x)
        _, second = pattern_matmul(pm, x)
        table_ops = sum(len(np.argwhere(p != 0)) for p in pm.patterns)
        assert first.index_ops == table_ops
        assert second.index_ops == 0
        assert second.macs == first.macs
        assert second.overhead_ops == first.overhead_ops

    def test_table_charge_shared_between_kernels(self):
        # loop and grouped kernels share one table per matrix: whoever
        # runs first pays, the other rides the materialized table
        w, patterns, ids = pattern_masked_matrix(shape=(16, 12), psize=4)
        pm = from_dense_pattern(w, patterns, ids)
        x = np.ones((12, 2))
        _, first = pattern_matmul_loop(pm, x)
        _, second = pattern_matmul(pm, x)
        assert first.index_ops > 0
        assert second.index_ops == 0

    def test_block_grouped_matches_dense(self):
        # ragged block heights: 10 rows over 4 blocks -> mixed 2/3 heights
        w = bp_masked_matrix(shape=(10, 12), rate=0.4, num_blocks=2, seed=9)
        bc = from_dense_block(w, 4)
        heights = {hi - lo for lo, hi in bc.block_bounds}
        assert len(heights) > 1  # genuinely ragged
        x = np.random.default_rng(6).normal(size=(12, 3))
        expected, _ = dense_matmul(w, x)
        got, counter = block_matmul(bc, x)
        np.testing.assert_allclose(got, expected, atol=1e-12, rtol=0)
        assert counter.overhead_ops == len(bc.block_bounds)
        assert counter.index_ops == sum(len(c) for c in bc.kept_cols)

    def test_block_groups_batch_uniform_blocks(self):
        w = bp_masked_matrix(shape=(16, 12), rate=0.0, num_blocks=4)
        bc = from_dense_block(w, 4)
        # equal heights and (rate=0 -> all columns kept) equal kept counts:
        # the whole matrix collapses into one batched group
        assert len(bc.matmul_groups()) == 1
        assert bc.matmul_groups() is bc.matmul_groups()  # cached

    def test_degenerate_blocks_still_billed_one_dispatch(self):
        # num_blocks > rows: zero-height blocks carry no work but still
        # cost a per-block dispatch, matching the pre-grouping kernel
        w = bp_masked_matrix(shape=(2, 8), rate=0.0, num_blocks=1)
        bc = from_dense_block(w, 4)
        assert len(bc.block_bounds) == 4
        _, counter = block_matmul(bc, np.ones((8, 1)))
        assert counter.overhead_ops == 4

    def test_zero_blocks_rejected(self):
        with pytest.raises(ValueError, match="num_blocks"):
            from_dense_block(np.ones((4, 4)), 0)

    def test_from_dense_pattern_matches_tilewise_reference(self):
        w, patterns, ids = pattern_masked_matrix(shape=(14, 10), psize=4, seed=8)
        pm = from_dense_pattern(w, patterns, ids)
        stack = np.stack([p != 0 for p in np.asarray(patterns)])
        padded = np.zeros((16, 12))
        padded[:14, :10] = w
        k = 0
        for bi in range(4):
            for bj in range(3):
                tile = padded[bi * 4:(bi + 1) * 4, bj * 4:(bj + 1) * 4]
                np.testing.assert_array_equal(pm.tile_values[k],
                                              tile[stack[ids[bi, bj]]])
                k += 1


class TestCostModel:
    def test_sparse_macs_scale_with_survivors(self):
        w = bp_masked_matrix(shape=(32, 32), rate=0.5, num_blocks=4)
        x = np.ones((32, 1))
        _, dense_c = dense_matmul(w, x)
        _, block_c = block_matmul(from_dense_block(w, 4), x)
        kept = np.count_nonzero(w) / w.size
        assert block_c.macs == pytest.approx(dense_c.macs * kept, rel=0.01)

    def test_cost_ordering_block_pattern_coo(self):
        """The paper's Challenge-1 ordering, realized by op counts."""
        w, patterns, ids = pattern_masked_matrix(shape=(32, 32), psize=4,
                                                 sparsity=0.5, seed=5)
        x = np.ones((32, 4))
        _, coo_c = coo_matmul(from_dense_coo(w), x)
        _, pat_c = pattern_matmul(from_dense_pattern(w, patterns, ids), x)
        wb = bp_masked_matrix(shape=(32, 32), rate=0.5, num_blocks=4, seed=5)
        _, blk_c = block_matmul(from_dense_block(wb, 4), x)
        # same MAC ballpark, wildly different index burden: structured
        # formats pay a few dozen index ops, COO pays thousands
        assert blk_c.index_ops * 10 < coo_c.index_ops
        assert pat_c.index_ops * 10 < coo_c.index_ops
        assert blk_c.weighted_total() < coo_c.weighted_total()
        assert pat_c.weighted_total() < coo_c.weighted_total()

    def test_coo_indexing_can_dominate(self):
        """At moderate sparsity COO's weighted cost exceeds dense —
        why the paper rejects irregular pruning on mobile."""
        rng = np.random.default_rng(6)
        w = rng.normal(size=(32, 32))
        w[rng.random(w.shape) < 0.3] = 0.0  # only 30% sparse
        x = np.ones((32, 2))
        _, dense_c = dense_matmul(w, x)
        _, coo_c = coo_matmul(from_dense_coo(w), x)
        assert coo_c.weighted_total() > dense_c.weighted_total()

    def test_pattern_index_cost_amortized(self):
        """Doubling the tiles (same pattern library) must NOT double the
        pattern-table index cost — it is shared across tiles."""
        w1, patterns, ids1 = pattern_masked_matrix(shape=(16, 16), psize=4, seed=7)
        w2 = np.vstack([w1, w1])
        ids2 = np.vstack([ids1, ids1])
        x1 = np.ones((16, 1))
        _, c1 = pattern_matmul(from_dense_pattern(w1, patterns, ids1), x1)
        _, c2 = pattern_matmul(from_dense_pattern(w2, patterns, ids2), x1)
        assert c2.index_ops == c1.index_ops  # same table, twice the tiles
        assert c2.macs == 2 * c1.macs
        assert c2.overhead_ops == 2 * c1.overhead_ops

    def test_op_counter_totals(self):
        c = OpCounter(macs=10, index_ops=4, overhead_ops=1)
        assert c.total == 15
        assert c.weighted_total(index_penalty=3.0) == 10 + 12 + 1
