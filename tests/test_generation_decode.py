"""KV-cached decode plane + DecodeSession API: exactness, edge cases, shim.

The contract under test is bit-identity: every token and logprob a
compiled, continuously-batched decode stream produces must equal (``==``,
not allclose) what the historical eager ``generate()`` loop produces for
the same prompt and sampling config, regardless of which streams join or
leave the rolling batch around it.
"""

import numpy as np
import pytest

import repro.nn.generation as generation
from repro.core.patterns import MaskManager, random_pattern_set
from repro.nn.generation import (
    DecodeSession,
    GenerationConfig,
    generate,
    sample_token,
)
from repro.nn.inference import ScratchPool, compile_decode
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.tensor.tensor import Tensor, no_grad

# the paper shape (2 encoder / 1 decoder layers): KV-capable
LM_CFG = TransformerConfig(vocab_size=60, dim=32, num_heads=2, ffn_dim=64,
                           num_encoder_layers=2, num_decoder_layers=1,
                           max_len=16, dropout=0.0, seed=3)
# two decoder layers: the decode plane must fall back to full forwards
DEEP_CFG = TransformerConfig(vocab_size=60, dim=32, num_heads=2, ffn_dim=64,
                             num_encoder_layers=1, num_decoder_layers=2,
                             max_len=16, dropout=0.0, seed=4)


def make_model(kind="lm"):
    return TransformerLM(LM_CFG if kind == "lm" else DEEP_CFG).eval()


def install_pattern(model, seed=0, sparsity=0.5):
    pset = random_pattern_set(8, sparsity, 3, np.random.default_rng(seed))
    MaskManager(model).apply(pset)
    return pset


def eager_generate(model, prompt, cfg):
    """The pre-decode-plane ``generate()`` loop, replicated verbatim:
    the reference every compiled stream must match bit-for-bit."""
    model.eval()
    tokens = np.asarray(prompt, dtype=np.int64).reshape(-1).copy()
    rng = np.random.default_rng(cfg.seed)
    logprobs = []
    max_len = model.cfg.max_len
    for _ in range(cfg.max_new_tokens):
        context = tokens[-max_len:]
        with no_grad():
            logits = model(Tensor(context[None, :])).data[0, -1]
        nxt, logprob = sample_token(logits, cfg, rng)
        tokens = np.append(tokens, nxt)
        logprobs.append(logprob)
        if cfg.eos_id is not None and nxt == cfg.eos_id:
            break
    return tokens, logprobs


def run_session(model, prompt, cfg, **kw):
    session = DecodeSession(model, cfg, **kw)
    try:
        sid = session.submit_prompt(prompt)
        session.run()
        return session.result(sid)
    finally:
        session.close()


# ---------------------------------------------------------------------------
# the equivalence matrix: models x masks x sampling x prompt lengths
# ---------------------------------------------------------------------------

class TestDecodeExactness:
    @pytest.mark.parametrize("kind", ["lm", "deep"])
    @pytest.mark.parametrize("masked", [False, True])
    @pytest.mark.parametrize("cfg", [
        GenerationConfig(max_new_tokens=10),
        GenerationConfig(max_new_tokens=10, top_k=7, seed=11),
    ], ids=["greedy", "topk"])
    @pytest.mark.parametrize("plen", [1, 2, 5, 15, 16, 19])
    def test_bit_identical_to_eager(self, kind, masked, cfg, plen):
        model = make_model(kind)
        if masked:
            install_pattern(model)
        prompt = np.random.default_rng(plen).integers(0, 60, size=plen)
        ref_tokens, ref_logprobs = eager_generate(model, prompt, cfg)
        got = run_session(model, prompt, cfg)
        assert np.array_equal(got.tokens, ref_tokens)  # exact ==
        assert got.logprobs == ref_logprobs

    def test_per_step_logits_equal_full_plan(self):
        """CompiledDecode's incremental step == the full-sequence plan."""
        model = make_model("lm")
        decoder = compile_decode(model)
        assert decoder.kv_capable
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, 60, size=(3, 4))
        states = [decoder.new_state() for _ in range(3)]
        try:
            for length in range(4, LM_CFG.max_len + 1):
                step = decoder.decode_step(tokens, states)
                full = decoder.plan(tokens)[:, -1]
                assert np.array_equal(step, full)
                nxt = step.argmax(axis=1).astype(np.int64)
                tokens = np.concatenate([tokens, nxt[:, None]], axis=1)
        finally:
            for st in states:
                st.release()

    def test_deep_model_not_kv_capable_but_exact(self):
        decoder = compile_decode(make_model("deep"))
        assert not decoder.kv_capable

    def test_sparse_plan_not_kv_capable(self):
        from repro.nn.inference import compile_inference
        from repro.sparse.executor import SparseExecutor

        model = make_model("lm")
        pset = random_pattern_set(8, 0.5, 3, np.random.default_rng(0))
        MaskManager(model).apply(pset)
        plan = compile_inference(model,
                                 sparse=SparseExecutor("pattern",
                                                       pattern_set=pset))
        decoder = compile_decode(model, plan=plan)
        # a sparse-dispatch plan must refuse the incremental KV path
        assert not decoder.kv_capable
        # ...but decode still works through the full-plan fallback, and
        # every step must agree with the sparse plan itself exactly
        toks = np.random.default_rng(0).integers(0, 60, size=(2, 5))
        st = [decoder.new_state() for _ in range(2)]
        try:
            got = decoder.decode_step(toks, st)
            assert np.array_equal(got, plan(toks)[:, -1])
            assert all(s.rows == 0 for s in st)
        finally:
            for s in st:
                s.release()

    def test_length_validation(self):
        model = make_model("lm")
        decoder = compile_decode(model)
        toks = np.zeros((1, LM_CFG.max_len + 1), dtype=np.int64)
        st = decoder.new_state()
        try:
            with pytest.raises(ValueError, match="exceeds max_len"):
                decoder.decode_step(toks, [st])
        finally:
            st.release()


# ---------------------------------------------------------------------------
# continuous batching: ragged joins and leaves never perturb a stream
# ---------------------------------------------------------------------------

class TestContinuousBatching:
    def test_ragged_join_leave_schedule(self):
        model = make_model("lm")
        rng = np.random.default_rng(5)
        cfgs = [GenerationConfig(max_new_tokens=3 + i % 4,
                                 top_k=None if i % 2 else 5, seed=i)
                for i in range(6)]
        prompts = [rng.integers(0, 60, size=2 + i) for i in range(6)]
        session = DecodeSession(model)
        try:
            sids = [session.submit_prompt(prompts[0], cfgs[0])]
            pending = list(zip(prompts[1:], cfgs[1:]))
            while pending or not session.finished():
                if not session.finished():
                    session.step()
                if pending:
                    p, c = pending.pop(0)
                    sids.append(session.submit_prompt(p, c))
            for sid, prompt, cfg in zip(sids, prompts, cfgs):
                ref_tokens, ref_logprobs = eager_generate(model, prompt, cfg)
                got = session.result(sid)
                assert np.array_equal(got.tokens, ref_tokens)
                assert got.logprobs == ref_logprobs
        finally:
            session.close()

    def test_same_tick_join_and_leave(self):
        """A stream exhausting its budget on the same boundary another
        joins: neither perturbs the other."""
        model = make_model("lm")
        rng = np.random.default_rng(9)
        p_short = rng.integers(0, 60, size=4)
        p_long = rng.integers(0, 60, size=4)
        p_late = rng.integers(0, 60, size=6)
        session = DecodeSession(model)
        try:
            s1 = session.submit_prompt(p_short,
                                       GenerationConfig(max_new_tokens=1))
            s2 = session.submit_prompt(p_long,
                                       GenerationConfig(max_new_tokens=5))
            session.step()  # s1 leaves at this boundary...
            assert session.finished(s1)
            s3 = session.submit_prompt(p_late,
                                       GenerationConfig(max_new_tokens=4))
            session.run()
            for sid, prompt, n in ((s1, p_short, 1), (s2, p_long, 5),
                                   (s3, p_late, 4)):
                ref_tokens, ref_logprobs = eager_generate(
                    model, prompt, GenerationConfig(max_new_tokens=n))
                got = session.result(sid)
                assert np.array_equal(got.tokens, ref_tokens)
                assert got.logprobs == ref_logprobs
        finally:
            session.close()

    def test_eos_early_exit_mid_batch(self):
        """One stream hitting eos mid-decode leaves the batch; survivors
        stay bit-identical to their solo runs."""
        model = make_model("lm")
        rng = np.random.default_rng(3)
        prompts = [rng.integers(0, 60, size=5) for _ in range(3)]
        base = GenerationConfig(max_new_tokens=8)
        # pick an eos that actually fires mid-run for stream 0
        probe, _ = eager_generate(model, prompts[0], base)
        eos = int(probe[len(prompts[0]) + 2])  # third generated token
        cfgs = [GenerationConfig(max_new_tokens=8, eos_id=eos), base, base]
        session = DecodeSession(model)
        try:
            sids = [session.submit_prompt(p, c)
                    for p, c in zip(prompts, cfgs)]
            session.run()
            early = session.result(sids[0])
            assert int(early.generated[-1]) == eos
            assert len(early.generated) < 8  # actually exited early
            for sid, prompt, cfg in zip(sids, prompts, cfgs):
                ref_tokens, ref_logprobs = eager_generate(model, prompt, cfg)
                got = session.result(sid)
                assert np.array_equal(got.tokens, ref_tokens)
                assert got.logprobs == ref_logprobs
        finally:
            session.close()


# ---------------------------------------------------------------------------
# edge cases: mask-cache churn, recompiles, dtype aliasing
# ---------------------------------------------------------------------------

class TestDecodeEdgeCases:
    def test_prompt_longer_than_mask_cache_cap(self):
        """A long decode visits more distinct lengths than the memoized
        mask cache holds (cap 64): the wholesale clear mid-decode must
        not perturb a single bit."""
        cfg = TransformerConfig(vocab_size=40, dim=16, num_heads=2,
                                ffn_dim=32, num_encoder_layers=1,
                                num_decoder_layers=1, max_len=80,
                                dropout=0.0, seed=7)
        model = TransformerLM(cfg).eval()
        prompt = np.random.default_rng(1).integers(0, 40, size=3)
        gen = GenerationConfig(max_new_tokens=74)
        ref_tokens, ref_logprobs = eager_generate(model, prompt, gen)
        got = run_session(model, prompt, gen)
        assert np.array_equal(got.tokens, ref_tokens)
        assert got.logprobs == ref_logprobs

    def test_kernel_regime_cap_keeps_wide_shapes_exact(self):
        """Shapes whose transposed-view tail GEMMs change BLAS kernel
        regime mid-range get a probed ``kv_len_cap``; decode falls back
        to the full plan beyond it and stays bit-identical across the
        boundary (on OpenBLAS this shape caps at 9 of max_len 24)."""
        cfg = TransformerConfig(vocab_size=120, dim=64, num_heads=4,
                                ffn_dim=128, num_encoder_layers=2,
                                num_decoder_layers=1, max_len=24,
                                dropout=0.0, seed=9)
        model = TransformerLM(cfg).eval()
        decoder = compile_decode(model)
        assert 1 <= decoder.kv_len_cap <= cfg.max_len
        # the probe is deterministic per shape
        other = compile_decode(TransformerLM(cfg).eval())
        assert other.kv_len_cap == decoder.kv_len_cap
        prompt = np.random.default_rng(3).integers(0, 120, size=4)
        gen = GenerationConfig(max_new_tokens=18)  # crosses any sub-max cap
        ref_tokens, ref_logprobs = eager_generate(model, prompt, gen)
        got = run_session(model, prompt, gen, decoder=decoder)
        assert np.array_equal(got.tokens, ref_tokens)
        assert got.logprobs == ref_logprobs
        if decoder.kv_len_cap < cfg.max_len:
            # past the cap every stream's cache is retired each step
            state = decoder.new_state()
            ctx = np.random.default_rng(4).integers(
                0, 120, size=(1, decoder.kv_len_cap))
            decoder.decode_step(ctx, [state])
            assert state.rows > 0
            long_ctx = np.random.default_rng(5).integers(
                0, 120, size=(1, decoder.kv_len_cap + 1))
            decoder.decode_step(long_ctx, [state])
            assert state.rows == 0
            state.release()

    def test_mask_install_mid_decode_invalidates_kv(self):
        """Re-installing masks mid-decode recompiles the decode plane and
        drops cached K/V; outputs still match an eager run with the same
        install schedule."""
        model = make_model("lm")
        manager = MaskManager(model)
        psets = [random_pattern_set(8, s, 3, np.random.default_rng(i))
                 for i, s in enumerate((0.3, 0.5))]
        prompt = np.random.default_rng(2).integers(0, 60, size=5)
        cfg = GenerationConfig(max_new_tokens=8)

        def scheduled(step_fn, install_at=4):
            out = []
            for i in range(cfg.max_new_tokens):
                if i == install_at:
                    manager.apply(psets[1])
                out.append(step_fn())
            return out

        manager.apply(psets[0])
        session = DecodeSession(model)
        decoder = session.decoder
        assert decoder is not None and decoder.kv_capable
        sid = session.submit_prompt(prompt)
        epoch0 = decoder.epoch
        compiled_steps = scheduled(session.step)
        got = session.result(sid)
        session.close()
        assert decoder.epoch > epoch0  # the real switch invalidated K/V
        assert decoder.decode_compiles >= 2

        manager.apply(psets[0])
        tokens = prompt.astype(np.int64).copy()
        rng = np.random.default_rng(cfg.seed)
        logprobs = []

        def eager_step():
            nonlocal tokens
            context = tokens[-model.cfg.max_len:]
            with no_grad():
                logits = model(Tensor(context[None, :])).data[0, -1]
            nxt, lp = sample_token(logits, cfg, rng)
            tokens = np.append(tokens, nxt)
            logprobs.append(lp)
            return {sid: nxt}

        eager_steps = scheduled(eager_step)
        assert compiled_steps == eager_steps
        assert np.array_equal(got.tokens, tokens)
        assert got.logprobs == logprobs

    def test_identical_reinstall_keeps_kv(self):
        """Re-applying the already-installed set (the serving loop's
        reinstall_per_batch idiom) must not recompile or drop caches."""
        model = make_model("lm")
        manager = MaskManager(model)
        pset = random_pattern_set(8, 0.5, 3, np.random.default_rng(0))
        manager.apply(pset)
        decoder = compile_decode(model)
        st = decoder.new_state()
        try:
            toks = np.random.default_rng(0).integers(0, 60, size=(1, 6))
            decoder.decode_step(toks, [st])
            epoch, compiles = decoder.epoch, decoder.decode_compiles
            rows = st.rows
            manager.apply(pset)  # identical re-install
            decoder.decode_step(toks, [st])
            assert decoder.epoch == epoch
            assert decoder.decode_compiles == compiles
            assert st.rows >= rows  # cache survived
        finally:
            st.release()

    def test_scratch_pool_dtype_keying(self):
        """Same-shape buffers of different dtypes never alias (the KV
        cache is float64 while a float32 plan shares the pool)."""
        pool = ScratchPool(np.dtype(np.float32))
        a32 = pool.take((4, 4))
        a64 = pool.take((4, 4), np.dtype(np.float64))
        assert a32.dtype == np.float32 and a64.dtype == np.float64
        a32[:] = 1.0
        a64[:] = 2.0
        assert float(a32[0, 0]) == 1.0 and float(a64[0, 0]) == 2.0
        pool.give(a32)
        pool.give(a64)
        # reuse honours the dtype key: both live again, still distinct
        b64 = pool.take((4, 4), np.dtype(np.float64))
        b32 = pool.take((4, 4))
        assert b64 is a64 and b32 is a32
        assert b64.dtype == np.float64 and b32.dtype == np.float32


# ---------------------------------------------------------------------------
# the deprecated free-function shim
# ---------------------------------------------------------------------------

class TestGenerateShim:
    def test_warns_once_and_matches_session(self, monkeypatch):
        monkeypatch.setattr(generation, "_GENERATE_DEPRECATION_WARNED", False)
        model = make_model("lm")
        prompt = np.random.default_rng(0).integers(0, 60, size=5)
        with pytest.warns(DeprecationWarning, match="DecodeSession"):
            a = generate(model, prompt, 6, top_k=4, seed=9)
        with warnings_none():
            b = generate(model, prompt, 6, top_k=4, seed=9)
        assert np.array_equal(a.tokens, b.tokens)
        assert a.logprobs == b.logprobs
        # the historical eval->train round trip survives the shim
        assert model.training
        got = run_session(model, prompt,
                          GenerationConfig(max_new_tokens=6, top_k=4, seed=9))
        assert np.array_equal(a.tokens, got.tokens)

    @pytest.mark.parametrize("kwargs,msg", [
        (dict(max_new_tokens=0), "max_new_tokens must be >= 1"),
        (dict(max_new_tokens=3, temperature=0.0), "temperature must be positive"),
        (dict(max_new_tokens=3, top_k=0), "top_k must be >= 1"),
    ])
    def test_validation_errors_preserved(self, kwargs, msg):
        model = make_model("lm")
        prompt = [1, 2, 3]
        with pytest.raises(ValueError, match=msg):
            generate(model, prompt, **kwargs)

    def test_empty_prompt_rejected(self):
        with pytest.raises(ValueError, match="prompt cannot be empty"):
            generate(make_model("lm"), [], 3)
        session = DecodeSession(make_model("lm"))
        with pytest.raises(ValueError, match="prompt cannot be empty"):
            session.submit_prompt([])


import contextlib
import warnings as _warnings


@contextlib.contextmanager
def warnings_none():
    with _warnings.catch_warnings():
        _warnings.simplefilter("error", DeprecationWarning)
        yield
