"""Component ③: shrunken search-space construction."""

import numpy as np
import pytest

from repro.core.block_pruning import BlockPruningConfig, apply_block_pruning
from repro.core.patterns import MaskManager
from repro.core.search_space import PatternSearchSpace, SearchSpaceConfig
from repro.hardware.dvfs import DVFSTable
from repro.hardware.workload import paper_scale_transformer

LEVELS = DVFSTable().subset(["l3", "l4", "l6"])


@pytest.fixture()
def space(tiny_transformer):
    report = apply_block_pruning(tiny_transformer, BlockPruningConfig(num_blocks=2, rate=0.3))
    manager = MaskManager(tiny_transformer, report.masks)
    cfg = SearchSpaceConfig(pattern_size=8, theta=3, patterns_per_set=4, seed=0)
    return PatternSearchSpace(manager, paper_scale_transformer(), LEVELS,
                              deadline_s=0.104, cfg=cfg)


class TestConfigValidation:
    def test_pattern_size(self):
        with pytest.raises(ValueError):
            SearchSpaceConfig(pattern_size=1)

    def test_theta(self):
        with pytest.raises(ValueError):
            SearchSpaceConfig(theta=0)

    def test_fraction(self):
        with pytest.raises(ValueError):
            SearchSpaceConfig(block_sample_fraction=0.0)

    def test_sparsity_bounds(self):
        with pytest.raises(ValueError):
            SearchSpaceConfig(min_sparsity=0.9, max_sparsity=0.5)


class TestSparsityCandidates:
    def test_theta_candidates_per_level(self, space):
        for name in space.level_names:
            assert 1 <= space.num_set_choices(name) <= 3

    def test_lower_level_higher_base_sparsity(self, space):
        """l3 needs more total sparsity than l6 to hit the same deadline."""
        total_l3 = space.total_sparsity(space.sparsity_candidates["l3"][0])
        total_l6 = space.total_sparsity(space.sparsity_candidates["l6"][0])
        assert total_l3 > total_l6

    def test_candidates_tighten(self, space):
        for name in space.level_names:
            cands = space.sparsity_candidates[name]
            assert cands == sorted(cands)

    def test_pattern_sparsity_composition(self, space):
        s_bp = space.manager.backbone_sparsity()
        s_pp = 0.5
        total = space.total_sparsity(s_pp)
        assert total == pytest.approx(1 - (1 - s_bp) * 0.5)
        # inverse
        assert space.pattern_sparsity_for_total(total) == pytest.approx(s_pp)

    def test_total_below_backbone_gives_min(self, space):
        s_bp = space.manager.backbone_sparsity()
        assert space.pattern_sparsity_for_total(s_bp / 2) == space.cfg.min_sparsity


class TestPatternConstruction:
    def test_sets_have_m_patterns(self, space):
        for name in space.level_names:
            for ps in space.candidates[name]:
                assert len(ps) == 4

    def test_patterns_match_set_sparsity(self, space):
        for name in space.level_names:
            for ps in space.candidates[name]:
                for p in ps:
                    assert p.sparsity == pytest.approx(ps.sparsity, abs=0.05)

    def test_patterns_within_set_are_diverse(self, space):
        ps = space.candidates["l3"][0]
        digests = {p.digest() for p in ps}
        assert len(digests) >= 2  # block sampling produced variety

    def test_importance_map_shape(self, space):
        imp = space.importance_map()
        assert imp.shape == (8, 8)
        assert (imp >= 0).all()

    def test_importance_guided_patterns_keep_important_positions(self, space):
        """The top-importance position must be kept by every generated
        pattern at moderate sparsity (it wins every subsample)."""
        tiles = space._backbone_tiles()
        total_importance = tiles.sum(axis=0)
        top = np.unravel_index(total_importance.argmax(), total_importance.shape)
        ps = space._build_pattern_set(0.5)
        kept = [p.mask[top] for p in ps]
        assert np.mean(kept) >= 0.75

    def test_pattern_too_large_raises(self, tiny_transformer):
        report = apply_block_pruning(tiny_transformer, BlockPruningConfig(num_blocks=2, rate=0.3))
        manager = MaskManager(tiny_transformer, report.masks)
        cfg = SearchSpaceConfig(pattern_size=512, theta=1, patterns_per_set=1)
        with pytest.raises(ValueError):
            PatternSearchSpace(manager, paper_scale_transformer(), LEVELS, 0.104, cfg=cfg)


class TestChoices:
    def test_get_set(self, space):
        ps = space.get_set("l6", 0)
        assert ps.sparsity == space.sparsity_candidates["l6"][0]

    def test_random_choice_covers_levels(self, space):
        choice = space.random_choice(np.random.default_rng(0))
        assert set(choice) == {"l3", "l4", "l6"}

    def test_heuristic_choice_is_loosest(self, space):
        choice = space.heuristic_choice()
        for name in space.level_names:
            assert choice[name].sparsity == space.sparsity_candidates[name][0]

    def test_repr(self, space):
        assert "l6" in repr(space)

    def test_deterministic_under_seed(self, tiny_transformer):
        report = apply_block_pruning(tiny_transformer, BlockPruningConfig(num_blocks=2, rate=0.3))
        manager = MaskManager(tiny_transformer, report.masks)
        cfg = SearchSpaceConfig(pattern_size=8, theta=2, patterns_per_set=2, seed=42)
        a = PatternSearchSpace(manager, paper_scale_transformer(), LEVELS, 0.104, cfg=cfg)
        b = PatternSearchSpace(manager, paper_scale_transformer(), LEVELS, 0.104, cfg=cfg)
        for name in a.level_names:
            for pa, pb in zip(a.candidates[name], b.candidates[name]):
                assert [p.digest() for p in pa] == [p.digest() for p in pb]
