"""Runtime adaptation policy (fluctuating-constraint deployment)."""

import numpy as np
import pytest

from repro.core.patterns import random_pattern_set
from repro.core.runtime_policy import RuntimeAdapter
from repro.hardware.dvfs import DVFSTable
from repro.hardware.latency import LatencyModel, SparsityKind
from repro.hardware.workload import paper_scale_transformer

L4 = DVFSTable()["l4"]
L6 = DVFSTable()["l6"]


@pytest.fixture()
def adapter():
    rng = np.random.default_rng(0)
    ladder = {s: random_pattern_set(8, s, 2, rng) for s in (0.3, 0.5, 0.7, 0.9)}
    return RuntimeAdapter(ladder, paper_scale_transformer())


class TestFeasibility:
    def test_loose_deadline_picks_least_sparse(self, adapter):
        assert adapter.feasible_sparsity(L6, 10.0) == 0.3

    def test_tight_deadline_picks_sparser(self, adapter):
        lm = LatencyModel()
        wl = paper_scale_transformer()
        lat_05 = lm.latency_s(wl, L4, 0.5, SparsityKind.PATTERN)
        lat_03 = lm.latency_s(wl, L4, 0.3, SparsityKind.PATTERN)
        deadline = (lat_05 + lat_03) / 2  # between the two
        assert adapter.feasible_sparsity(L4, deadline) == 0.5

    def test_impossible_deadline_returns_none(self, adapter):
        assert adapter.feasible_sparsity(L4, 1e-6) is None


class TestAdaptation:
    def test_first_adapt_switches(self, adapter):
        event = adapter.adapt(L6, 1.0)
        assert event.switched
        assert event.switch is not None
        assert event.chosen_sparsity == 0.3

    def test_stable_constraint_no_repeat_switch(self, adapter):
        adapter.adapt(L6, 1.0)
        event = adapter.adapt(L6, 1.0)
        assert not event.switched

    def test_constraint_change_triggers_switch(self, adapter):
        adapter.adapt(L6, 10.0)
        lm = LatencyModel()
        wl = paper_scale_transformer()
        tight = lm.latency_s(wl, L4, 0.7, SparsityKind.PATTERN) * 1.01
        event = adapter.adapt(L4, tight)
        assert event.switched
        assert event.chosen_sparsity == 0.7

    def test_infeasible_marks_violation_keeps_running(self, adapter):
        event = adapter.adapt(L4, 1e-6)
        assert event.chosen_sparsity is None
        assert not event.switched
        assert event.predicted_latency_s > 0

    def test_bad_deadline_rejected(self, adapter):
        with pytest.raises(ValueError):
            adapter.adapt(L4, 0.0)


class TestTraceRun:
    def test_report_aggregates(self, adapter):
        lm = LatencyModel()
        wl = paper_scale_transformer()
        tight = lm.latency_s(wl, L4, 0.7, SparsityKind.PATTERN) * 1.01
        trace = [(L6, 1.0), (L6, 1.0), (L4, tight), (L6, 1.0)]
        report = adapter.run(trace)
        assert len(report.events) == 4
        assert report.num_switches == 3  # initial, tighten, loosen
        assert report.total_switch_seconds > 0
        assert report.violations == 0

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            RuntimeAdapter({}, paper_scale_transformer())

    def test_manager_masks_applied_on_switch(self, tiny_transformer):
        from repro.core.block_pruning import BlockPruningConfig, apply_block_pruning
        from repro.core.patterns import MaskManager

        report = apply_block_pruning(tiny_transformer, BlockPruningConfig(num_blocks=2, rate=0.3))
        manager = MaskManager(tiny_transformer, report.masks)
        rng = np.random.default_rng(1)
        ladder = {0.4: random_pattern_set(8, 0.4, 2, rng),
                  0.8: random_pattern_set(8, 0.8, 2, rng)}
        adapter = RuntimeAdapter(ladder, paper_scale_transformer(), manager=manager)
        adapter.adapt(L6, 10.0)
        assert manager.active_set is ladder[0.4]
        assert manager.combined_sparsity() > report.overall_sparsity
