"""TransformerLM and DistilBERT: shapes, losses, training signal."""

import numpy as np
import pytest

from repro.nn.distilbert import DistilBertConfig, DistilBertForSequenceTask, DistilBertModel
from repro.nn.optim import Adam
from repro.nn.transformer import TransformerConfig, TransformerLM, positional_encoding
from repro.tensor.tensor import Tensor

from tests.conftest import TINY_DISTILBERT, TINY_TRANSFORMER


class TestTransformerLM:
    def test_paper_layer_counts(self):
        """The paper's model: two encoder and one decoder layers."""
        cfg = TransformerConfig()
        model = TransformerLM(cfg)
        assert len(model.encoder) == 2
        assert len(model.decoder) == 1

    def test_logits_shape(self, tiny_transformer):
        toks = np.random.default_rng(0).integers(0, 60, size=(2, 8))
        logits = tiny_transformer(Tensor(toks))
        assert logits.shape == (2, 8, 60)

    def test_loss_scalar_and_finite(self, tiny_transformer):
        rng = np.random.default_rng(1)
        toks = rng.integers(0, 60, size=(2, 8))
        tgt = rng.integers(0, 60, size=(2, 8))
        loss = tiny_transformer.loss(Tensor(toks), Tensor(tgt))
        assert loss.data.size == 1 and np.isfinite(loss.data)

    def test_initial_loss_near_uniform(self, tiny_transformer):
        rng = np.random.default_rng(2)
        toks = rng.integers(0, 60, size=(4, 8))
        tgt = rng.integers(0, 60, size=(4, 8))
        loss = float(tiny_transformer.loss(Tensor(toks), Tensor(tgt)).data)
        assert abs(loss - np.log(60)) < 1.0

    def test_accuracy_in_unit_interval(self, tiny_transformer):
        rng = np.random.default_rng(3)
        toks = rng.integers(0, 60, size=(2, 8))
        tgt = rng.integers(0, 60, size=(2, 8))
        acc = tiny_transformer.accuracy(Tensor(toks), Tensor(tgt))
        assert 0.0 <= acc <= 1.0

    def test_overfits_single_batch(self):
        """A few Adam steps must drive the loss down — training works."""
        model = TransformerLM(TINY_TRANSFORMER)
        rng = np.random.default_rng(4)
        toks = rng.integers(0, 60, size=(4, 8))
        tgt = rng.integers(0, 60, size=(4, 8))
        opt = Adam(model.parameters(), lr=5e-3)
        first = None
        for _ in range(30):
            loss = model.loss(Tensor(toks), Tensor(tgt))
            if first is None:
                first = float(loss.data)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert float(loss.data) < 0.5 * first

    def test_sequence_too_long_raises(self, tiny_transformer):
        toks = np.zeros((1, 99), dtype=np.int64)
        with pytest.raises(ValueError):
            tiny_transformer(Tensor(toks))

    def test_dim_heads_validation(self):
        with pytest.raises(ValueError):
            TransformerConfig(dim=30, num_heads=4)

    def test_positional_encoding_properties(self):
        pe = positional_encoding(50, 16)
        assert pe.shape == (50, 16)
        assert np.all(np.abs(pe) <= 1.0)
        # rows differ (positions are distinguishable)
        assert not np.allclose(pe[0], pe[1])

    def test_causality_of_predictions(self, tiny_transformer):
        """Perturbing token t must not change logits before t-? — here the
        decoder is causal over its own input, so earlier positions react
        only through the (bidirectional) encoder memory; verify grads exist
        and forward is deterministic instead."""
        rng = np.random.default_rng(5)
        toks = rng.integers(0, 60, size=(1, 8))
        a = tiny_transformer(Tensor(toks)).data
        b = tiny_transformer(Tensor(toks)).data
        assert np.allclose(a, b)


class TestDistilBert:
    def test_paper_config_defaults(self):
        """Paper scale: 6 encoder layers; H and A configurable to 768/12."""
        cfg = DistilBertConfig()
        assert cfg.num_layers == 6
        paper = DistilBertConfig(dim=768, num_heads=12, ffn_dim=3072)
        assert paper.dim // paper.num_heads == 64

    def test_hidden_shape(self):
        model = DistilBertModel(TINY_DISTILBERT)
        toks = np.random.default_rng(0).integers(0, 80, size=(2, 10))
        out = model(Tensor(toks))
        assert out.shape == (2, 10, 32)

    def test_classifier_logits_shape(self, tiny_distilbert):
        toks = np.random.default_rng(1).integers(0, 80, size=(3, 10))
        logits = tiny_distilbert(Tensor(toks))
        assert logits.shape == (3, 2)

    def test_regression_head_shape(self):
        cfg = DistilBertConfig(vocab_size=80, dim=32, num_heads=2, ffn_dim=64,
                               num_layers=2, max_len=24, is_regression=True)
        model = DistilBertForSequenceTask(cfg)
        toks = np.random.default_rng(2).integers(0, 80, size=(3, 10))
        out = model(Tensor(toks))
        assert out.shape == (3,)

    def test_classification_loss_finite(self, tiny_distilbert):
        toks = np.random.default_rng(3).integers(0, 80, size=(4, 10))
        labels = np.array([0, 1, 1, 0])
        loss = tiny_distilbert.loss(Tensor(toks), Tensor(labels))
        assert np.isfinite(float(loss.data))

    def test_regression_loss_is_mse(self):
        cfg = DistilBertConfig(vocab_size=80, dim=32, num_heads=2, ffn_dim=64,
                               num_layers=2, max_len=24, dropout=0.0,
                               is_regression=True)
        model = DistilBertForSequenceTask(cfg)
        toks = np.random.default_rng(4).integers(0, 80, size=(2, 8))
        target = np.array([1.0, 2.0])
        loss = model.loss(Tensor(toks), Tensor(target))
        pred = model(Tensor(toks)).data
        assert float(loss.data) == pytest.approx(((pred - target) ** 2).mean())

    def test_predict_classification(self, tiny_distilbert):
        toks = np.random.default_rng(5).integers(0, 80, size=(4, 10))
        preds = tiny_distilbert.predict(Tensor(toks))
        assert preds.shape == (4,)
        assert set(np.unique(preds)) <= {0, 1}

    def test_learns_simple_separation(self):
        """Two token populations must become separable after a few steps."""
        model = DistilBertForSequenceTask(TINY_DISTILBERT)
        rng = np.random.default_rng(6)
        x0 = rng.integers(4, 30, size=(8, 10))
        x1 = rng.integers(40, 79, size=(8, 10))
        toks = np.concatenate([x0, x1])
        labels = np.array([0] * 8 + [1] * 8)
        opt = Adam(model.parameters(), lr=3e-3)
        for _ in range(20):
            loss = model.loss(Tensor(toks), Tensor(labels))
            opt.zero_grad()
            loss.backward()
            opt.step()
        acc = (model.predict(Tensor(toks)) == labels).mean()
        assert acc >= 0.9

    def test_sequence_too_long_raises(self, tiny_distilbert):
        toks = np.zeros((1, 999), dtype=np.int64)
        with pytest.raises(ValueError):
            tiny_distilbert(Tensor(toks))

    def test_regression_flag_mismatch_rejected_by_gluetask(self, rte_data):
        from repro.core.tasks import GlueTask

        cfg = DistilBertConfig(vocab_size=80, dim=32, num_heads=2, ffn_dim=64,
                               num_layers=2, max_len=24, is_regression=True)
        model = DistilBertForSequenceTask(cfg)
        with pytest.raises(ValueError):
            GlueTask(model, rte_data)
