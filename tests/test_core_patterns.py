"""Patterns, pattern sets, mask application and storage accounting."""

import numpy as np
import pytest

from repro.core.block_pruning import BlockPruningConfig, apply_block_pruning
from repro.core.patterns import (
    MaskManager,
    Pattern,
    PatternSet,
    block_sparse_nbytes,
    coo_nbytes,
    pattern_mask_for_matrix,
    random_pattern_set,
)


def checkerboard(n):
    return Pattern(np.indices((n, n)).sum(axis=0) % 2)


class TestPattern:
    def test_sparsity(self):
        p = checkerboard(4)
        assert p.sparsity == pytest.approx(0.5)

    def test_immutable(self):
        p = checkerboard(4)
        with pytest.raises(ValueError):
            p.mask[0, 0] = 1.0

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            Pattern(np.ones((2, 3)))

    def test_equality_and_hash(self):
        a, b = checkerboard(4), checkerboard(4)
        assert a == b and hash(a) == hash(b)
        c = Pattern(np.ones((4, 4)))
        assert a != c

    def test_nbytes_bitmask(self):
        assert Pattern(np.ones((8, 8))).nbytes == 8.0

    def test_render(self):
        out = Pattern(np.eye(3)).render()
        assert out.splitlines()[0] == "#.."


class TestPatternSet:
    def test_requires_patterns(self):
        with pytest.raises(ValueError):
            PatternSet([])

    def test_size_consistency(self):
        with pytest.raises(ValueError):
            PatternSet([checkerboard(4), checkerboard(8)])

    def test_default_sparsity_is_mean(self):
        ps = PatternSet([checkerboard(4), Pattern(np.ones((4, 4)))])
        assert ps.sparsity == pytest.approx(0.25)

    def test_subset(self):
        ps = PatternSet([checkerboard(4), Pattern(np.ones((4, 4)))], sparsity=0.5)
        sub = ps.subset([1])
        assert len(sub) == 1
        assert sub.sparsity == 0.5  # nominal sparsity carried over

    def test_indexing_iteration(self):
        ps = PatternSet([checkerboard(4), Pattern(np.ones((4, 4)))])
        assert ps[0] == checkerboard(4)
        assert len(list(ps)) == 2


class TestRandomPatternSet:
    def test_sparsity_respected(self):
        ps = random_pattern_set(10, 0.7, 4, np.random.default_rng(0))
        for p in ps:
            assert p.sparsity == pytest.approx(0.7, abs=0.02)

    def test_count(self):
        assert len(random_pattern_set(6, 0.5, 5, np.random.default_rng(1))) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            random_pattern_set(6, 1.0, 2)


class TestPatternMaskForMatrix:
    def test_exact_tiling(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(8, 8))
        ps = PatternSet([checkerboard(4), Pattern(np.eye(4))], sparsity=0.5)
        mask, ids = pattern_mask_for_matrix(w, ps)
        assert mask.shape == w.shape
        assert ids.shape == (2, 2)
        assert set(np.unique(mask)) <= {0.0, 1.0}

    def test_pads_non_divisible(self):
        w = np.random.default_rng(1).normal(size=(10, 7))
        ps = PatternSet([checkerboard(4)])
        mask, ids = pattern_mask_for_matrix(w, ps)
        assert mask.shape == (10, 7)
        assert ids.shape == (3, 2)

    def test_chooses_largest_l2_pattern(self):
        """Fig. 2 rule: each block keeps the pattern retaining most energy."""
        w = np.zeros((4, 4))
        w[0, :] = 5.0  # all energy in row 0
        row_pattern = Pattern(np.vstack([np.ones((1, 4)), np.zeros((3, 4))]))
        col_pattern = Pattern(np.hstack([np.ones((4, 1)), np.zeros((4, 3))]))
        ps = PatternSet([col_pattern, row_pattern])
        mask, ids = pattern_mask_for_matrix(w, ps)
        assert ids[0, 0] == 1  # row pattern wins
        assert np.allclose(mask, row_pattern.mask)

    def test_mask_sparsity_tracks_pattern_sparsity(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(32, 32))
        ps = random_pattern_set(8, 0.75, 3, rng)
        mask, _ = pattern_mask_for_matrix(w, ps)
        assert 1.0 - mask.mean() == pytest.approx(0.75, abs=0.02)


class TestStorageAccounting:
    def test_coo_counts_three_vectors(self):
        mask = np.zeros((10, 10))
        mask[:5] = 1.0
        # 50 nonzeros * (4 value + 8 index bytes)
        assert coo_nbytes(mask) == 50 * 12

    def test_block_storage_beats_coo(self):
        """The paper's memory argument: BP indices are per kept group."""
        rng = np.random.default_rng(3)
        w = rng.normal(size=(100, 80))
        mask = np.ones_like(w)
        mask[:, ::2] = 0.0  # half the columns pruned (all blocks agree)
        assert block_sparse_nbytes(mask, 4) < coo_nbytes(mask)

    def test_block_index_count(self):
        mask = np.ones((8, 4))
        # 1 block, 4 kept columns -> 32 values * 4B + 4 idx * 2B
        assert block_sparse_nbytes(mask, 1) == 32 * 4 + 4 * 2


class TestMaskManager:
    @pytest.fixture()
    def managed(self, tiny_transformer):
        report = apply_block_pruning(tiny_transformer,
                                     BlockPruningConfig(num_blocks=2, rate=0.3))
        return tiny_transformer, MaskManager(tiny_transformer, report.masks)

    def test_backbone_sparsity(self, managed):
        _, mgr = managed
        assert mgr.backbone_sparsity() == pytest.approx(0.3, abs=0.05)

    def test_apply_composes_with_backbone(self, managed):
        model, mgr = managed
        ps = random_pattern_set(8, 0.5, 3, np.random.default_rng(0))
        mgr.apply(ps)
        combined = mgr.combined_sparsity()
        # combined sparsity >= max(bp, pp) since masks intersect
        assert combined >= 0.5 - 0.02
        assert combined >= mgr.backbone_sparsity()
        for name, layer in mgr.layers.items():
            # nothing pruned by BP is resurrected
            assert np.all(layer.mask <= mgr.backbone_masks[name])

    def test_clear_patterns_restores_backbone(self, managed):
        _, mgr = managed
        ps = random_pattern_set(8, 0.5, 2, np.random.default_rng(1))
        mgr.apply(ps)
        mgr.clear_patterns()
        assert mgr.combined_sparsity() == pytest.approx(mgr.backbone_sparsity())

    def test_clear_all_removes_masks(self, managed):
        _, mgr = managed
        mgr.clear_all()
        for layer in mgr.layers.values():
            assert layer.mask is None

    def test_swap_nbytes_small(self, managed):
        """The deployable switch moves kilobytes, not megabytes."""
        _, mgr = managed
        ps = random_pattern_set(8, 0.5, 4, np.random.default_rng(2))
        nbytes = mgr.swap_nbytes(ps)
        model_bytes = sum(l.weight.size for l in mgr.layers.values()) * 4
        assert nbytes < 0.05 * model_bytes

    def test_snapshot_masks(self, managed):
        _, mgr = managed
        ps = random_pattern_set(8, 0.6, 2, np.random.default_rng(3))
        mgr.apply(ps)
        snap = mgr.snapshot_masks()
        mgr.clear_patterns()
        for name, layer in mgr.layers.items():
            assert not np.array_equal(snap[name], layer.mask) or snap[name].mean() == layer.mask.mean()

    def test_no_prunable_layers_rejected(self):
        from repro.nn.layers import Linear
        from repro.nn.module import Module

        class Tiny(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(2, 2)

        with pytest.raises(ValueError):
            MaskManager(Tiny())
