"""DVFS table (paper Table I), battery governor, power model."""

import pytest

from repro.hardware.battery import Battery
from repro.hardware.dvfs import BatteryGovernor, DVFSTable, ODROID_XU3_LEVELS, VFLevel
from repro.hardware.power import PowerModel


class TestTableI:
    """The exact values of the paper's Table I."""

    PAPER = {
        "l1": (400, 916.25),
        "l2": (600, 917.5),
        "l3": (800, 992.5),
        "l4": (1000, 1066.25),
        "l5": (1200, 1141.25),
        "l6": (1400, 1240.0),
    }

    def test_six_levels(self):
        assert len(ODROID_XU3_LEVELS) == 6

    @pytest.mark.parametrize("name", list(PAPER))
    def test_level_values(self, name):
        table = DVFSTable()
        level = table[name]
        freq, vol = self.PAPER[name]
        assert level.freq_mhz == freq
        assert level.voltage_mv == vol

    def test_unit_conversions(self):
        l6 = DVFSTable()["l6"]
        assert l6.freq_hz == 1.4e9
        assert l6.voltage_v == pytest.approx(1.24)


class TestDVFSTable:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            DVFSTable([VFLevel("a", 1000, 1.0), VFLevel("b", 500, 1.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DVFSTable([])

    def test_subset_paper_levels(self):
        sub = DVFSTable().subset(["l3", "l4", "l6"])
        assert sub.names() == ["l3", "l4", "l6"]
        assert sub.max_level.name == "l6"
        assert sub.min_level.name == "l3"

    def test_index_and_name_access(self):
        table = DVFSTable()
        assert table[0].name == "l1"
        assert table["l2"].freq_mhz == 600

    def test_iteration(self):
        assert [lv.name for lv in DVFSTable()] == [f"l{i}" for i in range(1, 7)]


class TestGovernor:
    def _gov(self):
        return BatteryGovernor(DVFSTable().subset(["l3", "l4", "l6"]), (0.15, 0.40))

    def test_full_battery_top_level(self):
        assert self._gov().level_for(1.0).name == "l6"

    def test_mid_battery_middle_level(self):
        assert self._gov().level_for(0.3).name == "l4"

    def test_low_battery_energy_saving(self):
        assert self._gov().level_for(0.1).name == "l3"

    def test_boundaries_inclusive_low(self):
        gov = self._gov()
        assert gov.level_for(0.15).name == "l3"
        assert gov.level_for(0.40).name == "l4"

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            self._gov().level_for(1.5)

    def test_threshold_count_checked(self):
        with pytest.raises(ValueError):
            BatteryGovernor(DVFSTable().subset(["l3", "l6"]), (0.1, 0.2))

    def test_thresholds_must_increase(self):
        with pytest.raises(ValueError):
            BatteryGovernor(DVFSTable().subset(["l3", "l4", "l6"]), (0.4, 0.15))

    def test_thresholds_strictly_inside(self):
        with pytest.raises(ValueError):
            BatteryGovernor(DVFSTable().subset(["l3", "l4", "l6"]), (0.0, 0.5))

    def test_energy_fractions_sum_to_one(self):
        fr = self._gov().energy_fractions()
        assert sum(fr) == pytest.approx(1.0)
        assert fr == [pytest.approx(0.15), pytest.approx(0.25), pytest.approx(0.60)]


class TestPowerModel:
    def test_higher_level_higher_power(self):
        pm = PowerModel()
        table = DVFSTable()
        powers = [pm.power_w(lv) for lv in table]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_energy_per_cycle_decreases_at_lower_levels(self):
        """The physics of DVFS: V^2 scaling makes low levels cheaper/cycle."""
        pm = PowerModel()
        table = DVFSTable()
        epc = [pm.energy_per_cycle_j(lv) for lv in table]
        assert epc[0] < epc[-1]

    def test_dynamic_scales_with_v_squared_f(self):
        pm = PowerModel(leakage_w_per_v=0.0)
        l3, l6 = DVFSTable()["l3"], DVFSTable()["l6"]
        ratio = pm.power_w(l6) / pm.power_w(l3)
        expected = (1.24 ** 2 * 1400) / (0.9925 ** 2 * 800)
        assert ratio == pytest.approx(expected)

    def test_energy_linear_in_time(self):
        pm = PowerModel()
        l4 = DVFSTable()["l4"]
        assert pm.energy_j(l4, 2.0) == pytest.approx(2 * pm.energy_j(l4, 1.0))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            PowerModel().energy_j(DVFSTable()["l1"], -1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(kappa_f=0.0)
        with pytest.raises(ValueError):
            PowerModel(leakage_w_per_v=-1.0)


class TestBattery:
    def test_draw_and_fraction(self):
        b = Battery(100.0)
        assert b.draw(25.0)
        assert b.fraction == pytest.approx(0.75)

    def test_overdraw_depletes(self):
        b = Battery(10.0)
        assert not b.draw(50.0)
        assert b.depleted
        assert b.remaining_j == 0.0

    def test_recharge(self):
        b = Battery(10.0)
        b.draw(7.0)
        b.recharge()
        assert b.fraction == 1.0

    def test_negative_draw_rejected(self):
        with pytest.raises(ValueError):
            Battery(10.0).draw(-1.0)

    def test_budget_positive(self):
        with pytest.raises(ValueError):
            Battery(0.0)

    def test_default_budget_from_calibration(self):
        from repro.hardware import calibration

        assert Battery().budget_j == calibration.BATTERY_BUDGET_J
