"""Latency predictor, workload profiles and runtime reconfiguration costs."""

import pytest

from repro.hardware.dvfs import DVFSTable
from repro.hardware.latency import LatencyModel, SparsityKind
from repro.hardware.runtime import RuntimeReconfigurator
from repro.hardware.workload import (
    WorkloadProfile,
    paper_scale_distilbert,
    paper_scale_transformer,
    profile_from_model,
)

L6 = DVFSTable()["l6"]
L3 = DVFSTable()["l3"]


@pytest.fixture(scope="module")
def wl():
    return paper_scale_transformer()


@pytest.fixture(scope="module")
def lm():
    return LatencyModel()


class TestWorkloadProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("bad", 0.0, 10, 10)
        with pytest.raises(ValueError):
            WorkloadProfile("bad", 1.0, 10, 5)

    def test_scaled(self):
        w = WorkloadProfile("w", 100.0, 10, 10)
        assert w.scaled(0.25) == 75.0
        with pytest.raises(ValueError):
            w.scaled(1.0)

    def test_paper_transformer_scale(self, wl):
        # the paper quotes a 28785 x 800 LM-head weight
        assert wl.params > 4.5e7
        assert wl.macs == pytest.approx(wl.params * 35)

    def test_paper_distilbert_scale(self):
        db = paper_scale_distilbert()
        assert db.params == 6 * (4 * 768 * 768 + 2 * 768 * 3072)

    def test_profile_from_model(self, tiny_transformer):
        prof = profile_from_model(tiny_transformer, seq_len=8)
        assert prof.macs > 0
        assert prof.total_params == tiny_transformer.num_parameters()
        assert prof.params < prof.total_params  # embeddings not prunable

    def test_model_bytes(self, wl):
        assert wl.model_bytes == wl.total_params * 4


class TestLatencyModel:
    def test_dense_latency_scales_inverse_frequency(self, wl, lm):
        assert lm.latency_s(wl, L3) == pytest.approx(
            lm.latency_s(wl, L6) * (1400 / 800)
        )

    def test_dense_rejects_sparsity(self, wl, lm):
        with pytest.raises(ValueError):
            lm.latency_s(wl, L6, sparsity=0.3, kind=SparsityKind.DENSE)

    def test_sparsity_bounds_checked(self, wl, lm):
        with pytest.raises(ValueError):
            lm.latency_s(wl, L6, sparsity=1.0, kind=SparsityKind.BLOCK)

    def test_more_sparsity_less_latency(self, wl, lm):
        lats = [lm.latency_s(wl, L6, s, SparsityKind.PATTERN) for s in (0.1, 0.5, 0.9)]
        assert lats[0] > lats[1] > lats[2]

    def test_kind_ordering_at_same_sparsity(self, wl, lm):
        """BLOCK is cheapest to exploit, PATTERN close, IRREGULAR pays a
        large per-nonzero penalty — the paper's Challenge 1."""
        s = 0.6
        block = lm.latency_s(wl, L6, s, SparsityKind.BLOCK)
        pattern = lm.latency_s(wl, L6, s, SparsityKind.PATTERN)
        irregular = lm.latency_s(wl, L6, s, SparsityKind.IRREGULAR)
        assert block < irregular
        assert pattern < irregular
        assert abs(pattern - block) / block < 0.1  # pattern is nearly as good

    def test_irregular_can_be_slower_than_dense(self, wl, lm):
        """Moderate irregular sparsity loses to dense — indices kill SIMD."""
        dense = lm.latency_s(wl, L6)
        irregular = lm.latency_s(wl, L6, 0.3, SparsityKind.IRREGULAR)
        assert irregular > dense

    def test_anchor_bp_latency(self, wl, lm):
        """Calibration anchor: BP backbone (64.26%) at l6 = 114.59 ms."""
        assert lm.latency_ms(wl, L6, 0.6426, SparsityKind.BLOCK) == pytest.approx(
            114.59, rel=0.01
        )

    def test_breakdown_adds_up(self, wl, lm):
        b = lm.breakdown(wl, 0.5, SparsityKind.PATTERN)
        assert b.total_cycles == b.mac_cycles + b.overhead_cycles
        assert b.overhead_cycles > 0

    def test_sparsity_for_deadline_inverse(self, wl, lm):
        """Inverting then evaluating returns (approximately) the deadline."""
        for kind in (SparsityKind.BLOCK, SparsityKind.PATTERN):
            deadline = 0.1
            s = lm.sparsity_for_deadline(wl, L3, deadline, kind=kind)
            assert 0 < s < 1
            lat = lm.latency_s(wl, L3, s, kind)
            assert lat == pytest.approx(deadline, rel=0.01)

    def test_sparsity_for_deadline_zero_when_dense_ok(self, wl, lm):
        assert lm.sparsity_for_deadline(wl, L6, 10.0) == 0.0

    def test_sparsity_for_deadline_unreachable(self, wl, lm):
        with pytest.raises(ValueError):
            lm.sparsity_for_deadline(wl, L3, 1e-6)

    def test_deadline_positive(self, wl, lm):
        with pytest.raises(ValueError):
            lm.sparsity_for_deadline(wl, L3, -0.1)

    def test_tighter_deadline_needs_more_sparsity(self, wl, lm):
        s_loose = lm.sparsity_for_deadline(wl, L3, 0.104)
        s_tight = lm.sparsity_for_deadline(wl, L3, 0.094)
        assert s_tight > s_loose

    def test_lower_level_needs_more_sparsity(self, wl, lm):
        """The core DVFS-coupling fact: lower frequency, higher sparsity."""
        s6 = lm.sparsity_for_deadline(wl, L6, 0.104)
        s3 = lm.sparsity_for_deadline(wl, L3, 0.104)
        assert s3 > s6


class TestRuntimeReconfigurator:
    def test_pattern_switch_milliseconds(self, wl):
        """RT3's headline: pattern-set switch within 45 ms."""
        rc = RuntimeReconfigurator()
        stats = rc.pattern_switch(wl, num_patterns=8)
        assert stats.milliseconds < 45.0

    def test_model_reload_tens_of_seconds(self, wl):
        """UB's switch ~52 s for the paper Transformer (Table III)."""
        rc = RuntimeReconfigurator()
        stats = rc.model_reload(wl)
        assert 40.0 < stats.seconds < 70.0

    def test_speedup_over_1000x(self, wl):
        """Paper: 'over 1000x speedup at switch' for DistilBERT, similar
        for the Transformer."""
        rc = RuntimeReconfigurator()
        assert rc.speedup(wl, num_patterns=8) > 1000.0
        assert rc.speedup(paper_scale_distilbert(), num_patterns=8) > 1000.0

    def test_sparse_reload_smaller_but_indexed(self, wl):
        rc = RuntimeReconfigurator()
        dense = rc.model_reload(wl, 0.0)
        sparse = rc.model_reload(wl, 0.6)
        assert sparse.bytes_moved < dense.bytes_moved
        # but not proportionally: indices cost 1.5x per kept weight
        assert sparse.bytes_moved > dense.bytes_moved * 0.4 * 1.2

    def test_pattern_bytes_scale_with_count(self, wl):
        rc = RuntimeReconfigurator()
        a = rc.pattern_set_bytes(wl, 4)
        b = rc.pattern_set_bytes(wl, 8)
        assert b > a

    def test_validation(self, wl):
        rc = RuntimeReconfigurator()
        with pytest.raises(ValueError):
            rc.pattern_switch(wl, 0)
        with pytest.raises(ValueError):
            rc.model_reload(wl, 1.0)
        with pytest.raises(ValueError):
            RuntimeReconfigurator(bandwidth_bps=0)
