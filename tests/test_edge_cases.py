"""Edge cases across packages: unusual shapes, level subsets, degenerate
configurations — behaviours a downstream user will eventually hit."""

import numpy as np
import pytest

from repro.core.block_pruning import BlockPruningConfig, apply_block_pruning
from repro.core.patterns import MaskManager, Pattern, PatternSet, random_pattern_set
from repro.hardware.dvfs import BatteryGovernor, DVFSTable
from repro.hardware.energy_sim import EnergySimulator, ModeAssignment
from repro.hardware.latency import SparsityKind
from repro.hardware.workload import paper_scale_distilbert, profile_from_model
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class TestTensorEdges:
    def test_cross_entropy_3d_logits(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(2, 5, 7)),
                        requires_grad=True)
        targets = np.random.default_rng(1).integers(0, 7, size=(2, 5))
        loss = F.cross_entropy(logits, targets)
        loss.backward()
        assert logits.grad.shape == (2, 5, 7)
        # gradient rows sum to ~0 (softmax minus one-hot property)
        assert np.allclose(logits.grad.sum(axis=-1), 0.0, atol=1e-12)

    def test_stack_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = F.stack([a, b], axis=0)
        F.sum(F.mul(out, 2.0)).backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 2.0)

    def test_embedding_with_tensor_indices(self):
        w = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        idx = Tensor(np.array([3, 0]))
        out = F.embedding(w, idx)
        assert np.allclose(out.data[0], [9, 10, 11])

    def test_getitem_tuple_of_slices(self):
        t = Tensor(np.arange(24.0).reshape(4, 6), requires_grad=True)
        sub = t[1:3, 2:4]
        F.sum(sub).backward()
        assert t.grad.sum() == 4.0
        assert t.grad[1, 2] == 1.0 and t.grad[0, 0] == 0.0

    def test_scalar_tensor_arithmetic(self):
        s = Tensor(np.asarray(2.0), requires_grad=True)
        out = F.mul(F.add(s, 1.0), 3.0)
        out.backward()
        assert s.grad == 3.0

    def test_zero_size_batch_matmul(self):
        a = Tensor(np.zeros((0, 3)))
        b = Tensor(np.zeros((3, 4)))
        assert F.matmul(a, b).shape == (0, 4)


class TestPatternEdges:
    def test_one_by_one_tiles(self):
        # pattern of size 2 on a 3x3 matrix: padding everywhere
        w = np.random.default_rng(0).normal(size=(3, 3))
        ps = PatternSet([Pattern(np.eye(2))])
        from repro.core.patterns import pattern_mask_for_matrix

        mask, ids = pattern_mask_for_matrix(w, ps)
        assert mask.shape == (3, 3)
        assert ids.shape == (2, 2)

    def test_all_ones_pattern_keeps_everything(self):
        w = np.random.default_rng(1).normal(size=(8, 8))
        ps = PatternSet([Pattern(np.ones((4, 4)))])
        from repro.core.patterns import pattern_mask_for_matrix

        mask, _ = pattern_mask_for_matrix(w, ps)
        assert mask.sum() == 64

    def test_pattern_set_subset_with_repeats(self):
        ps = random_pattern_set(4, 0.5, 3, np.random.default_rng(2))
        sub = ps.subset([0, 0])
        assert len(sub) == 2
        assert sub[0] == sub[1]

    def test_mask_manager_idempotent_apply(self, tiny_transformer):
        report = apply_block_pruning(tiny_transformer,
                                     BlockPruningConfig(num_blocks=2, rate=0.3))
        mgr = MaskManager(tiny_transformer, report.masks)
        ps = random_pattern_set(8, 0.5, 2, np.random.default_rng(3))
        mgr.apply(ps)
        s1 = mgr.combined_sparsity()
        mgr.apply(ps)
        assert mgr.combined_sparsity() == pytest.approx(s1)


class TestHardwareEdges:
    def test_single_level_table_governor(self):
        table = DVFSTable().subset(["l4"])
        gov = BatteryGovernor(table, thresholds=())
        assert gov.level_for(0.5).name == "l4"
        assert gov.energy_fractions() == [1.0]

    def test_single_level_campaign_via_run_campaign(self):
        from repro.hardware.workload import paper_scale_transformer

        table = DVFSTable().subset(["l4"])
        sim = EnergySimulator(paper_scale_transformer(), table,
                              governor=BatteryGovernor(table, ()))
        res = sim.run_campaign([ModeAssignment("l4", 0.5, SparsityKind.PATTERN)],
                               deadline_s=1.0, charge_switches=False)
        assert res.total_runs > 0
        assert len(res.outcomes) == 1

    def test_two_level_subset(self):
        from repro.hardware.workload import paper_scale_transformer

        table = DVFSTable().subset(["l2", "l5"])
        gov = BatteryGovernor(table, thresholds=(0.3,))
        sim = EnergySimulator(paper_scale_transformer(), table, governor=gov)
        res = sim.run_campaign(
            [ModeAssignment("l2", 0.7, SparsityKind.PATTERN),
             ModeAssignment("l5", 0.4, SparsityKind.PATTERN)],
            deadline_s=1.0, charge_switches=False)
        assert set(res.runs_by_level()) == {"l2", "l5"}

    def test_tiny_budget_still_counts_fractional_runs(self):
        from repro.hardware.workload import paper_scale_transformer

        table = DVFSTable().subset(["l6"])
        sim = EnergySimulator(paper_scale_transformer(), table,
                              governor=BatteryGovernor(table, ()))
        res = sim.single_level_campaign(ModeAssignment("l6"), 1.0, budget_j=1e-6)
        assert 0 < res.total_runs < 1

    def test_profile_from_distilbert(self, tiny_distilbert):
        prof = profile_from_model(tiny_distilbert, seq_len=10)
        assert prof.macs > 0
        assert prof.params < prof.total_params

    def test_paper_distilbert_vs_transformer_reload(self):
        """DistilBERT's checkpoint is smaller -> faster UB reload."""
        from repro.hardware.runtime import RuntimeReconfigurator
        from repro.hardware.workload import paper_scale_transformer

        rc = RuntimeReconfigurator()
        t = rc.model_reload(paper_scale_transformer()).seconds
        d = rc.model_reload(paper_scale_distilbert()).seconds
        assert d < t


class TestRT3LevelSubsets:
    def test_search_with_two_levels(self, lm_task):
        from repro.core import (BlockPruningConfig, ControllerConfig, RT3,
                                RT3Config, SearchSpaceConfig)
        from repro.core.trainer import TrainConfig, train_plain
        from repro.hardware.workload import paper_scale_transformer

        train_plain(lm_task, epochs=1, lr=3e-3)
        cfg = RT3Config(
            deadline_s=0.104, episodes=2, level_names=("l4", "l6"),
            bp=BlockPruningConfig(num_blocks=2, rate=0.3),
            space=SearchSpaceConfig(pattern_size=8, theta=2, patterns_per_set=2),
            controller=ControllerConfig(seed=0),
            episode_train=TrainConfig(epochs=1, lr=2e-3),
            finetune_train=TrainConfig(epochs=1, lr=2e-3),
            backbone_finetune_epochs=0,
        )
        rt3 = RT3(lm_task, paper_scale_transformer(), cfg)
        res = rt3.search()
        assert set(res.final_accuracies) == {"l4", "l6"}

    def test_rewards_with_two_levels_use_two_accs(self, lm_task):
        from repro.core.reward import RewardConfig, compute_reward

        cfg = RewardConfig(backbone_accuracy=0.9, min_accuracy=0.1,
                           deadline_s=0.2, runs_ref=1e6)
        terms = compute_reward(cfg, [0.1, 0.15], 5e5, [0.8, 0.7])
        assert terms.deadline_met
        assert len(terms.accuracies) == 2


class TestGlueTaskMatrix:
    """Every GLUE task type trains for one epoch without error."""

    @pytest.mark.parametrize("task_name", ["cola", "sst2", "mrpc", "qqp",
                                           "mnli", "qnli", "wnli"])
    def test_task_trains_and_scores(self, task_name):
        from repro.core.tasks import GlueTask
        from repro.core.trainer import train_plain
        from repro.data.glue import GlueTaskConfig, SyntheticGlueTask
        from repro.nn.distilbert import DistilBertConfig, DistilBertForSequenceTask

        data = SyntheticGlueTask(GlueTaskConfig(
            task=task_name, vocab_size=60, num_train=32, num_eval=16, seq_len=12))
        cfg = DistilBertConfig(
            vocab_size=60, dim=16, num_heads=2, ffn_dim=32, num_layers=1,
            max_len=16, dropout=0.0, num_labels=max(data.num_labels, 2),
            is_regression=data.is_regression)
        task = GlueTask(DistilBertForSequenceTask(cfg), data, batch_size=8)
        losses = train_plain(task, epochs=1, lr=3e-3)
        assert np.isfinite(losses[0])
        score = task.evaluate()
        assert -1.0 <= score <= 1.0
