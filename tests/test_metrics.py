"""GLUE metrics vs hand-computed and scipy-computed references."""

import numpy as np
import pytest
from scipy import stats

from repro.data.metrics import (
    accuracy_score,
    f1_score,
    matthews_corrcoef,
    metric_for_task,
    spearman_corr,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_half(self):
        assert accuracy_score([1, 0], [1, 1]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 0], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestF1:
    def test_known_value(self):
        # tp=2, fp=1, fn=1 -> F1 = 2*2/(4+1+1) = 2/3
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_perfect(self):
        assert f1_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_degenerate_no_positives(self):
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_positive_class_selectable(self):
        y_true = [0, 0, 1]
        y_pred = [0, 0, 0]
        assert f1_score(y_true, y_pred, positive=0) > 0.5


class TestMCC:
    def test_perfect_positive(self):
        assert matthews_corrcoef([1, 0, 1, 0], [1, 0, 1, 0]) == pytest.approx(1.0)

    def test_perfect_inverse(self):
        assert matthews_corrcoef([1, 0, 1, 0], [0, 1, 0, 1]) == pytest.approx(-1.0)

    def test_independent_is_zero(self):
        assert matthews_corrcoef([1, 1, 0, 0], [1, 0, 1, 0]) == pytest.approx(0.0)

    def test_degenerate_single_class(self):
        assert matthews_corrcoef([1, 1], [1, 1]) == 0.0

    def test_matches_formula_on_random(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 2, 100)
        y_pred = rng.integers(0, 2, 100)
        # compare with pearson correlation of the binary vectors (equivalent)
        expected = np.corrcoef(y_true, y_pred)[0, 1]
        assert matthews_corrcoef(y_true, y_pred) == pytest.approx(expected, abs=1e-9)


class TestSpearman:
    def test_monotone_is_one(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_corr(x, x ** 3) == pytest.approx(1.0)

    def test_reversed_is_minus_one(self):
        x = np.array([1.0, 2.0, 3.0])
        assert spearman_corr(x, -x) == pytest.approx(-1.0)

    def test_matches_scipy(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=50), rng.normal(size=50)
        assert spearman_corr(a, b) == pytest.approx(stats.spearmanr(a, b).statistic)

    def test_degenerate_constant(self):
        assert spearman_corr([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_too_short(self):
        assert spearman_corr([1.0], [2.0]) == 0.0


class TestMetricLookup:
    def test_all_keys(self):
        for key in ("accuracy", "f1", "mcc", "spearman"):
            assert callable(metric_for_task(key))

    def test_unknown_key(self):
        with pytest.raises(ValueError):
            metric_for_task("bleu")
