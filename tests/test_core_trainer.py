"""Joint trainer (Fig. 2), UB individual training, pareto utilities."""

import numpy as np
import pytest

from repro.core.block_pruning import BlockPruningConfig, apply_block_pruning
from repro.core.pareto import dominates, front_covers, pareto_front
from repro.core.patterns import MaskManager, random_pattern_set
from repro.core.trainer import JointTrainer, TrainConfig, evaluate_with_masks, train_individual, train_plain


@pytest.fixture()
def setup(lm_task):
    report = apply_block_pruning(lm_task.model, BlockPruningConfig(num_blocks=2, rate=0.3))
    manager = MaskManager(lm_task.model, report.masks)
    rng = np.random.default_rng(0)
    sets = {
        "l6": random_pattern_set(8, 0.2, 2, rng),
        "l4": random_pattern_set(8, 0.4, 2, rng),
        "l3": random_pattern_set(8, 0.6, 2, rng),
    }
    return lm_task, manager, sets


class TestTrainConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(lr=0.0)


class TestTrainPlain:
    def test_loss_decreases(self, lm_task):
        losses = train_plain(lm_task, epochs=3, lr=3e-3)
        assert losses[-1] < losses[0]


class TestJointTrainer:
    def test_returns_epoch_losses(self, setup):
        task, manager, sets = setup
        trainer = JointTrainer(task, manager, TrainConfig(epochs=2, lr=2e-3))
        losses = trainer.train(sets)
        assert len(losses) == 2
        assert all(np.isfinite(l) for l in losses)

    def test_joint_loss_decreases(self, setup):
        task, manager, sets = setup
        trainer = JointTrainer(task, manager, TrainConfig(epochs=3, lr=3e-3))
        losses = trainer.train(sets)
        assert losses[-1] < losses[0]

    def test_alpha_count_checked(self, setup):
        task, manager, sets = setup
        trainer = JointTrainer(task, manager)
        with pytest.raises(ValueError):
            trainer.train(sets, alphas=[1.0])

    def test_accuracies_per_level(self, setup):
        task, manager, sets = setup
        trainer = JointTrainer(task, manager, TrainConfig(epochs=1, lr=2e-3))
        trainer.train(sets)
        accs = trainer.accuracies(sets)
        assert set(accs) == {"l3", "l4", "l6"}
        assert all(0.0 <= a <= 1.0 for a in accs.values())

    def test_backbone_zeros_stay_dead(self, setup):
        """With pin_backbone_zeros (default), positions pruned at Level 1
        remain exactly 0.0 in the stored weights after joint training."""
        task, manager, sets = setup
        trainer = JointTrainer(task, manager, TrainConfig(epochs=1, lr=2e-3))
        trainer.train(sets)
        for name, layer in manager.layers.items():
            dead = manager.backbone_masks[name] == 0.0
            assert np.all(layer.weight.data[dead] == 0.0), name

    def test_unpinned_training_lets_zeros_drift(self, setup):
        task, manager, sets = setup
        trainer = JointTrainer(task, manager,
                               TrainConfig(epochs=1, lr=2e-3,
                                           pin_backbone_zeros=False))
        trainer.train(sets)
        drifted = any(
            np.any(layer.weight.data[manager.backbone_masks[name] == 0.0] != 0.0)
            for name, layer in manager.layers.items()
        )
        assert drifted

    def test_training_updates_shared_weights_once(self, setup):
        """All pattern sets share one backbone: after joint training the
        *unmasked* weights are identical regardless of which set is active."""
        task, manager, sets = setup
        trainer = JointTrainer(task, manager, TrainConfig(epochs=1, lr=2e-3))
        trainer.train(sets)
        manager.apply(sets["l6"])
        w_a = next(iter(manager.layers.values())).weight.data.copy()
        manager.apply(sets["l3"])
        w_b = next(iter(manager.layers.values())).weight.data.copy()
        assert np.array_equal(w_a, w_b)


class TestEvaluateWithMasks:
    def test_restores_backbone_after(self, setup):
        task, manager, sets = setup
        evaluate_with_masks(task, manager, sets)
        assert manager.combined_sparsity() == pytest.approx(
            manager.backbone_sparsity()
        )

    def test_sparser_masks_not_better(self, setup):
        """On an eval with trained weights, heavier masking should not help
        systematically; at minimum the function returns a value per set."""
        task, manager, sets = setup
        train_plain(task, epochs=2, lr=3e-3)
        accs = evaluate_with_masks(task, manager, sets)
        assert len(accs) == 3


class TestTrainIndividualUB:
    def test_restores_model_state(self, setup):
        task, manager, sets = setup
        before = {k: v.copy() for k, v in task.model.state_dict().items()}
        train_individual(task, manager, sets["l4"], TrainConfig(epochs=1, lr=3e-3))
        after = task.model.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key]), key

    def test_returns_metric(self, setup):
        task, manager, sets = setup
        acc = train_individual(task, manager, sets["l6"], TrainConfig(epochs=1, lr=3e-3))
        assert 0.0 <= acc <= 1.0

    def test_ub_at_least_near_joint(self, setup):
        """Individually trained models form an upper bound in expectation;
        at tiny scale we just require UB is not catastrophically worse."""
        task, manager, sets = setup
        trainer = JointTrainer(task, manager, TrainConfig(epochs=2, lr=3e-3))
        trainer.train(sets)
        joint = trainer.accuracies(sets)["l6"]
        ub = train_individual(task, manager, sets["l6"], TrainConfig(epochs=2, lr=3e-3))
        assert ub > joint - 0.15


class TestPareto:
    def test_dominates(self):
        assert dominates((2.0, 2.0), (1.0, 1.0))
        assert dominates((2.0, 1.0), (1.0, 1.0))
        assert not dominates((1.0, 1.0), (1.0, 1.0))
        assert not dominates((2.0, 0.5), (1.0, 1.0))

    def test_front_excludes_dominated(self):
        pts = [(1.0, 1.0), (2.0, 0.5), (0.5, 2.0), (0.4, 0.4)]
        front = pareto_front(pts)
        assert (0.4, 0.4) not in front
        assert len(front) == 3

    def test_front_sorted(self):
        front = pareto_front([(2.0, 0.5), (0.5, 2.0), (1.0, 1.0)])
        assert front == sorted(front)

    def test_front_dedupes(self):
        assert pareto_front([(1.0, 1.0), (1.0, 1.0)]) == [(1.0, 1.0)]

    def test_front_covers(self):
        loose = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]
        tight = [(1.0, 2.5), (2.0, 1.5)]
        assert front_covers(loose, tight)
        assert not front_covers(tight, loose)

    def test_empty_front(self):
        assert pareto_front([]) == []
