"""Scheduler-defense tests: preemption, cancellation, tenant isolation.

Every test drives the real streaming engine and checks the invariants
the preempt bench gates:

- **extended conservation** — ``completed + shed + cancelled ==
  submitted`` under every combination of preemption, cancellation,
  tenant quotas and injected faults;
- **exactness** — every *completed* output is bit-identical to a clean
  serve (no preemption, no quotas, no cancels, no faults) of the
  surviving request set: batch membership is preserved under retraction
  (cancelled members join ``done_ids``), so the defenses only reshuffle
  *when* work runs, never *what* it computes;
- **starvation guard** — weighted fair shares floor at one slot, so
  every live tenant completes something even under a hot-tenant flood.

Plus the cancellation search order (one test per stage a request can be
pulled back from), the remaining-window admission estimate, the
``AdmissionQueue.remove``/``waiting`` primitives, ``assign_tenants``
and the CLI knob validation.
"""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.serve import (
    AdmissionQueue,
    FaultPlan,
    InferenceRequest,
    ScenarioConfig,
    ShardFault,
    StackConfig,
    assign_tenants,
    build_scenario,
    build_serving_stack,
    flaky_fault_overlay,
)

WINDOW_S = 1e-3
PROBE_S = 5e-3
LEVEL = "l4"
# head-of-line shape (calibrated): 32 loose-SLO requests flood a single
# device at t=0 (four full batches), one tight-SLO request lands behind
# them at 2 ms — its SLO only fits if it preempts the queue
LOOSE = 32
TIGHT_ARRIVAL_S = 2e-3
TIGHT_SLO_S = 5e-3
DEADLINE_S = 5e-3


def make_stack(seed=0, devices=1, **kw):
    return build_serving_stack(StackConfig(
        devices=devices, seed=seed, window_s=WINDOW_S,
        probe_backoff_s=PROBE_S, **kw))


def request(rid, arrival_s, slo_s, tenant="default", seed=0):
    rng = np.random.default_rng(seed + rid)
    return InferenceRequest(
        req_id=rid, tokens=rng.integers(1, 60, size=12),
        arrival_s=arrival_s, deadline_s=DEADLINE_S, level_name=LEVEL,
        slo_s=slo_s, tenant=tenant)


def head_of_line_trace():
    """The preemption shape: a loose flood, then one tight request."""
    trace = [request(i, 0.0, 10.0) for i in range(LOOSE)]
    trace.append(request(LOOSE, TIGHT_ARRIVAL_S, TIGHT_SLO_S,
                         tenant="tight"))
    return trace


def bursty_trace(n=32, seed=0):
    _, workload, _ = make_stack(seed)
    return build_scenario("bursty", workload,
                          ScenarioConfig(num_requests=n, seed=seed),
                          burst_size=8, deadline_factors=(1.7, 1.2))


def serve(trace, cancels=(), seed=0, devices=1, **kw):
    """One session: arm scripted cancels, play the trace, report."""
    _, _, engine = make_stack(seed, devices=devices, **kw)
    core = engine.streaming()
    for rid, at in cancels:
        core.cancel(rid, at_s=at)
    core.play(sorted(trace, key=lambda r: (r.arrival_s, r.req_id)))
    return core.report()


def assert_exact(report, seed=0, devices=1):
    """Completed outputs must match a clean serve of the survivors."""
    survivors = [replace(r.request) for r in report.results]
    _, _, ref_engine = make_stack(seed, devices=devices)
    reference = ref_engine.serve(survivors)
    got = {r.request.req_id: r.output for r in report.results}
    want = {r.request.req_id: r.output for r in reference.results}
    assert set(got) == set(want)
    for rid, out in got.items():
        assert np.array_equal(out, want[rid])


def latency_of(report, rid):
    result = next(r for r in report.results if r.request.req_id == rid)
    return result.completion_s - result.request.arrival_s


# ---------------------------------------------------------------------------
# cancellation: one test per stage of the search order
# ---------------------------------------------------------------------------

class TestCancellation:
    def where(self, report, rid):
        return next(c.where for c in report.cancelled
                    if c.request.req_id == rid)

    def test_cancel_before_arrival_lands_pre_admission(self):
        trace = [request(0, 0.0, 1.0), request(1, 0.01, 1.0)]
        report = serve(trace, cancels=[(1, 0.005)])
        assert self.where(report, 1) == "pre_admission"
        assert report.completed == 1 and report.conserved

    def test_cancel_in_open_window_lands_admission(self):
        # alone in its group: the window holds it until 1 ms, the cancel
        # lands at 0.5 ms
        report = serve([request(0, 0.0, 1.0)], cancels=[(0, 5e-4)])
        assert self.where(report, 0) == "admission"
        assert report.completed == 0 and report.conserved

    def test_cancel_behind_backlog_lands_queued(self):
        # four instant-flush batches queue on one device; a member of
        # the last batch is retracted after dispatch, before execution
        trace = head_of_line_trace()[:LOOSE]
        report = serve(trace, cancels=[(LOOSE - 1, 5e-4)])
        assert self.where(report, LOOSE - 1) == "queued"
        assert report.completed == LOOSE - 1 and report.conserved
        assert_exact(report)

    def test_cancel_inflight_suppresses_result_only(self):
        # first batch starts at t=0; the cancel lands while it runs
        trace = head_of_line_trace()[:LOOSE]
        report = serve(trace, cancels=[(0, 1e-5)])
        assert self.where(report, 0) == "inflight"
        assert 0 not in {r.request.req_id for r in report.results}
        assert report.completed == LOOSE - 1 and report.conserved
        assert_exact(report)

    def test_cancel_after_completion_is_noop(self):
        _, _, engine = make_stack()
        core = engine.streaming()
        core.submit(request(0, 0.0, 1.0))
        core.tick(1.0)  # runs to completion well past the window
        core.cancel(0)
        core.drain()
        report = core.report()
        assert report.completed == 1 and not report.cancelled
        assert report.conserved

    def test_cancel_unknown_id_is_noop(self):
        report = serve([request(0, 0.0, 1.0)], cancels=[(999, 5e-4)])
        assert report.completed == 1 and not report.cancelled
        assert report.conserved

    def test_cancel_after_timeout_reaches_placed_work(self):
        # full batches flush instantly, so the timeout finds its victims
        # already dispatched: queued behind the backlog or in flight
        trace = head_of_line_trace()[:LOOSE]
        report = serve(trace, cancel_after_s=1.5e-3)
        assert report.num_cancelled >= 1
        assert {c.where for c in report.cancelled} <= {"queued", "inflight"}
        assert report.conserved
        assert_exact(report)

    def test_cancel_after_timeout_fires_in_admission(self):
        report = serve([request(0, 0.0, 1.0)], cancel_after_s=5e-4)
        assert report.completed == 0
        assert self.where(report, 0) == "admission"
        assert report.conserved

    def test_generous_timeout_cancels_nothing(self):
        report = serve([request(0, 0.0, 1.0)], cancel_after_s=10.0)
        assert report.completed == 1 and not report.cancelled

    def test_cancel_preserves_surviving_bits(self):
        trace = bursty_trace()
        victims = [(4, 1e-4), (9, 2e-3), (17, 4e-3)]
        report = serve(trace, cancels=victims, devices=2)
        assert report.num_cancelled == 3 and report.conserved
        assert_exact(report, devices=2)

    def test_backdated_cancel_rejected(self):
        _, _, engine = make_stack()
        core = engine.streaming()
        core.submit(request(0, 0.0, 1.0))
        core.tick(0.5)
        with pytest.raises(ValueError, match="predates"):
            core.cancel(0, at_s=0.1)


# ---------------------------------------------------------------------------
# preemption: the head-of-line rescue
# ---------------------------------------------------------------------------

class TestPreemption:
    def test_off_policy_never_preempts(self):
        report = serve(head_of_line_trace())
        assert report.preemptions == 0
        assert report.conserved

    def test_queued_preemption_rescues_tight_request(self):
        base = serve(head_of_line_trace())
        pre = serve(head_of_line_trace(), preempt_policy="queued")
        assert pre.preemptions >= 1
        assert latency_of(pre, LOOSE) < latency_of(base, LOOSE)
        assert pre.conserved
        assert_exact(pre)

    def test_running_preemption_cuts_deeper(self):
        queued = serve(head_of_line_trace(), preempt_policy="queued")
        running = serve(head_of_line_trace(), preempt_policy="running")
        assert running.preemptions >= 1
        assert latency_of(running, LOOSE) <= latency_of(queued, LOOSE)
        # the retracted in-flight batch re-executes in full
        assert running.completed == LOOSE + 1
        assert running.conserved
        assert_exact(running)

    def test_running_meets_tight_slo(self):
        base = serve(head_of_line_trace())
        running = serve(head_of_line_trace(), preempt_policy="running")
        assert latency_of(base, LOOSE) > TIGHT_SLO_S  # adversarial
        assert latency_of(running, LOOSE) <= TIGHT_SLO_S  # rescued

    def test_preemption_charges_switch_penalty(self):
        running = serve(head_of_line_trace(), preempt_policy="running")
        retried = sum(s.retried_batches for s in running.shard_stats)
        assert retried >= 1  # in-flight retraction re-runs the batch

    def test_loose_traffic_never_triggers_preemption(self):
        # nothing tight to rescue: the policies are inert, the serve is
        # byte-identical to the off policy
        for policy in ("queued", "running"):
            report = serve(head_of_line_trace()[:LOOSE],
                           preempt_policy=policy)
            assert report.preemptions == 0
            assert report.completed == LOOSE


# ---------------------------------------------------------------------------
# per-tenant isolation
# ---------------------------------------------------------------------------

def flood_trace(hot=24, victims=2):
    trace = [request(i, 0.0, 10.0, tenant="hot") for i in range(hot)]
    trace += [request(hot + i, i * WINDOW_S, 10.0, tenant="victim")
              for i in range(victims)]
    return trace


class TestTenantIsolation:
    WEIGHTS = {"hot": 1.0, "victim": 1.0}

    def test_quota_sheds_only_the_flooding_tenant(self):
        report = serve(flood_trace(), max_queue=8,
                       tenant_weights=self.WEIGHTS)
        reasons = {}
        for rec in report.shed:
            reasons[rec.reason] = reasons.get(rec.reason, 0) + 1
        assert reasons.get("tenant_quota", 0) >= 1
        assert all(rec.request.tenant == "hot" for rec in report.shed)
        breakdown = report.tenant_breakdown()
        assert breakdown["victim"]["completed"] == 2
        assert report.starved_tenants == []
        assert report.conserved
        assert_exact(report)

    def test_no_quota_without_max_queue(self):
        # fair shares need a bounded queue to divide; weights alone are
        # inert and nothing is shed
        report = serve(flood_trace(), tenant_weights=self.WEIGHTS)
        assert not report.shed
        assert report.completed == report.submitted

    def test_no_quota_without_weights(self):
        # a bounded queue alone keeps the historical global behaviour
        report = serve(flood_trace(), max_queue=8)
        assert all(rec.reason != "tenant_quota" for rec in report.shed)

    def test_starvation_guard_floors_one_slot(self):
        # 100:1 weights squeeze the victim's share below one request;
        # the one-slot floor still lets every victim request complete
        report = serve(flood_trace(), max_queue=8,
                       tenant_weights={"hot": 100.0, "victim": 1.0})
        assert report.tenant_breakdown()["victim"]["completed"] >= 1
        assert "victim" not in report.starved_tenants
        assert report.conserved

    def test_unlisted_tenant_joins_at_weight_one(self):
        trace = flood_trace() + [request(50, 0.0, 10.0, tenant="guest")]
        report = serve(trace, max_queue=8,
                       tenant_weights=self.WEIGHTS)
        assert report.tenant_breakdown()["guest"]["completed"] == 1
        assert report.conserved

    def test_breakdown_sums_to_submissions(self):
        trace = flood_trace()
        report = serve(trace, max_queue=8, tenant_weights=self.WEIGHTS,
                       cancel_after_s=0.5)
        per_tenant = {}
        for r in trace:
            per_tenant[r.tenant] = per_tenant.get(r.tenant, 0) + 1
        for tenant, counts in report.tenant_breakdown().items():
            total = (counts["completed"] + counts["shed"]
                     + counts["cancelled"])
            assert total == per_tenant[tenant]


class TestAssignTenants:
    def test_round_robin_stamp(self):
        trace = [request(i, 0.0, 1.0) for i in range(5)]
        out = assign_tenants(trace, 2)
        assert out[0] is trace[0]  # restamped in place
        assert [r.tenant for r in trace] == ["t0", "t1", "t0", "t1", "t0"]

    def test_single_tenant_is_identity_label(self):
        trace = [request(0, 0.0, 1.0)]
        assign_tenants(trace, 1)
        assert trace[0].tenant == "t0"

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError, match="tenants"):
            assign_tenants([], 0)


# ---------------------------------------------------------------------------
# chaos matrix: preemption x cancellation x faults
# ---------------------------------------------------------------------------

class TestChaosMatrix:
    def test_crash_lands_on_preempting_schedule(self):
        # shard 0 dies right after the tight request forces preemption;
        # the retracted work fails over to shard 1 and nothing is lost
        faults = FaultPlan.outage(0, TIGHT_ARRIVAL_S + 1e-3, 0.05)
        report = serve(head_of_line_trace(), devices=2, faults=faults,
                       preempt_policy="running",
                       cancels=[(3, 1e-4)])
        assert report.failures == 1
        assert report.num_cancelled == 1
        assert report.conserved
        assert_exact(report, devices=2)

    def test_cancel_mid_failover(self):
        # shard 0 crashes with work in flight; the cancel lands at the
        # same instant the batch is being requeued (fault events order
        # before cancels on the heap, so the cancel sees the failed-over
        # placement)
        crash_s = 1.5e-3
        faults = FaultPlan.outage(0, crash_s, 0.05)
        report = serve(head_of_line_trace()[:LOOSE], devices=2,
                       faults=faults, cancels=[(0, crash_s), (7, crash_s)])
        assert report.num_cancelled == 2
        assert report.conserved
        assert_exact(report, devices=2)

    def test_total_outage_with_hot_tenant(self):
        # every shard down at once while a quota-bounded flood arrives:
        # admission sheds what cannot fit, recovery serves the rest
        faults = FaultPlan([ShardFault("crash", 0, 1e-3, 0.02),
                            ShardFault("crash", 1, 1e-3, 0.02)])
        report = serve(flood_trace(), devices=2, faults=faults,
                       max_queue=8, tenant_weights={"hot": 1.0,
                                                    "victim": 1.0},
                       preempt_policy="running", shed_policy="reject")
        assert report.failures == 2
        assert report.completed > 0
        assert report.starved_tenants == []
        assert report.conserved
        assert_exact(report, devices=2)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("policy", ["queued", "running"])
    def test_seeded_matrix_conserves_and_stays_exact(self, seed, policy):
        trace = assign_tenants(bursty_trace(seed=seed), 2)
        span = max(r.arrival_s for r in trace)
        faults = flaky_fault_overlay(2, span, seed=seed)
        cancels = [(trace[3].req_id, trace[3].arrival_s + 1e-4),
                   (trace[11].req_id, trace[11].arrival_s + 2e-3)]
        report = serve(trace, devices=2, seed=seed, faults=faults,
                       cancels=cancels, preempt_policy=policy,
                       max_queue=16,
                       tenant_weights={"t0": 2.0, "t1": 1.0})
        assert report.conserved
        assert_exact(report, seed=seed, devices=2)


# ---------------------------------------------------------------------------
# the remaining-window admission estimate
# ---------------------------------------------------------------------------

class TestAdmissionEstimate:
    WINDOW = 0.05

    def _serve(self, estimate):
        # A opens the window at t=0; B arrives at 90% of it with an SLO
        # that fits the *residual* wait but not a full second window
        trace = [request(0, 0.0, 1.0),
                 request(1, 0.9 * self.WINDOW, 0.02)]
        _, _, engine = build_serving_stack(StackConfig(
            devices=1, seed=0, window_s=self.WINDOW,
            shed_policy="reject", admission_estimate=estimate))
        return engine.serve(trace)

    def test_remaining_window_admits_midwindow_arrival(self):
        report = self._serve("remaining")
        assert report.completed == 2 and not report.shed

    def test_full_window_estimate_still_reachable(self):
        report = self._serve("full")
        assert report.completed == 1
        assert [rec.request.req_id for rec in report.shed] == [1]

    def test_bad_mode_rejected(self):
        # the stack config is a plain carrier; the session ctor validates
        _, _, engine = make_stack(admission_estimate="psychic")
        with pytest.raises(ValueError, match="unknown admission estimate"):
            engine.streaming()


# ---------------------------------------------------------------------------
# admission-queue primitives
# ---------------------------------------------------------------------------

class TestAdmissionQueueOps:
    def test_remove_returns_and_drops(self):
        q = AdmissionQueue(max_batch=8, max_wait_s=1.0)
        a, b = request(0, 0.0, 1.0), request(1, 0.0, 1.0)
        q.add(a, 0.0)
        q.add(b, 0.0)
        got = q.remove(0)
        assert got is a
        assert [r.req_id for r in q.waiting()] == [1]

    def test_remove_missing_is_none(self):
        q = AdmissionQueue(max_batch=8, max_wait_s=1.0)
        q.add(request(0, 0.0, 1.0), 0.0)
        assert q.remove(999) is None
        assert len(q) == 1

    def test_remove_last_member_drops_group(self):
        q = AdmissionQueue(max_batch=8, max_wait_s=1.0)
        q.add(request(0, 0.0, 1.0), 0.0)
        assert q.remove(0) is not None
        assert q.open_groups == 0 and not q.waiting()

    def test_waiting_preserves_admission_order(self):
        q = AdmissionQueue(max_batch=8, max_wait_s=1.0)
        reqs = [request(i, 0.0, 1.0) for i in range(3)]
        for r in reqs:
            q.add(r, 0.0)
        assert [r.req_id for r in q.waiting()] == [0, 1, 2]


# ---------------------------------------------------------------------------
# CLI knob validation
# ---------------------------------------------------------------------------

SERVE = ["serve", "--scenario", "steady", "--requests", "4"]


class TestCLIValidation:
    def test_max_queue_floor(self):
        with pytest.raises(SystemExit, match="--max-queue"):
            cli_main(SERVE + ["--max-queue", "0"])

    def test_probe_backoff_nan(self):
        with pytest.raises(SystemExit, match="--probe-backoff-ms"):
            cli_main(SERVE + ["--probe-backoff-ms", "nan"])

    def test_cancel_after_negative(self):
        with pytest.raises(SystemExit, match="--cancel-after"):
            cli_main(SERVE + ["--cancel-after", "-5"])

    def test_tenants_floor(self):
        with pytest.raises(SystemExit, match="--tenants"):
            cli_main(SERVE + ["--tenants", "0"])

    def test_tenant_weight_bad_spec(self):
        with pytest.raises(SystemExit, match="tenant-weight"):
            cli_main(SERVE + ["--tenant-weight", "hot"])

    def test_tenant_weight_nan(self):
        with pytest.raises(SystemExit, match="tenant-weight"):
            cli_main(SERVE + ["--tenant-weight", "hot=nan"])

    def test_preempt_serve_smoke(self, capsys):
        assert cli_main(SERVE + ["--preempt-policy", "running",
                                 "--cancel-after", "50"]) == 0
        import json
        out = json.loads(capsys.readouterr().out)
        assert out["requests"] >= 0

    def test_two_tenant_fairness_smoke(self, capsys):
        assert cli_main(["serve", "--scenario", "bursty", "--requests",
                         "16", "--devices", "2", "--window-ms", "2",
                         "--tenants", "2", "--tenant-weight", "t0=3",
                         "--max-queue", "16"]) == 0
        import json
        out = json.loads(capsys.readouterr().out)
        assert out["requests"] >= 0
