"""MaskedAdam, generation, and the fit() training loop."""

import numpy as np
import pytest

from repro.core.block_pruning import BlockPruningConfig, apply_block_pruning
from repro.nn import FitConfig, MaskedAdam, TrainingHistory, fit, generate
from repro.nn.generation import generate_with_deadline
from repro.nn.lr_scheduler import StepLR
from repro.nn.module import Parameter
from repro.nn.optim import Adam
from repro.nn.transformer import TransformerLM
from repro.tensor.tensor import Tensor

from tests.conftest import TINY_TRANSFORMER


class TestMaskedAdam:
    def _step_n(self, opt, p, n, grad):
        for _ in range(n):
            p.grad = grad.copy()
            opt.step()

    def test_frozen_positions_pinned_to_zero(self):
        p = Parameter(np.ones((2, 2)))
        mask = np.array([[1.0, 0.0], [1.0, 1.0]])
        p.data *= mask
        opt = MaskedAdam([p], lr=0.1, weight_decay=0.5,
                         freeze_masks={id(p): mask})
        self._step_n(opt, p, 10, np.ones((2, 2)))
        assert p.data[0, 1] == 0.0
        assert p.data[0, 0] != 1.0  # live positions still train

    def test_plain_adam_lets_masked_weights_drift(self):
        """The failure mode MaskedAdam exists to prevent."""
        p = Parameter(np.zeros((2, 2)))
        opt = Adam([p], lr=0.1)
        self._step_n(opt, p, 5, np.ones((2, 2)))
        assert np.all(p.data != 0.0)  # every position moved, mask or not

    def test_moments_scrubbed(self):
        p = Parameter(np.zeros((2, 2)))
        mask = np.array([[1.0, 0.0], [1.0, 1.0]])
        opt = MaskedAdam([p], lr=0.1, freeze_masks={id(p): mask})
        self._step_n(opt, p, 3, np.ones((2, 2)))
        assert opt._m[0][0, 1] == 0.0
        assert opt._v[0][0, 1] == 0.0

    def test_for_backbone_builder(self, tiny_transformer):
        report = apply_block_pruning(tiny_transformer,
                                     BlockPruningConfig(num_blocks=2, rate=0.4))
        opt = MaskedAdam.for_backbone(tiny_transformer, report.masks, lr=1e-3)
        # one freeze mask per pruned layer
        assert len(opt.freeze_masks) == len(report.masks)
        # a training step keeps the masked weights exactly zero
        toks = np.random.default_rng(0).integers(0, 60, size=(2, 8))
        tgt = np.random.default_rng(1).integers(0, 60, size=(2, 8))
        loss = tiny_transformer.loss(Tensor(toks), Tensor(tgt))
        opt.zero_grad()
        loss.backward()
        opt.step()
        from repro.nn.layers import prunable_linears

        for name, layer in prunable_linears(tiny_transformer).items():
            dead = report.masks[name] == 0.0
            assert np.all(layer.weight.data[dead] == 0.0), name


class TestGeneration:
    @pytest.fixture()
    def model(self):
        return TransformerLM(TINY_TRANSFORMER)

    def test_greedy_deterministic(self, model):
        prompt = np.array([1, 2, 3])
        a = generate(model, prompt, 5)
        b = generate(model, prompt, 5)
        assert np.array_equal(a.generated, b.generated)
        assert len(a.generated) == 5
        assert len(a.logprobs) == 5

    def test_tokens_in_vocab(self, model):
        out = generate(model, np.array([0]), 8)
        assert out.generated.min() >= 0
        assert out.generated.max() < model.cfg.vocab_size

    def test_topk_sampling_varies_with_seed(self, model):
        prompt = np.array([1, 2])
        outs = {tuple(generate(model, prompt, 6, top_k=10, seed=s).generated)
                for s in range(5)}
        assert len(outs) > 1

    def test_context_truncated_to_max_len(self, model):
        prompt = np.arange(model.cfg.max_len + 10) % model.cfg.vocab_size
        out = generate(model, prompt, 2)
        assert len(out.tokens) == len(prompt) + 2

    def test_validation(self, model):
        with pytest.raises(ValueError):
            generate(model, np.array([1]), 0)
        with pytest.raises(ValueError):
            generate(model, np.array([]), 3)
        with pytest.raises(ValueError):
            generate(model, np.array([1]), 3, temperature=0.0)

    def test_generate_with_deadline_flags(self, model):
        from repro.hardware.dvfs import DVFSTable
        from repro.hardware.workload import paper_scale_transformer

        wl = paper_scale_transformer()
        l6 = DVFSTable()["l6"]
        _, met_loose = generate_with_deadline(model, np.array([1]), 3, wl, l6,
                                              deadline_s=10.0, sparsity=0.5)
        _, met_tight = generate_with_deadline(model, np.array([1]), 3, wl, l6,
                                              deadline_s=1e-5, sparsity=0.5)
        assert all(met_loose) and not any(met_tight)


class TestFit:
    def test_history_and_improvement(self, lm_task):
        history = fit(lm_task, FitConfig(epochs=3, lr=3e-3))
        assert len(history.train_loss) == 3
        assert len(history.eval_score) == 3
        assert history.train_loss[-1] < history.train_loss[0]

    def test_restore_best(self, lm_task):
        history = fit(lm_task, FitConfig(epochs=3, lr=3e-3, restore_best=True))
        # after restore, the model evaluates at (>=) the best recorded score
        assert lm_task.evaluate() >= history.best_score - 1e-9

    def test_early_stopping(self, lm_task):
        # patience 1 with an impossible min_delta stops after 2 epochs
        history = fit(lm_task, FitConfig(epochs=50, lr=3e-3, patience=1,
                                         min_delta=2.0))
        assert len(history.train_loss) <= 3

    def test_scheduler_applied(self, lm_task):
        opt = Adam(lm_task.model.parameters(), lr=1.0e-3)
        sched = StepLR(opt, step_size=1, gamma=0.5)
        history = fit(lm_task, FitConfig(epochs=3), optimizer=opt, scheduler=sched)
        assert history.lr[0] > history.lr[-1]

    def test_callback_invoked(self, lm_task):
        seen = []
        fit(lm_task, FitConfig(epochs=2, lr=3e-3),
            on_epoch_end=lambda e, h: seen.append(e))
        assert seen == [0, 1]

    def test_history_best_epoch_validation(self):
        with pytest.raises(ValueError):
            TrainingHistory().best_epoch

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FitConfig(epochs=0)
        with pytest.raises(ValueError):
            FitConfig(patience=0)
