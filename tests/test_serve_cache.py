"""Artifact cache: LRU mechanics, byte budget, and mask/format wiring."""

import numpy as np
import pytest

from repro.core.patterns import (
    MaskManager,
    PackedMask,
    PatternSet,
    pattern_mask_for_matrix,
    random_pattern_set,
)
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.serve.cache import ArtifactCache, CacheStats, LRUCache, artifact_nbytes
from repro.sparse.executor import SparseExecutor

TINY = TransformerConfig(vocab_size=40, dim=16, num_heads=2, ffn_dim=32,
                         num_encoder_layers=1, num_decoder_layers=1,
                         max_len=12, dropout=0.0, seed=2)


@pytest.fixture()
def model():
    return TransformerLM(TINY)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestLRUCache:
    def test_get_miss_then_hit(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # rewrite refreshes a
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_get_or_compute_runs_once(self):
        cache = LRUCache(4)
        calls = []
        for _ in range(3):
            value = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert value == 42
        assert len(calls) == 1
        assert cache.stats.hits == 2 and cache.stats.misses == 1

    def test_invalidate_all_and_predicate(self):
        cache = LRUCache(8)
        for i in range(4):
            cache.put(("x", i), i)
        assert cache.invalidate(lambda k: k[1] % 2 == 0) == 2
        assert len(cache) == 2
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.stats.invalidations == 4


class TestCacheStats:
    def test_hit_rate_no_lookups(self):
        assert CacheStats().hit_rate == 0.0

    def test_snapshot_is_independent(self):
        stats = CacheStats(hits=3, misses=1)
        snap = stats.snapshot()
        stats.hits = 10
        assert snap.hits == 3
        assert snap.hit_rate == 0.75


class TestArtifactCache:
    def test_mask_namespace_computes_once(self):
        cache = ArtifactCache()
        calls = []
        for _ in range(2):
            out = cache.get_mask("layer0", "digestA", lambda: calls.append(1) or "mask")
        assert out == "mask" and len(calls) == 1

    def test_format_namespace_is_distinct(self):
        cache = ArtifactCache()
        cache.get_mask("l", "d", lambda: "mask-artifact")
        fmt = cache.get_format("l", "d", "coo", lambda: "coo-artifact")
        assert fmt == "coo-artifact"
        assert cache.stats.misses == 2  # no cross-namespace collision

    def test_invalidate_by_layer(self):
        cache = ArtifactCache()
        cache.get_mask("a", "d1", lambda: 1)
        cache.get_mask("b", "d1", lambda: 2)
        assert cache.invalidate(layer="a") == 1
        assert cache.get_mask("b", "d1", lambda: 99) == 2  # still cached

    def test_invalidate_by_set_digest_spans_namespaces(self):
        cache = ArtifactCache()
        cache.get_mask("a", "d1", lambda: 1)
        cache.get_mask("a", "d2", lambda: 2)
        # pattern conversions carry the set digest in the config field
        cache.get_format("a", "w-hash", "pattern", lambda: 3, config="d1")
        cache.get_format("a", "w-hash", "coo", lambda: 4)
        assert cache.invalidate(set_digest="d1") == 2
        assert cache.get_mask("a", "d2", lambda: 99) == 2
        assert cache.get_format("a", "w-hash", "coo", lambda: 99) == 4

    def test_invalidate_by_owner_keeps_formats(self):
        cache = ArtifactCache()
        cache.get_mask("a", "d1", lambda: 1, owner="m0")
        cache.get_mask("a", "d1", lambda: 2, owner="m1")
        cache.get_format("a", "w-hash", "coo", lambda: 3)
        assert cache.invalidate(owner="m0") == 1
        assert cache.get_mask("a", "d1", lambda: 99, owner="m1") == 2
        assert cache.get_format("a", "w-hash", "coo", lambda: 99) == 3


class TestPatternSetDigest:
    def test_identical_content_same_digest(self, rng):
        a = random_pattern_set(4, 0.5, 2, np.random.default_rng(7))
        b = random_pattern_set(4, 0.5, 2, np.random.default_rng(7))
        assert a.digest() == b.digest()

    def test_name_does_not_change_digest(self, rng):
        base = random_pattern_set(4, 0.5, 2, rng)
        renamed = PatternSet(base.patterns, sparsity=base.sparsity, name="other")
        assert base.digest() == renamed.digest()

    def test_different_patterns_different_digest(self):
        a = random_pattern_set(4, 0.5, 2, np.random.default_rng(1))
        b = random_pattern_set(4, 0.5, 2, np.random.default_rng(2))
        assert a.digest() != b.digest()

    def test_subset_changes_digest(self, rng):
        full = random_pattern_set(4, 0.5, 3, rng)
        assert full.subset([0, 1]).digest() != full.digest()


class TestMaskManagerCache:
    def test_second_apply_hits_every_layer(self, model, rng):
        cache = ArtifactCache()
        manager = MaskManager(model, cache=cache)
        pset = random_pattern_set(4, 0.5, 2, rng)
        manager.apply(pset)
        assert cache.stats.misses == len(manager.layers)
        assert cache.stats.hits == 0
        manager.apply(pset)
        assert cache.stats.hits == len(manager.layers)

    def test_cached_masks_match_uncached(self, rng):
        pset = random_pattern_set(4, 0.5, 2, rng)
        plain_model, cached_model = TransformerLM(TINY), TransformerLM(TINY)
        plain = MaskManager(plain_model)
        cached = MaskManager(cached_model, cache=ArtifactCache())
        plain.apply(pset)
        cached.apply(pset)
        cached.apply(pset)  # second pass comes from cache
        for name in plain.layers:
            np.testing.assert_array_equal(plain.layers[name].mask,
                                          cached.layers[name].mask)

    def test_swap_and_return_reuses_cache(self, model, rng):
        cache = ArtifactCache()
        manager = MaskManager(model, cache=cache)
        set_a = random_pattern_set(4, 0.3, 2, rng)
        set_b = random_pattern_set(4, 0.7, 2, rng)
        manager.apply(set_a)
        manager.apply(set_b)
        first_masks = {n: l.mask.copy() for n, l in manager.layers.items()}
        misses_before = cache.stats.misses
        manager.apply(set_a)
        manager.apply(set_b)  # both swaps fully cached now
        assert cache.stats.misses == misses_before
        for name, layer in manager.layers.items():
            np.testing.assert_array_equal(layer.mask, first_masks[name])

    def test_invalidation_on_weight_change(self, model, rng):
        cache = ArtifactCache()
        manager = MaskManager(model, cache=cache)
        pset = random_pattern_set(4, 0.5, 2, rng)
        manager.apply(pset)
        stale = {n: l.mask.copy() for n, l in manager.layers.items()}
        # perturb weights: cached masks are now stale until invalidated
        name, layer = next(iter(manager.layers.items()))
        layer.weight.data[:] = rng.normal(size=layer.weight.shape)
        removed = manager.invalidate_cache()
        assert removed == len(manager.layers)
        manager.apply(pset)
        assert not np.array_equal(manager.layers[name].mask, stale[name])

    def test_shared_cache_does_not_cross_managers(self, rng):
        # masks derive from weights: two managers over different weights
        # sharing one cache must never serve each other's entries
        cache = ArtifactCache()
        model_a = TransformerLM(TINY)
        model_b = TransformerLM(TransformerConfig(**{**TINY.__dict__, "seed": 99}))
        pset = random_pattern_set(4, 0.5, 2, rng)
        manager_a = MaskManager(model_a, cache=cache)
        manager_b = MaskManager(model_b, cache=cache)
        manager_a.apply(pset)
        manager_b.apply(pset)
        plain_b = MaskManager(TransformerLM(TransformerConfig(
            **{**TINY.__dict__, "seed": 99})))
        plain_b.apply(pset)
        for name in manager_b.layers:
            np.testing.assert_array_equal(manager_b.layers[name].mask,
                                          plain_b.layers[name].mask)

    def test_attach_cache_later(self, model, rng):
        manager = MaskManager(model)
        pset = random_pattern_set(4, 0.5, 2, rng)
        manager.apply(pset)
        cache = ArtifactCache()
        manager.attach_cache(cache)
        manager.apply(pset)
        manager.apply(pset)
        assert cache.stats.hits == len(manager.layers)


class TestExecutorCache:
    @pytest.mark.parametrize("fmt", ["coo", "block", "pattern"])
    def test_repeat_audit_hits_cache(self, model, rng, fmt):
        pset = random_pattern_set(4, 0.5, 2, rng)
        MaskManager(model).apply(pset)
        cache = ArtifactCache()
        executor = SparseExecutor(fmt, pattern_set=pset, cache=cache)
        first = executor.audit(model)
        assert cache.stats.hits == 0
        second = executor.audit(model)
        assert cache.stats.hits == len(first.layers)
        assert first.all_correct and second.all_correct
        assert second.total.macs == first.total.macs

    def test_weight_change_misses_naturally(self, model, rng):
        pset = random_pattern_set(4, 0.5, 2, rng)
        MaskManager(model).apply(pset)
        cache = ArtifactCache()
        executor = SparseExecutor("coo", pattern_set=pset, cache=cache)
        executor.audit(model)
        name, layer = next(iter(MaskManager(model).layers.items()))
        layer.weight.data[:] = rng.normal(size=layer.weight.shape)
        # version-counter keys: raw in-place writes must declare themselves
        # (optimizers and load_state_dict do this automatically)
        layer.weight.bump_version()
        executor.audit(model)  # bumped version: changed layer misses
        assert cache.stats.misses > len(executor.audit(model).layers)

    def test_mask_change_misses_naturally(self, model, rng):
        # set_mask bumps the layer's mask version, so a swapped pattern set
        # can never be served a stale conversion
        set_a = random_pattern_set(4, 0.3, 2, rng)
        cache = ArtifactCache()
        executor = SparseExecutor("coo", pattern_set=set_a, cache=cache)
        manager = MaskManager(model)
        manager.apply(set_a)
        first = executor.audit(model)
        manager.apply(random_pattern_set(4, 0.9, 2, rng))
        second = executor.audit(model)  # every layer misses, none stale
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2 * len(first.layers)
        assert second.all_correct
        assert second.total.macs < first.total.macs

    def test_shared_cache_distinguishes_pattern_sets(self, model, rng):
        # same weights, different pattern sets: payloads must not collide
        cache = ArtifactCache()
        set_a = random_pattern_set(4, 0.3, 2, rng)
        set_b = random_pattern_set(4, 0.9, 2, rng)
        exec_a = SparseExecutor("pattern", pattern_set=set_a, cache=cache)
        exec_b = SparseExecutor("pattern", pattern_set=set_b, cache=cache)
        audit_a = exec_a.audit(model)
        audit_b = exec_b.audit(model)
        truth_b = SparseExecutor("pattern", pattern_set=set_b).audit(model)
        assert audit_b.total.macs == truth_b.total.macs
        assert audit_b.total.macs != audit_a.total.macs
        assert audit_b.all_correct

    def test_shared_cache_distinguishes_block_counts(self, model, rng):
        cache = ArtifactCache()
        audit_2 = SparseExecutor("block", num_blocks=2, cache=cache).audit(model)
        audit_8 = SparseExecutor("block", num_blocks=8, cache=cache).audit(model)
        truth_8 = SparseExecutor("block", num_blocks=8).audit(model)
        assert audit_8.total.index_ops == truth_8.total.index_ops
        assert audit_8.total.index_ops != audit_2.total.index_ops

    def test_uncached_executor_still_works(self, model, rng):
        pset = random_pattern_set(4, 0.5, 2, rng)
        MaskManager(model).apply(pset)
        audit = SparseExecutor("pattern", pattern_set=pset).audit(model)
        assert audit.all_correct


class TestPackedMask:
    def test_round_trip_exact(self, rng):
        mask = (rng.random((13, 7)) > 0.5).astype(np.float64)
        packed = PackedMask(mask)
        np.testing.assert_array_equal(packed.unpack(), mask)
        assert packed.count() == int(mask.sum())

    def test_round_trip_pattern_mask(self, model, rng):
        pset = random_pattern_set(4, 0.5, 2, rng)
        layer = next(iter(MaskManager(model).layers.values()))
        mask, _ = pattern_mask_for_matrix(layer.weight.data, pset)
        np.testing.assert_array_equal(PackedMask(mask).unpack(), mask)

    def test_eightfold_compression(self):
        mask = np.ones((64, 64))
        packed = PackedMask(mask)
        assert packed.nbytes == 64 * 64 // 8  # one bit per position
        assert packed.nbytes * 64 == mask.nbytes  # vs float64 storage

    def test_equality_is_content_based(self, rng):
        mask = (rng.random((8, 8)) > 0.5).astype(np.float64)
        assert PackedMask(mask) == PackedMask(mask.copy())
        flipped = mask.copy()
        flipped[0, 0] = 1.0 - flipped[0, 0]
        assert PackedMask(mask) != PackedMask(flipped)


class TestArtifactNbytes:
    def test_ndarray_uses_nbytes(self):
        assert artifact_nbytes(np.zeros((4, 4))) == 128

    def test_formats_use_own_accounting(self):
        from repro.sparse import from_dense_coo
        w = np.eye(4)
        coo = from_dense_coo(w)
        assert artifact_nbytes(coo) == coo.nbytes()

    def test_packed_mask_counts_packed_bits(self):
        packed = PackedMask(np.ones((64, 64)))
        assert artifact_nbytes(packed) == packed.nbytes

    def test_containers_sum_members(self):
        pair = (np.zeros(8), np.zeros(4))
        assert artifact_nbytes(pair) == 64 + 32
        assert artifact_nbytes([pair, np.zeros(2)]) == 96 + 16

    def test_fallback_is_positive(self):
        assert artifact_nbytes("some string") > 0


class TestByteBudgetLRU:
    def test_eviction_is_size_aware_lru(self):
        cache = LRUCache(capacity=None, budget_bytes=3 * 80)
        for name in ("a", "b", "c"):
            cache.put(name, np.zeros(10))  # 80 bytes each
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("d", np.zeros(20))  # 160 bytes: must evict b AND c
        assert "a" in cache and "d" in cache
        assert "b" not in cache and "c" not in cache
        assert cache.stats.evictions == 2
        assert cache.total_bytes == 80 + 160

    def test_total_bytes_tracks_replacement(self):
        cache = LRUCache(capacity=None, budget_bytes=1000)
        cache.put("k", np.zeros(10))
        assert cache.total_bytes == 80
        cache.put("k", np.zeros(50))  # replace: old size released
        assert cache.total_bytes == 400
        cache.invalidate()
        assert cache.total_bytes == 0

    def test_oversized_artifact_never_stored(self):
        cache = LRUCache(capacity=None, budget_bytes=100)
        cache.put("small", np.zeros(4))
        cache.put("huge", np.zeros(1000))  # would flush the whole cache
        assert "huge" not in cache
        assert "small" in cache  # untouched by the rejected insert

    def test_zero_budget_disables(self):
        cache = LRUCache(capacity=None, budget_bytes=0)
        cache.put("a", np.zeros(2))
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(budget_bytes=-1)

    def test_entry_nbytes_reported(self):
        cache = LRUCache(capacity=None, budget_bytes=1000)
        cache.put("k", np.zeros(10))
        assert cache.entry_nbytes("k") == 80
        assert cache.entry_nbytes("missing") is None

    def test_explicit_nbytes_overrides_estimate(self):
        cache = LRUCache(capacity=None, budget_bytes=100)
        cache.put("k", np.zeros(1000), nbytes=10)  # caller-declared size
        assert "k" in cache
        assert cache.total_bytes == 10

    def test_capacity_and_budget_compose(self):
        cache = LRUCache(capacity=2, budget_bytes=10_000)
        for name in ("a", "b", "c"):
            cache.put(name, np.zeros(1))
        assert len(cache) == 2  # entry bound still enforced


class TestArtifactCacheByteBudget:
    def test_masks_stored_packed(self, model, rng):
        cache = ArtifactCache()
        manager = MaskManager(model, cache=cache)
        manager.apply(random_pattern_set(4, 0.5, 2, rng))
        # every cached mask artifact is bit-packed: the cache's accounted
        # bytes must be far below the float64 mask footprint
        float_bytes = sum(l.weight.data.nbytes for l in manager.layers.values())
        assert 0 < cache.bytes_in_use < float_bytes / 4

    def test_packed_masks_identical_to_uncached(self, rng):
        pset = random_pattern_set(4, 0.5, 2, rng)
        plain_model, cached_model = TransformerLM(TINY), TransformerLM(TINY)
        plain = MaskManager(plain_model)
        cached = MaskManager(cached_model, cache=ArtifactCache())
        plain.apply(pset)
        cached.apply(pset)
        cached.apply(pset)  # second pass unpacks from cache
        for name in plain.layers:
            np.testing.assert_array_equal(plain.layers[name].mask,
                                          cached.layers[name].mask)

    def test_budget_pressure_evicts_old_pattern_sets(self, model, rng):
        # budget sized for roughly one pattern set's worth of artifacts:
        # swapping through many sets must evict rather than grow
        manager = MaskManager(model)
        one_set_bytes = 0
        probe = ArtifactCache()
        probe_manager = MaskManager(TransformerLM(TINY), cache=probe)
        probe_manager.apply(random_pattern_set(4, 0.5, 2, rng))
        one_set_bytes = probe.bytes_in_use
        cache = ArtifactCache(budget_bytes=int(one_set_bytes * 1.5))
        manager.attach_cache(cache)
        for sparsity in (0.3, 0.5, 0.7, 0.9):
            manager.apply(random_pattern_set(4, sparsity, 2, rng))
        assert cache.stats.evictions > 0
        assert cache.bytes_in_use <= int(one_set_bytes * 1.5)


class TestIdenticalMaskReinstall:
    def test_token_stable_across_identical_reinstall(self, rng):
        from repro.nn.layers import Linear
        layer = Linear(16, 16, seed=0)
        mask = (rng.random((16, 16)) > 0.5).astype(np.float64)
        layer.set_mask(mask)
        token = layer.cache_token
        layer.set_mask(mask.copy())  # identical content, fresh array
        assert layer.cache_token == token
        changed = mask.copy()
        changed[0, 0] = 1.0 - changed[0, 0]
        layer.set_mask(changed)
        assert layer.cache_token != token

    def test_reinstall_keeps_format_conversions_hot(self, model, rng):
        # the ROADMAP open item: re-installing the same masks used to bump
        # every cache_token, turning warm format conversions into misses
        pset = random_pattern_set(4, 0.5, 2, rng)
        manager = MaskManager(model)
        manager.apply(pset)
        cache = ArtifactCache()
        executor = SparseExecutor("pattern", pattern_set=pset, cache=cache)
        first = executor.audit(model)
        manager.apply(pset)  # identical reinstall (the per-batch path)
        executor.audit(model)
        assert cache.stats.hits == len(first.layers)  # all hot

    def test_engine_reinstall_path_hits(self, rng):
        # end to end: reinstall_per_batch re-applies masks every batch;
        # with the content fast path the executor-style token never moves
        model = TransformerLM(TINY)
        manager = MaskManager(model)
        pset = random_pattern_set(4, 0.5, 2, rng)
        manager.apply(pset)
        tokens = {n: l.cache_token for n, l in manager.layers.items()}
        for _ in range(3):
            manager.apply(pset)
        assert {n: l.cache_token for n, l in manager.layers.items()} == tokens


class TestResidentAccounting:
    def test_resident_nbytes_grows_with_tables(self, rng):
        from repro.sparse import from_dense_pattern
        pset = random_pattern_set(4, 0.5, 2, rng)
        w = rng.normal(size=(16, 16))
        mask, ids = pattern_mask_for_matrix(w, pset)
        pm = from_dense_pattern(w * mask, [p.mask for p in pset], ids)
        storage = pm.nbytes()
        assert pm.resident_nbytes() == storage  # nothing materialized yet
        pm.pattern_groups()
        assert pm.resident_nbytes() > storage  # tables now resident

    def test_cached_pattern_artifact_accounts_for_tables(self, model, rng):
        # the executor materializes kernel tables before the artifact is
        # sized, so the cache's byte budget sees the live footprint, not
        # just the storage format
        pset = random_pattern_set(4, 0.5, 2, rng)
        MaskManager(model).apply(pset)
        cache = ArtifactCache()
        executor = SparseExecutor("pattern", pattern_set=pset, cache=cache)
        executor.audit(model)
        for key in cache.store.keys():
            packed, _ = cache.store.get(key)
            assert cache.store.entry_nbytes(key) >= packed.resident_nbytes()
            assert packed.resident_nbytes() > packed.nbytes()

    def test_block_resident_nbytes_counts_groups(self, rng):
        from repro.sparse import from_dense_block
        w = rng.normal(size=(16, 12))
        bc = from_dense_block(w, 4)
        storage = bc.nbytes()
        assert bc.resident_nbytes() == storage
        bc.matmul_groups()
        assert bc.resident_nbytes() > storage
