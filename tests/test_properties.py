"""Hypothesis property-based tests on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.block_pruning import BlockPruningConfig, block_prune_matrix
from repro.core.pareto import dominates, pareto_front
from repro.core.patterns import pattern_mask_for_matrix, random_pattern_set
from repro.core.reward import RewardConfig, accuracy_order_ok, compute_reward
from repro.hardware.dvfs import BatteryGovernor, DVFSTable
from repro.hardware.latency import LatencyModel, SparsityKind
from repro.hardware.power import PowerModel
from repro.hardware.workload import WorkloadProfile
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, unbroadcast

FINITE = dict(allow_nan=False, allow_infinity=False)


# ---------------------------------------------------------------------------
# autograd invariants
# ---------------------------------------------------------------------------
@given(
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4)),
)
@settings(max_examples=30, deadline=None)
def test_unbroadcast_inverts_broadcast(shape):
    """For any target sub-shape, unbroadcast(sum) preserves total mass."""
    full = np.ones(shape)
    target = tuple(1 if i % 2 == 0 else n for i, n in enumerate(shape))
    out = unbroadcast(full, target)
    assert out.shape == target
    assert out.sum() == pytest.approx(full.sum())


@given(
    data=hnp.arrays(np.float64, hnp.array_shapes(min_dims=1, max_dims=3, max_side=5),
                    elements=st.floats(-10, 10, **FINITE)),
)
@settings(max_examples=40, deadline=None)
def test_softmax_is_distribution(data):
    out = F.softmax(Tensor(data), axis=-1)
    assert np.all(out.data >= 0)
    assert np.allclose(out.data.sum(axis=-1), 1.0)


@given(
    data=hnp.arrays(np.float64, (4, 5), elements=st.floats(-5, 5, **FINITE)),
    scale=st.floats(0.1, 3.0),
)
@settings(max_examples=30, deadline=None)
def test_linearity_of_gradients(data, scale):
    """grad of (c * f) == c * grad of f."""
    a = Tensor(data, requires_grad=True)
    F.sum(F.mul(F.tanh(a), 1.0)).backward()
    g1 = a.grad.copy()
    a.zero_grad()
    F.sum(F.mul(F.tanh(a), scale)).backward()
    assert np.allclose(a.grad, scale * g1)


@given(
    data=hnp.arrays(np.float64, (3, 4), elements=st.floats(-3, 3, **FINITE)),
)
@settings(max_examples=30, deadline=None)
def test_sum_then_backward_gives_ones(data):
    a = Tensor(data, requires_grad=True)
    F.sum(a).backward()
    assert np.allclose(a.grad, 1.0)


# ---------------------------------------------------------------------------
# pruning invariants
# ---------------------------------------------------------------------------
@given(
    rows=st.integers(4, 24),
    cols=st.integers(4, 24),
    blocks=st.integers(1, 4),
    rate=st.floats(0.0, 0.9),
    seed=st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_block_prune_mask_invariants(rows, cols, blocks, rate, seed):
    blocks = min(blocks, rows)
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(rows, cols))
    mask = block_prune_matrix(w, BlockPruningConfig(num_blocks=blocks, rate=rate))
    # binary mask of the right shape
    assert mask.shape == w.shape
    assert set(np.unique(mask)) <= {0.0, 1.0}
    # every block keeps at least one column
    edges = np.linspace(0, rows, blocks + 1).astype(int)
    for lo, hi in zip(edges[:-1], edges[1:]):
        assert mask[lo:hi].sum() > 0
    # sparsity never exceeds the requested rate (per-block flooring)
    assert 1.0 - mask.mean() <= rate + 1e-9


@given(
    psize=st.integers(2, 12),
    sparsity=st.floats(0.0, 0.95),
    n=st.integers(1, 5),
    seed=st.integers(0, 50),
)
@settings(max_examples=40, deadline=None)
def test_random_pattern_set_invariants(psize, sparsity, n, seed):
    ps = random_pattern_set(psize, sparsity, n, np.random.default_rng(seed))
    assert len(ps) == n
    keep_target = max(1, int(round((1.0 - sparsity) * psize * psize)))
    for p in ps:
        assert int(p.mask.sum()) == keep_target


@given(
    rows=st.integers(4, 20),
    cols=st.integers(4, 20),
    psize=st.integers(2, 6),
    seed=st.integers(0, 50),
)
@settings(max_examples=40, deadline=None)
def test_pattern_mask_application_tiles_correctly(rows, cols, psize, seed):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(rows, cols))
    ps = random_pattern_set(psize, 0.5, 3, rng)
    mask, ids = pattern_mask_for_matrix(w, ps)
    assert mask.shape == w.shape
    assert ids.shape == (-(-rows // psize), -(-cols // psize))
    assert ids.min() >= 0 and ids.max() < 3
    # each *full* tile equals its chosen pattern exactly
    for bi in range(rows // psize):
        for bj in range(cols // psize):
            tile = mask[bi * psize:(bi + 1) * psize, bj * psize:(bj + 1) * psize]
            assert np.array_equal(tile, ps[ids[bi, bj]].mask)


# ---------------------------------------------------------------------------
# pareto invariants
# ---------------------------------------------------------------------------
points_strategy = st.lists(
    st.tuples(st.floats(0, 1, **FINITE), st.floats(0, 1e6, **FINITE)),
    min_size=1, max_size=30,
)


@given(points=points_strategy)
@settings(max_examples=50, deadline=None)
def test_pareto_front_is_antichain(points):
    front = pareto_front(points)
    assert front  # never empty for non-empty input
    for p in front:
        assert not any(dominates(q, p) for q in front if q != p)


@given(points=points_strategy)
@settings(max_examples=50, deadline=None)
def test_pareto_front_dominates_everything(points):
    front = pareto_front(points)
    for p in points:
        assert p in front or any(dominates(q, p) for q in front)


@given(points=points_strategy, extra=st.tuples(st.floats(0, 1, **FINITE),
                                               st.floats(0, 1e6, **FINITE)))
@settings(max_examples=50, deadline=None)
def test_pareto_front_monotone_under_insertion(points, extra):
    """Adding a point never *improves* old points' standing."""
    before = set(pareto_front(points))
    after = set(pareto_front(points + [extra]))
    assert after - {extra} <= before


# ---------------------------------------------------------------------------
# reward invariants
# ---------------------------------------------------------------------------
@given(
    accs=st.lists(st.floats(0.3, 0.89), min_size=2, max_size=4),
    runs=st.floats(0, 2e6),
)
@settings(max_examples=50, deadline=None)
def test_reward_monotone_in_accuracy(accs, runs):
    cfg = RewardConfig(backbone_accuracy=0.9, min_accuracy=0.2, deadline_s=0.1,
                       runs_ref=1e6)
    lats = [0.05] * len(accs)
    base = compute_reward(cfg, lats, runs, accs)
    bumped = compute_reward(cfg, lats, runs, [min(a + 0.01, 0.895) for a in accs])
    # ordering flag may change, but with the same flag reward grows
    if base.accuracy_ordered == bumped.accuracy_ordered:
        assert bumped.reward >= base.reward - 1e-12


@given(runs=st.floats(0, 5e6))
@settings(max_examples=30, deadline=None)
def test_infeasible_reward_bounded(runs):
    cfg = RewardConfig(backbone_accuracy=0.9, min_accuracy=0.2, deadline_s=0.1,
                       runs_ref=1e6)
    terms = compute_reward(cfg, [0.2], runs)
    assert -1.0 <= terms.reward <= 0.0


@given(accs=st.lists(st.floats(0, 1), min_size=1, max_size=6))
@settings(max_examples=50, deadline=None)
def test_accuracy_order_matches_pairwise(accs):
    expected = all(a > b for a, b in zip(accs, accs[1:]))
    assert accuracy_order_ok(accs) == expected


# ---------------------------------------------------------------------------
# hardware invariants
# ---------------------------------------------------------------------------
@given(
    macs=st.floats(1e6, 1e10),
    sparsity=st.floats(0.0, 0.95),
)
@settings(max_examples=40, deadline=None)
def test_latency_positive_and_monotone_in_frequency(macs, sparsity):
    wl = WorkloadProfile("w", macs, int(macs // 16) + 1, int(macs // 16) + 1)
    lm = LatencyModel()
    table = DVFSTable()
    lats = [lm.latency_s(wl, lv, sparsity, SparsityKind.PATTERN) for lv in table]
    assert all(l > 0 for l in lats)
    assert all(a >= b for a, b in zip(lats, lats[1:]))  # faster clock, lower lat


@given(fraction=st.floats(0.0, 1.0))
@settings(max_examples=50, deadline=None)
def test_governor_total_function(fraction):
    gov = BatteryGovernor(DVFSTable().subset(["l3", "l4", "l6"]), (0.15, 0.40))
    level = gov.level_for(fraction)
    assert level.name in {"l3", "l4", "l6"}


@given(seconds=st.floats(0.0, 10.0))
@settings(max_examples=30, deadline=None)
def test_energy_non_negative(seconds):
    pm = PowerModel()
    for lv in DVFSTable():
        assert pm.energy_j(lv, seconds) >= 0.0
