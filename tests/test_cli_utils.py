"""CLI commands and ASCII plotting."""

import json

import pytest

from repro.cli import build_parser, main
from repro.utils.plot import ascii_line, ascii_scatter, format_si


class TestFormatSi:
    def test_millions(self):
        assert format_si(1_530_000) == "1.53M"

    def test_thousands(self):
        assert format_si(2_500) == "2.5k"

    def test_small(self):
        assert format_si(0.0875) == "87.5m"

    def test_plain(self):
        assert format_si(3.14159) == "3.14"


class TestAsciiPlots:
    def test_scatter_contains_markers_and_legend(self):
        out = ascii_scatter({"a": [(0, 0), (1, 1)], "b": [(0.5, 0.5)]},
                            width=20, height=8)
        assert "o" in out and "x" in out
        assert "o=a" in out and "x=b" in out

    def test_scatter_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_scatter({"a": []})

    def test_scatter_degenerate_single_point(self):
        out = ascii_scatter({"a": [(1.0, 1.0)]}, width=10, height=4)
        assert "o" in out

    def test_line_renders(self):
        out = ascii_line([0, 1, 2, 3, 2, 1, 0], width=20, height=6, label="bat")
        assert out.count("*") == 20
        assert "bat" in out

    def test_line_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_line([])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.fn.__name__ == "cmd_info"

    def test_search_args(self):
        args = build_parser().parse_args(
            ["search", "--task", "rte", "--deadline-ms", "200", "--episodes", "3"])
        assert args.task == "rte"
        assert args.deadline_ms == 200.0
        assert args.episodes == 3

    def test_invalid_task_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--task", "imagenet"])

    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--scenario", "bursty", "--batch-size", "4", "--no-cache"])
        assert args.fn.__name__ == "cmd_serve"
        assert args.scenario == "bursty"
        assert args.batch_size == 4
        assert args.no_cache

    def test_serve_invalid_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--scenario", "imagenet"])


class TestServeCommand:
    # fast enough for the default lane: tiny model, no training
    def test_serve_runs_and_writes_output(self, tmp_path, capsys):
        report_path = tmp_path / "serve.json"
        code = main(["serve", "--requests", "16", "--verify",
                     "--output", str(report_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "max |err|" in out and "OK" in out
        report = json.loads(report_path.read_text())
        assert report["scenario"] == "steady"
        assert report["requests"] == 16
        assert report["cache_enabled"] is True
        assert report["cache"]["hits"] + report["cache"]["misses"] > 0
        assert report["max_verify_error"] < 1e-9

    def test_serve_no_cache_reports_flag(self, tmp_path):
        report_path = tmp_path / "serve.json"
        assert main(["serve", "--requests", "8", "--no-cache",
                     "--output", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["cache_enabled"] is False
        assert "cache" not in report


@pytest.mark.slow
class TestCommands:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "l6" in out and "CYCLES_PER_MAC" in out

    def test_simulate_runs(self, capsys):
        assert main(["simulate"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E3" in out

    def test_search_writes_outputs(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        bundle_path = tmp_path / "bundle"
        code = main([
            "search", "--task", "wikitext2", "--episodes", "1",
            "--pretrain-epochs", "1",
            "--output", str(report_path), "--bundle", str(bundle_path),
        ])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["task"] == "wikitext2"
        assert set(report["final_accuracies"]) == {"l3", "l4", "l6"}
        assert (bundle_path / "manifest.json").exists()

    def test_ablation_writes_rows(self, tmp_path, capsys):
        out_path = tmp_path / "rows.json"
        code = main([
            "ablation", "--task", "wikitext2", "--episodes", "1",
            "--pretrain-epochs", "1", "--output", str(out_path),
        ])
        assert code == 0
        rows = json.loads(out_path.read_text())
        assert len(rows) == 6
        assert rows[0][0] == "No-Opt"
