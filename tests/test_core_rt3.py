"""RT3 end-to-end: level 1, level 2 search, baselines, result invariants."""

import numpy as np
import pytest

from repro.core.block_pruning import BlockPruningConfig
from repro.core.controller import ControllerConfig
from repro.core.rt3 import RT3, RT3Config
from repro.core.search_space import SearchSpaceConfig
from repro.core.trainer import TrainConfig, train_plain
from repro.hardware.workload import paper_scale_transformer


def small_cfg(**overrides):
    base = dict(
        deadline_s=0.104,
        episodes=3,
        bp=BlockPruningConfig(num_blocks=2, rate=0.3),
        space=SearchSpaceConfig(pattern_size=8, theta=2, patterns_per_set=3, seed=1),
        controller=ControllerConfig(seed=1),
        episode_train=TrainConfig(epochs=1, lr=2e-3),
        finetune_train=TrainConfig(epochs=1, lr=2e-3),
        backbone_finetune_epochs=1,
    )
    base.update(overrides)
    return RT3Config(**base)


@pytest.fixture()
def trained_lm(lm_task):
    train_plain(lm_task, epochs=2, lr=3e-3)
    return lm_task


class TestConfigValidation:
    def test_deadline(self):
        with pytest.raises(ValueError):
            RT3Config(deadline_s=0.0)

    def test_episodes(self):
        with pytest.raises(ValueError):
            RT3Config(episodes=0)

    def test_levels(self):
        with pytest.raises(ValueError):
            RT3Config(level_names=())


class TestLevel1:
    def test_backbone_masks_installed(self, trained_lm):
        rt3 = RT3(trained_lm, paper_scale_transformer(), small_cfg())
        report, acc_m, acc_c = rt3.run_level1()
        assert rt3.manager is not None
        assert report.overall_sparsity > 0.2
        assert 0.0 <= acc_m <= 1.0 and 0.0 <= acc_c <= 1.0

    def test_build_space_requires_level1(self, trained_lm):
        rt3 = RT3(trained_lm, paper_scale_transformer(), small_cfg())
        with pytest.raises(RuntimeError):
            rt3.build_space()


@pytest.mark.slow
class TestSearch:
    def test_full_search_returns_consistent_result(self, trained_lm):
        rt3 = RT3(trained_lm, paper_scale_transformer(), small_cfg())
        res = rt3.search()
        assert len(res.history) == 3 + 1  # episodes + seeded heuristic
        assert set(res.final_accuracies) == {"l3", "l4", "l6"}
        assert set(res.final_latencies_ms) == {"l3", "l4", "l6"}
        assert res.final_total_runs > 0
        assert res.switch_ms < res.reload_ms

    def test_best_is_max_accuracy_among_feasible(self, trained_lm):
        """The paper picks the highest-accuracy Pareto point (P_L/P_T)."""
        rt3 = RT3(trained_lm, paper_scale_transformer(), small_cfg())
        res = rt3.search()
        feasible = [s for s in res.history if s.terms.deadline_met]
        if feasible:
            assert res.best.terms.weighted_accuracy == max(
                s.terms.weighted_accuracy for s in feasible)
        else:
            assert res.best.terms.reward == max(s.terms.reward for s in res.history)

    def test_heuristic_seeded_into_history(self, trained_lm):
        cfg = small_cfg()
        rt3 = RT3(trained_lm, paper_scale_transformer(), cfg)
        res = rt3.search()
        # episodes + 1 seeded heuristic evaluation
        assert len(res.history) == cfg.episodes + 1
        assert res.history[0].episode.log_probs == []

    def test_final_latencies_meet_deadline(self, trained_lm):
        cfg = small_cfg()
        rt3 = RT3(trained_lm, paper_scale_transformer(), cfg)
        res = rt3.search()
        if res.best.terms.deadline_met:
            assert all(l <= cfg.deadline_s * 1e3 + 1e-6
                       for l in res.final_latencies_ms.values())

    def test_switch_speedup_over_1000x(self, trained_lm):
        """The reproducibility headline: ms pattern swap vs s model reload."""
        rt3 = RT3(trained_lm, paper_scale_transformer(), small_cfg())
        res = rt3.search()
        assert res.reload_ms / res.switch_ms > 1000

    def test_more_runs_than_bp_only_single_level(self, trained_lm):
        """SW+HW reconfiguration must beat the single-level backbone (the
        E3 > E1 property of Table II) when the search found a feasible
        solution."""
        from repro.hardware.energy_sim import ModeAssignment
        from repro.hardware.latency import SparsityKind

        rt3 = RT3(trained_lm, paper_scale_transformer(), small_cfg())
        res = rt3.search()
        e1 = rt3.simulator.single_level_campaign(
            ModeAssignment("l6", res.backbone_report.overall_sparsity,
                           SparsityKind.BLOCK),
            rt3.cfg.deadline_s,
        )
        if res.best.terms.deadline_met:
            assert res.final_total_runs > e1.total_runs

    def test_pareto_points_non_dominated(self, trained_lm):
        from repro.core.pareto import dominates

        rt3 = RT3(trained_lm, paper_scale_transformer(), small_cfg(episodes=4))
        res = rt3.search()
        front = res.pareto_points
        for p in front:
            assert not any(dominates(q, p) for q in front if q != p)


@pytest.mark.slow
class TestAlphaModes:
    def test_governor_alpha_weights_high_level_most(self, trained_lm):
        rt3 = RT3(trained_lm, paper_scale_transformer(),
                  small_cfg(alpha="governor"))
        rt3.run_level1()
        rt3.build_space()
        cfg = rt3._reward_config(0.5)
        # high level first: l6 gets the governor's 60% energy share
        assert cfg.alpha[0] == pytest.approx(0.60)
        assert cfg.alpha[-1] == pytest.approx(0.15)

    def test_unknown_alpha_mode_rejected(self, trained_lm):
        rt3 = RT3(trained_lm, paper_scale_transformer(),
                  small_cfg(alpha="bogus"))
        rt3.run_level1()
        rt3.build_space()
        with pytest.raises(ValueError):
            rt3._reward_config(0.5)


@pytest.mark.slow
class TestBaselines:
    def test_heuristic_requires_space(self, trained_lm):
        rt3 = RT3(trained_lm, paper_scale_transformer(), small_cfg())
        with pytest.raises(RuntimeError):
            rt3.heuristic()

    def test_heuristic_solution_feasible(self, trained_lm):
        rt3 = RT3(trained_lm, paper_scale_transformer(), small_cfg())
        rt3.run_level1()
        rt3.build_space()
        sol = rt3.heuristic()
        assert sol.terms.deadline_met

    def test_upper_bound_restores_weights(self, trained_lm):
        rt3 = RT3(trained_lm, paper_scale_transformer(), small_cfg())
        rt3.run_level1()
        rt3.build_space()
        sets = rt3.space.heuristic_choice()
        before = {k: v.copy() for k, v in trained_lm.model.state_dict().items()}
        ub = rt3.upper_bound(sets, TrainConfig(epochs=1, lr=2e-3))
        assert set(ub) == {"l3", "l4", "l6"}
        after = trained_lm.model.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key])


@pytest.mark.slow
class TestGlueIntegration:
    def test_search_on_rte(self, rte_task):
        from repro.hardware.workload import paper_scale_distilbert

        train_plain(rte_task, epochs=2, lr=3e-3)
        cfg = small_cfg(deadline_s=0.200, episodes=2)
        rt3 = RT3(rte_task, paper_scale_distilbert(), cfg)
        res = rt3.search()
        assert set(res.final_accuracies) == {"l3", "l4", "l6"}

    def test_search_on_stsb_regression(self, stsb_task):
        from repro.hardware.workload import paper_scale_distilbert

        train_plain(stsb_task, epochs=2, lr=3e-3)
        cfg = small_cfg(deadline_s=0.330, episodes=2,
                        min_accuracy=-1.0)  # spearman can be negative
        rt3 = RT3(stsb_task, paper_scale_distilbert(), cfg)
        res = rt3.search()
        assert np.isfinite(list(res.final_accuracies.values())).all()
