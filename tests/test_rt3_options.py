"""Remaining RT3 configuration options and result-object behaviours."""

import numpy as np
import pytest

from repro.core import (
    BlockPruningConfig,
    ControllerConfig,
    RT3,
    RT3Config,
    SearchSpaceConfig,
)
from repro.core.trainer import TrainConfig, train_plain
from repro.hardware.workload import paper_scale_transformer


def cfg(**overrides):
    base = dict(
        deadline_s=0.104, episodes=2,
        bp=BlockPruningConfig(num_blocks=2, rate=0.3),
        space=SearchSpaceConfig(pattern_size=8, theta=2, patterns_per_set=2),
        controller=ControllerConfig(seed=0),
        episode_train=TrainConfig(epochs=1, lr=2e-3),
        finetune_train=TrainConfig(epochs=1, lr=2e-3),
        backbone_finetune_epochs=0,
    )
    base.update(overrides)
    return RT3Config(**base)


@pytest.fixture()
def trained(lm_task):
    train_plain(lm_task, epochs=1, lr=3e-3)
    return lm_task


class TestSeedHeuristicToggle:
    def test_disabled_seed_heuristic(self, trained):
        rt3 = RT3(trained, paper_scale_transformer(),
                  cfg(seed_heuristic=False, episodes=2))
        res = rt3.search()
        assert len(res.history) == 2  # episodes only, no seeded entry
        # every history entry is a real RL episode (has log probs)
        assert all(s.episode.log_probs for s in res.history)


class TestResultObject:
    def test_accuracy_by_level_desc(self, trained):
        rt3 = RT3(trained, paper_scale_transformer(), cfg())
        res = rt3.search()
        ordered = res.accuracy_by_level_desc()
        assert [n for n, _ in ordered] == ["l6", "l4", "l3"]

    def test_pareto_points_empty_when_all_infeasible(self, trained):
        # an absurd deadline nothing can meet
        tight = cfg(deadline_s=0.104)
        rt3 = RT3(trained, paper_scale_transformer(), tight)
        res = rt3.search()
        # feasible points are Pareto points; infeasible are excluded
        for point in res.pareto_points:
            assert point[1] > 0

    def test_solution_point_handles_nan(self):
        from repro.core.controller import Episode
        from repro.core.reward import RewardTerms
        from repro.core.rt3 import SearchedSolution

        terms = RewardTerms(reward=-0.5, runs_reward=0.5,
                            weighted_accuracy=float("nan"), deadline_met=False,
                            accuracy_ordered=False, latencies_s=[0.2],
                            accuracies=[], total_runs=5e5)
        sol = SearchedSolution(Episode(), {}, terms)
        assert sol.point == (0.0, 5e5)


class TestEvaluateSetsRestore:
    def test_restore_true_leaves_weights_untouched(self, trained):
        rt3 = RT3(trained, paper_scale_transformer(), cfg())
        rt3.run_level1()
        rt3.build_space()
        reward_cfg = rt3._reward_config(0.5)
        sets = rt3.space.heuristic_choice()
        before = {k: v.copy() for k, v in trained.model.state_dict().items()}
        rt3.evaluate_sets(sets, reward_cfg, restore=True)
        after = trained.model.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key]), key

    def test_restore_false_keeps_training(self, trained):
        rt3 = RT3(trained, paper_scale_transformer(), cfg())
        rt3.run_level1()
        rt3.build_space()
        reward_cfg = rt3._reward_config(0.5)
        sets = rt3.space.heuristic_choice()
        before = {k: v.copy() for k, v in trained.model.state_dict().items()}
        rt3.evaluate_sets(sets, reward_cfg, restore=False)
        after = trained.model.state_dict()
        changed = any(not np.array_equal(before[k], after[k]) for k in before)
        assert changed
