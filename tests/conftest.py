"""Shared fixtures: tiny models, corpora and tasks reused across tests.

Session scope keeps the suite fast — tests must not mutate these fixtures
in place unless they snapshot/restore (module-scoped copies are provided
for mutating tests).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tasks import GlueTask, LMTask
from repro.data.glue import GlueTaskConfig, SyntheticGlueTask
from repro.data.wikitext import SyntheticWikiText, WikiTextConfig
from repro.nn.distilbert import DistilBertConfig, DistilBertForSequenceTask
from repro.nn.transformer import TransformerConfig, TransformerLM


TINY_TRANSFORMER = TransformerConfig(
    vocab_size=60, dim=32, num_heads=2, ffn_dim=64,
    num_encoder_layers=2, num_decoder_layers=1, max_len=16, dropout=0.0, seed=3,
)

TINY_DISTILBERT = DistilBertConfig(
    vocab_size=80, dim=32, num_heads=2, ffn_dim=64,
    num_layers=2, max_len=24, dropout=0.0, num_labels=2, seed=3,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture()
def tiny_transformer():
    return TransformerLM(TINY_TRANSFORMER)


@pytest.fixture()
def tiny_distilbert():
    return DistilBertForSequenceTask(TINY_DISTILBERT)


@pytest.fixture(scope="session")
def corpus():
    return SyntheticWikiText(WikiTextConfig(vocab_size=60, num_tokens=4000, seed=5))


@pytest.fixture(scope="session")
def rte_data():
    return SyntheticGlueTask(GlueTaskConfig(
        task="rte", vocab_size=80, num_train=64, num_eval=48, seq_len=16, seed=5,
    ))


@pytest.fixture(scope="session")
def stsb_data():
    return SyntheticGlueTask(GlueTaskConfig(
        task="stsb", vocab_size=80, num_train=64, num_eval=48, seq_len=16, seed=5,
    ))


@pytest.fixture()
def lm_task(corpus):
    model = TransformerLM(TINY_TRANSFORMER)
    return LMTask(model, corpus, seq_len=12, batch_size=8,
                  max_train_batches=8, max_eval_batches=3)


@pytest.fixture()
def rte_task(rte_data):
    model = DistilBertForSequenceTask(TINY_DISTILBERT)
    return GlueTask(model, rte_data, batch_size=16, max_train_batches=4)


@pytest.fixture()
def stsb_task(stsb_data):
    cfg = DistilBertConfig(
        vocab_size=80, dim=32, num_heads=2, ffn_dim=64,
        num_layers=2, max_len=24, dropout=0.0, is_regression=True, seed=3,
    )
    model = DistilBertForSequenceTask(cfg)
    return GlueTask(model, stsb_data, batch_size=16, max_train_batches=4)
