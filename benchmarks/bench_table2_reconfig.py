"""Table II: E1 (no reconfig) vs E2 (DVFS only) vs E3 (DVFS + pattern swap).

Reproduces the motivation experiment: all three approaches get the same
energy budget and a 115 ms deadline; E2 adds hardware reconfiguration
(DVFS governor), E3 adds software reconfiguration (per-level pattern
sparsity).  Expected shape: E2 runs more inferences than E1 but misses
the deadline at low V/F levels; E3 runs the most and meets every deadline.

Paper numbers: E1 1.53e6 runs; E2 +17.30%; E3 1.78x E1.

Besides the rendered text table, ``run_bench`` writes a machine-readable
digest (``benchmarks/results/BENCH_table2.json``): one row per
(experiment, V/F level) with the modelled latency and deadline verdict,
plus the three campaign run totals.  ``scripts/check_bench_regression.py``
gates the row set and the run totals by exact equality — the discharge
simulation is a deterministic function of the calibration constants, so
any drift is a real behavioural change — and records the simulation wall
time informationally.
"""

import pathlib
import sys
import time

try:  # the CI regression gate imports run_bench in a numpy-only env
    import pytest
except ModuleNotFoundError:
    pytest = None

if __package__ in (None, ""):  # run as a script
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.hardware.energy_sim import ModeAssignment
from repro.hardware.latency import SparsityKind
from repro.hardware.platform import OdroidXU3
from repro.hardware.workload import paper_scale_transformer

from benchmarks.common import fmt_runs, write_json_result, write_result

DEADLINE = 0.115
S_BP = 0.6426  # model M1 = the BP backbone of Table IV


def _make_setup():
    plat = OdroidXU3()
    wl = paper_scale_transformer()
    sim = plat.simulator(wl)
    return plat, wl, sim


if pytest is not None:
    @pytest.fixture(scope="module")
    def setup():
        return _make_setup()


def m1(level):
    return ModeAssignment(level, S_BP, SparsityKind.BLOCK)


def run_experiments(plat, wl, sim):
    lat = plat.latency
    e1 = sim.single_level_campaign(m1("l6"), DEADLINE)
    e2 = sim.run_campaign([m1("l6"), m1("l4"), m1("l3")], DEADLINE,
                          charge_switches=False)
    s4 = lat.sparsity_for_deadline(wl, plat.dvfs["l4"], 0.1006, SparsityKind.PATTERN)
    s3 = lat.sparsity_for_deadline(wl, plat.dvfs["l3"], 0.0906, SparsityKind.PATTERN)
    e3 = sim.run_campaign(
        [ModeAssignment("l6", S_BP, SparsityKind.BLOCK, num_patterns=8),
         ModeAssignment("l4", s4, SparsityKind.PATTERN, num_patterns=8),
         ModeAssignment("l3", s3, SparsityKind.PATTERN, num_patterns=8)],
        DEADLINE)
    return e1, e2, e3


def render(e1, e2, e3):
    rows = [
        f"{'App.':<4} {'Mode':<7} {'Lat.(ms)':>9} {'Sat.':>5} {'#runs':>11} {'Imp':>8}",
        "-" * 50,
    ]

    def emit(tag, campaign, imp):
        for o in campaign.outcomes:
            rows.append(
                f"{tag:<4} {o.level.name:<7} {o.latency_s * 1e3:>9.2f} "
                f"{'yes' if o.meets_deadline else 'NO':>5} "
                f"{fmt_runs(campaign.total_runs):>11} {imp:>8}"
            )
            tag = ""

    emit("E1", e1, "-")
    emit("E2", e2, f"+{100 * (e2.total_runs / e1.total_runs - 1):.2f}%")
    emit("E3", e3, f"{e3.total_runs / e1.total_runs:.2f}x")
    rows.append("")
    rows.append("paper: E1 1.53e6 runs; E2 +17.30% (misses deadline at N/E);")
    rows.append("       E3 1.78x, all deadlines satisfied")
    return "\n".join(rows)


def run_bench(campaigns=None) -> dict:
    """Machine-readable Table II digest (rows + run totals + wall time).

    ``campaigns`` is an optional precomputed ``(e1, e2, e3)`` triple, so
    callers that already ran the discharge comparison (the pytest shape
    test, the ``__main__`` block) do not pay for the simulation twice.
    """
    start = time.perf_counter()
    if campaigns is None:
        plat, wl, sim = _make_setup()
        campaigns = run_experiments(plat, wl, sim)
    e1, e2, e3 = campaigns
    wall_ms = 1e3 * (time.perf_counter() - start)
    rows = []
    for tag, campaign in (("E1", e1), ("E2", e2), ("E3", e3)):
        for o in campaign.outcomes:
            rows.append({
                "experiment": tag,
                "level": o.level.name,
                "latency_ms": 1e3 * o.latency_s,
                "meets_deadline": bool(o.meets_deadline),
            })
    return {
        "table": "table2_reconfig",
        "deadline_ms": 1e3 * DEADLINE,
        "rows": rows,
        "total_runs": {"E1": e1.total_runs, "E2": e2.total_runs,
                       "E3": e3.total_runs},
        "improvement": {"E2_vs_E1": e2.total_runs / e1.total_runs,
                        "E3_vs_E1": e3.total_runs / e1.total_runs},
        "wall_ms": wall_ms,
    }


def test_table2_shape(benchmark, setup):
    plat, wl, sim = setup
    e1, e2, e3 = benchmark(run_experiments, plat, wl, sim)
    write_result("table2_reconfiguration", render(e1, e2, e3))
    write_json_result("table2", run_bench(campaigns=(e1, e2, e3)))

    # E1 anchor and orderings
    assert e1.total_runs == pytest.approx(1.53e6, rel=0.02)
    assert e2.total_runs > e1.total_runs
    assert e3.total_runs > e2.total_runs
    # E2 misses the deadline below l6; E3 meets all
    met = {o.level.name: o.meets_deadline for o in e2.outcomes}
    assert met["l6"] and not met["l4"] and not met["l3"]
    assert e3.all_deadlines_met
    # improvement factors in the paper's ballpark
    assert 1.10 < e2.total_runs / e1.total_runs < 1.25
    assert 1.4 < e3.total_runs / e1.total_runs < 2.1


def test_bench_campaign_kernel(benchmark, setup):
    plat, wl, sim = setup
    assignments = [m1("l6"), m1("l4"), m1("l3")]
    result = benchmark(sim.run_campaign, assignments, DEADLINE)
    assert result.total_runs > 0


def test_bench_event_driven_discharge(benchmark, setup):
    plat, wl, sim = setup
    assignments = [m1("l6"), m1("l4"), m1("l3")]

    def discharge():
        res, _ = sim.simulate_discharge(assignments, DEADLINE, chunk_runs=20000)
        return res

    result = benchmark(discharge)
    assert result.total_runs > 0


if __name__ == "__main__":
    plat, wl, sim = _make_setup()
    e1, e2, e3 = run_experiments(plat, wl, sim)
    write_result("table2_reconfiguration", render(e1, e2, e3))
    write_json_result("table2", run_bench(campaigns=(e1, e2, e3)))
    sys.exit(0)
