"""Table II: E1 (no reconfig) vs E2 (DVFS only) vs E3 (DVFS + pattern swap).

Reproduces the motivation experiment: all three approaches get the same
energy budget and a 115 ms deadline; E2 adds hardware reconfiguration
(DVFS governor), E3 adds software reconfiguration (per-level pattern
sparsity).  Expected shape: E2 runs more inferences than E1 but misses
the deadline at low V/F levels; E3 runs the most and meets every deadline.

Paper numbers: E1 1.53e6 runs; E2 +17.30%; E3 1.78x E1.
"""

import pytest

from repro.hardware.energy_sim import ModeAssignment
from repro.hardware.latency import SparsityKind
from repro.hardware.platform import OdroidXU3
from repro.hardware.workload import paper_scale_transformer

from benchmarks.common import fmt_runs, write_result

DEADLINE = 0.115
S_BP = 0.6426  # model M1 = the BP backbone of Table IV


@pytest.fixture(scope="module")
def setup():
    plat = OdroidXU3()
    wl = paper_scale_transformer()
    sim = plat.simulator(wl)
    return plat, wl, sim


def m1(level):
    return ModeAssignment(level, S_BP, SparsityKind.BLOCK)


def run_experiments(plat, wl, sim):
    lat = plat.latency
    e1 = sim.single_level_campaign(m1("l6"), DEADLINE)
    e2 = sim.run_campaign([m1("l6"), m1("l4"), m1("l3")], DEADLINE,
                          charge_switches=False)
    s4 = lat.sparsity_for_deadline(wl, plat.dvfs["l4"], 0.1006, SparsityKind.PATTERN)
    s3 = lat.sparsity_for_deadline(wl, plat.dvfs["l3"], 0.0906, SparsityKind.PATTERN)
    e3 = sim.run_campaign(
        [ModeAssignment("l6", S_BP, SparsityKind.BLOCK, num_patterns=8),
         ModeAssignment("l4", s4, SparsityKind.PATTERN, num_patterns=8),
         ModeAssignment("l3", s3, SparsityKind.PATTERN, num_patterns=8)],
        DEADLINE)
    return e1, e2, e3


def render(e1, e2, e3):
    rows = [
        f"{'App.':<4} {'Mode':<7} {'Lat.(ms)':>9} {'Sat.':>5} {'#runs':>11} {'Imp':>8}",
        "-" * 50,
    ]

    def emit(tag, campaign, imp):
        for o in campaign.outcomes:
            rows.append(
                f"{tag:<4} {o.level.name:<7} {o.latency_s * 1e3:>9.2f} "
                f"{'yes' if o.meets_deadline else 'NO':>5} "
                f"{fmt_runs(campaign.total_runs):>11} {imp:>8}"
            )
            tag = ""

    emit("E1", e1, "-")
    emit("E2", e2, f"+{100 * (e2.total_runs / e1.total_runs - 1):.2f}%")
    emit("E3", e3, f"{e3.total_runs / e1.total_runs:.2f}x")
    rows.append("")
    rows.append("paper: E1 1.53e6 runs; E2 +17.30% (misses deadline at N/E);")
    rows.append("       E3 1.78x, all deadlines satisfied")
    return "\n".join(rows)


def test_table2_shape(benchmark, setup):
    plat, wl, sim = setup
    e1, e2, e3 = benchmark(run_experiments, plat, wl, sim)
    write_result("table2_reconfiguration", render(e1, e2, e3))

    # E1 anchor and orderings
    assert e1.total_runs == pytest.approx(1.53e6, rel=0.02)
    assert e2.total_runs > e1.total_runs
    assert e3.total_runs > e2.total_runs
    # E2 misses the deadline below l6; E3 meets all
    met = {o.level.name: o.meets_deadline for o in e2.outcomes}
    assert met["l6"] and not met["l4"] and not met["l3"]
    assert e3.all_deadlines_met
    # improvement factors in the paper's ballpark
    assert 1.10 < e2.total_runs / e1.total_runs < 1.25
    assert 1.4 < e3.total_runs / e1.total_runs < 2.1


def test_bench_campaign_kernel(benchmark, setup):
    plat, wl, sim = setup
    assignments = [m1("l6"), m1("l4"), m1("l3")]
    result = benchmark(sim.run_campaign, assignments, DEADLINE)
    assert result.total_runs > 0


def test_bench_event_driven_discharge(benchmark, setup):
    plat, wl, sim = setup
    assignments = [m1("l6"), m1("l4"), m1("l3")]

    def discharge():
        res, _ = sim.simulate_discharge(assignments, DEADLINE, chunk_runs=20000)
        return res

    result = benchmark(discharge)
    assert result.total_runs > 0
