"""Figure 5: block-structured pruning across all 9 GLUE tasks + WikiText-2.

For every task, compare the trained dense score with the score after BP
plus a short fine-tune, at a ~1.4x-2x compression ratio.  Paper shape:
up to 2x compression with small average score loss (paper: 1.74% average).
"""

import numpy as np
import pytest

from repro.core.block_pruning import BlockPruningConfig, apply_block_pruning
from repro.core.trainer import train_plain
from repro.data.glue import GLUE_TASKS

from benchmarks.common import make_glue_task, make_lm_task, write_result

# pruning rate per task, mirroring the paper's per-task compression choices
RATES = {"wikitext2": 0.45, "mnli": 0.4, "qqp": 0.5, "qnli": 0.4, "sst2": 0.5,
         "cola": 0.3, "stsb": 0.3, "mrpc": 0.4, "rte": 0.4, "wnli": 0.5}


def run_bp_experiment(task, rate):
    dense_score = task.evaluate()
    report = apply_block_pruning(task.model, BlockPruningConfig(num_blocks=2, rate=rate))
    train_plain(task, epochs=3, lr=2e-3)
    pruned_score = task.evaluate()
    return dense_score, pruned_score, report


@pytest.fixture(scope="module")
def fig5_results():
    results = {}
    lm = make_lm_task(pretrain_epochs=6)
    results["wikitext2"] = run_bp_experiment(lm, RATES["wikitext2"])
    for name in GLUE_TASKS:
        task = make_glue_task(name, pretrain_epochs=6)
        results[name] = run_bp_experiment(task, RATES[name])
    return results


def render(results) -> str:
    lines = [f"{'Task':<10} {'Dense':>9} {'BP':>9} {'Loss':>8} {'Compression':>12}",
             "-" * 52]
    losses = []
    for name, (dense, pruned, report) in results.items():
        loss = dense - pruned
        losses.append(loss)
        lines.append(f"{name:<10} {dense:>9.4f} {pruned:>9.4f} {loss:>+8.4f} "
                     f"{report.compression_ratio:>11.2f}x")
    lines.append("-" * 52)
    lines.append(f"average score loss: {np.mean(losses):+.4f} "
                 f"(paper: 1.74% avg at up to 2x compression)")
    return "\n".join(lines)


def test_fig5_shape(benchmark, fig5_results):
    text = benchmark(render, fig5_results)
    write_result("fig5_block_pruning", text)

    losses = [dense - pruned for dense, pruned, _ in fig5_results.values()]
    ratios = [r.compression_ratio for _, _, r in fig5_results.values()]
    # compression achieved in the paper's band
    assert min(ratios) > 1.2
    assert max(ratios) <= 2.3
    # scores survive pruning: bounded average loss at mini scale
    assert np.mean(losses) < 0.12
    # at least 7 of 10 tasks lose less than 15 points
    tolerable = sum(1 for l in losses if l < 0.15)
    assert tolerable >= 7


def test_fig5_wikitext_small_loss(benchmark, fig5_results):
    dense, pruned, report = benchmark(lambda: fig5_results["wikitext2"])
    assert dense - pruned < 0.10
    assert report.compression_ratio > 1.5


def test_bench_bp_apply_kernel(benchmark):
    """Benchmark BP mask construction + installation on a full model."""
    task = make_lm_task(pretrain_epochs=0)
    cfg = BlockPruningConfig(num_blocks=2, rate=0.5)

    def apply():
        return apply_block_pruning(task.model, cfg)

    report = benchmark(apply)
    assert report.overall_sparsity == pytest.approx(0.5, abs=0.05)
