"""Figure 5: block-structured pruning across all 9 GLUE tasks + WikiText-2.

For every task, compare the trained dense score with the score after BP
plus a short fine-tune, at a ~1.4x-2x compression ratio.  Paper shape:
up to 2x compression with small average score loss (paper: 1.74% average).

Besides the rendered table (informational,
``benchmarks/results/fig5_block_pruning.txt``), ``run_bench`` writes a
machine-readable digest (``benchmarks/results/BENCH_fig5.json``): one
row per task — pruning rate, dense score, pruned score, score loss and
compression ratio — plus the average loss.  Training is a deterministic
function of the seeds and epoch counts recorded in the digest, so
``scripts/check_bench_regression.py`` replays the committed
configuration and gates the row set and average loss by exact equality;
wall time is informational.
"""

import argparse
import pathlib
import sys
import time
from typing import List, Optional

import numpy as np

try:  # the CI regression gate imports run_bench in a numpy-only env
    import pytest
except ModuleNotFoundError:
    pytest = None

if __package__ in (None, ""):  # run as a script
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.block_pruning import BlockPruningConfig, apply_block_pruning
from repro.core.trainer import train_plain
from repro.data.glue import GLUE_TASKS

from benchmarks.common import canon, make_glue_task, make_lm_task, write_json_result, write_result

# pruning rate per task, mirroring the paper's per-task compression choices
RATES = {"wikitext2": 0.45, "mnli": 0.4, "qqp": 0.5, "qnli": 0.4, "sst2": 0.5,
         "cola": 0.3, "stsb": 0.3, "mrpc": 0.4, "rte": 0.4, "wnli": 0.5}
ALL_TASKS = ["wikitext2", *GLUE_TASKS]
SMOKE_TASKS = ["wikitext2", "rte", "sst2"]


def run_bp_experiment(task, rate, finetune_epochs: int = 3):
    dense_score = task.evaluate()
    report = apply_block_pruning(task.model, BlockPruningConfig(num_blocks=2, rate=rate))
    train_plain(task, epochs=finetune_epochs, lr=2e-3)
    pruned_score = task.evaluate()
    return dense_score, pruned_score, report


def run_experiments(tasks=None, pretrain_epochs: int = 6,
                    finetune_epochs: int = 3) -> dict:
    """BP-vs-dense for every requested task; returns rich result objects."""
    results = {}
    for name in tasks or ALL_TASKS:
        task = (make_lm_task(pretrain_epochs=pretrain_epochs) if name == "wikitext2"
                else make_glue_task(name, pretrain_epochs=pretrain_epochs))
        results[name] = run_bp_experiment(task, RATES[name], finetune_epochs)
    return results


def run_bench(tasks=None, pretrain_epochs: int = 6, finetune_epochs: int = 3,
              results=None) -> dict:
    """Machine-readable Figure 5 digest (per-task rows + average loss).

    ``results`` is an optional precomputed mapping so callers that
    already ran the experiments (the pytest shape test, ``main``) do not
    pay for the training twice.
    """
    start = time.perf_counter()
    if results is None:
        results = run_experiments(tasks, pretrain_epochs, finetune_epochs)
    wall_s = time.perf_counter() - start

    rows = [{
        "task": name,
        "rate": RATES[name],
        "dense_score": canon(dense),
        "pruned_score": canon(pruned),
        "score_loss": canon(dense - pruned),
        "compression": canon(report.compression_ratio),
    } for name, (dense, pruned, report) in results.items()]
    losses = [r["score_loss"] for r in rows]
    return {
        "bench": "fig5_block_pruning",
        "tasks": [r["task"] for r in rows],
        "pretrain_epochs": pretrain_epochs,
        "finetune_epochs": finetune_epochs,
        "rows": rows,
        "mean_score_loss": canon(float(np.mean(losses))),
        "wall_s": wall_s,
    }


def render(results) -> str:
    lines = [f"{'Task':<10} {'Dense':>9} {'BP':>9} {'Loss':>8} {'Compression':>12}",
             "-" * 52]
    losses = []
    for name, (dense, pruned, report) in results.items():
        loss = dense - pruned
        losses.append(loss)
        lines.append(f"{name:<10} {dense:>9.4f} {pruned:>9.4f} {loss:>+8.4f} "
                     f"{report.compression_ratio:>11.2f}x")
    lines.append("-" * 52)
    lines.append(f"average score loss: {np.mean(losses):+.4f} "
                 f"(paper: 1.74% avg at up to 2x compression)")
    return "\n".join(lines)


if pytest is not None:
    @pytest.fixture(scope="module")
    def fig5_results():
        return run_experiments()


def test_fig5_shape(benchmark, fig5_results):
    text = benchmark(render, fig5_results)
    write_result("fig5_block_pruning", text)
    write_json_result("fig5", run_bench(results=fig5_results))

    losses = [dense - pruned for dense, pruned, _ in fig5_results.values()]
    ratios = [r.compression_ratio for _, _, r in fig5_results.values()]
    # compression achieved in the paper's band
    assert min(ratios) > 1.2
    assert max(ratios) <= 2.3
    # scores survive pruning: bounded average loss at mini scale
    assert np.mean(losses) < 0.12
    # at least 7 of 10 tasks lose less than 15 points
    tolerable = sum(1 for l in losses if l < 0.15)
    assert tolerable >= 7


def test_fig5_wikitext_small_loss(benchmark, fig5_results):
    dense, pruned, report = benchmark(lambda: fig5_results["wikitext2"])
    assert dense - pruned < 0.10
    assert report.compression_ratio > 1.5


def test_bench_bp_apply_kernel(benchmark):
    """Benchmark BP mask construction + installation on a full model."""
    task = make_lm_task(pretrain_epochs=0)
    cfg = BlockPruningConfig(num_blocks=2, rate=0.5)

    def apply():
        return apply_block_pruning(task.model, cfg)

    report = benchmark(apply)
    assert report.overall_sparsity == pytest.approx(0.5, abs=0.05)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast run for CI (3 tasks, shorter training)")
    parser.add_argument("--tasks", nargs="*", default=None,
                        choices=ALL_TASKS)
    args = parser.parse_args(argv)
    tasks = args.tasks or (SMOKE_TASKS if args.smoke else ALL_TASKS)
    pretrain, finetune = (3, 2) if args.smoke else (6, 3)
    results = run_experiments(tasks, pretrain, finetune)
    write_result("fig5_block_pruning", render(results))
    digest = run_bench(tasks, pretrain, finetune, results=results)
    write_json_result("fig5", digest)
    ok = (all(r["compression"] > 1.2 for r in digest["rows"])
          and digest["mean_score_loss"] < 0.15)
    print(f"smoke {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
