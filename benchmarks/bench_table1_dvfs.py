"""Table I: V/F levels of the Odroid-XU3 Cortex-A7 and governor behaviour.

Regenerates the paper's Table I verbatim (the values are configuration,
not measurement) and benchmarks the DVFS governor lookup — the operation
on the run-time critical path of every reconfiguration decision.

Besides the rendered text table, the harness writes a machine-readable
digest (``benchmarks/results/BENCH_table.json``) with one row per V/F
level — notation, frequency, voltage and the modelled power draw — plus
the governor-lookup wall time.  ``scripts/check_bench_regression.py``
gates the row *set* by exact equality (the paper's table is
configuration; any drift is a real behavioural change), the modelled
power numbers by a 1% drift budget, and records wall time
informationally.
"""

import pathlib
import sys
import time

import numpy as np

if __package__ in (None, ""):  # run as a script
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro.hardware.dvfs import BatteryGovernor, DVFSTable, ODROID_XU3_LEVELS
from repro.hardware.power import PowerModel

from benchmarks.common import write_json_result, write_result


def render_table1() -> str:
    header = f"{'Notation':<10}" + "".join(f"{lv.name:>10}" for lv in ODROID_XU3_LEVELS)
    freq = f"{'freq (MHz)':<10}" + "".join(f"{lv.freq_mhz:>10.0f}" for lv in ODROID_XU3_LEVELS)
    vol = f"{'vol (mV)':<10}" + "".join(f"{lv.voltage_mv:>10.2f}" for lv in ODROID_XU3_LEVELS)
    pm = PowerModel()
    power = f"{'P (W)':<10}" + "".join(f"{pm.power_w(lv):>10.3f}" for lv in ODROID_XU3_LEVELS)
    note = "(paper Table I rows: freq 400..1400 MHz, vol 916.25..1240 mV; P is our model)"
    return "\n".join([header, freq, vol, power, note])


def run_bench(lookups: int = 1000) -> dict:
    """Machine-readable Table I digest plus the governor-lookup timing."""
    pm = PowerModel()
    rows = [{
        "name": lv.name,
        "freq_mhz": float(lv.freq_mhz),
        "voltage_mv": float(lv.voltage_mv),
        "power_w": float(pm.power_w(lv)),
    } for lv in ODROID_XU3_LEVELS]

    gov = BatteryGovernor(DVFSTable().subset(["l3", "l4", "l6"]), (0.15, 0.40))
    fractions = np.linspace(0, 1, lookups)
    start = time.perf_counter()
    levels = [gov.level_for(f) for f in fractions]
    lookup_wall_ms = 1e3 * (time.perf_counter() - start)
    assert len(levels) == lookups

    return {
        "table": "table1_dvfs",
        "levels": rows,
        "governor": {
            "lookups": lookups,
            "wall_ms": lookup_wall_ms,
            "thresholds": [0.15, 0.40],
        },
    }


def test_table1_matches_paper(benchmark):
    table = DVFSTable()
    assert [lv.freq_mhz for lv in table] == [400, 600, 800, 1000, 1200, 1400]
    assert table["l6"].voltage_mv == 1240.0
    text = benchmark(render_table1)
    write_result("table1_dvfs_levels", text)
    write_json_result("table", run_bench())


def test_bench_governor_lookup(benchmark):
    gov = BatteryGovernor(DVFSTable().subset(["l3", "l4", "l6"]), (0.15, 0.40))
    fractions = np.linspace(0, 1, 1000)

    def lookup_all():
        return [gov.level_for(f) for f in fractions]

    levels = benchmark(lookup_all)
    assert len(levels) == 1000


if __name__ == "__main__":
    write_result("table1_dvfs_levels", render_table1())
    write_json_result("table", run_bench())
    sys.exit(0)
