"""Table IV: the six-way ablation (No-Opt / rBP / rBP+rPP / rBP+PP / BP / RT3).

Expected shape (paper, WikiText-2 column):
- runs improvement: pruned variants beat No-Opt; pattern-set variants
  (rBP+rPP, rBP+PP, RT3) beat single-model variants (rBP, BP);
- accuracy loss: BP < rBP (norm-guided beats random);
  rBP+PP < rBP+rPP (importance-guided patterns beat random patterns);
  RT3 keeps the smallest multi-set loss.
"""

import numpy as np
import pytest

from repro.core.ablation import AblationConfig, AblationStudy, format_ablation_table
from repro.hardware.workload import paper_scale_distilbert, paper_scale_transformer

from benchmarks.common import make_glue_task, make_lm_task, small_rt3_config, write_result


@pytest.fixture(scope="module")
def wikitext_rows():
    task = make_lm_task(pretrain_epochs=6)
    cfg = AblationConfig(rt3=small_rt3_config(0.104, episodes=4), finetune_epochs=2)
    study = AblationStudy(task, paper_scale_transformer(), cfg)
    return {row.method: row for row in study.run_all()}


@pytest.fixture(scope="module")
def rte_rows():
    task = make_glue_task("rte", pretrain_epochs=6)
    cfg = AblationConfig(rt3=small_rt3_config(0.200, episodes=3), finetune_epochs=2)
    study = AblationStudy(task, paper_scale_distilbert(), cfg)
    return {row.method: row for row in study.run_all()}


def test_table4_wikitext(benchmark, wikitext_rows):
    rows = list(wikitext_rows.values())
    text = benchmark(format_ablation_table, rows)
    text += ("\n\npaper (WikiText-2): impr 1.0/2.80/6.55/5.84/2.80/4.96x; "
             "acc loss 0/2.03/11.07/4.88/0.64/0.95%")
    write_result("table4_ablation_wikitext", text)

    r = wikitext_rows
    # hardware-efficiency shape
    assert r["BP only"].improvement > 1.0
    assert r["rBP only"].improvement == pytest.approx(r["BP only"].improvement, rel=0.05)
    for multi in ("rBP+rPP", "rBP+PP", "RT3"):
        assert r[multi].improvement > r["BP only"].improvement
    # accuracy shape: norm-guided BP beats random rBP
    assert r["BP only"].accuracy_loss <= r["rBP only"].accuracy_loss + 0.02
    # RT3 (full framework) holds accuracy better than random-BP pipelines
    assert r["RT3"].accuracy_loss <= r["rBP+rPP"].accuracy_loss + 0.02


def test_table4_rte(benchmark, rte_rows):
    rows = list(rte_rows.values())
    text = benchmark(format_ablation_table, rows, metric_name="Acc")
    text += ("\n\npaper (RTE): impr 1.0/1.97/4.19/4.16/1.97/4.17x; "
             "acc loss 0/0.72/7.09/6.61/0.00/4.93%")
    write_result("table4_ablation_rte", text)

    r = rte_rows
    assert r["BP only"].improvement > 1.0
    for multi in ("rBP+rPP", "rBP+PP", "RT3"):
        assert r[multi].improvement > r["BP only"].improvement


def test_bench_block_pruning_kernel(benchmark):
    """Benchmark Algorithm 1 on a paper-scale (3200 x 800) FFN matrix."""
    from repro.core.block_pruning import BlockPruningConfig, block_prune_matrix

    rng = np.random.default_rng(0)
    w = rng.normal(size=(3200, 800))
    cfg = BlockPruningConfig(num_blocks=8, rate=0.5)
    mask = benchmark(block_prune_matrix, w, cfg)
    assert 1.0 - mask.mean() == pytest.approx(0.5, abs=0.01)
