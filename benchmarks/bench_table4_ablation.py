"""Table IV: the six-way ablation (No-Opt / rBP / rBP+rPP / rBP+PP / BP / RT3).

Expected shape (paper, WikiText-2 column):
- runs improvement: pruned variants beat No-Opt; pattern-set variants
  (rBP+rPP, rBP+PP, RT3) beat single-model variants (rBP, BP);
- accuracy loss: BP < rBP (norm-guided beats random);
  rBP+PP < rBP+rPP (importance-guided patterns beat random patterns);
  RT3 keeps the smallest multi-set loss.

Besides the rendered tables (informational,
``benchmarks/results/table4_ablation_*.txt``), ``run_bench`` writes a
machine-readable digest (``benchmarks/results/BENCH_table4.json``): one
row per (task, method) with average sparsity, #runs, improvement factor,
average score and score loss.  The study is a deterministic function of
the seeds/episode counts recorded in the digest, so
``scripts/check_bench_regression.py`` replays the committed
configuration and gates the row set by exact equality — any perturbed
ablation row fails the gate; wall time is informational.
"""

import argparse
import pathlib
import sys
import time
from typing import List, Optional

import numpy as np

try:  # the CI regression gate imports run_bench in a numpy-only env
    import pytest
except ModuleNotFoundError:
    pytest = None

if __package__ in (None, ""):  # run as a script
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.ablation import AblationConfig, AblationStudy, format_ablation_table
from repro.hardware.workload import paper_scale_distilbert, paper_scale_transformer

from benchmarks.common import (
    canon, make_glue_task, make_lm_task, small_rt3_config, write_json_result, write_result,
)

# (task, deadline_s, search episodes) per studied column of Table IV
STUDIES = {"wikitext2": (0.104, 4), "rte": (0.200, 3)}


def run_study(task_name: str, episodes: Optional[int] = None,
              pretrain_epochs: int = 6, finetune_epochs: int = 2):
    """Run the six-configuration study for one Table-IV column."""
    deadline, default_episodes = STUDIES[task_name]
    if task_name == "wikitext2":
        task = make_lm_task(pretrain_epochs=pretrain_epochs)
        workload = paper_scale_transformer()
    else:
        task = make_glue_task(task_name, pretrain_epochs=pretrain_epochs)
        workload = paper_scale_distilbert()
    cfg = AblationConfig(rt3=small_rt3_config(deadline, episodes=episodes
                                              or default_episodes),
                         finetune_epochs=finetune_epochs)
    study = AblationStudy(task, workload, cfg)
    return {row.method: row for row in study.run_all()}


def run_bench(tasks=None, episodes=None, pretrain_epochs: int = 6,
              finetune_epochs: int = 2, studies=None) -> dict:
    """Machine-readable Table IV digest (one row per task x method).

    ``episodes`` may be an int (all tasks) or a per-task dict (the gate
    replays the committed digest's per-task episode counts); ``studies``
    is an optional precomputed ``{task: {method: row}}`` mapping so
    callers that already ran the studies (the pytest shape tests,
    ``main``) do not pay for them twice.
    """
    start = time.perf_counter()
    if studies is None:
        studies = {
            name: run_study(
                name,
                episodes.get(name) if isinstance(episodes, dict) else episodes,
                pretrain_epochs, finetune_epochs)
            for name in (tasks or list(STUDIES))}
    wall_s = time.perf_counter() - start

    rows = [{
        "task": task_name,
        "method": row.method,
        "avg_sparsity": canon(row.avg_sparsity),
        "runs": canon(row.runs, 3),
        "improvement": canon(row.improvement),
        "avg_accuracy": canon(row.avg_accuracy),
        "accuracy_loss": canon(row.accuracy_loss),
    } for task_name, by_method in studies.items()
        for row in by_method.values()]
    return {
        "bench": "table4_ablation",
        "tasks": list(studies),
        "episodes": {
            name: (episodes.get(name) if isinstance(episodes, dict)
                   else episodes) or STUDIES[name][1]
            for name in studies},
        "pretrain_epochs": pretrain_epochs,
        "finetune_epochs": finetune_epochs,
        "rows": rows,
        "wall_s": wall_s,
    }


if pytest is not None:
    @pytest.fixture(scope="module")
    def wikitext_rows():
        return run_study("wikitext2")

    @pytest.fixture(scope="module")
    def rte_rows():
        return run_study("rte")


def test_table4_wikitext(benchmark, wikitext_rows):
    rows = list(wikitext_rows.values())
    text = benchmark(format_ablation_table, rows)
    text += ("\n\npaper (WikiText-2): impr 1.0/2.80/6.55/5.84/2.80/4.96x; "
             "acc loss 0/2.03/11.07/4.88/0.64/0.95%")
    write_result("table4_ablation_wikitext", text)

    r = wikitext_rows
    # hardware-efficiency shape
    assert r["BP only"].improvement > 1.0
    assert r["rBP only"].improvement == pytest.approx(r["BP only"].improvement, rel=0.05)
    for multi in ("rBP+rPP", "rBP+PP", "RT3"):
        assert r[multi].improvement > r["BP only"].improvement
    # accuracy shape: norm-guided BP beats random rBP
    assert r["BP only"].accuracy_loss <= r["rBP only"].accuracy_loss + 0.02
    # RT3 (full framework) holds accuracy better than random-BP pipelines
    assert r["RT3"].accuracy_loss <= r["rBP+rPP"].accuracy_loss + 0.02


def test_table4_rte(benchmark, rte_rows):
    rows = list(rte_rows.values())
    text = benchmark(format_ablation_table, rows, metric_name="Acc")
    text += ("\n\npaper (RTE): impr 1.0/1.97/4.19/4.16/1.97/4.17x; "
             "acc loss 0/0.72/7.09/6.61/0.00/4.93%")
    write_result("table4_ablation_rte", text)

    r = rte_rows
    assert r["BP only"].improvement > 1.0
    for multi in ("rBP+rPP", "rBP+PP", "RT3"):
        assert r[multi].improvement > r["BP only"].improvement


def test_table4_digest(wikitext_rows, rte_rows):
    digest = run_bench(studies={"wikitext2": wikitext_rows, "rte": rte_rows})
    write_json_result("table4", digest)
    assert len(digest["rows"]) == 12  # 2 tasks x 6 methods


def test_bench_block_pruning_kernel(benchmark):
    """Benchmark Algorithm 1 on a paper-scale (3200 x 800) FFN matrix."""
    from repro.core.block_pruning import BlockPruningConfig, block_prune_matrix

    rng = np.random.default_rng(0)
    w = rng.normal(size=(3200, 800))
    cfg = BlockPruningConfig(num_blocks=8, rate=0.5)
    mask = benchmark(block_prune_matrix, w, cfg)
    assert 1.0 - mask.mean() == pytest.approx(0.5, abs=0.01)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast run for CI (wikitext2 only, 2 episodes)")
    parser.add_argument("--tasks", nargs="*", default=None, choices=list(STUDIES))
    args = parser.parse_args(argv)
    tasks = args.tasks or (["wikitext2"] if args.smoke else list(STUDIES))
    episodes = 2 if args.smoke else None
    pretrain = 3 if args.smoke else 6
    result_names = {"wikitext2": "table4_ablation_wikitext",
                    "rte": "table4_ablation_rte"}
    studies = {name: run_study(name, episodes, pretrain) for name in tasks}
    for name, by_method in studies.items():
        write_result(result_names[name],
                     format_ablation_table(list(by_method.values())))
    digest = run_bench(tasks, episodes, pretrain, studies=studies)
    write_json_result("table4", digest)
    ok = all(by_method["RT3"].improvement > by_method["BP only"].improvement
             for by_method in studies.values())
    print(f"smoke {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
