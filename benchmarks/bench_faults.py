"""Fault-tolerance bench: shard failover, load shedding, degradation.

Serves one seeded bursty trace on four simulated devices while shard 1
crashes mid-burst and stays down for 30% of the trace span, under the
two admission overload defenses (``--shed-policy reject`` vs
``degrade``), and asserts the fault-tolerance invariants end to end:

- **conservation** — no request is ever lost: every submission is
  either completed or accounted for in the shed log
  (``completed + shed == submitted``), under both policies;
- **exactness** — every *completed* output is bit-identical (``==``)
  to a fault-free serve of the surviving request set (degraded
  requests replayed at their restamped deadlines), so failover
  re-execution and degradation never perturb served numerics;
- **separation** — ``degrade`` sheds strictly fewer requests than
  ``reject``: the trace includes burst families whose compute deadline
  is infeasible at every sparsity rung, which ``reject`` drops and
  ``degrade`` rescues at the sparsest rung inside the SLO;
- **failover** — the crash really lands on in-flight work (at least
  one batch is requeued and retried, charged the pattern-switch
  penalty) and the shard rejoins within the recovery-lag budget set by
  the exponential-backoff probe chain.

The digest lands in ``benchmarks/results/BENCH_faults.json``;
``scripts/check_bench_regression.py`` replays the committed
configuration and gates conservation, exactness, the shed counts of
both policies, the strict reject/degrade separation and the failover
counters (the simulation is deterministic, so those replay exactly).

Run directly: ``python benchmarks/bench_faults.py [--smoke]``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from dataclasses import replace
from typing import List, Optional

import numpy as np

if __package__ in (None, ""):  # run as a script
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro.serve import (
    FaultPlan,
    ScenarioConfig,
    StackConfig,
    build_scenario,
    build_serving_stack,
)

from benchmarks.common import write_json_result, write_result

DEVICES = 4
FAULT_SHARD = 1
DOWN_FRACTION = 0.3          # outage length as a fraction of the trace span
WINDOW_MS = 2.0              # admission window small enough to fit the SLOs
PROBE_BACKOFF_MS = 5.0
BURST_SIZE = 8
# burst families cycle through these compute-deadline factors; 0.95x the
# dense latency is *infeasible at every sparsity rung* (the pattern
# overhead floor sits above it), so reject must shed those bursts while
# degrade serves them at the sparsest rung inside the (generous) SLO
DEADLINE_FACTORS = (1.7, 1.2, 1.7, 0.95)
# acceptance budgets (the simulation itself is deterministic; these keep
# the *configuration* honest if someone retunes the trace or the probes)
REJECT_SHED_RATE_CEILING = 0.35
DEGRADE_SHED_RATE_CEILING = 0.05
RECOVERY_LAG_FRACTION = 0.75  # detection lag must stay under this x outage


def _stack(seed: int, **kw):
    return build_serving_stack(StackConfig(
        devices=DEVICES, seed=seed, window_s=WINDOW_MS / 1e3,
        probe_backoff_s=PROBE_BACKOFF_MS / 1e3, **kw))


def _trace(num_requests: int, seed: int):
    _, workload, _ = _stack(seed)
    return build_scenario(
        "bursty", workload, ScenarioConfig(num_requests=num_requests, seed=seed),
        burst_size=BURST_SIZE, deadline_factors=DEADLINE_FACTORS)


def _fault_plan(trace) -> FaultPlan:
    """Crash FAULT_SHARD while its first batch is in flight.

    Round-robin routing sends the second burst's batch to shard 1; the
    window closes at that burst's last arrival and the pattern-switch
    charge (~5 ms) keeps the batch in flight well past close + 3 ms, so
    the crash deterministically retracts live work and exercises the
    requeue/retry path, not just an idle health flip.
    """
    ordered = sorted(trace, key=lambda r: (r.arrival_s, r.req_id))
    close_s = max(r.arrival_s for r in ordered[BURST_SIZE:2 * BURST_SIZE])
    span_s = max(r.arrival_s for r in ordered)
    return FaultPlan.outage(FAULT_SHARD, close_s + 0.003,
                            DOWN_FRACTION * span_s)


def _serve_policy(trace, plan: FaultPlan, policy: str, seed: int) -> dict:
    """One faulted serve plus its fault-free exactness reference."""
    _, _, engine = _stack(seed, faults=plan, shed_policy=policy)
    report = engine.serve(trace)

    # fault-free reference over the surviving set: fresh same-seed stack,
    # no faults, no shedding; degraded survivors replay at their
    # restamped deadlines so they resolve to the same sparsity rung
    survivors = [replace(r.request) for r in report.results]
    _, _, ref_engine = _stack(seed)
    reference = ref_engine.serve(survivors)
    faulted = {r.request.req_id: r.output for r in report.results}
    ref_out = {r.request.req_id: r.output for r in reference.results}
    exact = (set(faulted) == set(ref_out)
             and all(np.array_equal(faulted[i], ref_out[i]) for i in faulted))

    reasons: dict = {}
    for record in report.shed:
        reasons[record.reason] = reasons.get(record.reason, 0) + 1
    return {
        "submitted": report.submitted,
        "completed": report.completed,
        "shed": report.num_shed,
        "shed_rate": report.shed_rate,
        "shed_reasons": reasons,
        "conserved": float(report.conserved),
        "exact": float(exact),
        "degraded": report.degraded_requests,
        "failures": report.failures,
        "recoveries": report.recoveries,
        "requeued_batches": report.requeued_batches,
        "retried_batches": sum(s.retried_batches for s in report.shard_stats),
        "retry_penalty_ms": 1e3 * sum(s.retry_penalty_s
                                      for s in report.shard_stats),
        "recovery_lag_s": report.max_recovery_lag_s,
        "p95_latency_ms": 1e3 * report.p95_latency_s,
        "sim_makespan_s": report.sim_makespan_s,
    }


def run_bench(num_requests: int = 96, seed: int = 0) -> dict:
    """Reject-vs-degrade digest under one deterministic shard outage."""
    start = time.perf_counter()
    trace = _trace(num_requests, seed)
    plan = _fault_plan(trace)
    fault = plan.events[0]
    policies = {policy: _serve_policy(trace, plan, policy, seed)
                for policy in ("reject", "degrade")}
    span_s = max(r.arrival_s for r in trace)
    return {
        "scenario": "bursty",
        "requests": num_requests,
        "devices": DEVICES,
        "seed": seed,
        "window_ms": WINDOW_MS,
        "burst_size": BURST_SIZE,
        "deadline_factors": list(DEADLINE_FACTORS),
        "probe_backoff_ms": PROBE_BACKOFF_MS,
        "fault": {"shard": fault.shard_id, "at_s": fault.at_s,
                  "down_s": fault.duration_s, "down_fraction": DOWN_FRACTION,
                  "span_s": span_s},
        "policies": policies,
        "separation": {
            "reject_shed": policies["reject"]["shed"],
            "degrade_shed": policies["degrade"]["shed"],
            "strict": float(policies["degrade"]["shed"]
                            < policies["reject"]["shed"]),
        },
        "acceptance": {
            "reject_shed_rate_ceiling": REJECT_SHED_RATE_CEILING,
            "degrade_shed_rate_ceiling": DEGRADE_SHED_RATE_CEILING,
            "recovery_lag_budget_s": RECOVERY_LAG_FRACTION
            * fault.duration_s,
        },
        "wall_s": time.perf_counter() - start,
    }


def render(digest: dict) -> str:
    fault = digest["fault"]
    rows = [
        f"bursty x{digest['requests']} on {digest['devices']} shards, "
        f"shard {fault['shard']} down {fault['down_s'] * 1e3:.0f} ms "
        f"({100 * fault['down_fraction']:.0f}% of span) from "
        f"t={fault['at_s'] * 1e3:.1f} ms",
        "",
        f"{'policy':>8} {'done':>5} {'shed':>5} {'rate':>6} {'degr':>5} "
        f"{'requeue':>8} {'retry ms':>9} {'lag ms':>7} {'conserved':>10} "
        f"{'exact':>6}",
        "-" * 76,
    ]
    for name, p in digest["policies"].items():
        rows.append(
            f"{name:>8} {p['completed']:>5d} {p['shed']:>5d} "
            f"{p['shed_rate']:>6.3f} {p['degraded']:>5d} "
            f"{p['requeued_batches']:>8d} {p['retry_penalty_ms']:>9.2f} "
            f"{1e3 * p['recovery_lag_s']:>7.1f} "
            f"{bool(p['conserved'])!s:>10} {bool(p['exact'])!s:>6}")
    sep = digest["separation"]
    rows += [
        "",
        f"separation: degrade shed {sep['degrade_shed']} < reject shed "
        f"{sep['reject_shed']} (strict={bool(sep['strict'])})",
    ]
    return "\n".join(rows)


def check(digest: dict) -> bool:
    """Acceptance: conservation, exactness, failover, strict separation."""
    acc = digest["acceptance"]
    reject = digest["policies"]["reject"]
    degrade = digest["policies"]["degrade"]
    fault_exercised = all(
        p["failures"] >= 1 and p["recoveries"] >= 1
        and p["requeued_batches"] >= 1 and p["retried_batches"] >= 1
        and p["recovery_lag_s"] <= acc["recovery_lag_budget_s"]
        for p in (reject, degrade))
    return (bool(reject["conserved"]) and bool(degrade["conserved"])
            and bool(reject["exact"]) and bool(degrade["exact"])
            and fault_exercised
            and bool(digest["separation"]["strict"])
            and reject["shed"] > 0
            and reject["shed_rate"] <= acc["reject_shed_rate_ceiling"]
            and degrade["shed_rate"] <= acc["degrade_shed_rate_ceiling"])


# ---------------------------------------------------------------------------
# pytest entry point (parity with bench_serve; not in the default testpath)
# ---------------------------------------------------------------------------

def test_fault_tolerance():
    digest = run_bench(num_requests=96)
    write_result("faults_failover", render(digest))
    write_json_result("faults", digest)
    assert check(digest)


# ---------------------------------------------------------------------------
# script entry point (CI smoke job)
# ---------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast run for CI (48 requests)")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    num = args.requests or (48 if args.smoke else 96)
    digest = run_bench(num_requests=num, seed=args.seed)
    write_result("faults_failover", render(digest))
    write_json_result("faults", digest)
    ok = check(digest)
    print(f"smoke {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
