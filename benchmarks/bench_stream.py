"""Streaming bench: admission window vs throughput and latency.

Sweeps the streaming engine's batching window (``max_wait_s``) on bursty
traffic whose intra-burst arrivals are *spread* (so the window has a real
decision to make: admit now or wait for company) and measures, per
window:

- **mean batch size** — how much company the window buys;
- **service throughput** (requests per second of busy device time) — the
  batching-efficiency win: bigger admitted batches amortize the
  per-invocation overhead;
- **p50 / p95 end-to-end latency** — the cost: a partial batch waits out
  its window, and later members of a bigger time-sliced batch queue
  behind more MAC work;
- **exactness** — every swept run's outputs against the per-request
  oracle (``max_batch=1`` offline engine), which must agree to double
  precision.

The sweep exhibits the admission-time tradeoff monotonically: widening
the window never hurts batching efficiency and never helps p50 (it
trades latency for throughput), and the digest records the monotonicity
flags so the CI gate can hold the shape, not just the endpoints.
Machine-readable numbers land in ``benchmarks/results/BENCH_stream.json``;
``scripts/check_bench_regression.py`` re-runs this bench at the
committed configuration and gates exactness, monotonicity, per-window
batch sizes and endpoint drift.

Run directly: ``python benchmarks/bench_stream.py [--smoke]``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

import numpy as np

if __package__ in (None, ""):  # run as a script
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro.serve import (
    ScenarioConfig,
    StackConfig,
    build_serving_stack,
    stream_scenario,
)

from benchmarks.common import write_json_result, write_result

# bursty traffic with spread intra-burst arrivals: one burst of 8 spans
# ~8 ms, so the window sweep moves the admitted batch size from 1 to 8
BURST_SIZE = 8
BURST_GAP_S = 0.5
SPREAD_S = 2e-3
WINDOWS_MS = (0.0, 1.0, 4.0, 16.0, 50.0)
EXACTNESS_TOL = 1e-9
# relative slack for the monotonicity checks (floating-point ties)
MONO_RTOL = 1e-9


def _monotone(values: Sequence[float], increasing: bool = True) -> bool:
    for a, b in zip(values, values[1:]):
        slack = MONO_RTOL * max(abs(a), abs(b), 1e-12)
        if increasing and b < a - slack:
            return False
        if not increasing and b > a + slack:
            return False
    return True


def _scenario_kwargs(num_requests: int, seed: int) -> dict:
    return dict(cfg=ScenarioConfig(num_requests=num_requests, seed=seed),
                burst_size=BURST_SIZE, burst_gap_s=BURST_GAP_S,
                spread_s=SPREAD_S)


def serve_streaming(num_requests: int, max_wait_s: float, seed: int = 0):
    """Feed the bursty stream arrival-by-arrival through the online loop."""
    _, workload, engine = build_serving_stack(StackConfig(
        seed=seed, streaming=True, max_wait_s=max_wait_s))
    completed = engine.play(stream_scenario(
        "bursty", workload, **_scenario_kwargs(num_requests, seed)))
    report = engine.report()
    assert len(completed) == report.num_requests
    return report


def serve_oracle(num_requests: int, seed: int = 0):
    """Per-request oracle: every request served alone, no batching."""
    _, workload, engine = build_serving_stack(StackConfig(
        seed=seed, max_batch=1, use_cache=False))
    trace = list(stream_scenario("bursty", workload,
                                 **_scenario_kwargs(num_requests, seed)))
    return engine.serve(trace)


def run_bench(num_requests: int = 64, windows_ms: Sequence[float] = WINDOWS_MS,
              seed: int = 0) -> dict:
    """Window sweep digest (machine-readable, gated by CI)."""
    oracle = serve_oracle(num_requests, seed=seed)
    oracle_out = {r.request.req_id: r.output for r in oracle.results}

    sweep = []
    for w_ms in windows_ms:
        report = serve_streaming(num_requests, w_ms / 1e3, seed=seed)
        err = max((float(np.abs(r.output - oracle_out[r.request.req_id]).max())
                   for r in report.results), default=0.0)
        sweep.append({
            "max_wait_ms": w_ms,
            "batches": report.num_batches,
            "mean_batch_size": report.mean_batch_size,
            "sim_throughput_rps": report.sim_throughput_rps,
            "service_throughput_rps": report.service_throughput_rps,
            "sim_busy_s": report.sim_busy_s,
            "p50_latency_ms": 1e3 * report.p50_latency_s,
            "p95_latency_ms": 1e3 * report.p95_latency_s,
            "max_oracle_err": err,
        })

    first, last = sweep[0], sweep[-1]
    return {
        "scenario": "bursty",
        "requests": num_requests,
        "seed": seed,
        "max_batch": 8,
        "burst": {"size": BURST_SIZE, "gap_s": BURST_GAP_S,
                  "spread_s": SPREAD_S},
        "windows_ms": list(windows_ms),
        "sweep": sweep,
        "max_oracle_err": max(s["max_oracle_err"] for s in sweep),
        "monotonic": {
            # widening the window buys batch size and busy-time efficiency…
            "mean_batch_size": _monotone(
                [s["mean_batch_size"] for s in sweep]),
            "service_throughput_rps": _monotone(
                [s["service_throughput_rps"] for s in sweep]),
            # …and pays for it in median latency
            "p50_latency_ms": _monotone([s["p50_latency_ms"] for s in sweep]),
        },
        "tradeoff": {
            "p50_increase_ms": last["p50_latency_ms"] - first["p50_latency_ms"],
            "efficiency_gain": (
                last["service_throughput_rps"] / first["service_throughput_rps"]
                if first["service_throughput_rps"] else float("inf")),
            "batch_growth": (last["mean_batch_size"] / first["mean_batch_size"]
                             if first["mean_batch_size"] else float("inf")),
        },
    }


def render(digest: dict) -> str:
    rows = [
        f"{'wait ms':>8} {'batches':>8} {'mean B':>7} {'svc req/s':>10} "
        f"{'sim req/s':>10} {'p50 ms':>8} {'p95 ms':>8} {'|err|':>9}",
        "-" * 74,
    ]
    for s in digest["sweep"]:
        rows.append(
            f"{s['max_wait_ms']:>8.1f} {s['batches']:>8d} "
            f"{s['mean_batch_size']:>7.2f} {s['service_throughput_rps']:>10.0f} "
            f"{s['sim_throughput_rps']:>10.0f} {s['p50_latency_ms']:>8.3f} "
            f"{s['p95_latency_ms']:>8.3f} {s['max_oracle_err']:>9.1e}")
    t = digest["tradeoff"]
    mono = digest["monotonic"]
    rows += [
        "",
        f"window trade: batch x{t['batch_growth']:.1f}, efficiency "
        f"x{t['efficiency_gain']:.2f}, p50 +{t['p50_increase_ms']:.3f} ms",
        f"monotone: batch={mono['mean_batch_size']} "
        f"efficiency={mono['service_throughput_rps']} "
        f"p50={mono['p50_latency_ms']}   "
        f"oracle exactness {digest['max_oracle_err']:.1e}",
    ]
    return "\n".join(rows)


def check(digest: dict) -> bool:
    """Acceptance: the window trades p50 for throughput, monotonically."""
    mono = digest["monotonic"]
    t = digest["tradeoff"]
    return (digest["max_oracle_err"] < EXACTNESS_TOL
            and all(mono.values())
            and t["batch_growth"] > 2.0       # the sweep really moves batching
            and t["efficiency_gain"] > 1.0    # …which buys device efficiency
            and t["p50_increase_ms"] > 0.0)   # …and costs median latency


# ---------------------------------------------------------------------------
# pytest entry point (parity with bench_serve; not in the default testpath)
# ---------------------------------------------------------------------------

def test_stream_tradeoff():
    digest = run_bench(num_requests=64)
    write_result("stream_window_sweep", render(digest))
    write_json_result("stream", digest)
    assert check(digest)


# ---------------------------------------------------------------------------
# script entry point (CI smoke job)
# ---------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast run for CI (32 requests)")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    num = args.requests or (32 if args.smoke else 64)
    digest = run_bench(num_requests=num, seed=args.seed)
    write_result("stream_window_sweep", render(digest))
    write_json_result("stream", digest)
    ok = check(digest)
    print(f"smoke {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
