"""Decode-plane bench: eager token-by-token generation vs the KV-cached plan.

The interactive-translation story serves tokens, not batches: one
autoregressive step per produced token, under a per-token deadline.  This
bench measures what :func:`repro.nn.inference.compile_decode` (driven
through :class:`repro.nn.generation.DecodeSession`) buys on that path
across model shapes × mask formats:

- **per-token wall clock** — best-of-N full decodes through the eager
  Tensor loop (exactly the historical ``generate()``) vs the compiled
  KV-cached decode plane;
- **exactness** — the float64 decode plane must reproduce the eager
  tokens **and logprobs** bit for bit (``==``, not allclose), solo and
  under a ragged continuous-batching schedule where streams join and
  leave the rolling batch at token boundaries;
- **continuous batching** — per-stream-token cost of decoding
  ``BATCH_STREAMS`` streams through one shared session vs one at a time.

The gated acceptance case is the serving stack's model shape with dense
weights (``serve.dense``) with a ``MIN_SPEEDUP`` per-token floor of 2x.
Machine-readable numbers land in ``benchmarks/results/BENCH_generate.json``;
``scripts/check_bench_regression.py`` re-runs the bench at the committed
configuration and fails on any exactness breach, a ragged-schedule
mismatch, or the acceptance speedup dropping below the committed floor.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import List, Optional

import numpy as np

if __package__ in (None, ""):  # run as a script
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.patterns import MaskManager, random_pattern_set
from repro.nn.generation import DecodeSession, GenerationConfig, sample_token
from repro.nn.inference import compile_decode
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.tensor.tensor import Tensor, no_grad

from benchmarks.common import write_json_result, write_result

MIN_SPEEDUP = 2.0
ACCEPTANCE_CASE = "serve.dense"
PROMPT_LEN = 5
NEW_TOKENS = 10
BATCH_STREAMS = 8


def build_models(seed: int = 0):
    """(shape, mask) variants; ``serve`` matches the serving stack."""
    shapes = [
        ("serve", TransformerConfig(vocab_size=60, dim=32, num_heads=2,
                                    ffn_dim=64, max_len=16, dropout=0.0,
                                    seed=seed)),
        ("wide", TransformerConfig(vocab_size=120, dim=64, num_heads=4,
                                   ffn_dim=128, max_len=24, dropout=0.0,
                                   seed=seed)),
    ]
    out = []
    for shape_name, cfg in shapes:
        for mask in ("dense", "pattern"):
            model = TransformerLM(cfg).eval()
            if mask == "pattern":
                pset = random_pattern_set(8, 0.5, 3,
                                          np.random.default_rng(seed))
                MaskManager(model).apply(pset)
            out.append((f"{shape_name}.{mask}", model))
    return out


def eager_decode(model, prompt: np.ndarray, cfg: GenerationConfig):
    """The historical ``generate()`` loop, verbatim: the timing and
    exactness baseline."""
    tokens = np.asarray(prompt, dtype=np.int64).copy()
    rng = np.random.default_rng(cfg.seed)
    logprobs = []
    max_len = model.cfg.max_len
    for _ in range(cfg.max_new_tokens):
        context = tokens[-max_len:]
        with no_grad():
            logits = model(Tensor(context[None, :])).data[0, -1]
        nxt, logprob = sample_token(logits, cfg, rng)
        tokens = np.append(tokens, nxt)
        logprobs.append(logprob)
    return tokens, logprobs


def compiled_decode_run(model, decoder, prompts, cfgs):
    """Decode ``prompts`` together through one shared compiled session."""
    session = DecodeSession(model, decoder=decoder)
    try:
        sids = [session.submit_prompt(p, c) for p, c in zip(prompts, cfgs)]
        session.run()
        return [session.result(sid) for sid in sids]
    finally:
        session.close()


def best_of(run, repeats: int) -> float:
    """Best wall milliseconds for one call of ``run`` over ``repeats``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return 1e3 * best


def ragged_schedule_exact(model, decoder, seed: int) -> bool:
    """Streams joining one per boundary with mixed budgets/sampling must
    each equal their solo eager run bit for bit."""
    rng = np.random.default_rng(seed)
    vocab = model.cfg.vocab_size
    prompts = [rng.integers(0, vocab, size=2 + i) for i in range(6)]
    cfgs = [GenerationConfig(max_new_tokens=3 + i % 4,
                             top_k=None if i % 2 else 5, seed=i)
            for i in range(6)]
    session = DecodeSession(model, decoder=decoder)
    try:
        sids = [session.submit_prompt(prompts[0], cfgs[0])]
        pending = list(zip(prompts[1:], cfgs[1:]))
        while pending or not session.finished():
            if not session.finished():
                session.step()
            if pending:
                p, c = pending.pop(0)
                sids.append(session.submit_prompt(p, c))
        for sid, prompt, cfg in zip(sids, prompts, cfgs):
            ref_tokens, ref_logprobs = eager_decode(model, prompt, cfg)
            got = session.result(sid)
            if not np.array_equal(got.tokens, ref_tokens):
                return False
            if got.logprobs != ref_logprobs:
                return False
        return True
    finally:
        session.close()


def run_bench(smoke: bool = False, seed: int = 0, repeats: int = 5) -> dict:
    """Measure every shape x mask; returns the machine-readable digest."""
    repeats = max(1, repeats if not smoke else min(repeats, 2))
    rng = np.random.default_rng(seed)
    cases = {}
    batching = None
    for name, model in build_models(seed):
        vocab = model.cfg.vocab_size
        decoder = compile_decode(model)
        cfg = GenerationConfig(max_new_tokens=NEW_TOKENS)
        prompt = rng.integers(0, vocab, size=PROMPT_LEN)

        ref_tokens, ref_logprobs = eager_decode(model, prompt, cfg)
        got = compiled_decode_run(model, decoder, [prompt], [cfg])[0]
        tokens_match = bool(np.array_equal(got.tokens, ref_tokens))
        lp_err = (max(abs(a - b) for a, b in zip(got.logprobs, ref_logprobs))
                  if got.logprobs else 0.0)

        eager_ms = best_of(lambda: eager_decode(model, prompt, cfg), repeats)
        compiled_ms = best_of(
            lambda: compiled_decode_run(model, decoder, [prompt], [cfg]),
            repeats)
        cases[name] = {
            "prompt_len": PROMPT_LEN,
            "new_tokens": NEW_TOKENS,
            "kv_capable": decoder.kv_capable,
            "eager_tok_ms": eager_ms / NEW_TOKENS,
            "compiled_tok_ms": compiled_ms / NEW_TOKENS,
            "speedup": eager_ms / compiled_ms,
            "exact": tokens_match and lp_err == 0.0,
            "max_abs_err": float(lp_err),
            "ragged_exact": ragged_schedule_exact(model, decoder, seed + 1),
        }
        if name == ACCEPTANCE_CASE:
            # continuous batching on the acceptance shape: the per
            # stream-token cost of 8 streams sharing the rolling batch
            prompts = [rng.integers(0, vocab, size=PROMPT_LEN)
                       for _ in range(BATCH_STREAMS)]
            cfgs = [cfg] * BATCH_STREAMS
            batched_ms = best_of(
                lambda: compiled_decode_run(model, decoder, prompts, cfgs),
                repeats)
            solo_eager_ms = best_of(
                lambda: [eager_decode(model, p, cfg) for p in prompts],
                repeats)
            batching = {
                "streams": BATCH_STREAMS,
                "new_tokens_per_stream": NEW_TOKENS,
                "batched_tok_ms": batched_ms / (BATCH_STREAMS * NEW_TOKENS),
                "eager_tok_ms": solo_eager_ms / (BATCH_STREAMS * NEW_TOKENS),
                "speedup": solo_eager_ms / batched_ms,
            }
    acceptance = cases[ACCEPTANCE_CASE]
    return {
        "bench": "generate",
        "smoke": smoke,
        "seed": seed,
        "repeats": repeats,
        "cases": cases,
        "batching": batching,
        "acceptance": {
            "case": ACCEPTANCE_CASE,
            "speedup": acceptance["speedup"],
            "min_speedup": MIN_SPEEDUP,
            "exact": acceptance["exact"],
            "ragged_exact": acceptance["ragged_exact"],
        },
    }


def render(digest: dict) -> str:
    rows = [
        f"{'case':<16} {'eager tok ms':>13} {'kv tok ms':>10} {'speedup':>8} "
        f"{'exact':>6} {'ragged':>7}",
        "-" * 66,
    ]
    for name, case in digest["cases"].items():
        rows.append(
            f"{name:<16} {case['eager_tok_ms']:>13.3f} "
            f"{case['compiled_tok_ms']:>10.3f} {case['speedup']:>7.2f}x "
            f"{'yes' if case['exact'] else 'NO':>6} "
            f"{'yes' if case['ragged_exact'] else 'NO':>7}")
    bat = digest["batching"]
    rows.append("")
    rows.append(
        f"continuous batching x{bat['streams']}: "
        f"{bat['batched_tok_ms']:.3f} ms/stream-token vs eager "
        f"{bat['eager_tok_ms']:.3f} ({bat['speedup']:.2f}x)")
    acc = digest["acceptance"]
    rows.append(f"acceptance ({acc['case']}): {acc['speedup']:.2f}x "
                f"(floor {acc['min_speedup']}x), bit-exact: {acc['exact']}, "
                f"ragged schedule exact: {acc['ragged_exact']}")
    return "\n".join(rows)


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------

def test_generate_decode_plane():
    digest = run_bench(repeats=3)
    write_result("generate_decode", render(digest))
    write_json_result("generate", digest)
    for name, case in digest["cases"].items():
        assert case["exact"], f"{name}: compiled decode not bit-identical"
        assert case["max_abs_err"] == 0.0, name
        assert case["ragged_exact"], f"{name}: ragged schedule diverged"
    assert digest["acceptance"]["speedup"] >= MIN_SPEEDUP


# ---------------------------------------------------------------------------
# script entry point (CI smoke job)
# ---------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short timed loops for CI")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    repeats = args.repeats or (2 if args.smoke else 5)
    digest = run_bench(smoke=args.smoke, seed=args.seed, repeats=repeats)
    write_result("generate_decode", render(digest))
    write_json_result("generate", digest)
    ok = (all(c["exact"] and c["max_abs_err"] == 0.0 and c["ragged_exact"]
              for c in digest["cases"].values())
          and digest["acceptance"]["speedup"] >= MIN_SPEEDUP)
    print(f"smoke {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
