"""Preemptive-scheduling bench: preemption, cancellation, tenant fairness.

The adversarial-traffic companion to ``bench_faults``: instead of a
hardware outage, one *hot tenant* floods a single device with bursts of
loose-SLO batches while a *victim tenant* trickles tight-SLO requests in
between — the head-of-line scenario ROADMAP open item 1 called out
(one long-running batch or one hot client blowing every other request's
deadline).  Two arms serve the identical trace, with the identical pair
of mid-flight cancellations:

- ``fifo``     — the historical scheduler: no preemption, no tenant
  weights, just the bounded admission queue;
- ``preempt``  — ``preempt_policy="running"`` plus equal-weight fair
  shares of the same queue bound, so tight-deadline victim admissions
  pull the hot tenant's queued (and in-flight) batches back out of the
  way and the hot flood is shed at its quota instead of squeezing the
  victim out.

Gated invariants:

- **separation** — the preemptive arm strictly cuts the victim tenant's
  SLO misses (late completions + shed requests) vs fifo;
- **conservation** — ``completed + shed + cancelled == submitted`` in
  both arms (the extended identity: cancellation is a terminal state);
- **exactness** — every completed output is bit-identical (``==``) to a
  clean serve (no preemption, no quotas, no cancels, no queue bound) of
  that arm's surviving request set: preemption re-executes full original
  memberships and quota shedding happens pre-admission, so neither may
  perturb served numerics;
- **engagement** — the preemptive arm really preempts (>= 1 retraction
  charged like a pattern switch), really sheds the hot tenant at its
  quota, both arms record exactly the two scripted cancellations, and
  no tenant starves under fairness.

The digest lands in ``benchmarks/results/BENCH_preempt.json``;
``scripts/check_bench_regression.py`` replays the committed
configuration and gates the counters exactly (the simulation is
deterministic) plus the invariants above.

Run directly: ``python benchmarks/bench_preempt.py [--smoke]``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from dataclasses import replace
from typing import List, Optional, Tuple

import numpy as np

if __package__ in (None, ""):  # run as a script
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro.serve import InferenceRequest, StackConfig, build_serving_stack

from benchmarks.common import write_json_result, write_result

DEVICES = 1                  # one device: head-of-line pressure is the point
WINDOW_MS = 1.0
MAX_QUEUE = 32
LEVEL = "l4"
DEADLINE_FACTOR = 1.7        # feasible at a mid rung; uniform across tenants
HOT_BURST = 16               # two full batches per burst
BURST_PERIOD_MS = 1.0        # bursts outrun the drain rate: the queue grows
HOT_SLO_MS = 60.0            # the flood does not care about latency
VICTIM_SLO_MS = 2.2          # window + solo service fits; a queued burst won't
CANCELS = 2                  # hot requests withdrawn mid-flight, both arms
# acceptance budgets (the simulation is deterministic; these keep the
# configuration honest if someone retunes the trace)
FIFO_VICTIM_MISS_FLOOR = 1   # fifo must actually hurt the victim
PREEMPT_VICTIM_MISS_CEILING = 0
HOT_SHED_RATE_CEILING = 0.75


def _stack(seed: int, **kw):
    return build_serving_stack(StackConfig(
        devices=DEVICES, seed=seed, window_s=WINDOW_MS / 1e3, **kw))


def _trace(num_requests: int, seed: int) -> List[InferenceRequest]:
    """Hot-tenant burst flood with victim-tenant tight-SLO trickle.

    Every request shares one (level, deadline) class, so each batch —
    however preemption, cancellation or quota shedding regroups the
    survivors — resolves to the same sparsity rung and the bit-exactness
    reference is well-defined.  The tenants differ only in volume and
    SLO: ``hot`` submits ``HOT_BURST`` requests per period (two full
    batches, outrunning the device), ``victim`` one request per period,
    mid-burst, whose SLO only fits if it does not queue behind the
    flood.
    """
    _, _, probe = _stack(seed)
    level = probe.dvfs[LEVEL]
    adapter = probe.adapter
    from repro.hardware.latency import SparsityKind
    dense = adapter.latency.latency_s(adapter.workload, level, 0.0,
                                      SparsityKind.DENSE)
    deadline_s = DEADLINE_FACTOR * dense
    rng = np.random.default_rng(seed)
    bursts = max(2, num_requests // (HOT_BURST + 1))
    period_s = BURST_PERIOD_MS / 1e3
    trace: List[InferenceRequest] = []
    rid = 0
    for b in range(bursts):
        at = b * period_s
        for _ in range(HOT_BURST):
            trace.append(InferenceRequest(
                req_id=rid, tokens=rng.integers(1, 60, size=12),
                arrival_s=at, deadline_s=deadline_s, level_name=LEVEL,
                slo_s=HOT_SLO_MS / 1e3, tenant="hot"))
            rid += 1
        trace.append(InferenceRequest(
            req_id=rid, tokens=rng.integers(1, 60, size=12),
            arrival_s=at + period_s / 2, deadline_s=deadline_s,
            level_name=LEVEL, slo_s=VICTIM_SLO_MS / 1e3, tenant="victim"))
        rid += 1
    return trace


def _cancels(trace) -> List[Tuple[int, float]]:
    """The scripted withdrawals: two first-burst hot requests, 0.5 ms in."""
    hot = [r for r in trace if r.tenant == "hot"][:CANCELS]
    return [(r.req_id, r.arrival_s + 5e-4) for r in hot]


def _serve_arm(trace, cancels, seed: int, **knobs) -> dict:
    """One arm's serve plus its clean-scheduler exactness reference."""
    _, _, engine = _stack(seed, max_queue=MAX_QUEUE, **knobs)
    core = engine.streaming()
    for rid, at in cancels:
        core.cancel(rid, at_s=at)
    core.play(sorted(trace, key=lambda r: (r.arrival_s, r.req_id)))
    report = core.report()

    # clean reference over this arm's survivors: fresh same-seed stack,
    # no preemption, no quota, no cancels, no queue bound — the outputs
    # must match bit for bit
    survivors = [replace(r.request) for r in report.results]
    _, _, ref_engine = _stack(seed)
    reference = ref_engine.serve(survivors)
    served = {r.request.req_id: r.output for r in report.results}
    ref_out = {r.request.req_id: r.output for r in reference.results}
    exact = (set(served) == set(ref_out)
             and all(np.array_equal(served[i], ref_out[i]) for i in served))

    reasons: dict = {}
    for record in report.shed:
        reasons[record.reason] = reasons.get(record.reason, 0) + 1
    tenants = report.tenant_breakdown()
    for stats in tenants.values():
        # late completions and refused/withdrawn requests both miss the SLO
        stats["misses"] = (stats["slo_misses"] + stats["shed"]
                           + stats["cancelled"])
    victim = [r for r in report.results if r.request.tenant == "victim"]
    return {
        "submitted": report.submitted,
        "completed": report.completed,
        "shed": report.num_shed,
        "shed_reasons": reasons,
        "cancelled": report.num_cancelled,
        "cancel_where": sorted(c.where for c in report.cancelled),
        "preemptions": report.preemptions,
        "requeued_batches": report.requeued_batches,
        "retried_batches": sum(s.retried_batches for s in report.shard_stats),
        "retry_penalty_ms": 1e3 * sum(s.retry_penalty_s
                                      for s in report.shard_stats),
        "conserved": float(report.conserved),
        "exact": float(exact),
        "starved_tenants": report.starved_tenants,
        "tenants": tenants,
        "victim_slo_misses": tenants["victim"]["misses"],
        "hot_slo_misses": tenants["hot"]["misses"],
        "hot_shed_rate": (tenants["hot"]["shed"]
                          / max(1, sum(tenants["hot"][k] for k in
                                       ("completed", "shed", "cancelled")))),
        "victim_p95_latency_ms": (
            1e3 * float(np.percentile([r.latency_s for r in victim], 95))
            if victim else None),
        "p95_latency_ms": 1e3 * report.p95_latency_s,
        "sim_makespan_s": report.sim_makespan_s,
    }


def run_bench(num_requests: int = 102, seed: int = 0) -> dict:
    """Fifo-vs-preemptive digest on the hot-tenant head-of-line trace."""
    start = time.perf_counter()
    trace = _trace(num_requests, seed)
    cancels = _cancels(trace)
    policies = {
        "fifo": _serve_arm(trace, cancels, seed),
        "preempt": _serve_arm(trace, cancels, seed,
                              preempt_policy="running",
                              tenant_weights={"hot": 1.0, "victim": 1.0}),
    }
    return {
        "scenario": "hot-tenant head-of-line",
        "requests": len(trace),
        "devices": DEVICES,
        "seed": seed,
        "window_ms": WINDOW_MS,
        "max_queue": MAX_QUEUE,
        "level": LEVEL,
        "deadline_factor": DEADLINE_FACTOR,
        "hot_burst": HOT_BURST,
        "burst_period_ms": BURST_PERIOD_MS,
        "victim_slo_ms": VICTIM_SLO_MS,
        "cancels": CANCELS,
        "policies": policies,
        "separation": {
            "fifo_victim_misses": policies["fifo"]["victim_slo_misses"],
            "preempt_victim_misses": policies["preempt"]["victim_slo_misses"],
            "strict": float(policies["preempt"]["victim_slo_misses"]
                            < policies["fifo"]["victim_slo_misses"]),
        },
        "acceptance": {
            "fifo_victim_miss_floor": FIFO_VICTIM_MISS_FLOOR,
            "preempt_victim_miss_ceiling": PREEMPT_VICTIM_MISS_CEILING,
            "hot_shed_rate_ceiling": HOT_SHED_RATE_CEILING,
        },
        "wall_s": time.perf_counter() - start,
    }


def render(digest: dict) -> str:
    rows = [
        f"{digest['scenario']}: hot bursts of {digest['hot_burst']} every "
        f"{digest['burst_period_ms']:.1f} ms vs victim trickle "
        f"(SLO {digest['victim_slo_ms']:.1f} ms) on {digest['devices']} "
        f"shard, queue bound {digest['max_queue']}, "
        f"{digest['cancels']} scripted cancels",
        "",
        f"{'arm':>8} {'done':>5} {'shed':>5} {'cancel':>7} {'preempt':>8} "
        f"{'victim miss':>12} {'hot shed%':>10} {'conserved':>10} "
        f"{'exact':>6}",
        "-" * 78,
    ]
    for name, p in digest["policies"].items():
        rows.append(
            f"{name:>8} {p['completed']:>5d} {p['shed']:>5d} "
            f"{p['cancelled']:>7d} {p['preemptions']:>8d} "
            f"{p['victim_slo_misses']:>12d} {100 * p['hot_shed_rate']:>9.1f} "
            f"{bool(p['conserved'])!s:>10} {bool(p['exact'])!s:>6}")
    sep = digest["separation"]
    rows += [
        "",
        f"separation: preempt victim misses {sep['preempt_victim_misses']} "
        f"< fifo victim misses {sep['fifo_victim_misses']} "
        f"(strict={bool(sep['strict'])})",
    ]
    return "\n".join(rows)


def check(digest: dict) -> bool:
    """Acceptance: conservation, exactness, separation, engagement."""
    acc = digest["acceptance"]
    fifo = digest["policies"]["fifo"]
    pre = digest["policies"]["preempt"]
    engaged = (pre["preemptions"] >= 1
               and pre["shed_reasons"].get("tenant_quota", 0) >= 1
               and fifo["cancelled"] == digest["cancels"]
               and pre["cancelled"] == digest["cancels"]
               and not pre["starved_tenants"])
    return (bool(fifo["conserved"]) and bool(pre["conserved"])
            and bool(fifo["exact"]) and bool(pre["exact"])
            and engaged
            and bool(digest["separation"]["strict"])
            and fifo["victim_slo_misses"] >= acc["fifo_victim_miss_floor"]
            and pre["victim_slo_misses"]
            <= acc["preempt_victim_miss_ceiling"]
            and pre["hot_shed_rate"] <= acc["hot_shed_rate_ceiling"])


# ---------------------------------------------------------------------------
# pytest entry point (parity with bench_faults; not in the default testpath)
# ---------------------------------------------------------------------------

def test_preemptive_scheduling():
    digest = run_bench(num_requests=102)
    write_result("preempt_fairness", render(digest))
    write_json_result("preempt", digest)
    assert check(digest)


# ---------------------------------------------------------------------------
# script entry point (CI smoke job)
# ---------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast run for CI (51 requests)")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    num = args.requests or (51 if args.smoke else 102)
    digest = run_bench(num_requests=num, seed=args.seed)
    write_result("preempt_fairness", render(digest))
    write_json_result("preempt", digest)
    ok = check(digest)
    label = "smoke" if args.smoke else "bench"
    print(f"{label} {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
