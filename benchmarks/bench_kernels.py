"""Kernel microbench: wall-clock + op counts for the sparse matmul kernels.

Measures every executable kernel (dense / COO / block / pattern, plus the
scalar per-tile ``pattern_matmul_loop`` reference that predates the
pattern-grouped vectorization) across representative layer shapes and
sparsities, and records for each case:

- best-of-N wall-clock per kernel (the Python hot path the serving engine
  actually runs),
- the :class:`~repro.sparse.kernels.OpCounter` digest (deterministic
  abstract cost — macs / index / overhead / weighted),
- exactness: worst absolute deviation of every kernel from the dense
  reference, and of the grouped pattern kernel from the loop reference.

The headline number is the grouped pattern kernel's speedup over the
loop reference on the 256x256, psize-4, 75%-sparse acceptance case; the
bench asserts it stays >= ``MIN_PATTERN_SPEEDUP``.  A machine-readable
digest lands in ``benchmarks/results/BENCH_kernels.json`` via
:func:`benchmarks.common.write_json_result`;
``scripts/check_bench_regression.py`` regresses CI against the committed
copy (op counts and exactness are gated exactly — they are deterministic
— while absolute wall-clock numbers are informational and only the
loop-vs-grouped *ratio*, measured on one machine in one process, is
gated against the acceptance floor).

Run directly (``python benchmarks/bench_kernels.py [--smoke]``) or via
pytest for the asserted shape checks.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Dict, List, Optional

import numpy as np

if __package__ in (None, ""):  # run as a script: python benchmarks/bench_kernels.py
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro.core.patterns import pattern_mask_for_matrix, random_pattern_set
from repro.sparse import (
    block_matmul,
    coo_matmul,
    dense_matmul,
    from_dense_block,
    from_dense_coo,
    from_dense_pattern,
    pattern_matmul,
    pattern_matmul_loop,
)

from benchmarks.common import write_json_result, write_result

# the acceptance case the regression gate pins: a transformer-scale layer
# where tile dispatch overhead dominated the pre-vectorization kernel
ACCEPTANCE_CASE = "ffn-256x256-s75"
MIN_PATTERN_SPEEDUP = 5.0
EXACTNESS_TOL = 1e-9
BATCH = 8
NUM_BLOCKS = 4
PATTERNS_PER_SET = 3

CASES = [
    dict(name="attn-64x64-s50", shape=(64, 64), psize=4, sparsity=0.5),
    dict(name="proj-128x96-s60", shape=(128, 96), psize=8, sparsity=0.6),
    dict(name=ACCEPTANCE_CASE, shape=(256, 256), psize=4, sparsity=0.75),
]
SMOKE_CASES = [CASES[0], CASES[-1]]


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock of ``repeats`` invocations (steady-state)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_case(case: dict, seed: int = 0, repeats: int = 5) -> dict:
    """One shape/sparsity point: containers, counters, timings, exactness."""
    rng = np.random.default_rng(seed)
    m, n = case["shape"]
    w = rng.normal(size=(m, n))
    pset = random_pattern_set(case["psize"], case["sparsity"],
                              PATTERNS_PER_SET, rng)
    mask, ids = pattern_mask_for_matrix(w, pset)
    wm = w * mask
    x = rng.normal(size=(n, BATCH))

    coo = from_dense_coo(wm)
    blk = from_dense_block(wm, NUM_BLOCKS)
    pat = from_dense_pattern(wm, [p.mask for p in pset], ids)

    # deterministic op counters from a first (table-charging) invocation
    dense_out, dense_c = dense_matmul(wm, x)
    coo_out, coo_c = coo_matmul(coo, x)
    blk_out, blk_c = block_matmul(blk, x)
    pat_out, pat_c = pattern_matmul(pat, x)
    # the loop reference charges identically — measure it on a fresh
    # container so the one-time table charge appears in both counters
    pat_for_loop = from_dense_pattern(wm, [p.mask for p in pset], ids)
    loop_out, loop_c = pattern_matmul_loop(pat_for_loop, x)

    errors = {
        "coo": float(np.abs(coo_out - dense_out).max()),
        "block": float(np.abs(blk_out - dense_out).max()),
        "pattern": float(np.abs(pat_out - dense_out).max()),
        "pattern_vs_loop": float(np.abs(pat_out - loop_out).max()),
    }

    # steady-state wall clock: tables/groups already materialized above
    wall_ms = {
        "dense": 1e3 * _best_of(lambda: dense_matmul(wm, x), repeats),
        "coo": 1e3 * _best_of(lambda: coo_matmul(coo, x), repeats),
        "block": 1e3 * _best_of(lambda: block_matmul(blk, x), repeats),
        "pattern": 1e3 * _best_of(lambda: pattern_matmul(pat, x), repeats),
        "pattern_loop": 1e3 * _best_of(
            lambda: pattern_matmul_loop(pat_for_loop, x), repeats),
    }

    return {
        "shape": list(case["shape"]),
        "pattern_size": case["psize"],
        "sparsity": case["sparsity"],
        "nnz": pat.nnz,
        "batch": BATCH,
        "op_counters": {
            "dense": dense_c.as_dict(),
            "coo": coo_c.as_dict(),
            "block": blk_c.as_dict(),
            "pattern": pat_c.as_dict(),
            "pattern_loop": loop_c.as_dict(),
        },
        "wall_ms": wall_ms,
        "speedup_pattern_vs_loop": wall_ms["pattern_loop"] / wall_ms["pattern"],
        "max_abs_err": errors,
    }


def run_bench(smoke: bool = False, seed: int = 0, repeats: int = 5) -> dict:
    cases = SMOKE_CASES if smoke else CASES
    digest: Dict = {"seed": seed, "repeats": repeats, "batch": BATCH,
                    "num_blocks": NUM_BLOCKS, "smoke": smoke, "cases": {}}
    for case in cases:
        digest["cases"][case["name"]] = bench_case(case, seed=seed,
                                                   repeats=repeats)
    acc = digest["cases"][ACCEPTANCE_CASE]
    digest["acceptance"] = {
        "case": ACCEPTANCE_CASE,
        "min_speedup": MIN_PATTERN_SPEEDUP,
        "speedup": acc["speedup_pattern_vs_loop"],
        "ok": acc["speedup_pattern_vs_loop"] >= MIN_PATTERN_SPEEDUP,
    }
    return digest


def render(digest: dict) -> str:
    rows = [f"{'case':<20} {'kernel':<13} {'wall ms':>9} {'macs':>10} "
            f"{'index':>8} {'weighted':>10} {'max|err|':>9}",
            "-" * 84]
    for name, case in digest["cases"].items():
        for fmt in ("dense", "coo", "block", "pattern", "pattern_loop"):
            c = case["op_counters"][fmt]
            err = case["max_abs_err"].get(
                "pattern" if fmt == "pattern_loop" else fmt, 0.0)
            rows.append(f"{name:<20} {fmt:<13} {case['wall_ms'][fmt]:>9.3f} "
                        f"{c['macs']:>10} {c['index_ops']:>8} "
                        f"{c['weighted_total']:>10.0f} {err:>9.1e}")
        rows.append(f"{'':<20} pattern speedup vs loop: "
                    f"{case['speedup_pattern_vs_loop']:.1f}x")
    acc = digest["acceptance"]
    rows.append("")
    rows.append(f"acceptance [{acc['case']}]: {acc['speedup']:.1f}x "
                f"(floor {acc['min_speedup']:.0f}x) "
                f"{'OK' if acc['ok'] else 'FAILED'}")
    return "\n".join(rows)


def check(digest: dict) -> List[str]:
    """Hard assertions the bench itself enforces; returns failure strings."""
    failures = []
    for name, case in digest["cases"].items():
        for fmt, err in case["max_abs_err"].items():
            if err >= EXACTNESS_TOL:
                failures.append(f"{name}: {fmt} deviates {err:.2e} "
                                f"(tolerance {EXACTNESS_TOL:.0e})")
        pat, loop = (case["op_counters"]["pattern"],
                     case["op_counters"]["pattern_loop"])
        if pat != loop:
            failures.append(f"{name}: grouped/loop op counters disagree")
    if not digest["acceptance"]["ok"]:
        acc = digest["acceptance"]
        failures.append(f"pattern speedup {acc['speedup']:.2f}x below "
                        f"{acc['min_speedup']:.0f}x floor")
    return failures


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------

def test_kernels_shape():
    digest = run_bench()
    write_result("kernel_timings", render(digest))
    write_json_result("kernels", digest)
    failures = check(digest)
    assert not failures, "; ".join(failures)
    # structured formats must stay index-light versus COO on every case
    for case in digest["cases"].values():
        assert (case["op_counters"]["pattern"]["index_ops"] * 10
                < case["op_counters"]["coo"]["index_ops"])
        assert (case["op_counters"]["block"]["index_ops"] * 10
                < case["op_counters"]["coo"]["index_ops"])


def test_bench_pattern_kernel(benchmark):
    case = next(c for c in CASES if c["name"] == ACCEPTANCE_CASE)
    rng = np.random.default_rng(0)
    w = rng.normal(size=case["shape"])
    pset = random_pattern_set(case["psize"], case["sparsity"],
                              PATTERNS_PER_SET, rng)
    mask, ids = pattern_mask_for_matrix(w, pset)
    pat = from_dense_pattern(w * mask, [p.mask for p in pset], ids)
    x = rng.normal(size=(case["shape"][1], BATCH))
    out, _ = benchmark(pattern_matmul, pat, x)
    assert out.shape == (case["shape"][0], BATCH)


# ---------------------------------------------------------------------------
# script entry point (CI smoke job)
# ---------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="two cases, fewer repeats, for CI")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=None,
                        help="wall-clock repeats per kernel (best-of)")
    args = parser.parse_args(argv)
    repeats = args.repeats or (3 if args.smoke else 5)
    digest = run_bench(smoke=args.smoke, seed=args.seed, repeats=repeats)
    write_result("kernel_timings", render(digest))
    write_json_result("kernels", digest)
    failures = check(digest)
    for failure in failures:
        print(f"FAIL: {failure}")
    print(f"smoke {'OK' if not failures else 'FAILED'}")
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
