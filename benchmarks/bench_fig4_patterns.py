"""Figure 4: visualization of the searched patterns at each V/F level.

Regenerates the paper's qualitative observations:
- the three pattern sets have clearly different sparsity (paper: ~75/50/37%);
- kept positions overlap across sparsity levels far above chance (the
  "same shape" / "similar column characteristic" observation), because all
  sets derive from the same BP-guided importance maps.

Besides the rendered side-by-side figure (informational,
``benchmarks/results/fig4_patterns.txt``), ``run_bench`` writes a
machine-readable digest (``benchmarks/results/BENCH_fig4.json``): one
row per V/F level — nominal sparsity, pattern count and the SHA-1
digests of every searched pattern — plus the cross-level overlap
statistics.  The search-space derivation is a deterministic function of
the seed recorded in the digest, so ``scripts/check_bench_regression.py``
replays it and gates the level rows and overlap numbers by exact
equality; wall time is informational.
"""

import argparse
import pathlib
import sys
import time
from typing import List, Optional

import numpy as np

try:  # the CI regression gate imports run_bench in a numpy-only env
    import pytest
except ModuleNotFoundError:
    pytest = None

if __package__ in (None, ""):  # run as a script
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.block_pruning import BlockPruningConfig, apply_block_pruning
from repro.core.patterns import MaskManager, pattern_mask_for_matrix
from repro.core.search_space import PatternSearchSpace, SearchSpaceConfig
from repro.core.visualize import figure4_report, shared_positions
from repro.hardware.dvfs import DVFSTable
from repro.hardware.workload import paper_scale_transformer

from benchmarks.common import canon, make_lm_task, write_json_result, write_result

DEADLINE_S = 0.104
PATTERN_SIZE = 12


def build_searched_sets(seed: int = 0, pretrain_epochs: int = 2):
    """Derive one searched pattern set per V/F level from a BP backbone."""
    task = make_lm_task(seed=seed, pretrain_epochs=pretrain_epochs)
    apply_report = apply_block_pruning(
        task.model, BlockPruningConfig(num_blocks=2, rate=0.3, seed=seed))
    manager = MaskManager(task.model, apply_report.masks)
    space = PatternSearchSpace(
        manager, paper_scale_transformer(), DVFSTable().subset(["l3", "l4", "l6"]),
        deadline_s=DEADLINE_S,
        cfg=SearchSpaceConfig(pattern_size=PATTERN_SIZE, theta=1,
                              patterns_per_set=3, seed=seed),
    )
    return {name: space.candidates[name][0] for name in space.level_names}


def run_bench(seed: int = 0, pretrain_epochs: int = 2,
              searched_sets=None) -> dict:
    """Machine-readable Figure 4 digest (level rows + overlap stats).

    ``searched_sets`` is an optional precomputed mapping so callers that
    already derived the sets (the pytest shape test, ``main``) do not
    pay for the derivation twice.
    """
    start = time.perf_counter()
    if searched_sets is None:
        searched_sets = build_searched_sets(seed=seed,
                                            pretrain_epochs=pretrain_epochs)
    wall_s = time.perf_counter() - start

    levels = [{
        "level": name,
        "sparsity": canon(ps.sparsity),
        "num_patterns": len(ps),
        "pattern_size": ps.pattern_size,
        "pattern_digests": sorted(p.digest() for p in ps),
    } for name, ps in searched_sets.items()]

    sparse = searched_sets["l3"][0]
    dense = searched_sets["l6"][0]
    return {
        "bench": "fig4_patterns",
        "seed": seed,
        "pretrain_epochs": pretrain_epochs,
        "deadline_ms": 1e3 * DEADLINE_S,
        "levels": levels,
        "overlap": {
            "pair": "l3-l6",
            "shared_kept": canon(shared_positions(sparse, dense)),
            "chance": canon(1.0 - dense.sparsity),
        },
        "wall_s": wall_s,
    }


if pytest is not None:
    @pytest.fixture(scope="module")
    def searched_sets():
        return build_searched_sets()


def test_fig4_visualization(benchmark, searched_sets):
    report = benchmark(figure4_report, searched_sets)
    report += "\n\npaper shape: sparsity differs per level; kept positions overlap"
    write_result("fig4_patterns", report)
    write_json_result("fig4", run_bench(searched_sets=searched_sets))

    # diverse sparsity across levels (l3 needs the sparsest patterns)
    s = {name: ps.sparsity for name, ps in searched_sets.items()}
    assert s["l3"] > s["l4"] > s["l6"]

    # structural sharing: overlap of kept positions beats chance
    sparse = searched_sets["l3"][0]
    dense = searched_sets["l6"][0]
    overlap = shared_positions(sparse, dense)
    chance = 1.0 - dense.sparsity
    assert overlap > chance + 0.1


def test_fig4_within_set_diversity(benchmark, searched_sets):
    def digest_all():
        return {name: {p.digest() for p in ps} for name, ps in searched_sets.items()}

    digests = benchmark(digest_all)
    for name, dg in digests.items():
        assert len(dg) >= 2, f"{name}: patterns should differ within a set"


def test_bench_pattern_application_kernel(benchmark, searched_sets):
    """Benchmark applying a pattern set to a paper-scale (3200x800) matrix —
    the per-reconfiguration software cost."""
    rng = np.random.default_rng(0)
    w = rng.normal(size=(3200, 800))
    ps = searched_sets["l4"]
    mask, ids = benchmark(pattern_mask_for_matrix, w, ps)
    assert mask.shape == w.shape
    assert ids.size == (3200 // 12 + 1) * (800 // 12 + 1)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast run for CI (1 pretrain epoch)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--pretrain-epochs", type=int, default=None)
    args = parser.parse_args(argv)
    epochs = args.pretrain_epochs if args.pretrain_epochs is not None \
        else (1 if args.smoke else 2)
    sets = build_searched_sets(seed=args.seed, pretrain_epochs=epochs)
    report = figure4_report(sets)
    report += "\n\npaper shape: sparsity differs per level; kept positions overlap"
    write_result("fig4_patterns", report)
    digest = run_bench(seed=args.seed, pretrain_epochs=epochs,
                       searched_sets=sets)
    write_json_result("fig4", digest)
    s = {name: ps.sparsity for name, ps in sets.items()}
    ok = s["l3"] > s["l4"] > s["l6"]
    print(f"smoke {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
