"""Figure 4: visualization of the searched patterns at each V/F level.

Regenerates the paper's qualitative observations:
- the three pattern sets have clearly different sparsity (paper: ~75/50/37%);
- kept positions overlap across sparsity levels far above chance (the
  "same shape" / "similar column characteristic" observation), because all
  sets derive from the same BP-guided importance maps.
"""

import numpy as np
import pytest

from repro.core.block_pruning import BlockPruningConfig, apply_block_pruning
from repro.core.patterns import MaskManager, pattern_mask_for_matrix
from repro.core.search_space import PatternSearchSpace, SearchSpaceConfig
from repro.core.visualize import figure4_report, shared_positions
from repro.hardware.dvfs import DVFSTable
from repro.hardware.workload import paper_scale_transformer

from benchmarks.common import make_lm_task, write_result


@pytest.fixture(scope="module")
def searched_sets():
    task = make_lm_task(pretrain_epochs=2)
    apply_report = apply_block_pruning(task.model, BlockPruningConfig(num_blocks=2, rate=0.3))
    manager = MaskManager(task.model, apply_report.masks)
    space = PatternSearchSpace(
        manager, paper_scale_transformer(), DVFSTable().subset(["l3", "l4", "l6"]),
        deadline_s=0.104,
        cfg=SearchSpaceConfig(pattern_size=12, theta=1, patterns_per_set=3, seed=0),
    )
    return {name: space.candidates[name][0] for name in space.level_names}


def test_fig4_visualization(benchmark, searched_sets):
    report = benchmark(figure4_report, searched_sets)
    report += "\n\npaper shape: sparsity differs per level; kept positions overlap"
    write_result("fig4_patterns", report)

    # diverse sparsity across levels (l3 needs the sparsest patterns)
    s = {name: ps.sparsity for name, ps in searched_sets.items()}
    assert s["l3"] > s["l4"] > s["l6"]

    # structural sharing: overlap of kept positions beats chance
    sparse = searched_sets["l3"][0]
    dense = searched_sets["l6"][0]
    overlap = shared_positions(sparse, dense)
    chance = 1.0 - dense.sparsity
    assert overlap > chance + 0.1


def test_fig4_within_set_diversity(benchmark, searched_sets):
    def digest_all():
        return {name: {p.digest() for p in ps} for name, ps in searched_sets.items()}

    digests = benchmark(digest_all)
    for name, dg in digests.items():
        assert len(dg) >= 2, f"{name}: patterns should differ within a set"


def test_bench_pattern_application_kernel(benchmark, searched_sets):
    """Benchmark applying a pattern set to a paper-scale (3200x800) matrix —
    the per-reconfiguration software cost."""
    rng = np.random.default_rng(0)
    w = rng.normal(size=(3200, 800))
    ps = searched_sets["l4"]
    mask, ids = benchmark(pattern_mask_for_matrix, w, ps)
    assert mask.shape == w.shape
    assert ids.size == (3200 // 12 + 1) * (800 // 12 + 1)
