"""Serving bench: batched + sharded engine vs the single-request path.

Two comparisons, one digest:

- **batching** (steady traffic) — ``max_batch=1`` with no artifact cache
  (the repo's original single-request behaviour) against ``max_batch=8``
  with the LRU artifact cache and time-sliced completions;
- **sharding** (bursty traffic) — the same batched engine on 1 vs
  ``--devices`` simulated devices, saturating bursts on a larger stack
  so compute rather than reconfiguration dominates, with per-shard
  throughput/utilization and the throughput scaling factor.

Reported: measured wall-clock throughput (req/s) for both paths and the
speedup, simulated throughput and p50/p95 latency against the SLO,
cache hit rate, multi-device scaling, and the worst absolute deviation
between batched/sharded and per-request outputs (must be exact to
double precision).  Machine-readable numbers land in
``benchmarks/results/BENCH_serve.json``; ``scripts/check_bench_regression.py``
re-runs this bench at the committed configuration and gates CI on the
*simulated* (deterministic) metrics.

Run directly (``python benchmarks/bench_serve.py [--smoke] [--devices N]``)
or via pytest for the asserted shape checks.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

import numpy as np

if __package__ in (None, ""):  # run as a script: python benchmarks/bench_serve.py
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro.serve import (
    ScenarioConfig,
    ServeReport,
    StackConfig,
    build_scenario,
    build_serving_stack,
)

from benchmarks.common import write_json_result, write_result

# Sharded comparison stack: dim 96 puts per-batch compute (~4 ms) above
# the pattern-switch cost (~5 ms warm, 0 after prewarm), so throughput
# scaling measures parallelism rather than reconfiguration overhead.
SHARDED_DIM = 96
SHARDED_BURST = 32
SHARDED_GAP_S = 2e-3


def serve_scenario(scenario: str, num_requests: int, *, max_batch: int,
                   use_cache: bool, seed: int = 0,
                   verify: bool = False) -> ServeReport:
    """Serve a named scenario through the shared demo stack."""
    _, workload, engine = build_serving_stack(StackConfig(
        seed=seed, max_batch=max_batch, use_cache=use_cache, verify=verify))
    trace = build_scenario(scenario, workload,
                           ScenarioConfig(num_requests=num_requests, seed=seed))
    return engine.serve(trace)


def serve_sharded(num_requests: int, devices: int, policy: str,
                  seed: int = 0, verify: bool = False) -> ServeReport:
    """Saturating bursty traffic across ``devices`` simulated shards.

    Both burst deadline factors resolve to the same sparsity rung so the
    1-vs-N comparison isolates compute scaling; ``prewarm=True`` models
    deploy-time mask provisioning on every device.
    """
    _, workload, engine = build_serving_stack(StackConfig(
        dim=SHARDED_DIM, seed=seed, devices=devices, policy=policy,
        prewarm=True, verify=verify))
    trace = build_scenario("bursty", workload,
                           ScenarioConfig(num_requests=num_requests, seed=seed),
                           burst_size=SHARDED_BURST, burst_gap_s=SHARDED_GAP_S,
                           deadline_factors=(1.7, 1.7))
    return engine.serve(trace)


def run_comparison(num_requests: int = 96, batch: int = 8, seed: int = 0,
                   devices: int = 4, policy: str = "least-loaded") -> dict:
    """Baseline vs batched vs sharded; returns the machine-readable digest."""
    baseline = serve_scenario("steady", num_requests, max_batch=1,
                              use_cache=False, seed=seed)
    batched = serve_scenario("steady", num_requests, max_batch=batch,
                             use_cache=True, seed=seed, verify=True)
    # cross-check: the batched engine must reproduce the baseline's outputs
    cross_err = max(
        (float(np.abs(b.output - s.output).max())
         for b, s in zip(sorted(batched.results, key=lambda r: r.request.req_id),
                         sorted(baseline.results, key=lambda r: r.request.req_id))),
        default=0.0)

    single = serve_sharded(num_requests, 1, policy, seed=seed)
    sharded = serve_sharded(num_requests, devices, policy, seed=seed, verify=True)
    makespan = sharded.sim_makespan_s
    return {
        "scenario": "steady",
        "requests": num_requests,
        "batch_size": batch,
        "seed": seed,
        "baseline_throughput_rps": baseline.throughput_rps,
        "batched_throughput_rps": batched.throughput_rps,
        "speedup": (batched.throughput_rps / baseline.throughput_rps
                    if baseline.throughput_rps else float("inf")),
        "sim_throughput_rps": batched.sim_throughput_rps,
        "p50_latency_ms": 1e3 * batched.p50_latency_s,
        "p95_latency_ms": 1e3 * batched.p95_latency_s,
        "slo_hit_rate": batched.deadline_hit_rate,
        "cache_hit_rate": batched.cache_stats.hit_rate,
        "mean_batch_size": batched.mean_batch_size,
        "max_batch_vs_single_error": batched.max_verify_error,
        "max_cross_engine_error": cross_err,
        "sharded": {
            "scenario": "bursty",
            "devices": devices,
            "policy": policy,
            "requests": num_requests,
            "sim_rps_single_device": single.sim_throughput_rps,
            "sim_rps_sharded": sharded.sim_throughput_rps,
            "scaling": (sharded.sim_throughput_rps / single.sim_throughput_rps
                        if single.sim_throughput_rps else float("inf")),
            "p50_latency_ms": 1e3 * sharded.p50_latency_s,
            "p95_latency_ms": 1e3 * sharded.p95_latency_s,
            "max_verify_error": sharded.max_verify_error,
            "per_shard": [s.as_dict(makespan) for s in sharded.shard_stats],
        },
    }


def render(digest: dict) -> str:
    sharded = digest["sharded"]
    shard_util = " ".join(f"{100 * s['utilization']:.0f}%"
                          for s in sharded["per_shard"])
    rows = [
        f"{'path':<22} {'req/s':>10} {'p50 ms':>8} {'p95 ms':>8} {'SLO':>6} {'cache':>6}",
        "-" * 66,
        (f"{'single-request':<22} {digest['baseline_throughput_rps']:>10.0f} "
         f"{'-':>8} {'-':>8} {'-':>6} {'-':>6}"),
        (f"{'batched (B=' + str(digest['batch_size']) + ', cached)':<22} "
         f"{digest['batched_throughput_rps']:>10.0f} "
         f"{digest['p50_latency_ms']:>8.2f} {digest['p95_latency_ms']:>8.2f} "
         f"{100 * digest['slo_hit_rate']:>5.0f}% "
         f"{100 * digest['cache_hit_rate']:>5.0f}%"),
        "",
        f"speedup: {digest['speedup']:.2f}x  "
        f"(exactness: batch-vs-single {digest['max_batch_vs_single_error']:.2e}, "
        f"cross-engine {digest['max_cross_engine_error']:.2e})",
        "",
        f"sharded bursty ({sharded['policy']}, prewarmed):",
        (f"  1 device  {sharded['sim_rps_single_device']:>10.0f} sim req/s   "
         f"{sharded['devices']} devices  {sharded['sim_rps_sharded']:>10.0f} sim req/s   "
         f"scaling {sharded['scaling']:.2f}x"),
        (f"  p50 {sharded['p50_latency_ms']:.2f} ms  p95 "
         f"{sharded['p95_latency_ms']:.2f} ms  shard utilization [{shard_util}]  "
         f"verify {sharded['max_verify_error']:.2e}"),
    ]
    return "\n".join(rows)


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------

def test_serve_shape():
    digest = run_comparison(num_requests=96, batch=8, devices=4)
    write_result("serve_throughput", render(digest))
    write_json_result("serve", digest)
    # acceptance: batching wins >= 3x, sharding >= 2.5x, cache serves the
    # steady traffic, and neither batching nor sharding changes any output
    assert digest["speedup"] >= 3.0
    assert digest["sharded"]["scaling"] >= 2.5
    assert digest["cache_hit_rate"] > 0.80
    assert digest["max_batch_vs_single_error"] < 1e-9
    assert digest["max_cross_engine_error"] < 1e-9
    assert digest["sharded"]["max_verify_error"] < 1e-9
    assert digest["slo_hit_rate"] == 1.0


def test_bench_batched_forward(benchmark):
    _, workload, engine = build_serving_stack(StackConfig(max_batch=8))
    trace = build_scenario("steady", workload, ScenarioConfig(num_requests=32))
    result = benchmark(engine.serve, trace)
    assert result.num_requests == 32


# ---------------------------------------------------------------------------
# script entry point (CI smoke job)
# ---------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast run for CI (48 requests)")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--devices", type=int, default=4,
                        help="device shards for the sharded comparison")
    parser.add_argument("--policy", default="least-loaded",
                        choices=["round-robin", "least-loaded"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    num = args.requests or (48 if args.smoke else 96)
    digest = run_comparison(num_requests=num, batch=args.batch, seed=args.seed,
                            devices=args.devices, policy=args.policy)
    write_result("serve_throughput", render(digest))
    write_json_result("serve", digest)
    ok = (digest["max_batch_vs_single_error"] < 1e-9
          and digest["sharded"]["max_verify_error"] < 1e-9
          and digest["cache_hit_rate"] > 0.5
          and digest["speedup"] > 1.0
          and (args.devices == 1 or digest["sharded"]["scaling"] > 1.0))
    print(f"smoke {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
