"""Figure 3: search-space exploration under loose vs tight constraints.

(a) Pareto frontiers of (weighted accuracy, #runs) for the loose (104 ms)
    and tight (94 ms) deadlines — the loose frontier should cover the
    tight one.
(b/c) Accuracy-vs-sparsity of the best solutions against the heuristic
    baseline, the original model and the BP backbone — RT3 should be at
    least as accurate as the heuristic at the same hardware budget.
"""

import numpy as np
import pytest

from repro.core.pareto import pareto_front
from repro.core.rt3 import RT3
from repro.hardware.workload import paper_scale_transformer

from benchmarks.common import fmt_pct, make_lm_task, small_rt3_config, write_result


@pytest.fixture(scope="module")
def explorations():
    out = {}
    for label, deadline in (("loose-104ms", 0.104), ("tight-94ms", 0.094)):
        task = make_lm_task(pretrain_epochs=6)
        rt3 = RT3(task, paper_scale_transformer(), small_rt3_config(deadline, episodes=6))
        res = rt3.search()
        # history[0] is the seeded heuristic baseline, evaluated from the
        # same backbone snapshot as every RL episode (fair comparison).
        heuristic = res.history[0]
        out[label] = (rt3, res, heuristic)
    return out


def render(explorations) -> str:
    lines = ["Fig 3(a): explored points (weighted accuracy, #runs) and fronts", ""]
    for label, (rt3, res, heuristic) in explorations.items():
        pts = [s.point for s in res.history if s.terms.deadline_met]
        lines.append(f"[{label}] {len(res.history)} episodes, {len(pts)} feasible")
        for aw, runs in sorted(pts):
            lines.append(f"   Aw={aw:.4f}  runs={runs:.3e}")
        front = pareto_front(pts) if pts else []
        lines.append(f"   Pareto front: {[(round(a, 4), f'{r:.2e}') for a, r in front]}")
        lines.append("")
    lines.append("Fig 3(b/c): best solution vs baselines")
    for label, (rt3, res, heuristic) in explorations.items():
        h_acc = heuristic.terms.weighted_accuracy
        lines.append(
            f"[{label}] original={fmt_pct(res.original_accuracy)} "
            f"BP-backbone={fmt_pct(res.backbone_accuracy)} "
            f"heuristic Aw={fmt_pct(h_acc) if h_acc == h_acc else 'n/a'} "
            f"RT3 Aw={fmt_pct(res.best.terms.weighted_accuracy)}"
        )
        names = sorted(res.final_accuracies, reverse=True)
        for n in names:
            total_s = rt3.space.total_sparsity(res.best.pattern_sets[n].sparsity)
            lines.append(f"   {n}: sparsity={fmt_pct(total_s)} "
                         f"accuracy={fmt_pct(res.final_accuracies[n])}")
    lines.append("")
    lines.append("paper shape: loose front covers tight; RT3 >= heuristic; "
                 "UB/RT3 can exceed the BP backbone accuracy")
    return "\n".join(lines)


def test_fig3_shape(benchmark, explorations):
    text = benchmark(render, explorations)
    write_result("fig3_pareto_exploration", text)

    loose = [s.point for s in explorations["loose-104ms"][1].history
             if s.terms.deadline_met]
    tight = [s.point for s in explorations["tight-94ms"][1].history
             if s.terms.deadline_met]
    assert loose and tight

    # tighter deadline forces more sparsity at every level
    rt3_l, res_l, _ = explorations["loose-104ms"]
    rt3_t, res_t, _ = explorations["tight-94ms"]
    for name in ("l3", "l4", "l6"):
        s_l = rt3_l.space.sparsity_candidates[name][0]
        s_t = rt3_t.space.sparsity_candidates[name][0]
        assert s_t >= s_l, name

    # RT3's searched solution is at least as good as the heuristic pick
    for label, (rt3, res, heuristic) in explorations.items():
        h = heuristic.terms.weighted_accuracy
        if h == h:  # heuristic was feasible (non-NaN)
            assert res.best.terms.weighted_accuracy >= h - 0.05, label


def test_fig3_loose_front_covers_tight(benchmark, explorations):
    """Fig 3(a)'s headline observation, restricted to the #runs range both
    searches explored (the tight search reaches sparsities — hence runs —
    the loose candidate grid does not contain) and tested statistically:
    with 6 episodes per search the fronts carry few points and ~1-point
    accuracy noise, so we require majority coverage; at paper scale
    (hundreds of episodes) coverage approaches 100%."""
    loose = [s.point for s in explorations["loose-104ms"][1].history
             if s.terms.deadline_met]
    tight = [s.point for s in explorations["tight-94ms"][1].history
             if s.terms.deadline_met]
    max_loose_runs = max(r for _, r in loose)
    tight_in_range = [(a, r) for a, r in tight if r <= max_loose_runs]
    slack = 0.03
    loose_relaxed = [(a + slack, r * (1 + slack)) for a, r in loose]
    assert tight_in_range, "searches explored disjoint runs ranges"

    def coverage_fraction():
        front = pareto_front(loose_relaxed)
        covered = sum(
            1 for p in pareto_front(tight_in_range)
            if any(q[0] >= p[0] and q[1] >= p[1] for q in front)
        )
        return covered / len(pareto_front(tight_in_range))

    assert benchmark(coverage_fraction) >= 0.6


def test_bench_pareto_front_kernel(benchmark):
    rng = np.random.default_rng(0)
    pts = [(float(a), float(r)) for a, r in
           zip(rng.uniform(0.5, 1.0, 500), rng.uniform(1e5, 5e6, 500))]
    front = benchmark(pareto_front, pts)
    assert front
