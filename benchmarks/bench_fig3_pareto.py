"""Figure 3: search-space exploration under loose vs tight constraints.

(a) Pareto frontiers of (weighted accuracy, #runs) for the loose (104 ms)
    and tight (94 ms) deadlines — the loose frontier should cover the
    tight one.
(b/c) Accuracy-vs-sparsity of the best solutions against the heuristic
    baseline, the original model and the BP backbone — RT3 should be at
    least as accurate as the heuristic at the same hardware budget.

Besides the rendered exploration report (informational,
``benchmarks/results/fig3_pareto_exploration.txt``), ``run_bench``
writes a machine-readable digest (``benchmarks/results/BENCH_fig3.json``)
per deadline: the feasible (Aw, #runs) points, the Pareto front, the
best weighted accuracy/reward, the heuristic baseline and the per-level
minimum sparsity candidates.  The search is seeded — the seed and
episode count are recorded in the digest — so
``scripts/check_bench_regression.py`` replays it and gates under drift
budgets: every committed Pareto point must stay covered, the best
weighted accuracy and reward must not regress beyond budget, feasible
counts must not shrink, and the sparsity grid must match exactly; wall
time is informational.
"""

import argparse
import pathlib
import sys
import time
from typing import List, Optional

import numpy as np

try:  # the CI regression gate imports run_bench in a numpy-only env
    import pytest
except ModuleNotFoundError:
    pytest = None

if __package__ in (None, ""):  # run as a script
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.pareto import pareto_front
from repro.core.rt3 import RT3
from repro.hardware.workload import paper_scale_transformer

from benchmarks.common import (
    canon, fmt_pct, make_lm_task, small_rt3_config, write_json_result, write_result,
)

DEADLINES = (("loose-104ms", 0.104), ("tight-94ms", 0.094))


def run_explorations(episodes: int = 6, seed: int = 0,
                     pretrain_epochs: int = 6) -> dict:
    """One seeded RT3 search per deadline; returns rich result objects."""
    out = {}
    for label, deadline in DEADLINES:
        task = make_lm_task(seed=seed, pretrain_epochs=pretrain_epochs)
        rt3 = RT3(task, paper_scale_transformer(),
                  small_rt3_config(deadline, episodes=episodes, seed=seed))
        res = rt3.search()
        # history[0] is the seeded heuristic baseline, evaluated from the
        # same backbone snapshot as every RL episode (fair comparison).
        heuristic = res.history[0]
        out[label] = (rt3, res, heuristic)
    return out


def run_bench(episodes: int = 6, seed: int = 0, pretrain_epochs: int = 6,
              explorations=None) -> dict:
    """Machine-readable Figure 3 digest (points, fronts, best solutions).

    ``explorations`` is an optional precomputed mapping so callers that
    already ran the searches (the pytest shape tests, ``main``) do not
    pay for them twice.
    """
    start = time.perf_counter()
    if explorations is None:
        explorations = run_explorations(episodes, seed, pretrain_epochs)
    wall_s = time.perf_counter() - start

    searches = {}
    for label, (rt3, res, heuristic) in explorations.items():
        pts = sorted(s.point for s in res.history if s.terms.deadline_met)
        front = pareto_front(pts) if pts else []
        h_aw = heuristic.terms.weighted_accuracy
        searches[label] = {
            "deadline_ms": 1e3 * rt3.cfg.deadline_s,
            "num_episodes": len(res.history),
            "num_feasible": len(pts),
            "feasible_points": [[canon(aw), canon(runs, 3)] for aw, runs in pts],
            "pareto_front": [[canon(aw), canon(runs, 3)] for aw, runs in front],
            "best_weighted_accuracy": canon(res.best.terms.weighted_accuracy),
            "best_reward": canon(res.best.terms.reward),
            "heuristic_weighted_accuracy": None if h_aw != h_aw else canon(h_aw),
            "original_accuracy": canon(res.original_accuracy),
            "backbone_accuracy": canon(res.backbone_accuracy),
            "min_sparsity": {
                name: canon(rt3.space.sparsity_candidates[name][0])
                for name in ("l3", "l4", "l6")},
        }
    return {
        "bench": "fig3_pareto",
        "seed": seed,
        "episodes": episodes,
        "pretrain_epochs": pretrain_epochs,
        "searches": searches,
        "wall_s": wall_s,
    }


def render(explorations) -> str:
    lines = ["Fig 3(a): explored points (weighted accuracy, #runs) and fronts", ""]
    for label, (rt3, res, heuristic) in explorations.items():
        pts = [s.point for s in res.history if s.terms.deadline_met]
        lines.append(f"[{label}] {len(res.history)} episodes, {len(pts)} feasible")
        for aw, runs in sorted(pts):
            lines.append(f"   Aw={aw:.4f}  runs={runs:.3e}")
        front = pareto_front(pts) if pts else []
        lines.append(f"   Pareto front: {[(round(a, 4), f'{r:.2e}') for a, r in front]}")
        lines.append("")
    lines.append("Fig 3(b/c): best solution vs baselines")
    for label, (rt3, res, heuristic) in explorations.items():
        h_acc = heuristic.terms.weighted_accuracy
        lines.append(
            f"[{label}] original={fmt_pct(res.original_accuracy)} "
            f"BP-backbone={fmt_pct(res.backbone_accuracy)} "
            f"heuristic Aw={fmt_pct(h_acc) if h_acc == h_acc else 'n/a'} "
            f"RT3 Aw={fmt_pct(res.best.terms.weighted_accuracy)}"
        )
        names = sorted(res.final_accuracies, reverse=True)
        for n in names:
            total_s = rt3.space.total_sparsity(res.best.pattern_sets[n].sparsity)
            lines.append(f"   {n}: sparsity={fmt_pct(total_s)} "
                         f"accuracy={fmt_pct(res.final_accuracies[n])}")
    lines.append("")
    lines.append("paper shape: loose front covers tight; RT3 >= heuristic; "
                 "UB/RT3 can exceed the BP backbone accuracy")
    return "\n".join(lines)


if pytest is not None:
    @pytest.fixture(scope="module")
    def explorations():
        return run_explorations()


def test_fig3_shape(benchmark, explorations):
    text = benchmark(render, explorations)
    write_result("fig3_pareto_exploration", text)
    write_json_result("fig3", run_bench(explorations=explorations))

    loose = [s.point for s in explorations["loose-104ms"][1].history
             if s.terms.deadline_met]
    tight = [s.point for s in explorations["tight-94ms"][1].history
             if s.terms.deadline_met]
    assert loose and tight

    # tighter deadline forces more sparsity at every level
    rt3_l, res_l, _ = explorations["loose-104ms"]
    rt3_t, res_t, _ = explorations["tight-94ms"]
    for name in ("l3", "l4", "l6"):
        s_l = rt3_l.space.sparsity_candidates[name][0]
        s_t = rt3_t.space.sparsity_candidates[name][0]
        assert s_t >= s_l, name

    # RT3's searched solution is at least as good as the heuristic pick
    for label, (rt3, res, heuristic) in explorations.items():
        h = heuristic.terms.weighted_accuracy
        if h == h:  # heuristic was feasible (non-NaN)
            assert res.best.terms.weighted_accuracy >= h - 0.05, label


def test_fig3_loose_front_covers_tight(benchmark, explorations):
    """Fig 3(a)'s headline observation, restricted to the #runs range both
    searches explored (the tight search reaches sparsities — hence runs —
    the loose candidate grid does not contain) and tested statistically:
    with 6 episodes per search the fronts carry few points and ~1-point
    accuracy noise, so we require majority coverage; at paper scale
    (hundreds of episodes) coverage approaches 100%."""
    loose = [s.point for s in explorations["loose-104ms"][1].history
             if s.terms.deadline_met]
    tight = [s.point for s in explorations["tight-94ms"][1].history
             if s.terms.deadline_met]
    max_loose_runs = max(r for _, r in loose)
    tight_in_range = [(a, r) for a, r in tight if r <= max_loose_runs]
    slack = 0.03
    loose_relaxed = [(a + slack, r * (1 + slack)) for a, r in loose]
    assert tight_in_range, "searches explored disjoint runs ranges"

    def coverage_fraction():
        front = pareto_front(loose_relaxed)
        covered = sum(
            1 for p in pareto_front(tight_in_range)
            if any(q[0] >= p[0] and q[1] >= p[1] for q in front)
        )
        return covered / len(pareto_front(tight_in_range))

    assert benchmark(coverage_fraction) >= 0.6


def test_bench_pareto_front_kernel(benchmark):
    rng = np.random.default_rng(0)
    pts = [(float(a), float(r)) for a, r in
           zip(rng.uniform(0.5, 1.0, 500), rng.uniform(1e5, 5e6, 500))]
    front = benchmark(pareto_front, pts)
    assert front


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast run for CI (3 episodes, short pretrain)")
    parser.add_argument("--episodes", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    episodes = args.episodes or (3 if args.smoke else 6)
    pretrain = 3 if args.smoke else 6
    explorations = run_explorations(episodes, args.seed, pretrain)
    write_result("fig3_pareto_exploration", render(explorations))
    digest = run_bench(episodes, args.seed, pretrain, explorations=explorations)
    write_json_result("fig3", digest)
    ok = all(s["num_feasible"] > 0 for s in digest["searches"].values())
    print(f"smoke {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
