"""Table III: AutoML results — UB vs RT3 accuracy, latency, interrupt time.

For each (task, deadline) pair the paper reports, run the RT3 search,
then train the winning pattern sets individually (UB) and jointly (RT3),
and compare accuracies and the run-time switch ("interrupt") cost.

Expected shape (paper):
- all sub-model latencies below the deadline;
- RT3 accuracy within a few points of UB (joint-training penalty small);
- RT3 interrupt in milliseconds, UB interrupt in tens of seconds
  (>1000x switch speedup).

Besides the rendered table (informational,
``benchmarks/results/table3_automl.txt``), ``run_bench`` writes a
machine-readable digest (``benchmarks/results/BENCH_table3.json``) per
experiment: per-level sparsity/latency/UB/RT3 scores and deadline
verdicts, the running-best reward trajectory, and the modelled
UB-reload vs RT3-switch interrupt costs.  The search is seeded — seed
and episode counts are recorded in the digest — so
``scripts/check_bench_regression.py`` replays it and gates under drift
budgets: deadline verdicts exactly, best reward / RT3 scores not
regressing beyond budget, the switch-speedup floor (committed floor is
authoritative), and the trajectory keeping its length; wall time is
informational.
"""

import argparse
import pathlib
import sys
import time
from typing import List, Optional

import numpy as np

try:  # the CI regression gate imports run_bench in a numpy-only env
    import pytest
except ModuleNotFoundError:
    pytest = None

if __package__ in (None, ""):  # run as a script
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.rt3 import RT3
from repro.core.trainer import TrainConfig
from repro.hardware.workload import paper_scale_distilbert, paper_scale_transformer

from benchmarks.common import (
    canon, fmt_pct, make_glue_task, make_lm_task, small_rt3_config,
    write_json_result, write_result,
)

EXPERIMENTS = [
    # (label, task factory, workload factory, deadline_s, paper interrupt UB/RT3)
    ("WikiText-2 (T:94ms)", make_lm_task, paper_scale_transformer, 0.094,
     ("51.82 s", "8.75 ms")),
    ("WikiText-2 (T:104ms)", make_lm_task, paper_scale_transformer, 0.104,
     ("51.82 s", "8.75 ms")),
    ("RTE (T:200ms)", lambda: make_glue_task("rte"), paper_scale_distilbert, 0.200,
     ("66.93 s", "44.90 ms")),
    ("STS-B (T:330ms)", lambda: make_glue_task("stsb"), paper_scale_distilbert, 0.330,
     ("66.94 s", "45.00 ms")),
]
SMOKE_LABELS = ["WikiText-2 (T:104ms)", "RTE (T:200ms)"]
# the paper's headline claim, pinned by the gate (committed floor wins)
MIN_SWITCH_SPEEDUP = 1000.0


def run_experiments(labels=None, episodes: int = 4, seed: int = 0) -> dict:
    """One seeded search + UB training per experiment; rich results."""
    results = {}
    for label, task_factory, wl_factory, deadline, paper_interrupt in EXPERIMENTS:
        if labels is not None and label not in labels:
            continue
        task = task_factory()
        cfg = small_rt3_config(deadline, episodes=episodes, seed=seed,
                               min_accuracy=-1.0 if "STS-B" in label else 0.0)
        rt3 = RT3(task, wl_factory(), cfg)
        res = rt3.search()
        ub = rt3.upper_bound(res.best.pattern_sets, TrainConfig(epochs=2, lr=2e-3))
        results[label] = (rt3, res, ub, paper_interrupt)
    return results


def run_bench(labels=None, episodes: int = 4, seed: int = 0,
              results=None) -> dict:
    """Machine-readable Table III digest (per-experiment rows + trajectories).

    ``results`` is an optional precomputed mapping so callers that
    already ran the searches (the pytest shape test, ``main``) do not
    pay for them twice.
    """
    start = time.perf_counter()
    if results is None:
        results = run_experiments(labels, episodes, seed)
    wall_s = time.perf_counter() - start

    experiments = {}
    for label, (rt3, res, ub, _) in results.items():
        deadline_ms = 1e3 * rt3.cfg.deadline_s
        names = sorted(res.final_accuracies, reverse=True)  # M1 = highest level
        trajectory, best = [], -np.inf
        for sol in res.history:
            if np.isfinite(sol.terms.reward):
                best = max(best, sol.terms.reward)
            trajectory.append(canon(best) if np.isfinite(best) else None)
        experiments[label] = {
            "deadline_ms": deadline_ms,
            "levels": [{
                "level": n,
                "sparsity": canon(rt3.space.total_sparsity(
                    res.best.pattern_sets[n].sparsity)),
                "latency_ms": canon(res.final_latencies_ms[n], 6),
                "ub_score": canon(ub[n]),
                "rt3_score": canon(res.final_accuracies[n]),
                "meets_deadline": bool(res.final_latencies_ms[n]
                                       <= deadline_ms + 1e-6),
            } for n in names],
            "best_reward": canon(res.best.terms.reward),
            "best_reward_trajectory": trajectory,
            "ub_reload_ms": canon(res.reload_ms, 6),
            "rt3_switch_ms": canon(res.switch_ms, 6),
            "switch_speedup": canon(res.reload_ms / res.switch_ms, 3),
        }
    return {
        "bench": "table3_automl",
        "seed": seed,
        "episodes": episodes,
        "experiments": experiments,
        "min_switch_speedup": MIN_SWITCH_SPEEDUP,
        "wall_s": wall_s,
    }


def render(results) -> str:
    lines = []
    for label, (rt3, res, ub, paper_interrupt) in results.items():
        lines.append(f"--- {label} ---")
        names = sorted(res.final_accuracies, reverse=True)  # M1 = highest level
        header = f"{'':<14}" + "".join(f"{'M' + str(i + 1):>10}" for i in range(len(names)))
        lines.append(header)
        sp = [rt3.space.total_sparsity(res.best.pattern_sets[n].sparsity) for n in names]
        lines.append(f"{'Sparsity':<14}" + "".join(f"{fmt_pct(s):>10}" for s in sp))
        lines.append(f"{'Latency (ms)':<14}" + "".join(
            f"{res.final_latencies_ms[n]:>10.2f}" for n in names))
        lines.append(f"{'UB score':<14}" + "".join(f"{ub[n]:>10.4f}" for n in names))
        lines.append(f"{'RT3 score':<14}" + "".join(
            f"{res.final_accuracies[n]:>10.4f}" for n in names))
        gaps = [ub[n] - res.final_accuracies[n] for n in names]
        lines.append(f"{'Score gap':<14}" + "".join(f"{g:>+10.4f}" for g in gaps))
        lines.append(f"UB interrupt  : {res.reload_ms / 1e3:8.2f} s   (paper {paper_interrupt[0]})")
        lines.append(f"RT3 interrupt : {res.switch_ms:8.2f} ms  (paper {paper_interrupt[1]})")
        lines.append(f"switch speedup: {res.reload_ms / res.switch_ms:8.0f}x  (paper >1000x)")
        lines.append("")
    return "\n".join(lines)


if pytest is not None:
    @pytest.fixture(scope="module")
    def automl_results():
        return run_experiments()


def test_table3_shape(benchmark, automl_results):
    text = benchmark(render, automl_results)
    write_result("table3_automl", text)
    write_json_result("table3", run_bench(results=automl_results))
    for label, (rt3, res, ub, _) in automl_results.items():
        deadline_ms = rt3.cfg.deadline_s * 1e3
        # (a) every deployed sub-model satisfies the timing constraint
        if res.best.terms.deadline_met:
            for lat in res.final_latencies_ms.values():
                assert lat <= deadline_ms + 1e-6, label
        # (b) the interrupt story: ms vs tens of seconds
        assert res.switch_ms < 45.0 + 5.0, label
        assert res.reload_ms > 1000.0, label
        assert res.reload_ms / res.switch_ms > 1000.0, label
        # (c) joint training tracks UB within a coarse margin at tiny scale
        names = list(res.final_accuracies)
        mean_gap = float(np.mean([ub[n] - res.final_accuracies[n] for n in names]))
        assert mean_gap < 0.25, f"{label}: mean UB-RT3 gap {mean_gap:.3f}"


def test_bench_rt3_episode(benchmark):
    """Benchmark one full search episode (sample -> hw predict -> reward)."""
    task = make_lm_task(pretrain_epochs=1)
    cfg = small_rt3_config(0.104, episodes=1)
    rt3 = RT3(task, paper_scale_transformer(), cfg)
    report, acc_m, acc_c = rt3.run_level1()
    rt3.build_space()
    reward_cfg = rt3._reward_config(acc_c)

    def one_episode():
        episode = rt3.controller.sample()
        sets = rt3.controller.decode(episode)
        terms = rt3.evaluate_sets(sets, reward_cfg)
        rt3.controller.update(episode, terms.reward)
        return terms

    terms = benchmark.pedantic(one_episode, rounds=3, iterations=1)
    assert np.isfinite(terms.reward)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast run for CI (2 experiments, 2 episodes)")
    parser.add_argument("--episodes", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    labels = SMOKE_LABELS if args.smoke else None
    episodes = args.episodes or (2 if args.smoke else 4)
    results = run_experiments(labels, episodes, args.seed)
    write_result("table3_automl", render(results))
    digest = run_bench(labels, episodes, args.seed, results=results)
    write_json_result("table3", digest)
    ok = all(e["switch_speedup"] >= MIN_SWITCH_SPEEDUP
             for e in digest["experiments"].values())
    print(f"smoke {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
