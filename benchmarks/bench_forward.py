"""Forward-plane bench: eager autograd Tensor forward vs compiled ndarray plan.

The serving stack's hot loop is one forward pass per micro-batch.  This
bench measures what :func:`repro.nn.inference.compile_inference` buys on
that path across three model shapes (the serving stack's TransformerLM, a
wider TransformerLM, and a DistilBERT classifier) × batch sizes:

- **wall clock** — best-of-N loops of the eager Tensor forward (under
  ``no_grad``, exactly what ``run_padded`` used to run) vs the compiled
  plan;
- **allocation counts** — graph nodes the eager path builds per forward
  (every ``Tensor`` carries data + closure + bookkeeping) vs the
  compiled plan's scratch-pool misses, which drop to **zero** per
  forward once the pool is warm;
- **exactness** — the float64 plan must reproduce the eager outputs
  **bit for bit** (``==``, not allclose); the opt-in float32 mode's
  relative deviation is recorded and bounded at its documented 1e-3
  tolerance.

The gated acceptance case is the serve shape at batch 1 — the paper's
per-inference on-device deadline config (and the single-request serving
path) — with a ``MIN_SPEEDUP`` floor of 2x; the batched cases are
reported alongside.  Machine-readable numbers land in
``benchmarks/results/BENCH_forward.json``;
``scripts/check_bench_regression.py`` re-runs the bench at the committed
configuration and fails on any exactness breach, node/alloc-count drift,
a float32 tolerance breach, or the acceptance speedup dropping below the
committed floor.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import List, Optional

import numpy as np

if __package__ in (None, ""):  # run as a script
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.nn.distilbert import DistilBertConfig, DistilBertForSequenceTask
from repro.nn.inference import compile_inference
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.tensor.tensor import Tensor, no_grad

from benchmarks.common import write_json_result, write_result

MIN_SPEEDUP = 2.0
ACCEPTANCE_CASE = "serve.b1"
FLOAT32_TOL = 1e-3
BATCHES = (1, 8)


def build_models(seed: int = 0):
    """The three benched shapes; ``serve`` matches the serving stack."""
    return [
        ("serve", 12, TransformerLM(TransformerConfig(
            vocab_size=60, dim=32, num_heads=2, ffn_dim=64,
            max_len=16, dropout=0.0, seed=seed)).eval()),
        ("wide", 16, TransformerLM(TransformerConfig(
            vocab_size=120, dim=64, num_heads=4, ffn_dim=128,
            max_len=24, dropout=0.0, seed=seed)).eval()),
        ("distilbert", 16, DistilBertForSequenceTask(DistilBertConfig(
            vocab_size=80, dim=48, num_heads=4, ffn_dim=96, num_layers=3,
            max_len=24, dropout=0.0, seed=seed)).eval()),
    ]


def count_tensor_nodes(forward) -> int:
    """Autograd graph nodes one eager forward allocates (Tensor count)."""
    counter = [0]
    orig = Tensor.__init__

    def spy(self, *args, **kwargs):
        counter[0] += 1
        orig(self, *args, **kwargs)

    Tensor.__init__ = spy
    try:
        forward()
    finally:
        Tensor.__init__ = orig
    return counter[0]


def best_of(forward, repeats: int, inner: int) -> float:
    """Best mean milliseconds per call over ``repeats`` timed loops."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            forward()
        best = min(best, (time.perf_counter() - start) / inner)
    return 1e3 * best


def run_bench(smoke: bool = False, seed: int = 0, repeats: int = 5) -> dict:
    """Measure every shape x batch; returns the machine-readable digest."""
    inner = 20 if smoke else 50
    rng = np.random.default_rng(seed)
    cases = {}
    for shape_name, seq_len, model in build_models(seed):
        vocab = model.cfg.vocab_size
        plan = compile_inference(model)
        plan32 = compile_inference(model, dtype="float32")
        for batch in BATCHES:
            tokens = rng.integers(1, vocab, size=(batch, seq_len))

            def tensor_forward():
                with no_grad():
                    return model(tokens).data

            def compiled_forward():
                return plan(tokens)

            ref = tensor_forward()
            got = compiled_forward()  # also warms the scratch pool
            max_err = float(np.abs(ref - got).max()) if ref.size else 0.0
            got32 = plan32(tokens)
            rel32 = float(np.abs(got32 - ref).max()
                          / max(float(np.abs(ref).max()), 1e-30))
            misses_before = plan.pool.misses
            compiled_forward()
            steady_allocs = plan.pool.misses - misses_before
            tensor_ms = best_of(tensor_forward, repeats, inner)
            compiled_ms = best_of(compiled_forward, repeats, inner)
            cases[f"{shape_name}.b{batch}"] = {
                "model": type(model).__name__,
                "batch": batch,
                "seq_len": seq_len,
                "tensor_ms": tensor_ms,
                "compiled_ms": compiled_ms,
                "speedup": tensor_ms / compiled_ms,
                "max_abs_err": max_err,
                "exact": bool(np.array_equal(ref, got)),
                "tensor_nodes": count_tensor_nodes(tensor_forward),
                "compiled_steady_allocs": int(steady_allocs),
                "compiled_warm_allocs": int(misses_before),
                "float32_max_rel_err": rel32,
            }
    acceptance = cases[ACCEPTANCE_CASE]
    return {
        "bench": "forward",
        "smoke": smoke,
        "seed": seed,
        "repeats": repeats,
        "cases": cases,
        "acceptance": {
            "case": ACCEPTANCE_CASE,
            "speedup": acceptance["speedup"],
            "min_speedup": MIN_SPEEDUP,
            "exact": acceptance["exact"],
            "float32_tol": FLOAT32_TOL,
        },
    }


def render(digest: dict) -> str:
    rows = [
        f"{'case':<16} {'tensor ms':>10} {'compiled ms':>12} {'speedup':>8} "
        f"{'nodes':>6} {'allocs':>7} {'exact':>6}",
        "-" * 72,
    ]
    for name, case in digest["cases"].items():
        rows.append(
            f"{name:<16} {case['tensor_ms']:>10.3f} "
            f"{case['compiled_ms']:>12.3f} {case['speedup']:>7.2f}x "
            f"{case['tensor_nodes']:>6} {case['compiled_steady_allocs']:>7} "
            f"{'yes' if case['exact'] else 'NO':>6}")
    acc = digest["acceptance"]
    rows.append("")
    rows.append(f"acceptance ({acc['case']}): {acc['speedup']:.2f}x "
                f"(floor {acc['min_speedup']}x), float64 bit-exact: "
                f"{acc['exact']}")
    rows.append("nodes = autograd Tensors per eager forward; allocs = "
                "compiled scratch-pool misses per steady-state forward")
    return "\n".join(rows)


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------

def test_forward_shape():
    digest = run_bench(repeats=3)
    write_result("forward_fastpath", render(digest))
    write_json_result("forward", digest)
    for name, case in digest["cases"].items():
        assert case["exact"], f"{name}: compiled forward not bit-identical"
        assert case["max_abs_err"] == 0.0
        assert case["compiled_steady_allocs"] == 0, name
        assert case["float32_max_rel_err"] < FLOAT32_TOL, name
    assert digest["acceptance"]["speedup"] >= MIN_SPEEDUP


# ---------------------------------------------------------------------------
# script entry point (CI smoke job)
# ---------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short timed loops for CI")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    repeats = args.repeats or (3 if args.smoke else 5)
    digest = run_bench(smoke=args.smoke, seed=args.seed, repeats=repeats)
    write_result("forward_fastpath", render(digest))
    write_json_result("forward", digest)
    ok = (all(c["exact"] and c["compiled_steady_allocs"] == 0
              and c["float32_max_rel_err"] < FLOAT32_TOL
              for c in digest["cases"].values())
          and digest["acceptance"]["speedup"] >= MIN_SPEEDUP)
    print(f"smoke {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
