"""Ablations over RT3's own design choices (beyond the paper's Table IV).

The paper fixes several knobs after informal discussion; these benches
sweep them and check the direction of each trade-off:

- **pattern size** (Section III-C: "a small pattern will lead to
  computation overhead, while a large pattern suffers from the low
  accuracy") — predicted latency overhead must grow as patterns shrink;
- **governor thresholds** — spending more energy at low V/F levels buys
  more runs (V² scaling) at the cost of per-inference speed;
- **theta / m (search-space size)** — a larger space can only improve the
  best reachable candidate (monotone non-decreasing best reward);
- **kernel cost ordering** — the executable sparse kernels reproduce the
  block ~ pattern << irregular ordering the latency model assumes.

Besides the rendered sweep tables (informational,
``benchmarks/results/ablation_*.txt``), ``run_bench`` writes a
machine-readable digest (``benchmarks/results/BENCH_ablations.json``)
with one section per sweep.  The pattern-size, governor and kernel-cost
sections are deterministic functions of the models, so
``scripts/check_bench_regression.py`` gates their row sets by exact
equality; the search-space section is seeded and search-driven, so its
best rewards are gated under a drift budget; wall time is
informational.
"""

import argparse
import pathlib
import sys
import time
from typing import List, Optional

import numpy as np

try:  # the CI regression gate imports run_bench in a numpy-only env
    import pytest
except ModuleNotFoundError:
    pytest = None

if __package__ in (None, ""):  # run as a script
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.hardware.dvfs import BatteryGovernor, DVFSTable
from repro.hardware.energy_sim import EnergySimulator, ModeAssignment
from repro.hardware.latency import LatencyModel, SparsityKind
from repro.hardware.workload import paper_scale_transformer

from benchmarks.common import canon, write_json_result, write_result

PATTERN_SIZES = (10, 25, 50, 100, 200, 400)
GOVERNOR_THRESHOLDS = ((0.05, 0.15), (0.15, 0.40), (0.30, 0.60), (0.50, 0.80))
SPACE_SIZES = ((1, 1), (2, 2), (3, 3))


# ---------------------------------------------------------------------------
# pattern-size sweep
# ---------------------------------------------------------------------------

def pattern_size_sweep():
    wl = paper_scale_transformer()
    lm = LatencyModel()
    l6 = DVFSTable()["l6"]
    rows = []
    for psize in PATTERN_SIZES:
        lat = lm.latency_ms(wl, l6, 0.75, SparsityKind.PATTERN, pattern_size=psize)
        overhead = lm.breakdown(wl, 0.75, SparsityKind.PATTERN, psize).overhead_cycles
        rows.append((psize, lat, overhead))
    return rows


def render_pattern_size(rows) -> str:
    lines = [f"{'psize':>6} {'lat(ms)':>9} {'overhead cycles':>16}"]
    for psize, lat, ovh in rows:
        lines.append(f"{psize:>6} {lat:>9.2f} {ovh:>16.3e}")
    lines.append("")
    lines.append("paper: psize=100 chosen as the efficiency/accuracy sweet spot;")
    lines.append("small patterns pay per-block dispatch overhead")
    return "\n".join(lines)


def test_pattern_size_overhead_tradeoff(benchmark):
    rows = benchmark(pattern_size_sweep)
    write_result("ablation_pattern_size", render_pattern_size(rows))

    overheads = [ovh for _, _, ovh in rows]
    assert all(a >= b for a, b in zip(overheads, overheads[1:])), \
        "per-block overhead must shrink as patterns grow"
    # at psize=10 the overhead is material; at 100 it is negligible
    lat10 = rows[0][1]
    lat100 = rows[3][1]
    assert lat10 > lat100 * 1.05


# ---------------------------------------------------------------------------
# governor threshold sweep
# ---------------------------------------------------------------------------

def governor_sweep():
    wl = paper_scale_transformer()
    table = DVFSTable().subset(["l3", "l4", "l6"])
    results = []
    for thresholds in GOVERNOR_THRESHOLDS:
        sim = EnergySimulator(wl, table, governor=BatteryGovernor(table, thresholds))
        campaign = sim.run_campaign(
            [ModeAssignment("l6", 0.6426, SparsityKind.BLOCK),
             ModeAssignment("l4", 0.6426, SparsityKind.BLOCK),
             ModeAssignment("l3", 0.6426, SparsityKind.BLOCK)],
            deadline_s=0.115, charge_switches=False)
        low_energy_fraction = sum(sim.governor.energy_fractions()[:2])
        results.append((thresholds, low_energy_fraction, campaign.total_runs))
    return results


def render_governor(results) -> str:
    lines = [f"{'thresholds':>14} {'low-level energy':>17} {'#runs':>12}"]
    for thr, frac, runs in results:
        lines.append(f"{str(thr):>14} {frac:>16.0%} {runs:>12.3e}")
    lines.append("")
    lines.append("more energy at low-V levels -> more runs (V^2 scaling), at the")
    lines.append("price of slower per-inference latency while in those modes")
    return "\n".join(lines)


def test_governor_thresholds_monotone_runs(benchmark):
    results = benchmark(governor_sweep)
    write_result("ablation_governor_thresholds", render_governor(results))

    runs = [r for _, _, r in results]
    assert all(a < b for a, b in zip(runs, runs[1:]))


# ---------------------------------------------------------------------------
# search-space size (theta x m)
# ---------------------------------------------------------------------------

def space_size_sweep(episodes: int = 3, seed: int = 0,
                     pretrain_epochs: int = 3):
    from benchmarks.common import make_lm_task, small_rt3_config
    from repro.core.rt3 import RT3
    from repro.core.search_space import SearchSpaceConfig

    results = []
    for theta, m in SPACE_SIZES:
        task = make_lm_task(seed=seed, pretrain_epochs=pretrain_epochs)
        cfg = small_rt3_config(0.104, episodes=episodes, seed=seed)
        cfg.space = SearchSpaceConfig(pattern_size=8, theta=theta,
                                      patterns_per_set=m, seed=seed)
        rt3 = RT3(task, paper_scale_transformer(), cfg)
        res = rt3.search()
        best = max(s.terms.reward for s in res.history)
        results.append((theta, m, best, res.best.terms.weighted_accuracy))
    return results


if pytest is not None:
    @pytest.fixture(scope="module")
    def space_size_results():
        return space_size_sweep()


def render_space_size(space_size_results) -> str:
    lines = [f"{'theta':>6} {'m':>3} {'best reward':>12} {'best Aw':>9}"]
    for theta, m, reward, aw in space_size_results:
        lines.append(f"{theta:>6} {m:>3} {reward:>12.3f} {aw:>9.3f}")
    lines.append("")
    lines.append("a richer space cannot hurt the best feasible candidate;")
    lines.append("paper uses theta x N sparsities and m patterns per set")
    return "\n".join(lines)


def test_search_space_size(benchmark, space_size_results):
    write_result("ablation_search_space_size",
                 benchmark(render_space_size, space_size_results))
    # all configurations found a feasible solution
    for _, _, reward, aw in space_size_results:
        assert np.isfinite(reward)
        assert aw == aw  # not NaN


# ---------------------------------------------------------------------------
# executable kernels reproduce the latency model's ordering
# ---------------------------------------------------------------------------

def kernel_cost_sweep():
    from repro.core.block_pruning import BlockPruningConfig, block_prune_matrix
    from repro.core.patterns import pattern_mask_for_matrix, random_pattern_set
    from repro.sparse import (
        block_matmul, coo_matmul, dense_matmul, from_dense_block,
        from_dense_coo, from_dense_pattern, pattern_matmul,
    )

    rng = np.random.default_rng(0)
    w = rng.normal(size=(128, 96))
    x = rng.normal(size=(96, 8))
    bp_mask = block_prune_matrix(w, BlockPruningConfig(num_blocks=4, rate=0.6))
    ps = random_pattern_set(8, 0.6, 4, rng)
    pp_mask, ids = pattern_mask_for_matrix(w, ps)

    _, dense_c = dense_matmul(w, x)
    _, blk_c = block_matmul(from_dense_block(w * bp_mask, 4), x)
    _, pat_c = pattern_matmul(
        from_dense_pattern(w * pp_mask, [p.mask for p in ps], ids), x)
    _, coo_c = coo_matmul(from_dense_coo(w * pp_mask), x)
    return dense_c, blk_c, pat_c, coo_c


def render_kernel_costs(dense_c, blk_c, pat_c, coo_c) -> str:
    lines = [
        f"{'kernel':<10} {'macs':>10} {'index ops':>10} {'weighted':>12}",
        f"{'dense':<10} {dense_c.macs:>10} {dense_c.index_ops:>10} {dense_c.weighted_total():>12.0f}",
        f"{'block':<10} {blk_c.macs:>10} {blk_c.index_ops:>10} {blk_c.weighted_total():>12.0f}",
        f"{'pattern':<10} {pat_c.macs:>10} {pat_c.index_ops:>10} {pat_c.weighted_total():>12.0f}",
        f"{'coo':<10} {coo_c.macs:>10} {coo_c.index_ops:>10} {coo_c.weighted_total():>12.0f}",
        "",
        "matches the latency model: block ~ pattern << irregular (COO)",
    ]
    return "\n".join(lines)


def test_kernel_cost_ordering(benchmark):
    dense_c, blk_c, pat_c, coo_c = benchmark(kernel_cost_sweep)
    write_result("ablation_kernel_costs",
                 render_kernel_costs(dense_c, blk_c, pat_c, coo_c))

    assert blk_c.weighted_total() < dense_c.weighted_total()
    assert pat_c.weighted_total() < dense_c.weighted_total()
    assert coo_c.weighted_total() > pat_c.weighted_total()
    assert coo_c.weighted_total() > blk_c.weighted_total()


# ---------------------------------------------------------------------------
# machine-readable digest for the regression gate
# ---------------------------------------------------------------------------

def run_bench(episodes: int = 3, seed: int = 0, pretrain_epochs: int = 3,
              space_results=None) -> dict:
    """Machine-readable design-ablation digest (one section per sweep).

    ``space_results`` is an optional precomputed search-space sweep so
    callers that already ran it (the pytest fixture, ``main``) do not
    pay for the searches twice.
    """
    start = time.perf_counter()
    if space_results is None:
        space_results = space_size_sweep(episodes, seed, pretrain_epochs)
    dense_c, blk_c, pat_c, coo_c = kernel_cost_sweep()
    psize_rows = pattern_size_sweep()
    governor_rows = governor_sweep()
    wall_s = time.perf_counter() - start

    return {
        "bench": "design_ablations",
        "seed": seed,
        "episodes": episodes,
        "pretrain_epochs": pretrain_epochs,
        "pattern_size": [{
            "psize": psize,
            "latency_ms": canon(lat, 6),
            "overhead_cycles": canon(ovh, 3),
        } for psize, lat, ovh in psize_rows],
        "governor": [{
            "thresholds": list(thr),
            "low_energy_fraction": canon(frac),
            "total_runs": canon(runs, 3),
        } for thr, frac, runs in governor_rows],
        "kernels": [{
            "kernel": name,
            "macs": int(c.macs),
            "index_ops": int(c.index_ops),
            "weighted_total": canon(c.weighted_total(), 3),
        } for name, c in (("dense", dense_c), ("block", blk_c),
                          ("pattern", pat_c), ("coo", coo_c))],
        "space_size": [{
            "theta": theta,
            "m": m,
            "best_reward": canon(reward),
            "best_weighted_accuracy": canon(aw),
        } for theta, m, reward, aw in space_results],
        "wall_s": wall_s,
    }


def test_ablations_digest(space_size_results):
    digest = run_bench(space_results=space_size_results)
    write_json_result("ablations", digest)
    assert len(digest["kernels"]) == 4
    assert len(digest["pattern_size"]) == len(PATTERN_SIZES)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast run for CI (1 search episode)")
    parser.add_argument("--episodes", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    episodes = args.episodes or (1 if args.smoke else 3)
    pretrain = 1 if args.smoke else 3
    space_results = space_size_sweep(episodes, args.seed, pretrain)
    write_result("ablation_pattern_size", render_pattern_size(pattern_size_sweep()))
    write_result("ablation_governor_thresholds", render_governor(governor_sweep()))
    write_result("ablation_kernel_costs", render_kernel_costs(*kernel_cost_sweep()))
    write_result("ablation_search_space_size", render_space_size(space_results))
    digest = run_bench(episodes, args.seed, pretrain, space_results=space_results)
    write_json_result("ablations", digest)
    overheads = [r["overhead_cycles"] for r in digest["pattern_size"]]
    runs = [r["total_runs"] for r in digest["governor"]]
    weighted = {r["kernel"]: r["weighted_total"] for r in digest["kernels"]}
    ok = (all(a >= b for a, b in zip(overheads, overheads[1:]))
          and all(a < b for a, b in zip(runs, runs[1:]))
          and weighted["coo"] > weighted["pattern"]
          and weighted["block"] < weighted["dense"])
    print(f"smoke {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
