"""Shared scaffolding for the per-table/figure benchmark harnesses.

Each ``bench_*`` module reproduces one table or figure of the paper at
laptop scale: it builds the experiment, prints the same rows/series the
paper reports (plus the paper's own numbers for comparison), writes the
rendered table under ``benchmarks/results/`` and benchmarks the key
computational kernel with pytest-benchmark.

Absolute numbers are not expected to match the authors' testbed; the
*shape* (who wins, by roughly what factor) is asserted in the tests.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict


from repro.core.controller import ControllerConfig
from repro.core.block_pruning import BlockPruningConfig
from repro.core.rt3 import RT3Config
from repro.core.search_space import SearchSpaceConfig
from repro.core.tasks import GlueTask, LMTask
from repro.core.trainer import TrainConfig, train_plain
from repro.data.glue import GlueTaskConfig, SyntheticGlueTask
from repro.data.wikitext import SyntheticWikiText, WikiTextConfig
from repro.nn.distilbert import DistilBertConfig, DistilBertForSequenceTask
from repro.nn.transformer import TransformerConfig, TransformerLM

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


def write_json_result(name: str, payload: Dict) -> pathlib.Path:
    """Persist a machine-readable bench result as ``BENCH_<name>.json``.

    These files give later PRs a perf trajectory to regress against:
    CI archives them, and a future bench can diff its numbers against
    the committed history.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench] machine-readable result -> {path}")
    return path


# ---------------------------------------------------------------------------
# experiment builders (kept deliberately small so benches stay minutes-fast)
# ---------------------------------------------------------------------------

def make_lm_task(seed: int = 0, pretrain_epochs: int = 4) -> LMTask:
    """A trained tiny WikiText-2-style LM task."""
    model = TransformerLM(TransformerConfig(
        vocab_size=60, dim=32, num_heads=2, ffn_dim=64,
        num_encoder_layers=2, num_decoder_layers=1,
        max_len=16, dropout=0.0, seed=seed,
    ))
    corpus = SyntheticWikiText(WikiTextConfig(vocab_size=60, num_tokens=6000, seed=7))
    task = LMTask(model, corpus, seq_len=12, batch_size=8,
                  max_train_batches=20, max_eval_batches=6)
    if pretrain_epochs:
        train_plain(task, epochs=pretrain_epochs, lr=3e-3)
    return task


def make_glue_task(task_name: str, seed: int = 0, pretrain_epochs: int = 4) -> GlueTask:
    """A trained tiny DistilBERT GLUE task."""
    data = SyntheticGlueTask(GlueTaskConfig(
        task=task_name, vocab_size=80, num_train=128, num_eval=64,
        seq_len=16, seed=11,
    ))
    cfg = DistilBertConfig(
        vocab_size=80, dim=32, num_heads=2, ffn_dim=64, num_layers=2,
        max_len=24, dropout=0.0, num_labels=max(data.num_labels, 2),
        is_regression=data.is_regression, seed=seed,
    )
    model = DistilBertForSequenceTask(cfg)
    glue = GlueTask(model, data, batch_size=16, max_train_batches=8)
    if pretrain_epochs:
        train_plain(glue, epochs=pretrain_epochs, lr=3e-3)
    return glue


def small_rt3_config(deadline_s: float, episodes: int = 6, seed: int = 0,
                     min_accuracy: float = 0.0) -> RT3Config:
    """RT3 configuration shared by the search-driven benches."""
    return RT3Config(
        deadline_s=deadline_s,
        episodes=episodes,
        min_accuracy=min_accuracy,
        bp=BlockPruningConfig(num_blocks=2, rate=0.3, seed=seed),
        space=SearchSpaceConfig(pattern_size=8, theta=3, patterns_per_set=3,
                                seed=seed),
        controller=ControllerConfig(seed=seed),
        episode_train=TrainConfig(epochs=1, lr=2e-3),
        finetune_train=TrainConfig(epochs=2, lr=2e-3),
        backbone_finetune_epochs=2,
        seed=seed,
    )


def fmt_pct(x: float) -> str:
    return f"{100 * x:.2f}%"


def fmt_runs(x: float) -> str:
    return f"{x:.3e}"
