"""Shared scaffolding for the per-table/figure benchmark harnesses.

Each ``bench_*`` module reproduces one table or figure of the paper at
laptop scale: it builds the experiment, prints the same rows/series the
paper reports (plus the paper's own numbers for comparison), writes the
rendered table under ``benchmarks/results/`` (human-readable,
informational — never gated) and a machine-readable ``BENCH_<name>.json``
digest that ``scripts/check_bench_regression.py`` diffs against the
committed baseline on every CI run.

Absolute numbers are not expected to match the authors' testbed; the
*shape* (who wins, by roughly what factor) is asserted in the tests and
pinned by the regression gate's comparators.  This module also hosts the
shared comparator helpers (row-set equality, drift budgets, the
missing-metric conventions) so the per-bench comparators in the gate
script stay declarative.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List


from repro.core.controller import ControllerConfig
from repro.core.block_pruning import BlockPruningConfig
from repro.core.rt3 import RT3Config
from repro.core.search_space import SearchSpaceConfig
from repro.core.tasks import GlueTask, LMTask
from repro.core.trainer import TrainConfig, train_plain
from repro.data.glue import GlueTaskConfig, SyntheticGlueTask
from repro.data.wikitext import SyntheticWikiText, WikiTextConfig
from repro.nn.distilbert import DistilBertConfig, DistilBertForSequenceTask
from repro.nn.transformer import TransformerConfig, TransformerLM

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


def write_json_result(name: str, payload: Dict) -> pathlib.Path:
    """Persist a machine-readable bench result as ``BENCH_<name>.json``.

    These files give later PRs a perf trajectory to regress against:
    CI archives them, and a future bench can diff its numbers against
    the committed history.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench] machine-readable result -> {path}")
    return path


# ---------------------------------------------------------------------------
# experiment builders (kept deliberately small so benches stay minutes-fast)
# ---------------------------------------------------------------------------

def make_lm_task(seed: int = 0, pretrain_epochs: int = 4) -> LMTask:
    """A trained tiny WikiText-2-style LM task."""
    model = TransformerLM(TransformerConfig(
        vocab_size=60, dim=32, num_heads=2, ffn_dim=64,
        num_encoder_layers=2, num_decoder_layers=1,
        max_len=16, dropout=0.0, seed=seed,
    ))
    corpus = SyntheticWikiText(WikiTextConfig(vocab_size=60, num_tokens=6000, seed=7))
    task = LMTask(model, corpus, seq_len=12, batch_size=8,
                  max_train_batches=20, max_eval_batches=6)
    if pretrain_epochs:
        train_plain(task, epochs=pretrain_epochs, lr=3e-3)
    return task


def make_glue_task(task_name: str, seed: int = 0, pretrain_epochs: int = 4) -> GlueTask:
    """A trained tiny DistilBERT GLUE task."""
    data = SyntheticGlueTask(GlueTaskConfig(
        task=task_name, vocab_size=80, num_train=128, num_eval=64,
        seq_len=16, seed=11,
    ))
    cfg = DistilBertConfig(
        vocab_size=80, dim=32, num_heads=2, ffn_dim=64, num_layers=2,
        max_len=24, dropout=0.0, num_labels=max(data.num_labels, 2),
        is_regression=data.is_regression, seed=seed,
    )
    model = DistilBertForSequenceTask(cfg)
    glue = GlueTask(model, data, batch_size=16, max_train_batches=8)
    if pretrain_epochs:
        train_plain(glue, epochs=pretrain_epochs, lr=3e-3)
    return glue


def small_rt3_config(deadline_s: float, episodes: int = 6, seed: int = 0,
                     min_accuracy: float = 0.0) -> RT3Config:
    """RT3 configuration shared by the search-driven benches."""
    return RT3Config(
        deadline_s=deadline_s,
        episodes=episodes,
        min_accuracy=min_accuracy,
        bp=BlockPruningConfig(num_blocks=2, rate=0.3, seed=seed),
        space=SearchSpaceConfig(pattern_size=8, theta=3, patterns_per_set=3,
                                seed=seed),
        controller=ControllerConfig(seed=seed),
        episode_train=TrainConfig(epochs=1, lr=2e-3),
        finetune_train=TrainConfig(epochs=2, lr=2e-3),
        backbone_finetune_epochs=2,
        seed=seed,
    )


def fmt_pct(x: float) -> str:
    return f"{100 * x:.2f}%"


def fmt_runs(x: float) -> str:
    return f"{x:.3e}"


# ---------------------------------------------------------------------------
# comparator helpers shared by scripts/check_bench_regression.py
#
# Every comparator returns a list of *findings*; one finding per checked
# metric with the shape {metric, baseline, fresh, gated, ok, note}.  The
# helpers below encode the gate-wide conventions:
#   - a metric absent from the *baseline* passes with a note (older
#     baselines predate it);
#   - a metric missing from the *fresh* run fails (the bench stopped
#     reporting a gated number);
#   - wall-clock numbers are recorded but never gated.
# ---------------------------------------------------------------------------

WALL_CLOCK_NOTE = "informational (wall-clock / runner-dependent)"


def canon(x: float, ndigits: int = 9) -> float:
    """Canonical float for digest rows: rounded so exact-equality gating
    compares stable decimals rather than the last ulp of a repr."""
    return round(float(x), ndigits)


def find_info(metric: str, baseline, fresh, note: str = WALL_CLOCK_NOTE) -> dict:
    """An informational finding: shown in the report, never gated."""
    return {"metric": metric, "baseline": baseline, "fresh": fresh,
            "gated": False, "ok": True, "note": note}


def find_row_set(metric: str, base_rows, fresh_rows, note: str) -> dict:
    """Gate two collections of canonical row tuples by exact set equality."""
    base_set, fresh_set = set(base_rows), set(fresh_rows)
    return {"metric": metric, "baseline": float(len(base_set)),
            "fresh": float(len(fresh_set)), "gated": True,
            "ok": base_set == fresh_set, "note": note}


def find_exact(metric: str, base, fresh, note: str) -> dict:
    """Gate one deterministic scalar by exact equality."""
    finding = {"metric": metric,
               "baseline": None if base is None else float(base),
               "fresh": None if fresh is None else float(fresh),
               "gated": True}
    if base is None:
        finding.update(ok=True, note="metric absent from baseline; skipped")
    elif fresh is None:
        finding.update(ok=False, note="metric missing from fresh run")
    else:
        finding.update(ok=float(fresh) == float(base), note=note)
    return finding


def find_within(metric: str, base, fresh, *, budget: float, kind: str,
                relative: bool = False, note: str = "") -> dict:
    """Gate one scalar under a drift budget.

    ``kind`` is ``"floor"`` (higher is better: fail when the fresh value
    drops below ``base - budget``), ``"ceiling"`` (lower is better: fail
    when it rises above ``base + budget``) or ``"band"`` (fail when it
    leaves ``base ± budget`` in either direction); with ``relative=True``
    the budget is a fraction of the baseline value.
    """
    finding = {"metric": metric,
               "baseline": None if base is None else float(base),
               "fresh": None if fresh is None else float(fresh),
               "gated": True}
    if base is None:
        finding.update(ok=True, note="metric absent from baseline; skipped")
        return finding
    if fresh is None:
        finding.update(ok=False, note="metric missing from fresh run")
        return finding
    base, fresh = float(base), float(fresh)
    span = abs(base) * budget if relative else budget
    if kind == "floor":
        limit = base - span
        finding.update(ok=fresh >= limit, limit=limit,
                       note=note or f"must stay >= {limit:.4g}")
    elif kind == "ceiling":
        limit = base + span
        finding.update(ok=fresh <= limit, limit=limit,
                       note=note or f"must stay <= {limit:.4g}")
    elif kind == "band":
        finding.update(ok=abs(fresh - base) <= span,
                       note=note or f"must stay within {span:.4g} of baseline")
    else:
        raise ValueError(f"unknown drift kind {kind!r}")
    return finding


def cover_pareto_points(base_front, fresh_front, *, acc_budget: float,
                        runs_rel_budget: float, prefix: str = "pareto") -> List[dict]:
    """One finding per committed Pareto point: it must be matched or
    dominated (within the drift budgets) by some fresh front point.

    A dropped point — no fresh point reaching its accuracy *and* its
    #runs — fails; a fresh front that strictly dominates passes.
    """
    findings = []
    for i, (aw, runs) in enumerate(base_front):
        covered = any(
            q_aw >= aw - acc_budget
            and q_runs >= runs * (1.0 - runs_rel_budget)
            for q_aw, q_runs in fresh_front)
        findings.append({
            "metric": f"{prefix}[{i}]", "baseline": float(aw),
            "fresh": None, "gated": True, "ok": covered,
            "note": f"committed front point (Aw={aw:.4f}, runs={runs:.3e}) "
                    "must stay covered by the replayed front"})
    return findings
