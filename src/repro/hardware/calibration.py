"""Free constants of the hardware model and how they were pinned.

The paper reports absolute numbers from a real Odroid-XU3; our model has a
handful of free constants.  They are chosen so that the *paper-scale*
Transformer (see :func:`repro.hardware.workload.paper_scale_transformer`)
reproduces the anchor row of Table II:

- latency 114.59 ms at level l6 (1400 MHz)  ->  :data:`CYCLES_PER_MAC`
- 1.53e6 runs for approach E1               ->  :data:`BATTERY_BUDGET_J`
- UB model-reload interrupt ~51.8 s         ->  :data:`OFFCHIP_BANDWIDTH_BPS`
- RT3 pattern-set swap ~8.75 ms             ->  :data:`SWITCH_OVERHEAD_S`

Everything the experiments *compare* (ratios between pruning methods,
between DVFS strategies, between switch mechanisms) follows from the
structure of the model, not from these anchors.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Compute: an in-order A7 core retires a fraction of a MAC per cycle on
# this model class.  The anchor row of Tables II/IV is the *BP backbone*
# M1 — 64.26% block-sparse — at 114.59 ms on l6 (1400 MHz); the dense
# original model is the "No-Opt" row with 1/(1-0.6426) = 2.8x fewer runs.
# Pinning the BP-sparse latency:
#   cycles(BP @ 0.6426) = dense_mac_cycles * (0.3574 * 1.005 + 0.01)
#                       = 0.11459 s * 1.4e9 Hz = 1.604e8
#   dense_mac_cycles = 4.349e8;  / 1.702e9 MACs = 0.2555
CYCLES_PER_MAC = 0.2555

# Fixed per-inference cycle overhead (activation functions, softmax, memory
# stalls) as a fraction of dense MAC cycles; keeps latency from going to
# zero at extreme sparsity.
FIXED_OVERHEAD_FRACTION = 0.01

# Per-nonzero penalty of irregular (COO) sparsity relative to dense MACs —
# index loads break SIMD; the paper's motivation for avoiding it.
IRREGULAR_OVERHEAD = 2.6

# Pattern-pruning compiler overhead (PatDNN-style code generation): small
# constant per-block cost for selecting/applying the pattern.
PATTERN_BLOCK_OVERHEAD_CYCLES = 180.0

# Block pruning keeps full rows/columns, so it is perfectly regular; its
# only penalty is bookkeeping of kept indices.
BLOCK_OVERHEAD_FRACTION = 0.005

# ---------------------------------------------------------------------------
# Power: P = KAPPA_EFF_F * V^2 * f  +  LEAKAGE_W_PER_V * V
# Pinned to plausible A7 cluster numbers (~0.4 W dynamic at l6).
KAPPA_EFF_F = 2.0e-10  # effective switched capacitance, farads
LEAKAGE_W_PER_V = 0.005  # static leakage per volt (A7 cluster is leakage-light)

# ---------------------------------------------------------------------------
# Battery: pinned so that approach E1 of Table II (the BP backbone M1,
# always at l6) gets ~1.53e6 runs:
#   P(l6) = 2e-10 * 1.24^2 * 1.4e9 + 0.005 * 1.24 = 0.4367 W
#   E_run = 0.4367 W * 0.11459 s = 5.00e-2 J -> budget = 7.66e4 J (~21 Wh)
BATTERY_BUDGET_J = 7.66e4

# ---------------------------------------------------------------------------
# Reconfiguration: swapping a *pattern set* moves kilobytes; reloading a
# *model* moves hundreds of megabytes and re-deserializes it.
# Effective off-chip reload bandwidth (eMMC + deserialization), pinned so a
# paper-scale Transformer checkpoint (~287 MB) reloads in ~51.8 s.
OFFCHIP_BANDWIDTH_BPS = 5.53e6
# Constant runtime overhead of any switch (scheduler + cache warmup).
SWITCH_OVERHEAD_S = 5.0e-3
# Bytes per weight (fp32).
BYTES_PER_WEIGHT = 4
