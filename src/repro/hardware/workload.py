"""Workload profiles: MAC/parameter counts of a model at a sequence length.

The latency and energy models consume a :class:`WorkloadProfile` rather
than a live model, so experiments can evaluate either the actual laptop-
scale models built in :mod:`repro.nn` or the *paper-scale* workloads whose
absolute numbers anchor the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class WorkloadProfile:
    """Static cost profile of one model inference.

    ``macs`` counts multiply-accumulates of the prunable matmuls per
    inference; ``params`` counts prunable weights; ``total_params`` counts
    all weights (for model-reload size).
    """

    name: str
    macs: float
    params: int
    total_params: int

    def __post_init__(self) -> None:
        if self.macs <= 0 or self.params <= 0:
            raise ValueError("workload must have positive macs and params")
        if self.total_params < self.params:
            raise ValueError("total_params cannot be below prunable params")

    def scaled(self, sparsity: float) -> float:
        """Remaining MACs after removing a ``sparsity`` fraction of weights."""
        if not 0.0 <= sparsity < 1.0:
            raise ValueError("sparsity must be in [0, 1)")
        return self.macs * (1.0 - sparsity)

    @property
    def model_bytes(self) -> int:
        from repro.hardware import calibration

        return self.total_params * calibration.BYTES_PER_WEIGHT


def profile_from_model(model, seq_len: int, name: Optional[str] = None) -> WorkloadProfile:
    """Build a profile by walking a :mod:`repro.nn` model's Linear layers.

    Every Linear contributes ``in_features * out_features`` MACs per token
    position; embeddings are lookups (no MACs) but count in total params.
    """
    from repro.nn.layers import Linear

    macs = 0.0
    prunable = 0
    for _, module in model.named_modules():
        if isinstance(module, Linear):
            macs += float(module.in_features) * module.out_features * seq_len
            prunable += module.in_features * module.out_features
    total = model.num_parameters()
    if prunable == 0:
        raise ValueError("model has no Linear layers to profile")
    return WorkloadProfile(name or type(model).__name__, macs, prunable, total)


def paper_scale_transformer(seq_len: int = 35) -> WorkloadProfile:
    """The paper's WikiText-2 Transformer at deployment scale.

    2 encoder + 1 decoder layers, d_model = 800, FFN = 3200, WikiText-2
    vocabulary ~28.8k (the paper quotes a 28785 x 800 weight).  Per-token
    MACs of the prunable matmuls:

    - attention q/k/v/out: 4 * 800^2 per layer-attention
      (encoder: 1 attention, decoder: 2 attentions)
    - FFN: 2 * 800 * 3200 per layer
    - LM head: 800 * 28785

    giving ~4.9e7 MACs/token; at the paper's evaluation length (~35 BPTT
    tokens) that is ~1.7e9 MACs.  The calibration maps this workload,
    block-pruned to the paper's 64.26% sparsity (model M1), to 114.59 ms
    at l6 — the anchor of Tables II and IV.
    """
    d, ffn, vocab = 800, 3200, 28785
    attn = 4 * d * d
    ffn_macs = 2 * d * ffn
    enc = 2 * (attn + ffn_macs)
    dec = 1 * (2 * attn + ffn_macs)
    head = d * vocab
    per_token = enc + dec + head
    prunable = enc + dec + head  # same matrices, counted once
    embed = vocab * d
    return WorkloadProfile(
        "paper-transformer", float(per_token) * seq_len, prunable, prunable + embed
    )


def paper_scale_distilbert(seq_len: int = 128) -> WorkloadProfile:
    """DistilBERT at paper scale: 6 layers, H=768, A=12, FFN=3072, vocab 30k."""
    d, ffn, vocab, layers = 768, 3072, 30522, 6
    attn = 4 * d * d
    ffn_macs = 2 * d * ffn
    per_token = layers * (attn + ffn_macs)
    prunable = layers * (attn + ffn_macs)
    embed = (vocab + 512) * d
    return WorkloadProfile(
        "paper-distilbert", float(per_token) * seq_len, prunable, prunable + embed
    )
