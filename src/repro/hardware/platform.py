"""The Odroid-XU3 target platform: one object bundling all hardware models."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hardware.battery import Battery
from repro.hardware.dvfs import BatteryGovernor, DVFSTable, ODROID_XU3_LEVELS
from repro.hardware.energy_sim import EnergySimulator
from repro.hardware.latency import LatencyModel
from repro.hardware.power import PowerModel
from repro.hardware.runtime import RuntimeReconfigurator
from repro.hardware.workload import WorkloadProfile


class OdroidXU3:
    """The paper's evaluation board (their ref [35]).

    Bundles the DVFS table (Table I), power model, latency predictor,
    battery and reconfigurator with the paper's defaults, and builds
    :class:`EnergySimulator` instances for a chosen level subset.
    """

    def __init__(self) -> None:
        self.dvfs = DVFSTable(ODROID_XU3_LEVELS)
        self.power = PowerModel()
        self.latency = LatencyModel()
        self.reconfigurator = RuntimeReconfigurator()

    def battery(self) -> Battery:
        return Battery()

    def simulator(
        self,
        workload: WorkloadProfile,
        level_names: Sequence[str] = ("l3", "l4", "l6"),
        thresholds: Optional[Sequence[float]] = None,
        pattern_size: int = 100,
    ) -> EnergySimulator:
        """Simulator over a level subset (paper default {l3, l4, l6})."""
        table = self.dvfs.subset(level_names)
        governor = None
        if thresholds is not None:
            governor = BatteryGovernor(table, thresholds)
        return EnergySimulator(
            workload,
            table,
            governor=governor,
            power=self.power,
            latency=self.latency,
            reconfigurator=self.reconfigurator,
            pattern_size=pattern_size,
        )
