"""CMOS power model: dynamic V^2·f term plus static leakage.

The classic low-power-design relation the paper builds on (their ref [28],
Horowitz et al.): dynamic power scales with C·V²·f, so running slower at a
lower voltage spends less *energy per operation* even though it takes
longer — the entire reason DVFS prolongs battery life.
"""

from __future__ import annotations

from repro.hardware import calibration
from repro.hardware.dvfs import VFLevel


class PowerModel:
    """P(level) = kappa · V² · f + leakage · V."""

    def __init__(self, kappa_f: float = calibration.KAPPA_EFF_F,
                 leakage_w_per_v: float = calibration.LEAKAGE_W_PER_V) -> None:
        if kappa_f <= 0:
            raise ValueError("kappa must be positive")
        if leakage_w_per_v < 0:
            raise ValueError("leakage cannot be negative")
        self.kappa_f = kappa_f
        self.leakage_w_per_v = leakage_w_per_v

    def dynamic_power_w(self, level: VFLevel) -> float:
        return self.kappa_f * level.voltage_v ** 2 * level.freq_hz

    def static_power_w(self, level: VFLevel) -> float:
        return self.leakage_w_per_v * level.voltage_v

    def power_w(self, level: VFLevel) -> float:
        """Total power while computing at ``level``."""
        return self.dynamic_power_w(level) + self.static_power_w(level)

    def energy_j(self, level: VFLevel, seconds: float) -> float:
        """Energy to run for ``seconds`` at ``level``."""
        if seconds < 0:
            raise ValueError("duration cannot be negative")
        return self.power_w(level) * seconds

    def energy_per_cycle_j(self, level: VFLevel) -> float:
        """Energy per clock cycle — the quantity DVFS actually reduces."""
        return self.power_w(level) / level.freq_hz
