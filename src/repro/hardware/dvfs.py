"""DVFS voltage/frequency levels (paper Table I) and the battery governor.

Table I of the paper lists the six V/F levels of the ARM Cortex-A7 core in
the Odroid-XU3; they are reproduced verbatim in :data:`ODROID_XU3_LEVELS`.
The governor maps remaining battery fraction to a level, mimicking the
phone behaviour the paper cites (energy-saving mode under 20% battery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class VFLevel:
    """One DVFS operating point."""

    name: str
    freq_mhz: float
    voltage_mv: float

    @property
    def freq_hz(self) -> float:
        return self.freq_mhz * 1e6

    @property
    def voltage_v(self) -> float:
        return self.voltage_mv * 1e-3


# Paper Table I, verbatim.
ODROID_XU3_LEVELS: Tuple[VFLevel, ...] = (
    VFLevel("l1", 400, 916.25),
    VFLevel("l2", 600, 917.5),
    VFLevel("l3", 800, 992.5),
    VFLevel("l4", 1000, 1066.25),
    VFLevel("l5", 1200, 1141.25),
    VFLevel("l6", 1400, 1240.0),
)


class DVFSTable:
    """An ordered set of V/F levels with name lookup."""

    def __init__(self, levels: Sequence[VFLevel] = ODROID_XU3_LEVELS) -> None:
        if not levels:
            raise ValueError("DVFS table cannot be empty")
        freqs = [lv.freq_mhz for lv in levels]
        if sorted(freqs) != freqs:
            raise ValueError("levels must be ordered by increasing frequency")
        self.levels: Tuple[VFLevel, ...] = tuple(levels)
        self._by_name: Dict[str, VFLevel] = {lv.name: lv for lv in levels}

    def __len__(self) -> int:
        return len(self.levels)

    def __iter__(self):
        return iter(self.levels)

    def __getitem__(self, key) -> VFLevel:
        if isinstance(key, str):
            return self._by_name[key]
        return self.levels[key]

    def names(self) -> List[str]:
        return [lv.name for lv in self.levels]

    def subset(self, names: Sequence[str]) -> "DVFSTable":
        """The paper evaluates on {l3, l4, l6}; this builds such subsets."""
        return DVFSTable([self._by_name[n] for n in names])

    @property
    def max_level(self) -> VFLevel:
        return self.levels[-1]

    @property
    def min_level(self) -> VFLevel:
        return self.levels[0]


class BatteryGovernor:
    """Map remaining battery fraction to a V/F level.

    ``thresholds`` are the battery fractions *below which* the governor
    drops to the next-lower level.  With levels ``[l3, l4, l6]`` and
    thresholds ``[0.15, 0.40]``:

    - battery > 40%  -> l6 (F-Mode, fast)
    - 15% < b <= 40% -> l4 (N-Mode, normal)
    - b <= 15%       -> l3 (E-Mode, energy saving)

    The default split makes the *energy* fractions spent in each mode
    roughly 60/25/15, which reproduces the paper's Table II improvement of
    E2 over E1 (~17%).
    """

    def __init__(self, table: DVFSTable, thresholds: Sequence[float] = (0.15, 0.40)) -> None:
        if len(thresholds) != len(table) - 1:
            raise ValueError(
                f"need {len(table) - 1} thresholds for {len(table)} levels, got {len(thresholds)}"
            )
        if list(thresholds) != sorted(thresholds):
            raise ValueError("thresholds must be increasing")
        if thresholds and (thresholds[0] <= 0.0 or thresholds[-1] >= 1.0):
            raise ValueError("thresholds must lie strictly inside (0, 1)")
        self.table = table
        self.thresholds = tuple(thresholds)

    def level_for(self, battery_fraction: float) -> VFLevel:
        """Pick the level for the given remaining battery fraction."""
        if not 0.0 <= battery_fraction <= 1.0:
            raise ValueError("battery fraction must be in [0, 1]")
        for i, thr in enumerate(self.thresholds):
            if battery_fraction <= thr:
                return self.table[i]
        return self.table[len(self.table) - 1]

    def energy_fractions(self) -> List[float]:
        """Fraction of total battery energy spent at each level (low->high)."""
        bounds = [0.0, *self.thresholds, 1.0]
        return [bounds[i + 1] - bounds[i] for i in range(len(bounds) - 1)]
