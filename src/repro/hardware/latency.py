"""Latency predictor for dense and sparse transformer inference.

Plays the role of the PatDNN-style compiler predictor the paper uses
(component ④ "performance predictor"): given a workload, a sparsity and the
kind of sparsity, predict execution cycles and hence latency at a V/F
level.  The model captures the qualitative ordering the paper relies on:

- dense is the baseline;
- block-structured sparsity is almost free to exploit (regular matrices);
- pattern sparsity adds a small per-block overhead (compiler-generated
  pattern codes);
- irregular (COO) sparsity pays a large per-nonzero penalty, which is why
  the paper avoids it (Challenge 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.hardware import calibration
from repro.hardware.dvfs import VFLevel
from repro.hardware.workload import WorkloadProfile


class SparsityKind(enum.Enum):
    """How the zeros are arranged, which dictates exploitable speedup."""

    DENSE = "dense"
    BLOCK = "block"
    PATTERN = "pattern"
    IRREGULAR = "irregular"


@dataclass(frozen=True)
class LatencyBreakdown:
    """Cycles split into useful MAC work and bookkeeping overhead."""

    mac_cycles: float
    overhead_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.mac_cycles + self.overhead_cycles


class LatencyModel:
    """Analytic cycle model; all constants from :mod:`calibration`."""

    def __init__(
        self,
        cycles_per_mac: float = calibration.CYCLES_PER_MAC,
        fixed_overhead_fraction: float = calibration.FIXED_OVERHEAD_FRACTION,
        irregular_overhead: float = calibration.IRREGULAR_OVERHEAD,
        pattern_block_overhead_cycles: float = calibration.PATTERN_BLOCK_OVERHEAD_CYCLES,
        block_overhead_fraction: float = calibration.BLOCK_OVERHEAD_FRACTION,
    ) -> None:
        if cycles_per_mac <= 0:
            raise ValueError("cycles_per_mac must be positive")
        self.cycles_per_mac = cycles_per_mac
        self.fixed_overhead_fraction = fixed_overhead_fraction
        self.irregular_overhead = irregular_overhead
        self.pattern_block_overhead_cycles = pattern_block_overhead_cycles
        self.block_overhead_fraction = block_overhead_fraction

    # ------------------------------------------------------------------
    def breakdown(
        self,
        workload: WorkloadProfile,
        sparsity: float = 0.0,
        kind: SparsityKind = SparsityKind.DENSE,
        pattern_size: int = 100,
    ) -> LatencyBreakdown:
        """Cycle breakdown for one inference of ``workload``."""
        if not 0.0 <= sparsity < 1.0:
            raise ValueError("sparsity must be in [0, 1)")
        if kind is SparsityKind.DENSE and sparsity > 0.0:
            raise ValueError("dense workloads cannot have sparsity")

        dense_mac_cycles = workload.macs * self.cycles_per_mac
        fixed = dense_mac_cycles * self.fixed_overhead_fraction
        kept = 1.0 - sparsity

        if kind is SparsityKind.DENSE:
            return LatencyBreakdown(dense_mac_cycles, fixed)
        if kind is SparsityKind.BLOCK:
            mac = dense_mac_cycles * kept
            return LatencyBreakdown(mac, fixed + mac * self.block_overhead_fraction)
        if kind is SparsityKind.PATTERN:
            mac = dense_mac_cycles * kept
            num_blocks = workload.params / float(pattern_size * pattern_size)
            return LatencyBreakdown(
                mac, fixed + num_blocks * self.pattern_block_overhead_cycles
            )
        if kind is SparsityKind.IRREGULAR:
            mac = dense_mac_cycles * kept * self.irregular_overhead
            return LatencyBreakdown(mac, fixed)
        raise ValueError(f"unknown sparsity kind {kind!r}")

    def cycles(self, workload: WorkloadProfile, sparsity: float = 0.0,
               kind: SparsityKind = SparsityKind.DENSE, pattern_size: int = 100) -> float:
        return self.breakdown(workload, sparsity, kind, pattern_size).total_cycles

    def latency_s(self, workload: WorkloadProfile, level: VFLevel, sparsity: float = 0.0,
                  kind: SparsityKind = SparsityKind.DENSE, pattern_size: int = 100) -> float:
        """Wall-clock seconds for one inference at ``level``."""
        return self.cycles(workload, sparsity, kind, pattern_size) / level.freq_hz

    def latency_ms(self, workload: WorkloadProfile, level: VFLevel, sparsity: float = 0.0,
                   kind: SparsityKind = SparsityKind.DENSE, pattern_size: int = 100) -> float:
        return 1e3 * self.latency_s(workload, level, sparsity, kind, pattern_size)

    # ------------------------------------------------------------------
    def batch_breakdown(
        self,
        workload: WorkloadProfile,
        batch: int,
        sparsity: float = 0.0,
        kind: SparsityKind = SparsityKind.DENSE,
        pattern_size: int = 100,
    ) -> LatencyBreakdown:
        """Cycle breakdown for a micro-batch of ``batch`` inferences.

        MAC work scales linearly with the batch; the bookkeeping overhead
        (kernel setup, pattern-code dispatch, fixed per-invocation cost)
        is paid once per batch rather than once per request — the analytic
        counterpart of the serving layer's vectorized forward pass.
        """
        if batch < 1:
            raise ValueError("batch must be at least 1")
        one = self.breakdown(workload, sparsity, kind, pattern_size)
        return LatencyBreakdown(one.mac_cycles * batch, one.overhead_cycles)

    def batch_latency_s(self, workload: WorkloadProfile, level: VFLevel, batch: int,
                        sparsity: float = 0.0,
                        kind: SparsityKind = SparsityKind.DENSE,
                        pattern_size: int = 100) -> float:
        """Wall-clock seconds to serve one micro-batch at ``level``."""
        cycles = self.batch_breakdown(workload, batch, sparsity, kind,
                                      pattern_size).total_cycles
        return cycles / level.freq_hz

    def batch_completion_offsets_s(self, workload: WorkloadProfile, level: VFLevel,
                                   batch: int, sparsity: float = 0.0,
                                   kind: SparsityKind = SparsityKind.DENSE,
                                   pattern_size: int = 100) -> List[float]:
        """Per-position completion offsets inside one micro-batch.

        Time-sliced completion model: the device streams the batch through
        its MAC array one member at a time, so position ``i``'s output is
        ready once the shared per-invocation overhead plus ``i + 1``
        requests' worth of MAC work has elapsed — it does not wait for the
        members queued behind it.  The final offset equals
        :meth:`batch_latency_s` exactly (same cycles, just attributed per
        member), so time slicing never changes when a batch *ends*, only
        when its early members may exit.
        """
        one = self.breakdown(workload, sparsity, kind, pattern_size)
        mac_s = one.mac_cycles / level.freq_hz
        overhead_s = one.overhead_cycles / level.freq_hz
        if batch < 1:
            raise ValueError("batch must be at least 1")
        return [overhead_s + (i + 1) * mac_s for i in range(batch)]

    # ------------------------------------------------------------------
    def sparsity_for_deadline(
        self,
        workload: WorkloadProfile,
        level: VFLevel,
        deadline_s: float,
        kind: SparsityKind = SparsityKind.PATTERN,
        pattern_size: int = 100,
    ) -> float:
        """Minimum sparsity whose latency meets ``deadline_s`` at ``level``.

        This is the inverse model used by the search-space generator
        (component ③): "given N V/F modes and the timing constraint T,
        predict the N sparsity ratios nearest to T".  Returns 0.0 if even
        dense inference meets the deadline; raises if no sparsity < 1 can.
        """
        if deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if self.latency_s(workload, level, 0.0, SparsityKind.DENSE) <= deadline_s:
            return 0.0
        # Invert: cycles(s) = dense*kept (+ overhead) = deadline * f
        budget_cycles = deadline_s * level.freq_hz
        dense_mac_cycles = workload.macs * self.cycles_per_mac
        fixed = dense_mac_cycles * self.fixed_overhead_fraction
        if kind is SparsityKind.BLOCK:
            per_kept = dense_mac_cycles * (1.0 + self.block_overhead_fraction)
            kept = (budget_cycles - fixed) / per_kept
        elif kind is SparsityKind.PATTERN:
            num_blocks = workload.params / float(pattern_size * pattern_size)
            overhead = fixed + num_blocks * self.pattern_block_overhead_cycles
            kept = (budget_cycles - overhead) / dense_mac_cycles
        elif kind is SparsityKind.IRREGULAR:
            kept = (budget_cycles - fixed) / (dense_mac_cycles * self.irregular_overhead)
        else:
            raise ValueError("cannot sparsify a dense workload")
        if kept <= 0.0:
            raise ValueError(
                f"deadline {deadline_s * 1e3:.1f} ms unreachable at {level.name} "
                f"(fixed overhead alone exceeds the budget)"
            )
        sparsity = 1.0 - kept
        return max(0.0, min(sparsity, 0.999))
