"""Mobile-platform substrate: DVFS, power, latency, battery, runtime.

The paper deploys on an Odroid-XU3 board (ARM Cortex-A7 cluster) and uses

- DVFS with the six voltage/frequency levels of its Table I,
- battery energy accounting ("number of runs" within an energy budget),
- a compiler-style latency predictor for pattern-sparse matmuls,
- run-time reconfiguration (pattern-set swap vs full model reload).

None of that hardware exists offline, so this package models it
analytically.  The free constants live in :mod:`repro.hardware.calibration`
and are pinned so the paper-scale Transformer lands near Table II's anchor
(114.59 ms, 1.53e6 runs at the top V/F level).  Ratios between
configurations — which is what every experiment compares — follow from the
physics-shaped model (P ~ C·V²·f, cycles ~ MACs) rather than the anchors.
"""

from repro.hardware.dvfs import VFLevel, DVFSTable, ODROID_XU3_LEVELS, BatteryGovernor
from repro.hardware.power import PowerModel
from repro.hardware.workload import WorkloadProfile, paper_scale_transformer, paper_scale_distilbert
from repro.hardware.latency import LatencyModel, SparsityKind
from repro.hardware.battery import Battery
from repro.hardware.runtime import RuntimeReconfigurator, SwitchStats
from repro.hardware.energy_sim import EnergySimulator, CampaignResult, ModeAssignment
from repro.hardware.platform import OdroidXU3
from repro.hardware import calibration

__all__ = [
    "VFLevel",
    "DVFSTable",
    "ODROID_XU3_LEVELS",
    "BatteryGovernor",
    "PowerModel",
    "WorkloadProfile",
    "paper_scale_transformer",
    "paper_scale_distilbert",
    "LatencyModel",
    "SparsityKind",
    "Battery",
    "RuntimeReconfigurator",
    "SwitchStats",
    "EnergySimulator",
    "CampaignResult",
    "ModeAssignment",
    "OdroidXU3",
    "calibration",
]
