"""Battery with a fixed energy budget (one charging cycle)."""

from __future__ import annotations

from repro.hardware import calibration


class Battery:
    """Tracks remaining energy across a discharge campaign."""

    def __init__(self, budget_j: float = calibration.BATTERY_BUDGET_J) -> None:
        if budget_j <= 0:
            raise ValueError("battery budget must be positive")
        self.budget_j = budget_j
        self.remaining_j = budget_j

    @property
    def fraction(self) -> float:
        """Remaining charge as a fraction of the full budget."""
        return self.remaining_j / self.budget_j

    @property
    def depleted(self) -> bool:
        return self.remaining_j <= 0.0

    def draw(self, energy_j: float) -> bool:
        """Consume ``energy_j``; returns False when the battery cannot supply it."""
        if energy_j < 0:
            raise ValueError("cannot draw negative energy")
        if energy_j > self.remaining_j:
            self.remaining_j = 0.0
            return False
        self.remaining_j -= energy_j
        return True

    def recharge(self) -> None:
        self.remaining_j = self.budget_j

    def __repr__(self) -> str:
        return f"Battery({self.remaining_j:.1f}/{self.budget_j:.1f} J)"
