"""Battery-discharge campaign simulator — the "number of runs" metric.

Reproduces the accounting behind the paper's Tables II and IV: given an
energy budget, a DVFS governor and a (possibly per-level) model
configuration, how many inferences fit into one battery charge, and is the
timing constraint met at every level?

Both an analytic closed form and an event-driven simulation are provided;
the event-driven path also charges reconfiguration time/energy at each
governor transition and is used by the examples to produce discharge
timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.battery import Battery
from repro.hardware.dvfs import BatteryGovernor, DVFSTable, VFLevel
from repro.hardware.latency import LatencyModel, SparsityKind
from repro.hardware.power import PowerModel
from repro.hardware.runtime import RuntimeReconfigurator
from repro.hardware.workload import WorkloadProfile


@dataclass(frozen=True)
class ModeAssignment:
    """Software configuration bound to one V/F level."""

    level_name: str
    sparsity: float = 0.0
    kind: SparsityKind = SparsityKind.DENSE
    accuracy: float = float("nan")
    num_patterns: int = 0  # >0 means a pattern-set swap is needed on entry


@dataclass
class LevelOutcome:
    """Per-level results of a campaign."""

    level: VFLevel
    assignment: ModeAssignment
    latency_s: float
    energy_per_run_j: float
    runs: float
    meets_deadline: bool


@dataclass
class CampaignResult:
    """Aggregate result of draining one battery charge."""

    total_runs: float
    outcomes: List[LevelOutcome]
    switch_seconds: float
    switch_energy_j: float

    @property
    def all_deadlines_met(self) -> bool:
        return all(o.meets_deadline for o in self.outcomes)

    def runs_by_level(self) -> Dict[str, float]:
        return {o.level.name: o.runs for o in self.outcomes}


class EnergySimulator:
    """Ties the hardware models together for discharge campaigns."""

    def __init__(
        self,
        workload: WorkloadProfile,
        table: DVFSTable,
        governor: Optional[BatteryGovernor] = None,
        power: Optional[PowerModel] = None,
        latency: Optional[LatencyModel] = None,
        reconfigurator: Optional[RuntimeReconfigurator] = None,
        pattern_size: int = 100,
    ) -> None:
        self.workload = workload
        self.table = table
        self.governor = governor or BatteryGovernor(
            table, thresholds=_default_thresholds(len(table))
        )
        self.power = power or PowerModel()
        self.latency = latency or LatencyModel()
        self.reconfigurator = reconfigurator or RuntimeReconfigurator()
        self.pattern_size = pattern_size

    # ------------------------------------------------------------------
    def _resolve(self, assignment: ModeAssignment) -> Tuple[VFLevel, float, float]:
        level = self.table[assignment.level_name]
        lat = self.latency.latency_s(
            self.workload, level, assignment.sparsity, assignment.kind, self.pattern_size
        )
        energy = self.power.power_w(level) * lat
        return level, lat, energy

    def run_campaign(
        self,
        assignments: Sequence[ModeAssignment],
        deadline_s: float,
        budget_j: Optional[float] = None,
        charge_switches: bool = True,
    ) -> CampaignResult:
        """Analytic campaign: split the budget by governor energy fractions.

        ``assignments`` must cover exactly the governor's levels (low to
        high or any order; they are matched by name).  The battery spends
        ``governor.energy_fractions()`` of its budget at each level; runs
        at each level are energy / energy-per-run.  Governor transitions
        charge one reconfiguration each when ``charge_switches``.
        """
        by_name = {a.level_name: a for a in assignments}
        if set(by_name) != set(self.table.names()):
            raise ValueError(
                f"assignments {sorted(by_name)} must cover levels {self.table.names()}"
            )
        budget = budget_j if budget_j is not None else Battery().budget_j

        switch_seconds = 0.0
        switch_energy = 0.0
        if charge_switches:
            # One transition per governor boundary, entered at the *lower* level.
            for i in range(len(self.table) - 1):
                lower = self.table[i]
                assignment = by_name[lower.name]
                if assignment.num_patterns > 0:
                    stats = self.reconfigurator.pattern_switch(
                        self.workload, assignment.num_patterns, self.pattern_size
                    )
                else:
                    stats = self.reconfigurator.model_reload(
                        self.workload, assignment.sparsity
                    )
                switch_seconds += stats.seconds
                switch_energy += self.power.power_w(lower) * stats.seconds

        usable = max(0.0, budget - switch_energy)
        fractions = self.governor.energy_fractions()
        outcomes: List[LevelOutcome] = []
        total = 0.0
        for frac, level in zip(fractions, self.table):
            assignment = by_name[level.name]
            level, lat, energy_per_run = self._resolve(assignment)
            runs = usable * frac / energy_per_run
            outcomes.append(
                LevelOutcome(level, assignment, lat, energy_per_run, runs,
                             lat <= deadline_s)
            )
            total += runs
        return CampaignResult(total, outcomes, switch_seconds, switch_energy)

    def single_level_campaign(
        self,
        assignment: ModeAssignment,
        deadline_s: float,
        budget_j: Optional[float] = None,
    ) -> CampaignResult:
        """No-DVFS baseline (approach E1): drain everything at one level."""
        budget = budget_j if budget_j is not None else Battery().budget_j
        level, lat, energy_per_run = self._resolve(assignment)
        runs = budget / energy_per_run
        outcome = LevelOutcome(level, assignment, lat, energy_per_run, runs,
                               lat <= deadline_s)
        return CampaignResult(runs, [outcome], 0.0, 0.0)

    # ------------------------------------------------------------------
    def simulate_discharge(
        self,
        assignments: Sequence[ModeAssignment],
        deadline_s: float,
        budget_j: Optional[float] = None,
        chunk_runs: int = 1000,
    ) -> Tuple[CampaignResult, List[Tuple[float, str]]]:
        """Event-driven discharge: returns the result and a (fraction, level)
        timeline sampled at each chunk boundary and each reconfiguration.

        Slower than :meth:`run_campaign` but validates it; the two agree on
        total runs to within one chunk per level (tested).
        """
        by_name = {a.level_name: a for a in assignments}
        if set(by_name) != set(self.table.names()):
            raise ValueError("assignments must cover all governor levels")
        battery = Battery(budget_j) if budget_j is not None else Battery()

        timeline: List[Tuple[float, str]] = []
        outcomes: Dict[str, LevelOutcome] = {}
        switch_seconds = 0.0
        switch_energy = 0.0
        current_name: Optional[str] = None

        while not battery.depleted:
            level = self.governor.level_for(battery.fraction)
            assignment = by_name[level.name]
            if level.name != current_name:
                if current_name is not None:  # entering a new mode: reconfigure
                    if assignment.num_patterns > 0:
                        stats = self.reconfigurator.pattern_switch(
                            self.workload, assignment.num_patterns, self.pattern_size
                        )
                    else:
                        stats = self.reconfigurator.model_reload(
                            self.workload, assignment.sparsity
                        )
                    switch_seconds += stats.seconds
                    cost = self.power.power_w(level) * stats.seconds
                    switch_energy += cost
                    if not battery.draw(cost):
                        break
                current_name = level.name
                timeline.append((battery.fraction, level.name))
            _, lat, energy_per_run = self._resolve(assignment)
            if level.name not in outcomes:
                outcomes[level.name] = LevelOutcome(
                    level, assignment, lat, energy_per_run, 0.0, lat <= deadline_s
                )
            # Drain in chunks, but never past the next governor boundary.
            chunk_energy = energy_per_run * chunk_runs
            boundary = self._next_boundary(battery.fraction)
            available = battery.remaining_j - boundary * battery.budget_j
            draw = min(chunk_energy, max(available, energy_per_run))
            runs = draw / energy_per_run
            if not battery.draw(draw):
                runs = battery.remaining_j / energy_per_run  # partial final chunk
            outcomes[level.name].runs += runs

        ordered = [outcomes[name] for name in self.table.names() if name in outcomes]
        total = sum(o.runs for o in ordered)
        result = CampaignResult(total, ordered, switch_seconds, switch_energy)
        return result, timeline

    def _next_boundary(self, fraction: float) -> float:
        below = [t for t in self.governor.thresholds if t < fraction]
        return max(below) if below else 0.0


def _default_thresholds(num_levels: int) -> List[float]:
    """Evenly spread governor thresholds when none are given."""
    if num_levels == 1:
        return []
    if num_levels == 3:
        return [0.15, 0.40]
    return [i / num_levels for i in range(1, num_levels)]
