"""Run-time reconfiguration cost model.

The paper's headline systems argument (Table III "Interrupt" row): switching
the *software* configuration must be cheap enough to follow DVFS changes.

- The upper-bound approach (UB) trains one model per V/F level, so a switch
  reloads an entire checkpoint from off-chip storage — tens of seconds.
- RT3 keeps a fixed backbone and swaps only the *pattern set* — kilobytes —
  so a switch costs milliseconds ("within 45 ms", >1000x faster).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import calibration
from repro.hardware.workload import WorkloadProfile


@dataclass(frozen=True)
class SwitchStats:
    """Cost of one reconfiguration event."""

    bytes_moved: float
    seconds: float

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


class RuntimeReconfigurator:
    """Predicts switch cost for pattern-set swap vs full model reload."""

    def __init__(self, bandwidth_bps: float = calibration.OFFCHIP_BANDWIDTH_BPS,
                 overhead_s: float = calibration.SWITCH_OVERHEAD_S) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if overhead_s < 0:
            raise ValueError("overhead cannot be negative")
        self.bandwidth_bps = bandwidth_bps
        self.overhead_s = overhead_s

    # ------------------------------------------------------------------
    def pattern_set_bytes(self, workload: WorkloadProfile, num_patterns: int,
                          pattern_size: int = 100) -> float:
        """Bytes to swap in one pattern set.

        A pattern is a ``psize x psize`` bitmask (psize²/8 bytes); each of
        the workload's blocks also stores a 2-byte id of its chosen pattern.
        """
        if num_patterns < 1:
            raise ValueError("a pattern set needs at least one pattern")
        mask_bytes = num_patterns * pattern_size * pattern_size / 8.0
        num_blocks = workload.params / float(pattern_size * pattern_size)
        id_bytes = 2.0 * num_blocks
        return mask_bytes + id_bytes

    def pattern_switch(self, workload: WorkloadProfile, num_patterns: int,
                       pattern_size: int = 100) -> SwitchStats:
        """RT3's lightweight switch: move masks + ids, keep the backbone."""
        nbytes = self.pattern_set_bytes(workload, num_patterns, pattern_size)
        return SwitchStats(nbytes, self.overhead_s + nbytes / self.bandwidth_bps)

    def model_reload(self, workload: WorkloadProfile, sparsity: float = 0.0) -> SwitchStats:
        """UB's heavyweight switch: reload a full checkpoint from off-chip.

        A sparse checkpoint still stores per-nonzero indices, so the reload
        size shrinks sub-linearly with sparsity (factor 1.5 per kept weight
        for value+index, matching CSR-style storage).
        """
        if not 0.0 <= sparsity < 1.0:
            raise ValueError("sparsity must be in [0, 1)")
        dense_bytes = workload.model_bytes
        if sparsity == 0.0:
            nbytes = float(dense_bytes)
        else:
            kept = 1.0 - sparsity
            nbytes = dense_bytes * kept * 1.5
        return SwitchStats(nbytes, self.overhead_s + nbytes / self.bandwidth_bps)

    def speedup(self, workload: WorkloadProfile, num_patterns: int,
                pattern_size: int = 100) -> float:
        """How much faster the RT3 switch is than a model reload."""
        ub = self.model_reload(workload)
        rt3 = self.pattern_switch(workload, num_patterns, pattern_size)
        return ub.seconds / rt3.seconds
