"""RT3: run-time reconfigurable Transformer pruning (DAC 2021) — reproduction.

Song et al., "Dancing along Battery: Enabling Transformer with Run-time
Reconfigurability on Mobile Devices", DAC 2021 (arXiv:2102.06336).

Subpackages:

- :mod:`repro.tensor`   NumPy reverse-mode autograd substrate
- :mod:`repro.nn`       Transformer / DistilBERT models, optimizers
- :mod:`repro.data`     synthetic WikiText-2 and GLUE datasets, metrics
- :mod:`repro.hardware` Odroid-XU3 model: DVFS, power, latency, battery,
  run-time reconfiguration costs
- :mod:`repro.core`     the paper's contribution: block-structured pruning,
  pattern pruning, RL search, joint training, the RT3 framework

Quickstart::

    from repro.core import RT3, RT3Config
    from repro.core.tasks import LMTask
    from repro.hardware import paper_scale_transformer

    rt3 = RT3(task, paper_scale_transformer(), RT3Config(deadline_s=0.104))
    result = rt3.search()
"""

__version__ = "1.0.0"

from repro import core, data, hardware, nn, tensor

__all__ = ["core", "data", "hardware", "nn", "tensor", "__version__"]
