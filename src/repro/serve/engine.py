"""Sharded serving engine: traffic in, adaptation + padded batches out.

The engine owns the serving timeline.  Micro-batches are routed across
``devices`` simulated devices (:mod:`repro.serve.sharding`) — with the
``switch-aware`` policy each candidate placement is charged for the
pattern swap it would trigger, and with ``drain_policy="level-affinity"``
each shard serves one V/F level run-to-run (fairness-window bounded) so
a level's pattern set stays resident across a run; for each micro-batch
the engine

1. resolves the batch's operating point — every member shares a V/F
   level and a feasible pattern sparsity (that is the batcher's
   compatibility key) — via the side-effect-free
   :meth:`~repro.core.runtime_policy.RuntimeAdapter.plan`, charged
   against the *target shard's* installed-pattern state, so each
   simulated device pays for its own reconfiguration switches;
2. installs the batch's pattern masks through the
   :class:`~repro.core.patterns.MaskManager`, where the
   :class:`~repro.serve.cache.ArtifactCache` turns repeat installs into
   lookups;
3. executes one vectorized, padding-exact forward pass
   (:func:`~repro.serve.batcher.run_padded`);
4. advances the shard's simulated clock using the analytic batch latency
   (MAC work × batch, per-invocation overhead paid once) plus any
   reconfiguration switch cost.  With ``time_sliced=True`` (the default)
   each request *completes* at its own offset inside the batch — the
   device streams members out as their MAC work finishes — so light-load
   p50 is no longer distorted by whole-batch service times.  The batch's
   last member always completes exactly when the non-sliced batch would,
   so time slicing changes per-request latency, never throughput.

Setting ``devices=1, time_sliced=False, max_batch=1`` with no cache
reproduces the repo's original single-request path — mask re-derivation
and one forward per request — which is exactly the baseline the serving
bench compares against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.runtime_policy import AdaptationEvent, RuntimeAdapter
from repro.hardware.dvfs import DVFSTable, VFLevel
from repro.hardware.latency import SparsityKind
from repro.serve.batcher import (
    InferenceRequest,
    MicroBatcher,
    RequestResult,
    run_padded,
)
from repro.serve.cache import ArtifactCache, CacheStats
from repro.serve.sharding import (
    DRAIN_POLICIES,
    POLICIES,
    DeviceShard,
    Dispatcher,
    QueuedBatch,
    ShardStats,
)


@dataclass
class ServeReport:
    """Aggregate outcome of one serving run."""

    results: List[RequestResult] = field(default_factory=list)
    events: List[AdaptationEvent] = field(default_factory=list)
    wall_seconds: float = 0.0
    cache_stats: Optional[CacheStats] = None
    max_verify_error: Optional[float] = None
    shard_stats: List[ShardStats] = field(default_factory=list)
    policy: str = "round-robin"
    time_sliced: bool = True

    # -- request-level aggregates --------------------------------------
    @property
    def num_requests(self) -> int:
        return len(self.results)

    @property
    def num_batches(self) -> int:
        return len(self.events)

    @property
    def mean_batch_size(self) -> float:
        return self.num_requests / self.num_batches if self.num_batches else 0.0

    @property
    def throughput_rps(self) -> float:
        """Measured wall-clock requests/second of the Python hot path."""
        return self.num_requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def sim_makespan_s(self) -> float:
        return max((r.completion_s for r in self.results), default=0.0)

    @property
    def sim_throughput_rps(self) -> float:
        """Requests/second on the simulated device timeline."""
        span = self.sim_makespan_s
        return self.num_requests / span if span > 0 else 0.0

    @property
    def devices(self) -> int:
        return max(1, len(self.shard_stats))

    def latency_percentile(self, q: float) -> float:
        if not self.results:
            return 0.0
        return float(np.percentile([r.latency_s for r in self.results], q))

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95_latency_s(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def deadline_hit_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.met_deadline) / len(self.results)

    @property
    def num_switches(self) -> int:
        return sum(1 for e in self.events if e.switched)

    @property
    def violations(self) -> int:
        """Batches whose compute deadline no pattern set could meet."""
        return sum(1 for e in self.events if e.chosen_sparsity is None)

    def summary(self) -> dict:
        """Machine-readable digest (consumed by the bench JSON output)."""
        out = {
            "requests": self.num_requests,
            "batches": self.num_batches,
            "mean_batch_size": self.mean_batch_size,
            "throughput_rps": self.throughput_rps,
            "sim_throughput_rps": self.sim_throughput_rps,
            "p50_latency_ms": 1e3 * self.p50_latency_s,
            "p95_latency_ms": 1e3 * self.p95_latency_s,
            "deadline_hit_rate": self.deadline_hit_rate,
            "switches": self.num_switches,
            "violations": self.violations,
            "wall_seconds": self.wall_seconds,
            "devices": self.devices,
            "policy": self.policy,
            "time_sliced": self.time_sliced,
        }
        if self.shard_stats:
            makespan = self.sim_makespan_s
            out["shards"] = [s.as_dict(makespan) for s in self.shard_stats]
        if self.cache_stats is not None:
            out["cache"] = self.cache_stats.as_dict()
        if self.max_verify_error is not None:
            out["max_verify_error"] = self.max_verify_error
        return out


class ServeEngine:
    """Serve a request trace through a masked model on N simulated devices.

    ``adapter`` supplies the sparsity ladder, latency model and (via its
    ``manager``) the mask installation path; ``cache`` (optional) is
    attached to the manager so repeated installs of a known pattern set
    hit instead of re-deriving masks.  ``devices``/``policy`` control the
    shard fan-out and routing (:mod:`repro.serve.sharding`);
    ``time_sliced`` picks the per-request completion model;
    ``drain_policy``/``fairness_window`` pick each shard's queue drain
    order (``fifo`` reproduces the serial engine's schedule exactly,
    ``level-affinity`` serves V/F levels run-to-run to amortize pattern
    residency).  ``verify`` re-runs every batch member individually and
    records the worst absolute deviation — the padding-exactness
    guarantee, at roughly double the compute.
    """

    def __init__(self, model, adapter: RuntimeAdapter, *, max_batch: int = 8,
                 window_s: float = 0.05, cache: Optional[ArtifactCache] = None,
                 pad_id: int = 0, dvfs: Optional[DVFSTable] = None,
                 verify: bool = False, reinstall_per_batch: bool = True,
                 devices: int = 1, policy: str = "round-robin",
                 time_sliced: bool = True, prewarm: bool = False,
                 drain_policy: str = "fifo", fairness_window: int = 4) -> None:
        if devices < 1:
            raise ValueError("devices must be at least 1")
        if drain_policy not in DRAIN_POLICIES:
            raise ValueError(f"unknown drain policy {drain_policy!r}; "
                             f"options: {list(DRAIN_POLICIES)}")
        self.model = model
        self.adapter = adapter
        self.cache = cache
        if cache is not None and adapter.manager is not None:
            adapter.manager.attach_cache(cache)
        self.pad_id = pad_id
        self.dvfs = dvfs or DVFSTable()
        self.verify = verify
        # ``reinstall_per_batch=True`` models a stateless execution
        # context: the device re-validates/installs its masks before
        # every batch (the single-request path's behaviour, and what the
        # artifact cache turns into lookups).  Set False to trust
        # ``manager.active_set`` and skip installs when the batch keeps
        # the previous operating point.
        self.reinstall_per_batch = reinstall_per_batch
        self.devices = devices
        self.policy = policy
        self.drain_policy = drain_policy
        self.fairness_window = fairness_window
        self.time_sliced = time_sliced
        # ``prewarm=True`` models deploy-time provisioning: each device
        # starts with the pattern set of its first routed batch already
        # resident (installed before traffic, so not charged to the
        # serving timeline).  Only *run-time reconfiguration* switches are
        # billed then, which is the paper's deployment story — the
        # searched pattern sets ship with the model.  Default False keeps
        # the historical cold-start accounting.
        self.prewarm = prewarm
        # installed pattern set per device, surviving across serve() calls:
        # a device keeps its masks between traces, so a follow-up run must
        # not re-charge the cold-start install
        self._device_state: Dict[int, Optional[float]] = {}
        if policy not in POLICIES:
            raise ValueError(
                f"unknown dispatch policy {policy!r}; options: {list(POLICIES)}")
        self.ladder: Dict[float, object] = dict(adapter.candidates)
        self.fallback_sparsity: float = adapter.candidates[-1][0]
        # per-rung simulated pattern-swap cost, fed to switch-aware routing
        # so a candidate placement is charged for the swap it would trigger
        self._switch_cost_s: Dict[float, float] = {
            sparsity: adapter.reconfigurator.pattern_switch(
                adapter.workload, len(pset),
                adapter.hardware_pattern_size).seconds
            for sparsity, pset in self.ladder.items()}
        self.batcher = MicroBatcher(max_batch, window_s, key_fn=self._compat_key)

    # ------------------------------------------------------------------
    def _level(self, name: str) -> VFLevel:
        return self.dvfs[name]

    def _compat_key(self, request: InferenceRequest) -> Hashable:
        """Requests batch together iff they resolve to one operating point."""
        level = self._level(request.level_name)
        sparsity = self.adapter.feasible_sparsity(level, request.deadline_s)
        return (request.level_name, sparsity)

    # ------------------------------------------------------------------
    def _route_all(self, groups: Sequence[List[InferenceRequest]]
                   ) -> List[DeviceShard]:
        """Phase 1: assign every micro-batch to a simulated device."""
        shards = [DeviceShard(i, drain_policy=self.drain_policy,
                              fairness_window=self.fairness_window)
                  for i in range(self.devices)]
        for shard in shards:
            # a device resumes with whatever it had installed last run; a
            # device this engine never used starts from the adapter's own
            # installed state (deploy-time provisioning is shared — every
            # replica ships with the masks installed before serving began)
            shard.active_sparsity = self._device_state.get(
                shard.shard_id, self.adapter.active_sparsity)
            shard.expected_sparsity = shard.active_sparsity
        dispatcher = Dispatcher(self.policy, switch_cost_s=self._switch_cost_s)
        for seq, group in enumerate(groups):
            level = self._level(group[0].level_name)
            sparsity = self.adapter.feasible_sparsity(
                level, min(r.deadline_s for r in group))
            est = self.adapter.latency.batch_latency_s(
                self.adapter.workload, level, len(group),
                sparsity if sparsity is not None else self.fallback_sparsity,
                SparsityKind.PATTERN, self.adapter.hardware_pattern_size)
            # Dispatch time: a full batch leaves when its last member
            # arrives; a partial batch waits out the batching window from
            # its first member (the online batcher cannot know no more
            # compatible requests are coming).
            if len(group) >= self.batcher.max_batch:
                ready = max(r.arrival_s for r in group)
            else:
                ready = group[0].arrival_s + self.batcher.window_s
            dispatcher.route(
                QueuedBatch(seq, list(group), level.name, ready, est,
                            sparsity=sparsity), shards)
        return shards

    def _resolve_operating_point(self, shard: DeviceShard, level: VFLevel,
                                 qb: QueuedBatch
                                 ) -> Tuple[AdaptationEvent, float, float, bool]:
        """Adaptation decision against the shard's own installed state.

        Returns ``(event, effective_sparsity, switch_seconds, installed)``
        where ``switch_seconds`` is the total reconfiguration cost this
        batch pays on its device (planned switch and/or cold-start
        fallback) and ``installed`` says whether the device physically
        installed a pattern set for this batch (for per-shard switch
        accounting — the fallback install is not an adapter switch, but
        it is a device one).
        """
        event = self.adapter.plan(level,
                                  min(r.deadline_s for r in qb.requests),
                                  shard.active_sparsity, chosen=qb.sparsity)
        effective = event.chosen_sparsity
        switch_s = event.switch.seconds if event.switch is not None else 0.0
        installed = event.switched
        if effective is None:
            # Infeasible deadline: keep whatever this device has installed
            # (no phantom swap).  Only when nothing is installed yet fall
            # back to the sparsest set — a real switch, charged as one.
            if shard.active_sparsity is not None:
                effective = shard.active_sparsity
            else:
                effective = self.fallback_sparsity
                pset = self.ladder[effective]
                stats = self.adapter.reconfigurator.pattern_switch(
                    self.adapter.workload, len(pset),
                    self.adapter.hardware_pattern_size)
                switch_s += stats.seconds
                installed = True
        shard.active_sparsity = effective
        return event, effective, switch_s, installed

    def serve(self, requests: Sequence[InferenceRequest]) -> ServeReport:
        report = ServeReport(cache_stats=None, policy=self.policy,
                             time_sliced=self.time_sliced)
        cache_start = (self.cache.stats.snapshot()
                       if self.cache is not None else None)
        # the measured hot path covers batching + routing + per-batch work
        start_wall = time.perf_counter()
        shards = self._route_all(self.batcher.batches(requests))
        if self.prewarm:
            for shard in shards:
                heads = [q[0] for q in shard.queues.values() if q]
                if not heads or shard.active_sparsity is not None:
                    continue
                first = min(heads, key=lambda b: b.seq)
                sparsity = self.adapter.feasible_sparsity(
                    self._level(first.level_name),
                    min(r.deadline_s for r in first.requests))
                if sparsity is not None:
                    shard.active_sparsity = sparsity
        manager = self.adapter.manager
        events: List[Tuple[int, AdaptationEvent]] = []
        worst_err = 0.0
        verify_wall = 0.0
        last_effective: Optional[float] = None
        # Phase 2: each shard drains its per-level queues on its own clock.
        # Shards share one model, so masks are (re)installed per batch —
        # with the artifact cache this is a lookup, and it is what keeps
        # sharded outputs exactly equal to per-request outputs.
        for shard in shards:
            for qb in shard.drain():
                group = qb.requests
                level = self._level(qb.level_name)
                event, effective, switch_s, installed = \
                    self._resolve_operating_point(shard, level, qb)
                pset = self.ladder[effective]
                if manager is not None and (self.reinstall_per_batch
                                            or manager.active_set is not pset):
                    manager.apply(pset)
                last_effective = effective
                outputs = run_padded(self.model, group, self.pad_id)
                if self.verify:
                    # excluded from the timed hot path: doubles the compute
                    verify_start = time.perf_counter()
                    for req, out in zip(group, outputs):
                        solo = run_padded(self.model, [req], self.pad_id)[0]
                        worst_err = max(worst_err,
                                        float(np.abs(out - solo).max()))
                    verify_wall += time.perf_counter() - verify_start

                offsets = self.adapter.latency.batch_completion_offsets_s(
                    self.adapter.workload, level, len(group), effective,
                    SparsityKind.PATTERN, self.adapter.hardware_pattern_size)
                service = switch_s + offsets[-1]
                begin = max(shard.clock_s, qb.ready_s)
                completion = begin + service
                shard.record(qb, service, completion, installed)
                for i, (req, out) in enumerate(zip(group, outputs)):
                    member_service = (switch_s + offsets[i]
                                      if self.time_sliced else service)
                    report.results.append(RequestResult(
                        request=req, output=out, batch_id=qb.seq,
                        batch_size=len(group),
                        queue_wait_s=begin - req.arrival_s,
                        service_s=member_service,
                        completion_s=begin + member_service,
                        sparsity=effective, shard_id=shard.shard_id))
                events.append((qb.seq, event))
        report.wall_seconds = time.perf_counter() - start_wall - verify_wall
        self._device_state = {s.shard_id: s.active_sparsity for s in shards}
        # keep the shared adapter's view in sync with the masks that ended
        # up installed on the model (the last executed batch), so code
        # mixing engine serving with direct adapter.adapt calls never
        # charges a switch for a pattern set that is already resident
        if last_effective is not None:
            self.adapter.active_sparsity = last_effective
        # deterministic report order regardless of shard interleaving
        report.results.sort(key=lambda r: (r.batch_id, r.request.req_id))
        report.events = [e for _, e in sorted(events, key=lambda t: t[0])]
        report.shard_stats = [s.stats for s in shards]
        if self.cache is not None:
            # delta over this run only: the engine can serve many traces,
            # and each report describes its own run, not the lifetime
            end = self.cache.stats
            report.cache_stats = CacheStats(
                hits=end.hits - cache_start.hits,
                misses=end.misses - cache_start.misses,
                evictions=end.evictions - cache_start.evictions,
                invalidations=end.invalidations - cache_start.invalidations)
        if self.verify:
            report.max_verify_error = worst_err
        return report
