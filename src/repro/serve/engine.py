"""Offline serving wrapper over the event-driven streaming core.

:class:`ServeEngine` is the trace-at-once API: it keeps the historical
constructor and ``serve(requests) -> ServeReport`` surface, but the
serving semantics live in :class:`~repro.serve.streaming.StreamingEngine`
— ``serve`` simply spins up a streaming session seeded with this
engine's per-device installed-pattern state, submits the whole trace,
drains the event loop, and syncs the device state back.  Because the
streaming loop is tick-granularity independent, the wrapper's batching,
routing and simulated timeline are identical to feeding the same
arrivals through ``submit``/``tick`` online (asserted across scenarios,
device counts and dispatch policies in the streaming test suite).

With the default ``fifo`` drain this also reproduces the pre-streaming
offline engine exactly (the serve-bench digest stayed bit-identical
through the refactor).  ``level-affinity`` and post-flip ``adaptive``
schedules are *online* decisions — a shard picks among the batches
admitted by its decision instant, where the old route-everything-first
engine saw the full final queue — so their drain order can differ from
the historical one (the switch-reduction and fairness properties are
what the tests pin, not the exact schedule).

Per batch the loop

1. resolves the batch's operating point — every member shares a V/F
   level and a feasible pattern sparsity (that is the admission queue's
   compatibility key) — via the side-effect-free
   :meth:`~repro.core.runtime_policy.RuntimeAdapter.plan`, charged
   against the *target shard's* installed-pattern state, so each
   simulated device pays for its own reconfiguration switches;
2. installs the batch's pattern masks through the
   :class:`~repro.core.patterns.MaskManager`, where the
   :class:`~repro.serve.cache.ArtifactCache` turns repeat installs into
   lookups;
3. executes one vectorized, padding-exact forward pass
   (:func:`~repro.serve.batcher.run_padded`);
4. advances the shard's simulated clock using the analytic batch latency
   (MAC work × batch, per-invocation overhead paid once) plus any
   reconfiguration switch cost.  With ``time_sliced=True`` (the default)
   each request *completes* at its own offset inside the batch — the
   device streams members out as their MAC work finishes — so light-load
   p50 is no longer distorted by whole-batch service times.  The batch's
   last member always completes exactly when the non-sliced batch would,
   so time slicing changes per-request latency, never throughput.

Setting ``devices=1, time_sliced=False, max_batch=1`` with no cache
reproduces the repo's original single-request path — mask re-derivation
and one forward per request — which is exactly the baseline the serving
bench compares against.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Optional, Sequence

from repro.core.runtime_policy import RuntimeAdapter
from repro.hardware.dvfs import DVFSTable, VFLevel
from repro.nn.generation import GenerationConfig
from repro.serve.batcher import InferenceRequest, MicroBatcher
from repro.serve.cache import ArtifactCache
from repro.serve.decode import DecodeOptions
from repro.serve.faults import SHED_POLICIES, FaultPlan
from repro.serve.sharding import DRAIN_POLICIES, POLICIES
from repro.serve.streaming import ServeReport, StreamingEngine

__all__ = ["ServeEngine", "ServeReport"]


class ServeEngine:
    """Serve a request trace through a masked model on N simulated devices.

    ``adapter`` supplies the sparsity ladder, latency model and (via its
    ``manager``) the mask installation path; ``cache`` (optional) is
    attached to the manager so repeated installs of a known pattern set
    hit instead of re-deriving masks.  ``devices``/``policy`` control the
    shard fan-out and routing (:mod:`repro.serve.sharding`);
    ``time_sliced`` picks the per-request completion model;
    ``drain_policy``/``fairness_window`` pick each shard's queue drain
    order (``fifo`` reproduces the serial engine's schedule exactly,
    ``level-affinity`` serves V/F levels run-to-run to amortize pattern
    residency, ``adaptive`` lets each shard flip itself from fifo to
    level-affinity when its observed switch rate over
    ``adaptive_window`` batches reaches ``adaptive_threshold``).
    ``verify`` re-runs every batch member individually and records the
    worst absolute deviation — the padding-exactness guarantee, at
    roughly double the compute.

    Devices persist across ``serve`` calls: a shard keeps its installed
    pattern set between traces, so a follow-up run is never re-charged
    the cold-start install.  :meth:`streaming` hands out the underlying
    online engine for callers that want to feed arrivals incrementally.
    """

    def __init__(self, model, adapter: RuntimeAdapter, *, max_batch: int = 8,
                 window_s: float = 0.05, cache: Optional[ArtifactCache] = None,
                 pad_id: int = 0, dvfs: Optional[DVFSTable] = None,
                 verify: bool = False, reinstall_per_batch: bool = True,
                 devices: int = 1, policy: str = "round-robin",
                 time_sliced: bool = True, prewarm: bool = False,
                 drain_policy: str = "fifo", fairness_window: int = 4,
                 adaptive_window: int = 8,
                 adaptive_threshold: float = 0.5,
                 adaptive_low_threshold: Optional[float] = None,
                 fast_forward: bool = True,
                 decode: Optional[DecodeOptions] = None,
                 faults: Optional[FaultPlan] = None,
                 shed_policy: str = "none",
                 max_queue: Optional[int] = None,
                 probe_backoff_s: float = 0.005,
                 preempt_policy: str = "off",
                 cancel_after_s: Optional[float] = None,
                 tenant_weights: Optional[Dict[str, float]] = None,
                 admission_estimate: str = "remaining") -> None:
        if devices < 1:
            raise ValueError("devices must be at least 1")
        if shed_policy not in SHED_POLICIES:
            raise ValueError(f"unknown shed policy {shed_policy!r}; "
                             f"options: {list(SHED_POLICIES)}")
        if drain_policy not in DRAIN_POLICIES:
            raise ValueError(f"unknown drain policy {drain_policy!r}; "
                             f"options: {list(DRAIN_POLICIES)}")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown dispatch policy {policy!r}; options: {list(POLICIES)}")
        if adaptive_window < 1:
            raise ValueError("adaptive_window must be at least 1")
        if not 0.0 < adaptive_threshold <= 1.0:
            raise ValueError("adaptive_threshold must be in (0, 1]")
        if adaptive_low_threshold is not None and not (
                0.0 <= adaptive_low_threshold < adaptive_threshold):
            raise ValueError(
                "adaptive_low_threshold must be in [0, adaptive_threshold)")
        self.model = model
        self.adapter = adapter
        self.cache = cache
        if cache is not None and adapter.manager is not None:
            adapter.manager.attach_cache(cache)
        self.pad_id = pad_id
        self.dvfs = dvfs or DVFSTable()
        self.verify = verify
        # ``reinstall_per_batch=True`` models a stateless execution
        # context: the device re-validates/installs its masks before
        # every batch (the single-request path's behaviour, and what the
        # artifact cache turns into lookups).  Set False to trust
        # ``manager.active_set`` and skip installs when the batch keeps
        # the previous operating point.
        self.reinstall_per_batch = reinstall_per_batch
        self.devices = devices
        self.policy = policy
        self.drain_policy = drain_policy
        self.fairness_window = fairness_window
        self.adaptive_window = adaptive_window
        self.adaptive_threshold = adaptive_threshold
        self.adaptive_low_threshold = adaptive_low_threshold
        # serve-path forwards run the compiled zero-autograd ndarray plan
        # by default (bit-identical outputs); False restores the eager
        # Tensor path (`rt3 serve --no-fast-forward`).  The grouped
        # ``decode`` sub-config is the consolidated home of that knob
        # plus the decode-lane sampling defaults; when supplied it is
        # authoritative, and the flat ``fast_forward`` kwarg survives
        # only for callers predating it.
        self.decode_options = (decode if decode is not None
                               else DecodeOptions(fast_forward=fast_forward))
        self.fast_forward = self.decode_options.fast_forward
        self.time_sliced = time_sliced
        # ``prewarm=True`` models deploy-time provisioning: each device
        # starts with the pattern set of its first routed batch already
        # resident (installed before traffic, so not charged to the
        # serving timeline).  Default False keeps cold-start accounting.
        self.prewarm = prewarm
        # fault tolerance: ``faults`` schedules shard crash/stall/slow
        # events (times are simulated seconds from *session* start —
        # every serve() builds a fresh session, so a plan replays
        # identically on each call); ``shed_policy``/``max_queue`` are
        # the admission overload defenses; ``probe_backoff_s`` is the
        # first re-probe interval for a downed shard (then doubling)
        self.faults = faults
        self.shed_policy = shed_policy
        self.max_queue = max_queue
        self.probe_backoff_s = probe_backoff_s
        # preemptive deadline scheduling / cancellation / tenant fairness:
        # validated by the streaming session ctor (one copy of the rules)
        self.preempt_policy = preempt_policy
        self.cancel_after_s = cancel_after_s
        self.tenant_weights = (dict(tenant_weights)
                               if tenant_weights is not None else None)
        self.admission_estimate = admission_estimate
        # installed pattern set per device, surviving across serve() calls
        self._device_state: Dict[int, Optional[float]] = {}
        # kept for offline trace grouping / introspection; the streaming
        # core owns admission during an actual serve
        self.batcher = MicroBatcher(max_batch, window_s,
                                    key_fn=self._compat_key)

    # ------------------------------------------------------------------
    def _level(self, name: str) -> VFLevel:
        return self.dvfs[name]

    def _compat_key(self, request: InferenceRequest) -> Hashable:
        """Requests batch together iff they resolve to one operating point."""
        level = self._level(request.level_name)
        sparsity = self.adapter.feasible_sparsity(level, request.deadline_s)
        return (request.level_name, sparsity)

    def streaming(self, *, max_wait_s: Optional[float] = None,
                  verify: Optional[bool] = None) -> StreamingEngine:
        """A live online session sharing this engine's model and devices.

        The session starts from the engine's current per-device installed
        state; it does *not* sync back (the offline wrapper owns that
        lifecycle — an online caller keeps its session for the duration).
        """
        return StreamingEngine(
            self.model, self.adapter,
            max_batch=self.batcher.max_batch,
            max_wait_s=(self.batcher.window_s if max_wait_s is None
                        else max_wait_s),
            cache=self.cache, pad_id=self.pad_id, dvfs=self.dvfs,
            verify=self.verify if verify is None else verify,
            reinstall_per_batch=self.reinstall_per_batch,
            devices=self.devices, policy=self.policy,
            time_sliced=self.time_sliced, prewarm=self.prewarm,
            drain_policy=self.drain_policy,
            fairness_window=self.fairness_window,
            adaptive_window=self.adaptive_window,
            adaptive_threshold=self.adaptive_threshold,
            adaptive_low_threshold=self.adaptive_low_threshold,
            decode=self.decode_options,
            faults=self.faults, shed_policy=self.shed_policy,
            max_queue=self.max_queue,
            probe_backoff_s=self.probe_backoff_s,
            preempt_policy=self.preempt_policy,
            cancel_after_s=self.cancel_after_s,
            tenant_weights=self.tenant_weights,
            admission_estimate=self.admission_estimate,
            initial_device_state=dict(self._device_state))

    def serve(self, requests: Sequence[InferenceRequest]) -> ServeReport:
        """Serve a whole trace: submit everything, drain the event loop."""
        # session construction (switch-cost table, shard setup) happens
        # outside the measured window, like the old engine's __init__ did
        core = self.streaming()
        start_wall = time.perf_counter()
        for req in sorted(requests, key=lambda r: (r.arrival_s, r.req_id)):
            core.submit(req)
        core.drain()
        report = core.report()
        # the measured hot path covers admission + routing + per-batch
        # work; verification is excluded (it doubles the compute)
        report.wall_seconds = (time.perf_counter() - start_wall
                               - core.verify_wall_s)
        self._device_state = core.device_state()
        return report

    def serve_decode(self, requests: Sequence[InferenceRequest],
                     config: Optional[GenerationConfig] = None) -> ServeReport:
        """Serve a trace of *decode streams* offline: each request's
        ``tokens`` is a prompt, continued for ``config`` (or the engine's
        :class:`DecodeOptions` defaults) on the continuously-batched
        decode lanes.  Results carry a
        :class:`~repro.nn.generation.GenerationResult` as ``output``.
        """
        core = self.streaming()
        start_wall = time.perf_counter()
        for req in sorted(requests, key=lambda r: (r.arrival_s, r.req_id)):
            core.submit_decode(req, config=config)
        core.drain()
        report = core.report()
        report.wall_seconds = (time.perf_counter() - start_wall
                               - core.verify_wall_s)
        self._device_state = core.device_state()
        return report
