"""Batched serving engine: traffic in, adaptation + padded batches out.

The engine owns the serving timeline.  For each micro-batch it

1. resolves the batch's operating point — every member shares a V/F
   level and a feasible pattern sparsity (that is the batcher's
   compatibility key), so the :class:`~repro.core.runtime_policy.RuntimeAdapter`
   is driven once *per batch* instead of once per request;
2. installs the batch's pattern masks through the
   :class:`~repro.core.patterns.MaskManager`, where the
   :class:`~repro.serve.cache.ArtifactCache` turns repeat installs into
   lookups;
3. executes one vectorized, padding-exact forward pass
   (:func:`~repro.serve.batcher.run_padded`);
4. advances a simulated device clock using the analytic batch latency
   (MAC work × batch, per-invocation overhead paid once) plus any
   reconfiguration switch cost.

Setting ``max_batch=1`` with no cache reproduces the repo's original
single-request path — mask re-derivation and one forward per request —
which is exactly the baseline the serving bench compares against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.core.runtime_policy import AdaptationEvent, RuntimeAdapter
from repro.hardware.dvfs import DVFSTable, VFLevel
from repro.hardware.latency import SparsityKind
from repro.serve.batcher import (
    InferenceRequest,
    MicroBatcher,
    RequestResult,
    run_padded,
)
from repro.serve.cache import ArtifactCache, CacheStats


@dataclass
class ServeReport:
    """Aggregate outcome of one serving run."""

    results: List[RequestResult] = field(default_factory=list)
    events: List[AdaptationEvent] = field(default_factory=list)
    wall_seconds: float = 0.0
    cache_stats: Optional[CacheStats] = None
    max_verify_error: Optional[float] = None

    # -- request-level aggregates --------------------------------------
    @property
    def num_requests(self) -> int:
        return len(self.results)

    @property
    def num_batches(self) -> int:
        return len(self.events)

    @property
    def mean_batch_size(self) -> float:
        return self.num_requests / self.num_batches if self.num_batches else 0.0

    @property
    def throughput_rps(self) -> float:
        """Measured wall-clock requests/second of the Python hot path."""
        return self.num_requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def sim_makespan_s(self) -> float:
        return max((r.completion_s for r in self.results), default=0.0)

    @property
    def sim_throughput_rps(self) -> float:
        """Requests/second on the simulated device timeline."""
        span = self.sim_makespan_s
        return self.num_requests / span if span > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        if not self.results:
            return 0.0
        return float(np.percentile([r.latency_s for r in self.results], q))

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95_latency_s(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def deadline_hit_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.met_deadline) / len(self.results)

    @property
    def num_switches(self) -> int:
        return sum(1 for e in self.events if e.switched)

    @property
    def violations(self) -> int:
        """Batches whose compute deadline no pattern set could meet."""
        return sum(1 for e in self.events if e.chosen_sparsity is None)

    def summary(self) -> dict:
        """Machine-readable digest (consumed by the bench JSON output)."""
        out = {
            "requests": self.num_requests,
            "batches": self.num_batches,
            "mean_batch_size": self.mean_batch_size,
            "throughput_rps": self.throughput_rps,
            "sim_throughput_rps": self.sim_throughput_rps,
            "p50_latency_ms": 1e3 * self.p50_latency_s,
            "p95_latency_ms": 1e3 * self.p95_latency_s,
            "deadline_hit_rate": self.deadline_hit_rate,
            "switches": self.num_switches,
            "violations": self.violations,
            "wall_seconds": self.wall_seconds,
        }
        if self.cache_stats is not None:
            out["cache"] = self.cache_stats.as_dict()
        if self.max_verify_error is not None:
            out["max_verify_error"] = self.max_verify_error
        return out


class ServeEngine:
    """Serve a request trace through a masked model.

    ``adapter`` supplies the sparsity ladder, latency model and (via its
    ``manager``) the mask installation path; ``cache`` (optional) is
    attached to the manager so repeated installs of a known pattern set
    hit instead of re-deriving masks.  ``verify`` re-runs every batch
    member individually and records the worst absolute deviation — the
    padding-exactness guarantee, at roughly double the compute.
    """

    def __init__(self, model, adapter: RuntimeAdapter, *, max_batch: int = 8,
                 window_s: float = 0.05, cache: Optional[ArtifactCache] = None,
                 pad_id: int = 0, dvfs: Optional[DVFSTable] = None,
                 verify: bool = False, reinstall_per_batch: bool = True) -> None:
        self.model = model
        self.adapter = adapter
        self.cache = cache
        if cache is not None and adapter.manager is not None:
            adapter.manager.attach_cache(cache)
        self.pad_id = pad_id
        self.dvfs = dvfs or DVFSTable()
        self.verify = verify
        # ``reinstall_per_batch=True`` models a stateless execution
        # context: the device re-validates/installs its masks before
        # every batch (the single-request path's behaviour, and what the
        # artifact cache turns into lookups).  Set False to trust
        # ``manager.active_set`` and skip installs when the batch keeps
        # the previous operating point.
        self.reinstall_per_batch = reinstall_per_batch
        self.ladder: Dict[float, object] = dict(adapter.candidates)
        self.fallback_sparsity: float = adapter.candidates[-1][0]
        self.batcher = MicroBatcher(max_batch, window_s, key_fn=self._compat_key)

    # ------------------------------------------------------------------
    def _level(self, name: str) -> VFLevel:
        return self.dvfs[name]

    def _compat_key(self, request: InferenceRequest) -> Hashable:
        """Requests batch together iff they resolve to one operating point."""
        level = self._level(request.level_name)
        sparsity = self.adapter.feasible_sparsity(level, request.deadline_s)
        return (request.level_name, sparsity)

    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[InferenceRequest]) -> ServeReport:
        report = ServeReport(cache_stats=None)
        groups = self.batcher.batches(requests)
        clock = 0.0
        worst_err = 0.0
        verify_wall = 0.0
        cache_start = (self.cache.stats.snapshot()
                       if self.cache is not None else None)
        start_wall = time.perf_counter()
        for batch_id, group in enumerate(groups):
            level = self._level(group[0].level_name)
            event = self.adapter.adapt(level, min(r.deadline_s for r in group))
            manager = self.adapter.manager
            effective = event.chosen_sparsity
            extra_switch_s = 0.0
            installed_this_batch = False
            if effective is None:
                # Infeasible deadline: keep whatever is installed (no
                # phantom swap).  Only when nothing is installed yet fall
                # back to the sparsest set — a real switch, charged as one.
                if self.adapter.active_sparsity is not None:
                    effective = self.adapter.active_sparsity
                else:
                    effective = self.fallback_sparsity
                    pset = self.ladder[effective]
                    stats = self.adapter.reconfigurator.pattern_switch(
                        self.adapter.workload, len(pset),
                        self.adapter.hardware_pattern_size)
                    extra_switch_s = stats.seconds
                    if manager is not None:
                        manager.apply(pset)
                        installed_this_batch = True
                    self.adapter.active_sparsity = effective
            if manager is not None and not event.switched and not installed_this_batch and (
                    self.reinstall_per_batch
                    or manager.active_set is not self.ladder[effective]):
                # Re-install the batch's masks; with a cache this is a
                # lookup, without one it re-derives every layer (the
                # single-request baseline behaviour).
                manager.apply(self.ladder[effective])
            outputs = run_padded(self.model, group, self.pad_id)
            if self.verify:
                # excluded from the timed hot path: this doubles the compute
                verify_start = time.perf_counter()
                for req, out in zip(group, outputs):
                    solo = run_padded(self.model, [req], self.pad_id)[0]
                    worst_err = max(worst_err, float(np.abs(out - solo).max()))
                verify_wall += time.perf_counter() - verify_start

            service = self.adapter.latency.batch_latency_s(
                self.adapter.workload, level, len(group), effective,
                SparsityKind.PATTERN, self.adapter.hardware_pattern_size)
            service += extra_switch_s
            if event.switch is not None:
                service += event.switch.seconds
            # Dispatch time: a full batch leaves when its last member
            # arrives; a partial batch waits out the batching window from
            # its first member (the online batcher cannot know no more
            # compatible requests are coming).
            if len(group) >= self.batcher.max_batch:
                ready = max(r.arrival_s for r in group)
            else:
                ready = group[0].arrival_s + self.batcher.window_s
            begin = max(clock, ready)
            clock = begin + service
            for req, out in zip(group, outputs):
                report.results.append(RequestResult(
                    request=req, output=out, batch_id=batch_id,
                    batch_size=len(group), queue_wait_s=begin - req.arrival_s,
                    service_s=service, completion_s=clock,
                    sparsity=effective))
            report.events.append(event)
        report.wall_seconds = time.perf_counter() - start_wall - verify_wall
        if self.cache is not None:
            # delta over this run only: the engine can serve many traces,
            # and each report describes its own run, not the lifetime
            end = self.cache.stats
            report.cache_stats = CacheStats(
                hits=end.hits - cache_start.hits,
                misses=end.misses - cache_start.misses,
                evictions=end.evictions - cache_start.evictions,
                invalidations=end.invalidations - cache_start.invalidations)
        if self.verify:
            report.max_verify_error = worst_err
        return report
