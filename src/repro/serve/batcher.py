"""Dynamic micro-batching: queue, group, pad, and execute requests.

The serving hot path groups *compatible* requests — same operating point,
hence same pattern set and V/F level — into one padded batch and runs a
single vectorized forward pass through the masked model.  Padding is
exact, not approximate: right-padded positions are blocked from attention
with a key-padding mask, so every valid output position agrees with the
per-request forward to machine precision (asserted in the tests and the
serving bench).

Three pieces:

- :class:`InferenceRequest` / :class:`RequestResult` — the unit of work
  and its outcome record;
- :func:`pad_batch` / :func:`run_padded` — padding plus the vectorized
  masked forward with per-request output slicing;
- :class:`MicroBatcher` — deterministic grouping of an arrival stream
  into FIFO micro-batches under a compatibility key, a batch-size bound
  and a batching-window bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.tensor.tensor import no_grad


@dataclass
class InferenceRequest:
    """One simulated client request.

    Two distinct budgets, both measured from ``arrival_s``:

    - ``deadline_s`` — the paper's per-inference real-time constraint;
      it drives the adapter's pattern-set choice (which sparsity can
      compute one inference in time at the current V/F level);
    - ``slo_s`` — the end-to-end completion objective the *service*
      offers, which additionally absorbs queueing, batching and the
      occasional reconfiguration switch.  Defaults to ``deadline_s``.

    ``level_name`` records the V/F operating point in force when the
    request arrived (set by the scenario generator).
    """

    req_id: int
    tokens: np.ndarray  # 1-D int token ids
    arrival_s: float = 0.0
    deadline_s: float = float("inf")
    level_name: str = "l6"
    slo_s: Optional[float] = None

    def __post_init__(self) -> None:
        self.tokens = np.asarray(self.tokens)
        if self.tokens.ndim != 1 or self.tokens.size == 0:
            raise ValueError("request tokens must be a non-empty 1-D sequence")
        if self.deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError("slo must be positive")

    @property
    def length(self) -> int:
        return int(self.tokens.shape[0])

    @property
    def slo(self) -> float:
        return self.deadline_s if self.slo_s is None else self.slo_s


@dataclass
class RequestResult:
    """Outcome of one served request."""

    request: InferenceRequest
    output: np.ndarray  # (length, vocab) logits or (num_labels,) head output
    batch_id: int
    batch_size: int
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    completion_s: float = 0.0
    sparsity: Optional[float] = None
    # which simulated device served the batch (0 on a single-device engine)
    shard_id: int = 0

    @property
    def latency_s(self) -> float:
        return self.queue_wait_s + self.service_s

    @property
    def met_slo(self) -> bool:
        """End-to-end completion within the request's service objective."""
        return self.latency_s <= self.request.slo

    # kept as an alias: "deadline" in serving reports means the SLO
    met_deadline = met_slo


# ---------------------------------------------------------------------------
# padding + vectorized execution
# ---------------------------------------------------------------------------

def pad_batch(token_seqs: Sequence[np.ndarray], pad_id: int = 0
              ) -> Tuple[np.ndarray, Optional[np.ndarray], List[int]]:
    """Right-pad ragged sequences into one ``(B, Lmax)`` token matrix.

    Returns ``(tokens, key_padding_mask, lengths)`` where the mask is a
    boolean ``(B, 1, 1, Lmax)`` array (``True`` = blocked pad key)
    broadcastable against attention scores, or ``None`` when every
    sequence already has the same length (so the unpadded fast path —
    and its bitwise-identical numerics — is preserved).
    """
    if not token_seqs:
        raise ValueError("cannot pad an empty batch")
    lengths = [int(np.asarray(t).shape[0]) for t in token_seqs]
    max_len = max(lengths)
    batch = len(token_seqs)
    tokens = np.full((batch, max_len), pad_id, dtype=np.int64)
    for i, seq in enumerate(token_seqs):
        tokens[i, : lengths[i]] = np.asarray(seq)
    if all(n == max_len for n in lengths):
        return tokens, None, lengths
    mask = np.zeros((batch, 1, 1, max_len), dtype=bool)
    for i, n in enumerate(lengths):
        mask[i, 0, 0, n:] = True
    return tokens, mask, lengths


def run_padded(model, requests: Sequence[InferenceRequest], pad_id: int = 0
               ) -> List[np.ndarray]:
    """One vectorized forward over ``requests``; outputs sliced per request.

    Sequence models (3-D logits) are sliced back to each request's true
    length; pooled heads (2-D outputs) return one row per request.
    """
    tokens, mask, lengths = pad_batch([r.tokens for r in requests], pad_id)
    with no_grad():
        out = model(tokens) if mask is None else model(tokens, attn_mask=mask)
    data = out.data if hasattr(out, "data") else np.asarray(out)
    if data.ndim >= 3:
        return [data[i, : lengths[i]].copy() for i in range(len(requests))]
    return [data[i].copy() for i in range(len(requests))]


# ---------------------------------------------------------------------------
# grouping
# ---------------------------------------------------------------------------

def _default_key(request: InferenceRequest) -> Hashable:
    return request.level_name


class MicroBatcher:
    """Group an arrival-ordered request stream into micro-batches.

    Requests are compatible when ``key_fn`` agrees (by default the V/F
    level in force at arrival; the serving engine keys on the resolved
    pattern set as well).  A group is flushed when it reaches
    ``max_batch``, when the arrival stream advances more than
    ``window_s`` past the group's oldest member, or at end of stream —
    so a lone request waits at most one batching window.  Grouping is
    deterministic and preserves FIFO order within a key.
    """

    def __init__(self, max_batch: int = 8, window_s: float = 0.05,
                 key_fn: Optional[Callable[[InferenceRequest], Hashable]] = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if window_s < 0:
            raise ValueError("window cannot be negative")
        self.max_batch = max_batch
        self.window_s = window_s
        self.key_fn = key_fn or _default_key

    def batches(self, requests: Sequence[InferenceRequest]
                ) -> List[List[InferenceRequest]]:
        """Deterministically batch ``requests`` (sorted by arrival)."""
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
        open_groups: Dict[Hashable, List[InferenceRequest]] = {}
        flush_order: List[List[InferenceRequest]] = []

        def flush(key: Hashable) -> None:
            group = open_groups.pop(key, None)
            if group:
                flush_order.append(group)

        for req in ordered:
            # time out any group whose window the stream has passed
            for key in list(open_groups):
                group = open_groups[key]
                if req.arrival_s - group[0].arrival_s > self.window_s:
                    flush(key)
            key = self.key_fn(req)
            open_groups.setdefault(key, []).append(req)
            if len(open_groups[key]) >= self.max_batch:
                flush(key)
        # end of stream: flush leftovers in oldest-first order
        for key in sorted(open_groups, key=lambda k: open_groups[k][0].arrival_s):
            flush(key)
        return flush_order
