"""Dynamic micro-batching: queue, group, pad, and execute requests.

The serving hot path groups *compatible* requests — same operating point,
hence same pattern set and V/F level — into one padded batch and runs a
single vectorized forward pass through the masked model.  Padding is
exact, not approximate: right-padded positions are blocked from attention
with a key-padding mask, so every valid output position agrees with the
per-request forward to machine precision (asserted in the tests and the
serving bench).

Four pieces:

- :class:`InferenceRequest` / :class:`RequestResult` — the unit of work
  and its outcome record;
- :func:`pad_batch` / :func:`run_padded` — padding plus the vectorized
  masked forward with per-request output slicing;
- :class:`AdmissionQueue` — the *incremental* batcher: requests are
  admitted one at a time under a compatibility key, a group flushes the
  instant it reaches ``max_batch``, and every open group carries a
  window deadline (``opened_s + max_wait_s``) the event loop closes it
  at.  This is the admission-time half of the streaming serving core
  (:mod:`repro.serve.streaming`);
- :class:`MicroBatcher` — the trace-grouping wrapper: replays a fully
  known arrival stream through an :class:`AdmissionQueue` (arrivals and
  window closes merged in time order), so offline batching is *by
  construction* the same grouping the online loop would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.tensor.tensor import no_grad


@dataclass
class InferenceRequest:
    """One simulated client request.

    Two distinct budgets, both measured from ``arrival_s``:

    - ``deadline_s`` — the paper's per-inference real-time constraint;
      it drives the adapter's pattern-set choice (which sparsity can
      compute one inference in time at the current V/F level);
    - ``slo_s`` — the end-to-end completion objective the *service*
      offers, which additionally absorbs queueing, batching and the
      occasional reconfiguration switch.  Defaults to ``deadline_s``.

    ``level_name`` records the V/F operating point in force when the
    request arrived (set by the scenario generator).

    ``tenant`` names the client the request belongs to; the engine's
    per-tenant isolation (weighted fair admission shares, per-tenant
    shed/degrade accounting) keys off it.  The default single-tenant
    value keeps every historical trace byte-identical: tenancy never
    enters the compatibility key, so grouping is unaffected.
    """

    req_id: int
    tokens: np.ndarray  # 1-D int token ids
    arrival_s: float = 0.0
    deadline_s: float = float("inf")
    level_name: str = "l6"
    slo_s: Optional[float] = None
    # original deadline_s before graceful degradation re-stamped the
    # request to a sparser rung's latency (None = never degraded); set
    # by the engine's "degrade" shed policy, recorded for reporting
    degraded_from_s: Optional[float] = None
    tenant: str = "default"

    def __post_init__(self) -> None:
        self.tokens = np.asarray(self.tokens)
        if self.tokens.ndim != 1 or self.tokens.size == 0:
            raise ValueError("request tokens must be a non-empty 1-D sequence")
        if not self.tenant:
            raise ValueError("tenant must be a non-empty string")
        # NaN fails every comparison, so it must be ruled out explicitly
        # (a bare `<= 0` check silently admits it); inf is legal — "no
        # deadline" — but a budget can never be negative, zero, or NaN
        if np.isnan(self.deadline_s) or self.deadline_s <= 0:
            raise ValueError("deadline must be positive (and not NaN)")
        if self.slo_s is not None:
            if np.isnan(self.slo_s) or self.slo_s <= 0:
                raise ValueError("slo must be positive (and not NaN)")
            if self.slo_s < self.deadline_s:
                raise ValueError(
                    f"slo_s ({self.slo_s}) must be at least deadline_s "
                    f"({self.deadline_s}): the end-to-end objective absorbs "
                    "queueing and batching on top of the compute deadline")

    @property
    def length(self) -> int:
        return int(self.tokens.shape[0])

    @property
    def slo(self) -> float:
        return self.deadline_s if self.slo_s is None else self.slo_s


@dataclass
class RequestResult:
    """Outcome of one served request."""

    request: InferenceRequest
    output: np.ndarray  # (length, vocab) logits or (num_labels,) head output
    batch_id: int
    batch_size: int
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    completion_s: float = 0.0
    sparsity: Optional[float] = None
    # which simulated device served the batch (0 on a single-device engine)
    shard_id: int = 0
    # retracted by a mid-execution device crash: the result never left
    # the engine (its members re-execute on a healthy shard) and is
    # skipped by release/report
    canceled: bool = False

    @property
    def degraded(self) -> bool:
        """Served at a degraded (sparser-than-requested) operating point."""
        return self.request.degraded_from_s is not None

    @property
    def latency_s(self) -> float:
        return self.queue_wait_s + self.service_s

    @property
    def met_slo(self) -> bool:
        """End-to-end completion within the request's service objective."""
        return self.latency_s <= self.request.slo

    # kept as an alias: "deadline" in serving reports means the SLO
    met_deadline = met_slo


# ---------------------------------------------------------------------------
# padding + vectorized execution
# ---------------------------------------------------------------------------

def pad_batch(token_seqs: Sequence[np.ndarray], pad_id: int = 0
              ) -> Tuple[np.ndarray, Optional[np.ndarray], List[int]]:
    """Right-pad ragged sequences into one ``(B, Lmax)`` token matrix.

    Returns ``(tokens, key_padding_mask, lengths)`` where the mask is a
    boolean ``(B, 1, 1, Lmax)`` array (``True`` = blocked pad key)
    broadcastable against attention scores, or ``None`` when every
    sequence already has the same length (so the unpadded fast path —
    and its bitwise-identical numerics — is preserved).
    """
    if not token_seqs:
        raise ValueError("cannot pad an empty batch")
    lengths = [int(np.asarray(t).shape[0]) for t in token_seqs]
    max_len = max(lengths)
    batch = len(token_seqs)
    tokens = np.full((batch, max_len), pad_id, dtype=np.int64)
    for i, seq in enumerate(token_seqs):
        tokens[i, : lengths[i]] = np.asarray(seq)
    if all(n == max_len for n in lengths):
        return tokens, None, lengths
    mask = np.zeros((batch, 1, 1, max_len), dtype=bool)
    for i, n in enumerate(lengths):
        mask[i, 0, 0, n:] = True
    return tokens, mask, lengths


def run_padded(model, requests: Sequence[InferenceRequest], pad_id: int = 0,
               forward=None) -> List[np.ndarray]:
    """One vectorized forward over ``requests``; outputs sliced per request.

    Sequence models (3-D logits) are sliced back to each request's true
    length; pooled heads (2-D outputs) return one row per request.

    ``forward`` is an optional zero-autograd fast path — a callable
    ``forward(tokens, attn_mask=...) -> np.ndarray`` such as a
    :class:`~repro.nn.inference.CompiledForward` plan.  When given it
    replaces the eager ``model(...)`` call entirely: no ``no_grad``
    guard is needed because the plan never touches the Tensor engine
    (its float64 outputs are bit-identical, asserted in the tests).
    """
    tokens, mask, lengths = pad_batch([r.tokens for r in requests], pad_id)
    if forward is not None:
        data = forward(tokens, attn_mask=mask)
    else:
        with no_grad():
            out = (model(tokens) if mask is None
                   else model(tokens, attn_mask=mask))
        data = out.data if hasattr(out, "data") else np.asarray(out)
    if data.ndim >= 3:
        return [data[i, : lengths[i]].copy() for i in range(len(requests))]
    return [data[i].copy() for i in range(len(requests))]


# ---------------------------------------------------------------------------
# grouping
# ---------------------------------------------------------------------------

def _default_key(request: InferenceRequest) -> Hashable:
    return request.level_name


@dataclass
class FlushedGroup:
    """One closed micro-batch group, as emitted by the admission queue.

    ``full`` distinguishes the two close reasons, because they imply
    different dispatch times: a full group leaves when its last member
    arrives; a window-closed (or end-of-stream) partial group is ready
    only at ``opened_s + max_wait_s`` — the online batcher cannot know
    no more compatible requests are coming.
    """

    key: Hashable
    requests: List[InferenceRequest]
    opened_s: float  # arrival of the first member
    deadline_s: float  # opened_s + max_wait_s (the window close)
    full: bool  # closed because it reached max_batch

    @property
    def ready_s(self) -> float:
        """Earliest dispatch time under the batching-window rule."""
        if self.full:
            return max(r.arrival_s for r in self.requests)
        return self.deadline_s

    def __len__(self) -> int:
        return len(self.requests)


@dataclass
class _OpenGroup:
    key: Hashable
    opened_s: float
    deadline_s: float
    generation: int  # invalidates stale window-close events after a flush
    requests: List[InferenceRequest] = field(default_factory=list)


class AdmissionQueue:
    """Incremental micro-batch admission under a batching window.

    The online half of micro-batching: requests are admitted one at a
    time (:meth:`add`), grouped by ``key_fn``.  A group closes

    - the instant its ``max_batch``-th member is admitted (``add``
      returns the flushed group), or
    - when its *window deadline* (``opened_s + max_wait_s``) passes —
      the caller owns the clock, so it either drives :meth:`close_due`
      from an event loop or lets :meth:`flush_remaining` close
      everything at end of stream.

    Each ``add`` that opens a new group returns its window deadline so
    an event-driven caller can schedule the close; ``generation`` tags
    let it discard close events for groups that already flushed full.
    Admission order must be non-decreasing in time (ties allowed); the
    queue is deterministic and preserves FIFO order within a key.
    """

    def __init__(self, max_batch: int = 8, max_wait_s: float = 0.05,
                 key_fn: Optional[Callable[[InferenceRequest], Hashable]] = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait_s < 0:
            raise ValueError("window cannot be negative")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.key_fn = key_fn or _default_key
        # insertion-ordered: dict order == group creation order == ascending
        # opened_s (admission is time-ordered), which keeps every flush
        # discipline below deterministic
        self._open: Dict[Hashable, _OpenGroup] = {}
        self._generation = 0
        self._last_admitted_s = float("-inf")

    def __len__(self) -> int:
        """Number of requests currently waiting in open groups."""
        return sum(len(g.requests) for g in self._open.values())

    def waiting(self) -> List[InferenceRequest]:
        """Requests currently held in open groups, in admission order."""
        return [r for g in self._open.values() for r in g.requests]

    @property
    def open_groups(self) -> int:
        return len(self._open)

    def next_deadline_s(self) -> Optional[float]:
        """Earliest window close among open groups (None when empty)."""
        if not self._open:
            return None
        return min(g.deadline_s for g in self._open.values())

    def open_group(self, key: Hashable) -> Optional[_OpenGroup]:
        """The open group a ``key``-compatible request would join now.

        Introspection for the engine's admission estimate: the group's
        ``deadline_s`` is the *remaining* batching window such a request
        would actually wait out (instead of a pessimistic full
        ``max_wait_s``), and its size says whether the next admission
        would flush the group full (no wait at all).
        """
        return self._open.get(key)

    def remove(self, req_id: int) -> Optional[InferenceRequest]:
        """Retract one waiting request from its open group (cancellation).

        Returns the removed request, or ``None`` if no open group holds
        ``req_id``.  A group emptied by the removal is dropped outright —
        its scheduled window-close event goes stale and
        :meth:`close_generation` ignores it, exactly like a group that
        flushed full.  The group's window deadline is *not* re-stamped
        for the survivors: they keep batching on the window opened by
        the first admission, cancelled or not.
        """
        for key, group in self._open.items():
            for i, req in enumerate(group.requests):
                if req.req_id == req_id:
                    group.requests.pop(i)
                    if not group.requests:
                        del self._open[key]
                    return req
        return None

    def _close(self, key: Hashable, full: bool) -> FlushedGroup:
        group = self._open.pop(key)
        return FlushedGroup(group.key, group.requests, group.opened_s,
                            group.deadline_s, full)

    def add(self, request: InferenceRequest, now: float
            ) -> Tuple[Optional[FlushedGroup], Optional[Tuple[float, Hashable, int]]]:
        """Admit one request at time ``now``.

        Returns ``(flushed, window)``: ``flushed`` is the request's own
        group if this admission filled it to ``max_batch`` (closed
        immediately, ready at ``now``); ``window`` is
        ``(deadline_s, key, generation)`` when the admission *opened* a
        new group, for the caller to schedule the window close.
        """
        if now < self._last_admitted_s:
            raise ValueError("admissions must be time-ordered")
        self._last_admitted_s = now
        key = self.key_fn(request)
        window: Optional[Tuple[float, Hashable, int]] = None
        group = self._open.get(key)
        if group is None:
            self._generation += 1
            group = _OpenGroup(key, now, now + self.max_wait_s, self._generation)
            self._open[key] = group
            window = (group.deadline_s, key, group.generation)
        group.requests.append(request)
        if len(group.requests) >= self.max_batch:
            return self._close(key, full=True), window
        return None, window

    def close_due(self, now: float, *, strict: bool = False
                  ) -> List[FlushedGroup]:
        """Close every group whose window deadline has passed.

        ``strict=True`` closes only deadlines strictly before ``now`` —
        the discipline used when replaying a trace arrival-by-arrival,
        where groups whose deadline lands exactly on an arrival close
        *after* the admissions at that instant (matching the event
        loop's arrival-before-window-close ordering).
        """
        due = [key for key, g in self._open.items()
               if (g.deadline_s < now if strict else g.deadline_s <= now)]
        return [self._close(key, full=False) for key in due]

    def close_generation(self, key: Hashable, generation: int
                         ) -> Optional[FlushedGroup]:
        """Close ``key``'s group iff it is still the tagged generation.

        The event-loop entry point for window-close events: a group that
        flushed full (and possibly reopened) since the event was
        scheduled is left alone.
        """
        group = self._open.get(key)
        if group is None or group.generation != generation:
            return None
        return self._close(key, full=False)

    def flush_remaining(self) -> List[FlushedGroup]:
        """End of stream: close all open groups, oldest first."""
        return [self._close(key, full=False) for key in list(self._open)]


class MicroBatcher:
    """Group a fully known arrival-ordered request stream into batches.

    The trace-grouping wrapper over :class:`AdmissionQueue`: requests
    (sorted by arrival, ties by ``req_id``) are replayed through the
    incremental queue with window closes merged in at their deadlines,
    so the offline grouping is — by construction, not by parallel
    implementation — exactly what the streaming admission loop produces
    for the same trace.  A group is flushed when it reaches
    ``max_batch``, when its batching window ``window_s`` closes, or at
    end of stream; a lone request waits at most one batching window.
    """

    def __init__(self, max_batch: int = 8, window_s: float = 0.05,
                 key_fn: Optional[Callable[[InferenceRequest], Hashable]] = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if window_s < 0:
            raise ValueError("window cannot be negative")
        self.max_batch = max_batch
        self.window_s = window_s
        self.key_fn = key_fn or _default_key

    def queue_factory(self) -> AdmissionQueue:
        """A fresh admission queue with this batcher's grouping rules."""
        return AdmissionQueue(self.max_batch, self.window_s, self.key_fn)

    def batches(self, requests: Sequence[InferenceRequest]
                ) -> List[List[InferenceRequest]]:
        """Deterministically batch ``requests`` (sorted by arrival)."""
        return [g.requests for g in self.flushed_groups(requests)]

    def flushed_groups(self, requests: Sequence[InferenceRequest]
                       ) -> List[FlushedGroup]:
        """Replay the trace through an admission queue; groups in flush order."""
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
        queue = self.queue_factory()
        flushed: List[FlushedGroup] = []
        for req in ordered:
            # windows that closed strictly before this arrival flush first
            flushed.extend(queue.close_due(req.arrival_s, strict=True))
            full, _ = queue.add(req, req.arrival_s)
            if full is not None:
                flushed.append(full)
        flushed.extend(queue.flush_remaining())
        return flushed
