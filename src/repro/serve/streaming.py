"""Event-driven streaming serving core: submit / tick / drain.

The paper's whole argument is *run-time* reconfigurability — the device
reacts to battery, bandwidth and deadline pressure as requests arrive —
so the serving core is an online admission loop, not a trace compiler.
:class:`StreamingEngine` maintains one global event heap over simulated
time with three event kinds:

- **arrival** — a submitted request reaches the admission queue
  (:class:`~repro.serve.batcher.AdmissionQueue`); compatible requests
  (same V/F level + feasible pattern sparsity) accumulate in an open
  micro-batch group;
- **batch-window close** — an open group's batching window
  (``max_wait_s`` past its first member) expires and the partial batch
  is admitted; a group that reaches ``max_batch`` is admitted
  immediately at the filling arrival instead;
- **shard ready** — a simulated device is idle and has a dispatchable
  batch; it picks its next batch per its drain policy
  (:meth:`~repro.serve.sharding.DeviceShard.pop_next`), the engine
  resolves the operating point against *that device's* installed
  pattern state, executes one padded vectorized forward, and advances
  the device clock by switch cost plus the time-sliced batch service.

Admitted batches are routed at admission time by the
:class:`~repro.serve.sharding.Dispatcher` — this is where continuous
batching wins throughput and tail latency: placement happens the moment
a batch forms, with the load/pattern-residency picture of that instant.

The caller owns the clock: :meth:`submit` files a request (its arrival
may be now or in the future), :meth:`tick` advances simulated time and
returns the requests that completed by then, :meth:`drain` runs the
loop to exhaustion.  The semantics are *tick-granularity independent* —
any schedule of ``tick`` calls (including none: submit everything and
``drain``) yields the same admissions, placements and simulated
timeline for the same arrival stream, which is exactly how the offline
:meth:`~repro.serve.engine.ServeEngine.serve` wrapper reproduces its
historical behaviour on top of this loop.

At equal simulated times, arrivals are processed before window closes
before shard executions (then submission order), so ties are
deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.runtime_policy import AdaptationEvent, RuntimeAdapter
from repro.hardware.dvfs import DVFSTable, VFLevel
from repro.nn.generation import DecodeSession, GenerationConfig
from repro.nn.inference import UnsupportedModel, compile_decode, compile_inference
from repro.hardware.latency import SparsityKind
from repro.serve.batcher import (
    AdmissionQueue,
    FlushedGroup,
    InferenceRequest,
    RequestResult,
    run_padded,
)
from repro.serve.cache import ArtifactCache, CacheStats
from repro.serve.decode import DecodeJob, DecodeOptions
from repro.serve.sharding import (
    DRAIN_POLICIES,
    POLICIES,
    DeviceShard,
    Dispatcher,
    QueuedBatch,
    ShardStats,
)

# event-kind priorities: at one simulated instant, admissions land before
# batch windows close before devices pick their next batch
_ARRIVAL, _WINDOW_CLOSE, _SHARD_READY = 0, 1, 2


@dataclass
class ServeReport:
    """Aggregate outcome of one serving run."""

    results: List[RequestResult] = field(default_factory=list)
    events: List[AdaptationEvent] = field(default_factory=list)
    wall_seconds: float = 0.0
    cache_stats: Optional[CacheStats] = None
    max_verify_error: Optional[float] = None
    shard_stats: List[ShardStats] = field(default_factory=list)
    policy: str = "round-robin"
    time_sliced: bool = True

    # -- request-level aggregates --------------------------------------
    @property
    def num_requests(self) -> int:
        return len(self.results)

    @property
    def num_batches(self) -> int:
        return len(self.events)

    @property
    def mean_batch_size(self) -> float:
        return self.num_requests / self.num_batches if self.num_batches else 0.0

    @property
    def throughput_rps(self) -> float:
        """Measured wall-clock requests/second of the Python hot path."""
        return self.num_requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def sim_makespan_s(self) -> float:
        return max((r.completion_s for r in self.results), default=0.0)

    @property
    def sim_throughput_rps(self) -> float:
        """Requests/second on the simulated device timeline."""
        span = self.sim_makespan_s
        return self.num_requests / span if span > 0 else 0.0

    @property
    def sim_busy_s(self) -> float:
        """Total simulated device busy time across all shards."""
        return sum(s.busy_s for s in self.shard_stats)

    @property
    def service_throughput_rps(self) -> float:
        """Requests/second of busy device time — batching efficiency.

        Unlike :attr:`sim_throughput_rps` (bounded by the arrival span
        under light load), this measures how much work one second of
        device time buys, which is what a larger admission window trades
        latency for.
        """
        busy = self.sim_busy_s
        return self.num_requests / busy if busy > 0 else 0.0

    @property
    def devices(self) -> int:
        return max(1, len(self.shard_stats))

    def latency_percentile(self, q: float) -> float:
        if not self.results:
            return 0.0
        return float(np.percentile([r.latency_s for r in self.results], q))

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95_latency_s(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def deadline_hit_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.met_deadline) / len(self.results)

    @property
    def num_switches(self) -> int:
        return sum(1 for e in self.events if e.switched)

    @property
    def decode_tokens(self) -> int:
        """Decode-lane tokens emitted across all devices."""
        return sum(s.decode_tokens for s in self.shard_stats)

    @property
    def decode_streams(self) -> int:
        """Decode streams completed across all devices."""
        return sum(s.decode_streams for s in self.shard_stats)

    @property
    def violations(self) -> int:
        """Batches whose compute deadline no pattern set could meet."""
        return sum(1 for e in self.events if e.chosen_sparsity is None)

    def summary(self) -> dict:
        """Machine-readable digest (consumed by the bench JSON output)."""
        out = {
            "requests": self.num_requests,
            "batches": self.num_batches,
            "mean_batch_size": self.mean_batch_size,
            "throughput_rps": self.throughput_rps,
            "sim_throughput_rps": self.sim_throughput_rps,
            "p50_latency_ms": 1e3 * self.p50_latency_s,
            "p95_latency_ms": 1e3 * self.p95_latency_s,
            "deadline_hit_rate": self.deadline_hit_rate,
            "switches": self.num_switches,
            "violations": self.violations,
            "wall_seconds": self.wall_seconds,
            "devices": self.devices,
            "policy": self.policy,
            "time_sliced": self.time_sliced,
        }
        if self.decode_tokens:
            out["decode_streams"] = self.decode_streams
            out["decode_tokens"] = self.decode_tokens
        if self.shard_stats:
            makespan = self.sim_makespan_s
            out["shards"] = [s.as_dict(makespan) for s in self.shard_stats]
        if self.cache_stats is not None:
            out["cache"] = self.cache_stats.as_dict()
        if self.max_verify_error is not None:
            out["max_verify_error"] = self.max_verify_error
        return out


class StreamingEngine:
    """Online admit/tick serving loop over N simulated devices.

    One live serving *session*: simulated time only moves forward, and
    the engine holds the admission queue, the dispatcher, and the device
    shards (with their installed-pattern state) for its whole lifetime.
    ``adapter`` supplies the sparsity ladder, latency model and (via its
    ``manager``) the mask installation path; ``cache`` memoizes mask
    derivation and sparse-format conversion across batches.

    ``initial_device_state`` maps shard id → installed sparsity for
    devices provisioned before this session (a device that served an
    earlier trace keeps its masks); unlisted shards start from the
    adapter's own installed state.  ``verify`` re-runs every batch
    member individually and records the worst absolute deviation —
    padding exactness at roughly double the compute, excluded from the
    measured wall time.

    ``retain_results=False`` drops each request's result record (and its
    output array) once it is handed out by :meth:`tick`/:meth:`drain`,
    bounding a long-lived session's memory; :meth:`report` then carries
    only the aggregate shard/event accounting, so per-request latency
    percentiles must be computed by the caller from the released
    completions.
    """

    def __init__(self, model, adapter: RuntimeAdapter, *, max_batch: int = 8,
                 max_wait_s: float = 0.05, cache: Optional[ArtifactCache] = None,
                 pad_id: int = 0, dvfs: Optional[DVFSTable] = None,
                 verify: bool = False, reinstall_per_batch: bool = True,
                 devices: int = 1, policy: str = "round-robin",
                 time_sliced: bool = True, prewarm: bool = False,
                 drain_policy: str = "fifo", fairness_window: int = 4,
                 adaptive_window: int = 8, adaptive_threshold: float = 0.5,
                 adaptive_low_threshold: Optional[float] = None,
                 initial_device_state: Optional[Dict[int, Optional[float]]] = None,
                 retain_results: bool = True,
                 fast_forward: bool = True,
                 decode: Optional[DecodeOptions] = None) -> None:
        if devices < 1:
            raise ValueError("devices must be at least 1")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown dispatch policy {policy!r}; options: {list(POLICIES)}")
        if drain_policy not in DRAIN_POLICIES:
            raise ValueError(f"unknown drain policy {drain_policy!r}; "
                             f"options: {list(DRAIN_POLICIES)}")
        if not np.isfinite(max_wait_s) or max_wait_s < 0:
            raise ValueError("max_wait_s must be finite and non-negative")
        self.model = model
        self.adapter = adapter
        self.cache = cache
        if cache is not None and adapter.manager is not None:
            adapter.manager.attach_cache(cache)
        self.pad_id = pad_id
        self.dvfs = dvfs or DVFSTable()
        self.verify = verify
        self.reinstall_per_batch = reinstall_per_batch
        # serve-path forwards default to the compiled zero-autograd plan
        # (bit-identical to the eager path); the plan is built lazily on
        # the first executed batch and recompiles itself only when a
        # weight or installed mask actually changes (O(1) token check).
        # The grouped DecodeOptions is authoritative when supplied; the
        # flat fast_forward kwarg survives for callers predating it.
        self.decode_options = (decode if decode is not None
                               else DecodeOptions(fast_forward=fast_forward))
        self.fast_forward = self.decode_options.fast_forward
        self._plan = None
        self._decoder = None
        self._decoder_tried = False
        self.time_sliced = time_sliced
        self.prewarm = prewarm
        self.policy = policy
        self.ladder: Dict[float, object] = dict(adapter.candidates)
        self.fallback_sparsity: float = adapter.candidates[-1][0]
        self._switch_cost_s: Dict[float, float] = {
            sparsity: adapter.reconfigurator.pattern_switch(
                adapter.workload, len(pset),
                adapter.hardware_pattern_size).seconds
            for sparsity, pset in self.ladder.items()}
        self.admission = AdmissionQueue(max_batch, max_wait_s,
                                        key_fn=self._compat_key)
        self.dispatcher = Dispatcher(policy, switch_cost_s=self._switch_cost_s)
        self.shards = [DeviceShard(i, drain_policy=drain_policy,
                                   fairness_window=fairness_window,
                                   adaptive_window=adaptive_window,
                                   adaptive_threshold=adaptive_threshold,
                                   adaptive_low_threshold=adaptive_low_threshold)
                       for i in range(devices)]
        state = dict(initial_device_state or {})
        for shard in self.shards:
            # a device resumes with whatever it had installed last session;
            # otherwise it inherits the adapter's provisioning (deploy-time
            # installs are shared — every replica ships with the masks)
            shard.active_sparsity = state.get(shard.shard_id,
                                              adapter.active_sparsity)
            shard.expected_sparsity = shard.active_sparsity
        # -- event loop state ------------------------------------------
        self.retain_results = retain_results
        self.now_s = 0.0
        self._heap: List[Tuple[float, int, int, object]] = []
        self._tiebreak = itertools.count()
        self._seq = 0
        self._results: List[RequestResult] = []
        self._pending_done: List[Tuple[float, int, RequestResult]] = []
        self._events: List[Tuple[int, AdaptationEvent]] = []
        self._prewarmed: set = set()
        self._scheduled_ready: Dict[int, float] = {}
        self._worst_err = 0.0
        self._verify_wall = 0.0
        self._wall = 0.0
        self._cache_start = (cache.stats.snapshot()
                             if cache is not None else None)

    # ------------------------------------------------------------------
    @property
    def max_batch(self) -> int:
        return self.admission.max_batch

    @property
    def max_wait_s(self) -> float:
        return self.admission.max_wait_s

    @property
    def verify_wall_s(self) -> float:
        """Wall seconds spent on verification (excluded from wall_seconds)."""
        return self._verify_wall

    def _level(self, name: str) -> VFLevel:
        return self.dvfs[name]

    def _forward(self):
        """The compiled zero-autograd forward plan (None = eager path)."""
        if not self.fast_forward:
            return None
        if self._plan is None:
            try:
                self._plan = compile_inference(self.model)
            except (UnsupportedModel, ValueError):
                # unknown architecture (or a model left in training
                # mode): serve through the eager Tensor path instead
                self.fast_forward = False
                return None
        return self._plan

    def _decode_plan(self):
        """The shared KV-cached decode plane (None = eager sessions)."""
        if not self.fast_forward:
            return None
        if self._decoder is None and not self._decoder_tried:
            self._decoder_tried = True
            try:
                self._decoder = compile_decode(self.model,
                                               plan=self._forward())
            except (UnsupportedModel, ValueError):
                self._decoder = None
        return self._decoder

    def _decode_session(self) -> DecodeSession:
        """A fresh lane session sharing the engine-wide decode plane."""
        decoder = self._decode_plan()
        if decoder is not None:
            return DecodeSession(self.model, decoder=decoder)
        return DecodeSession(self.model, compiled=False)

    def _compat_key(self, request: InferenceRequest) -> Hashable:
        """Requests batch together iff they resolve to one operating point."""
        level = self._level(request.level_name)
        sparsity = self.adapter.feasible_sparsity(level, request.deadline_s)
        return (request.level_name, sparsity)

    def device_state(self) -> Dict[int, Optional[float]]:
        """Installed sparsity per device (to seed a follow-up session)."""
        return {s.shard_id: s.active_sparsity for s in self.shards}

    def backlog(self) -> int:
        """Requests waiting in open groups plus batches queued on devices."""
        return len(self.admission) + sum(
            len(b) for s in self.shards for q in s.queues.values() for b in q)

    def next_event_s(self) -> Optional[float]:
        """Simulated time of the next pending event or completion."""
        times = []
        if self._heap:
            times.append(self._heap[0][0])
        if self._pending_done:
            times.append(self._pending_done[0][0])
        return min(times) if times else None

    # ------------------------------------------------------------------
    # public loop API
    # ------------------------------------------------------------------
    def submit(self, request: InferenceRequest,
               arrival_s: Optional[float] = None) -> None:
        """File one request; it reaches admission at its arrival time.

        ``arrival_s`` overrides the request's own ``arrival_s`` (the
        request is restamped).  Arrivals may not predate simulated time
        already ticked past — the loop cannot rewrite history.
        """
        start = time.perf_counter()
        if arrival_s is not None:
            request.arrival_s = arrival_s
        if request.arrival_s < self.now_s:
            raise ValueError(
                f"request {request.req_id} arrives at {request.arrival_s:.6f}s "
                f"but the loop already advanced to {self.now_s:.6f}s")
        heapq.heappush(self._heap, (request.arrival_s, _ARRIVAL,
                                    next(self._tiebreak), request))
        self._wall += time.perf_counter() - start

    def submit_decode(self, request: InferenceRequest,
                      config: Optional[GenerationConfig] = None,
                      arrival_s: Optional[float] = None) -> None:
        """File one decode stream: ``request.tokens`` is the prompt.

        The stream is routed at arrival and joins its device's rolling
        decode batch at the next token boundary; it leaves on eos or
        after ``max_new_tokens`` (from ``config`` or the engine's
        :class:`DecodeOptions` defaults).  Its completion surfaces
        through :meth:`tick`/:meth:`drain` like any request, with
        ``output`` a :class:`~repro.nn.generation.GenerationResult`.
        """
        start = time.perf_counter()
        if arrival_s is not None:
            request.arrival_s = arrival_s
        if request.arrival_s < self.now_s:
            raise ValueError(
                f"request {request.req_id} arrives at {request.arrival_s:.6f}s "
                f"but the loop already advanced to {self.now_s:.6f}s")
        cfg = (config if config is not None
               else self.decode_options.generation_config()).validate()
        job = DecodeJob(request=request, config=cfg)
        heapq.heappush(self._heap, (request.arrival_s, _ARRIVAL,
                                    next(self._tiebreak), job))
        self._wall += time.perf_counter() - start

    def tick(self, until_s: float) -> List[RequestResult]:
        """Advance simulated time to ``until_s``; completions in order.

        Processes every event (arrival, window close, shard execution)
        due by ``until_s`` and returns the requests whose simulated
        completion lands at or before it, ordered by completion time.

        Submit every arrival at or before ``until_s`` *before* ticking
        to it: the heap orders same-instant arrivals ahead of window
        closes, but a tick cannot wait for arrivals it has not been
        handed yet — ticking to ``t`` and only then submitting a
        ``t``-stamped request lets a window deadline at exactly ``t``
        close first (the loop cannot know more arrivals share the
        instant).
        """
        if until_s < self.now_s:
            raise ValueError("simulated time must advance monotonically")
        start = time.perf_counter()
        self._advance(until_s)
        self.now_s = max(self.now_s, until_s)
        out = self._release(until_s)
        self._wall += time.perf_counter() - start
        return out

    def drain(self) -> List[RequestResult]:
        """Run the loop to exhaustion; every remaining completion."""
        start = time.perf_counter()
        self._advance(None)
        out = self._release(float("inf"))
        self._wall += time.perf_counter() - start
        return out

    def play(self, requests, *, drain: bool = True) -> List[RequestResult]:
        """Feed an arrival-ordered request stream through the loop online.

        The one correct feeding discipline, shared by the CLI, the
        streaming bench and the tests: each request is submitted, and
        simulated time advances *lagging one arrival behind* — the loop
        only ticks to an instant once every arrival at that instant has
        been submitted, so same-instant ties batch exactly as the
        offline wrapper would (ticking eagerly to each arrival would let
        a window deadline at that instant close ahead of its same-time
        peers).  With ``drain=True`` the tail runs to exhaustion.
        Returns the released completions in completion order.
        """
        out: List[RequestResult] = []
        prev: Optional[float] = None
        for request in requests:
            if prev is not None and request.arrival_s > prev:
                out.extend(self.tick(prev))
            self.submit(request)
            prev = request.arrival_s
        if drain:
            out.extend(self.drain())
        return out

    def report(self) -> ServeReport:
        """Digest of everything executed so far (deterministic order)."""
        report = ServeReport(policy=self.policy, time_sliced=self.time_sliced)
        report.results = sorted(self._results,
                                key=lambda r: (r.batch_id, r.request.req_id))
        report.events = [e for _, e in sorted(self._events,
                                              key=lambda t: t[0])]
        report.shard_stats = [s.stats for s in self.shards]
        report.wall_seconds = max(0.0, self._wall - self._verify_wall)
        if self.cache is not None:
            # delta over this session only: each report describes its own
            # run, not the cache's lifetime
            end = self.cache.stats
            report.cache_stats = CacheStats(
                hits=end.hits - self._cache_start.hits,
                misses=end.misses - self._cache_start.misses,
                evictions=end.evictions - self._cache_start.evictions,
                invalidations=end.invalidations - self._cache_start.invalidations)
        if self.verify:
            report.max_verify_error = self._worst_err
        return report

    # ------------------------------------------------------------------
    # event loop internals
    # ------------------------------------------------------------------
    def _advance(self, horizon_s: Optional[float]) -> None:
        while self._heap:
            when, kind, _, payload = self._heap[0]
            if horizon_s is not None and when > horizon_s:
                return
            heapq.heappop(self._heap)
            self.now_s = max(self.now_s, when)
            if kind == _ARRIVAL:
                self._on_arrival(payload, when)
            elif kind == _WINDOW_CLOSE:
                key, generation = payload
                group = self.admission.close_generation(key, generation)
                if group is not None:
                    self._admit(group)
            else:  # _SHARD_READY
                self._on_shard_ready(payload, when)

    def _on_arrival(self, request: InferenceRequest, now: float) -> None:
        if isinstance(request, DecodeJob):
            self._place_decode(request, now)
            return
        full, window = self.admission.add(request, now)
        if window is not None:
            deadline, key, generation = window
            heapq.heappush(self._heap, (deadline, _WINDOW_CLOSE,
                                        next(self._tiebreak),
                                        (key, generation)))
        if full is not None:
            self._admit(full)

    def _place_decode(self, job: DecodeJob, now: float) -> None:
        """Route an arrived decode stream to a device's lane."""
        req = job.request
        level = self._level(req.level_name)
        job.compat_key = self._compat_key(req)
        sparsity = job.compat_key[1]
        per_token = self.adapter.latency.batch_latency_s(
            self.adapter.workload, level, 1,
            sparsity if sparsity is not None else self.fallback_sparsity,
            SparsityKind.PATTERN, self.adapter.hardware_pattern_size)
        job.est_service_s = per_token * job.config.max_new_tokens
        probe = QueuedBatch(-1, [req], req.level_name, now,
                            job.est_service_s, sparsity=sparsity)
        shard = self.dispatcher.place(probe, self.shards)
        # the lane consumes load like an enqueued batch would, minus the
        # queue itself: the stream holds its device one token at a time
        shard.assigned_est_s += job.est_service_s
        if sparsity is not None:
            shard.expected_sparsity = sparsity
        shard.decode.add_pending(job)
        self._schedule_shard(shard)

    def _admit(self, group: FlushedGroup) -> None:
        """A closed micro-batch enters the system: resolve, route, queue."""
        seq = self._seq
        self._seq += 1
        requests = group.requests
        level = self._level(requests[0].level_name)
        sparsity = self.adapter.feasible_sparsity(
            level, min(r.deadline_s for r in requests))
        est = self.adapter.latency.batch_latency_s(
            self.adapter.workload, level, len(requests),
            sparsity if sparsity is not None else self.fallback_sparsity,
            SparsityKind.PATTERN, self.adapter.hardware_pattern_size)
        qb = QueuedBatch(seq, list(requests), level.name, group.ready_s, est,
                         sparsity=sparsity)
        shard = self.dispatcher.route(qb, self.shards)
        if (self.prewarm and shard.shard_id not in self._prewarmed
                and shard.active_sparsity is None and sparsity is not None):
            # deploy-time provisioning: the device's first pattern set is
            # installed before traffic, so it is not charged to the timeline
            shard.active_sparsity = sparsity
        self._prewarmed.add(shard.shard_id)
        self._schedule_shard(shard)

    def _schedule_shard(self, shard: DeviceShard) -> None:
        when = shard.next_event_s()
        if when is None or self._scheduled_ready.get(shard.shard_id) == when:
            return
        self._scheduled_ready[shard.shard_id] = when
        heapq.heappush(self._heap, (when, _SHARD_READY,
                                    next(self._tiebreak), shard.shard_id))

    def _on_shard_ready(self, shard_id: int, now: float) -> None:
        shard = self.shards[shard_id]
        if self._scheduled_ready.get(shard_id) == now:
            del self._scheduled_ready[shard_id]
        while True:
            when = shard.next_event_s()
            if when is None:
                return
            if when > now:
                # the device's next chance moved (it just ran a batch, or
                # this event was stale); re-arm and yield the loop
                self._schedule_shard(shard)
                return
            decode_due = shard.decode.due_s(shard.clock_s)
            queue_due = shard.queue_event_s()
            if decode_due is not None and (queue_due is None
                                           or decode_due <= queue_due):
                # token boundaries win ties: the decode lane is the
                # latency-critical traffic and each boundary is short
                self._decode_tick(shard, when)
            else:
                batch = shard.pop_next()
                self._execute(shard, batch)

    # ------------------------------------------------------------------
    # execution (one batch on one device)
    # ------------------------------------------------------------------
    def _resolve_operating_point(self, shard: DeviceShard, level: VFLevel,
                                 qb: QueuedBatch
                                 ) -> Tuple[AdaptationEvent, float, float, bool]:
        """Adaptation decision against the shard's own installed state.

        Returns ``(event, effective_sparsity, switch_seconds, installed)``
        where ``switch_seconds`` is the total reconfiguration cost this
        batch pays on its device (planned switch and/or cold-start
        fallback) and ``installed`` says whether the device physically
        installed a pattern set for this batch (for per-shard switch
        accounting — the fallback install is not an adapter switch, but
        it is a device one).
        """
        event = self.adapter.plan(level,
                                  min(r.deadline_s for r in qb.requests),
                                  shard.active_sparsity, chosen=qb.sparsity)
        effective = event.chosen_sparsity
        switch_s = event.switch.seconds if event.switch is not None else 0.0
        installed = event.switched
        if effective is None:
            # Infeasible deadline: keep whatever this device has installed
            # (no phantom swap).  Only when nothing is installed yet fall
            # back to the sparsest set — a real switch, charged as one.
            if shard.active_sparsity is not None:
                effective = shard.active_sparsity
            else:
                effective = self.fallback_sparsity
                pset = self.ladder[effective]
                stats = self.adapter.reconfigurator.pattern_switch(
                    self.adapter.workload, len(pset),
                    self.adapter.hardware_pattern_size)
                switch_s += stats.seconds
                installed = True
        shard.active_sparsity = effective
        return event, effective, switch_s, installed

    def _execute(self, shard: DeviceShard, qb: QueuedBatch) -> None:
        group = qb.requests
        level = self._level(qb.level_name)
        event, effective, switch_s, installed = \
            self._resolve_operating_point(shard, level, qb)
        pset = self.ladder[effective]
        manager = self.adapter.manager
        if manager is not None and (self.reinstall_per_batch
                                    or manager.active_set is not pset):
            manager.apply(pset)
        # keep the shared adapter's view in sync with the masks resident on
        # the model, so code mixing the loop with direct adapter.adapt
        # calls never re-charges a switch for an already-installed set
        self.adapter.active_sparsity = effective
        fwd = self._forward()
        outputs = run_padded(self.model, group, self.pad_id, forward=fwd)
        if self.verify:
            # excluded from the timed hot path: doubles the compute
            verify_start = time.perf_counter()
            for req, out in zip(group, outputs):
                solo = run_padded(self.model, [req], self.pad_id,
                                  forward=fwd)[0]
                self._worst_err = max(self._worst_err,
                                      float(np.abs(out - solo).max()))
            self._verify_wall += time.perf_counter() - verify_start

        offsets = self.adapter.latency.batch_completion_offsets_s(
            self.adapter.workload, level, len(group), effective,
            SparsityKind.PATTERN, self.adapter.hardware_pattern_size)
        service = switch_s + offsets[-1]
        begin = max(shard.clock_s, qb.ready_s)
        completion = begin + service
        shard.record(qb, service, completion, installed)
        for i, (req, out) in enumerate(zip(group, outputs)):
            member_service = (switch_s + offsets[i]
                              if self.time_sliced else service)
            result = RequestResult(
                request=req, output=out, batch_id=qb.seq,
                batch_size=len(group),
                queue_wait_s=begin - req.arrival_s,
                service_s=member_service,
                completion_s=begin + member_service,
                sparsity=effective, shard_id=shard.shard_id)
            if self.retain_results:
                # kept for report(); long-lived sessions opt out and
                # consume completions from tick()/drain() instead
                self._results.append(result)
            heapq.heappush(self._pending_done,
                           (result.completion_s, next(self._tiebreak), result))
        self._events.append((qb.seq, event))

    # ------------------------------------------------------------------
    # decode lane (one token boundary on one device)
    # ------------------------------------------------------------------
    def _decode_tick(self, shard: DeviceShard, now: float) -> None:
        """Advance every decode stream on ``shard`` by one token.

        Pending streams whose arrival has passed join first (continuous
        batching: membership changes only at boundaries), then each
        operating-point group runs one stacked decode step — grouped by
        context length inside the session, so nothing is padded and
        every stream's bits match a solo run.  Switch costs are resolved
        per group against this device's installed state, exactly like a
        batch execution, and each group's step is an
        :class:`AdaptationEvent` in the report.
        """
        lane = shard.decode
        begin = max(shard.clock_s, now)
        lane.admit(begin, self._decode_session)
        clock = begin
        tokens = 0
        finished = 0
        switches = 0
        for key in lane.group_keys():
            group = lane.groups[key]
            session = group.session
            active = [group.streams[sid] for sid in sorted(group.streams)
                      if not session.finished(sid)]
            if not active:
                continue
            seq = self._seq
            self._seq += 1
            level = self._level(key[0])
            reqs = [s.job.request for s in active]
            qb = QueuedBatch(seq, reqs, key[0], begin, 0.0, sparsity=key[1])
            event, effective, switch_s, installed = \
                self._resolve_operating_point(shard, level, qb)
            pset = self.ladder[effective]
            manager = self.adapter.manager
            if manager is not None and (self.reinstall_per_batch
                                        or manager.active_set is not pset):
                # an identical re-install keeps every cache_token stable,
                # so the decode plane's KV state survives; a real switch
                # bumps the tokens and invalidates it — the correctness
                # the recompile-on-mask-install tests pin
                manager.apply(pset)
            self.adapter.active_sparsity = effective
            emitted = session.step()
            per_token = self.adapter.latency.batch_latency_s(
                self.adapter.workload, level, len(active), effective,
                SparsityKind.PATTERN, self.adapter.hardware_pattern_size)
            service = switch_s + per_token
            clock += service
            tokens += len(emitted)
            if installed:
                switches += 1
            self._events.append((seq, event))
            for stream in active:
                if not session.finished(stream.sid):
                    continue
                finished += 1
                del group.streams[stream.sid]
                result = RequestResult(
                    request=stream.job.request,
                    output=session.result(stream.sid), batch_id=seq,
                    batch_size=len(active),
                    queue_wait_s=stream.join_s - stream.job.request.arrival_s,
                    service_s=clock - stream.join_s,
                    completion_s=clock,
                    sparsity=effective, shard_id=shard.shard_id)
                if self.retain_results:
                    self._results.append(result)
                heapq.heappush(
                    self._pending_done,
                    (result.completion_s, next(self._tiebreak), result))
        lane.prune()
        if clock > begin or tokens:
            shard.record_decode(clock - begin, clock, tokens, finished,
                                switches)

    def _release(self, until_s: float) -> List[RequestResult]:
        out = []
        while self._pending_done and self._pending_done[0][0] <= until_s:
            out.append(heapq.heappop(self._pending_done)[2])
        return out
