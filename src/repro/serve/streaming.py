"""Event-driven streaming serving core: submit / tick / drain.

The paper's whole argument is *run-time* reconfigurability — the device
reacts to battery, bandwidth and deadline pressure as requests arrive —
so the serving core is an online admission loop, not a trace compiler.
:class:`StreamingEngine` maintains one global event heap over simulated
time with three event kinds:

- **arrival** — a submitted request reaches the admission queue
  (:class:`~repro.serve.batcher.AdmissionQueue`); compatible requests
  (same V/F level + feasible pattern sparsity) accumulate in an open
  micro-batch group;
- **batch-window close** — an open group's batching window
  (``max_wait_s`` past its first member) expires and the partial batch
  is admitted; a group that reaches ``max_batch`` is admitted
  immediately at the filling arrival instead;
- **shard ready** — a simulated device is idle and has a dispatchable
  batch; it picks its next batch per its drain policy
  (:meth:`~repro.serve.sharding.DeviceShard.pop_next`), the engine
  resolves the operating point against *that device's* installed
  pattern state, executes one padded vectorized forward, and advances
  the device clock by switch cost plus the time-sliced batch service.

Admitted batches are routed at admission time by the
:class:`~repro.serve.sharding.Dispatcher` — this is where continuous
batching wins throughput and tail latency: placement happens the moment
a batch forms, with the load/pattern-residency picture of that instant.

The caller owns the clock: :meth:`submit` files a request (its arrival
may be now or in the future), :meth:`tick` advances simulated time and
returns the requests that completed by then, :meth:`drain` runs the
loop to exhaustion.  The semantics are *tick-granularity independent* —
any schedule of ``tick`` calls (including none: submit everything and
``drain``) yields the same admissions, placements and simulated
timeline for the same arrival stream, which is exactly how the offline
:meth:`~repro.serve.engine.ServeEngine.serve` wrapper reproduces its
historical behaviour on top of this loop.

At equal simulated times, fault events land first, then cancellations,
then arrivals, then window closes, then shard executions (then
submission order), so ties are deterministic — a crash at a cancel's
instant has already failed its work over before the cancel goes
looking for it (cancel-during-failover is well-defined).

Fault tolerance (:mod:`repro.serve.faults`) folds into the same heap: a
:class:`~repro.serve.faults.FaultPlan` schedules crash/stall/slow
events, a crashed shard's queued and in-flight work fails over to
healthy shards through the same dispatcher (each requeued batch is
charged one pattern-switch-equivalent at execution), downed shards are
re-probed at exponentially backed-off intervals, and admission gains
two overload defenses (``shed_policy``/``max_queue``): deadline-aware
shedding and graceful degradation to sparser pattern rungs.  Shedding
and degradation both happen *before* a request touches the admission
queue, so the surviving requests group into exactly the micro-batches a
fault-free serve of the same survivors would form — which is what makes
every completed output bit-identical to that fault-free serve (the
faults bench's core invariant, alongside conservation:
``completed + shed + cancelled == submitted``).

Three scheduler-side defenses ride the same heap (PR: preemptive
deadline scheduling):

- **preemption** (``preempt_policy``) — when a freshly admitted batch
  would miss its SLO budget behind longer work on its shard, the
  scheduler may pull a looser-budget *queued* batch back out and
  re-route it (``"queued"``), or additionally retract the shard's
  in-flight batch through the crash-retraction machinery
  (``"running"``).  A preempted batch is requeued with the same
  pattern-switch-equivalent penalty as a crash failover and re-executes
  on its *full original membership*, so every completed output stays
  bit-identical;
- **cancellation** — :meth:`StreamingEngine.cancel` (or the engine-wide
  ``cancel_after_s`` client timeout) retracts a request wherever it is
  — pre-arrival, open admission group, queued/parked batch, pending
  decode job, or in-flight result — as a new *terminal* state recorded
  in :class:`~repro.serve.faults.CancelRecord`;
- **per-tenant isolation** (``tenant_weights``) — with a bounded queue,
  each tenant owns a weighted share of the admission slots; a tenant
  flooding past its share is shed (``tenant_quota``) while every other
  tenant keeps admitting, so one hot client cannot starve the fleet
  (every tenant's share is at least one slot).  Quota decisions happen
  before the admission queue, like shedding, so grouping — and
  therefore bit-exactness — is untouched.
"""

from __future__ import annotations

import heapq
import itertools
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.runtime_policy import AdaptationEvent, RuntimeAdapter
from repro.hardware.dvfs import DVFSTable, VFLevel
from repro.nn.generation import DecodeSession, GenerationConfig
from repro.nn.inference import UnsupportedModel, compile_decode, compile_inference
from repro.hardware.latency import SparsityKind
from repro.serve.batcher import (
    AdmissionQueue,
    FlushedGroup,
    InferenceRequest,
    RequestResult,
    run_padded,
)
from repro.serve.cache import ArtifactCache, CacheStats
from repro.serve.decode import DecodeJob, DecodeOptions
from repro.serve.faults import (
    PREEMPT_POLICIES,
    SHED_POLICIES,
    CancelRecord,
    FaultInjector,
    FaultPlan,
    ShardFault,
    ShedRecord,
)
from repro.serve.sharding import (
    DRAIN_POLICIES,
    POLICIES,
    DeviceShard,
    Dispatcher,
    QueuedBatch,
    ShardStats,
)

# event-kind priorities: at one simulated instant, fault events land
# before cancellations before admissions before batch windows close
# before devices pick their next batch (a crash at an arrival's instant
# is visible to that arrival; a cancel at a crash's instant sees the
# failed-over work, so cancel-during-failover is deterministic)
_FAULT, _CANCEL = -2, -1
_ARRIVAL, _WINDOW_CLOSE, _SHARD_READY = 0, 1, 2


@dataclass
class ServeReport:
    """Aggregate outcome of one serving run."""

    results: List[RequestResult] = field(default_factory=list)
    events: List[AdaptationEvent] = field(default_factory=list)
    wall_seconds: float = 0.0
    cache_stats: Optional[CacheStats] = None
    max_verify_error: Optional[float] = None
    shard_stats: List[ShardStats] = field(default_factory=list)
    policy: str = "round-robin"
    time_sliced: bool = True
    # fault-tolerance accounting: requests refused at admission (with
    # reasons), requests withdrawn by cancellation, and the conservation
    # identity — every submitted request is accounted for as completed,
    # shed or cancelled, never silently lost
    shed: List[ShedRecord] = field(default_factory=list)
    cancelled: List[CancelRecord] = field(default_factory=list)
    submitted: int = 0
    completed: int = 0

    # -- request-level aggregates --------------------------------------
    @property
    def num_requests(self) -> int:
        return len(self.results)

    @property
    def num_batches(self) -> int:
        return len(self.events)

    @property
    def mean_batch_size(self) -> float:
        return self.num_requests / self.num_batches if self.num_batches else 0.0

    @property
    def throughput_rps(self) -> float:
        """Measured wall-clock requests/second of the Python hot path."""
        return self.num_requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def sim_makespan_s(self) -> float:
        return max((r.completion_s for r in self.results), default=0.0)

    @property
    def sim_throughput_rps(self) -> float:
        """Requests/second on the simulated device timeline."""
        span = self.sim_makespan_s
        return self.num_requests / span if span > 0 else 0.0

    @property
    def sim_busy_s(self) -> float:
        """Total simulated device busy time across all shards."""
        return sum(s.busy_s for s in self.shard_stats)

    @property
    def service_throughput_rps(self) -> float:
        """Requests/second of busy device time — batching efficiency.

        Unlike :attr:`sim_throughput_rps` (bounded by the arrival span
        under light load), this measures how much work one second of
        device time buys, which is what a larger admission window trades
        latency for.
        """
        busy = self.sim_busy_s
        return self.num_requests / busy if busy > 0 else 0.0

    @property
    def devices(self) -> int:
        return max(1, len(self.shard_stats))

    def latency_percentile(self, q: float) -> float:
        if not self.results:
            return 0.0
        return float(np.percentile([r.latency_s for r in self.results], q))

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95_latency_s(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def deadline_hit_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.met_deadline) / len(self.results)

    @property
    def num_switches(self) -> int:
        return sum(1 for e in self.events if e.switched)

    @property
    def decode_tokens(self) -> int:
        """Decode-lane tokens emitted across all devices."""
        return sum(s.decode_tokens for s in self.shard_stats)

    @property
    def decode_streams(self) -> int:
        """Decode streams completed across all devices."""
        return sum(s.decode_streams for s in self.shard_stats)

    @property
    def violations(self) -> int:
        """Batches whose compute deadline no pattern set could meet."""
        return sum(1 for e in self.events if e.chosen_sparsity is None)

    # -- fault-tolerance aggregates ------------------------------------
    @property
    def num_shed(self) -> int:
        return len(self.shed)

    @property
    def shed_rate(self) -> float:
        return self.num_shed / self.submitted if self.submitted else 0.0

    @property
    def num_cancelled(self) -> int:
        return len(self.cancelled)

    @property
    def conserved(self) -> bool:
        """No request lost: completed + shed + cancelled == submitted."""
        return (self.completed + self.num_shed + self.num_cancelled
                == self.submitted)

    @property
    def degraded_requests(self) -> int:
        """Completions served at a degraded (sparser) operating point."""
        return sum(1 for r in self.results if r.degraded)

    @property
    def failures(self) -> int:
        return sum(s.failures for s in self.shard_stats)

    @property
    def recoveries(self) -> int:
        return sum(s.recoveries for s in self.shard_stats)

    @property
    def requeued_batches(self) -> int:
        """Batches pulled off dead shards and failed over."""
        return sum(s.requeued_batches for s in self.shard_stats)

    @property
    def stalls(self) -> int:
        return sum(s.stalls for s in self.shard_stats)

    @property
    def max_recovery_lag_s(self) -> float:
        """Worst probe-detection lag past a shard's physical recovery."""
        return max((s.recovery_lag_s for s in self.shard_stats), default=0.0)

    @property
    def preemptions(self) -> int:
        """Batches pulled back (queued or in-flight) for a tighter deadline."""
        return sum(s.preempted_batches for s in self.shard_stats)

    # -- per-tenant isolation aggregates --------------------------------
    def tenant_breakdown(self) -> Dict[str, Dict[str, int]]:
        """Terminal-state counts per tenant (completed/shed/cancelled).

        Built from the retained result/shed/cancel records, so under
        conservation the per-tenant counts sum to that tenant's
        submissions.  (A ``retain_results=False`` session drops result
        records as they release, so only shed/cancelled survive there.)
        """
        out: Dict[str, Dict[str, int]] = {}

        def slot(tenant: str) -> Dict[str, int]:
            return out.setdefault(tenant, {
                "completed": 0, "shed": 0, "cancelled": 0,
                "degraded": 0, "slo_misses": 0})

        for r in self.results:
            s = slot(r.request.tenant)
            s["completed"] += 1
            if r.degraded:
                s["degraded"] += 1
            if not r.met_slo:
                s["slo_misses"] += 1
        for rec in self.shed:
            slot(rec.request.tenant)["shed"] += 1
        for rec in self.cancelled:
            slot(rec.request.tenant)["cancelled"] += 1
        return out

    @property
    def starved_tenants(self) -> List[str]:
        """Tenants that saw traffic reach a terminal state yet completed
        nothing — the condition the weighted fair shares exist to
        prevent (a tenant whose every request was shed or cancelled)."""
        return sorted(t for t, s in self.tenant_breakdown().items()
                      if s["completed"] == 0)

    def summary(self) -> dict:
        """Machine-readable digest (consumed by the bench JSON output)."""
        out = {
            "requests": self.num_requests,
            "batches": self.num_batches,
            "mean_batch_size": self.mean_batch_size,
            "throughput_rps": self.throughput_rps,
            "sim_throughput_rps": self.sim_throughput_rps,
            "p50_latency_ms": 1e3 * self.p50_latency_s,
            "p95_latency_ms": 1e3 * self.p95_latency_s,
            "deadline_hit_rate": self.deadline_hit_rate,
            "switches": self.num_switches,
            "violations": self.violations,
            "wall_seconds": self.wall_seconds,
            "devices": self.devices,
            "policy": self.policy,
            "time_sliced": self.time_sliced,
        }
        if self.decode_tokens:
            out["decode_streams"] = self.decode_streams
            out["decode_tokens"] = self.decode_tokens
        if (self.shed or self.cancelled or self.degraded_requests
                or self.failures or self.stalls or self.preemptions):
            # only when fault/overload/scheduler traffic actually
            # happened, so the committed fault-free bench digests replay
            # unchanged
            reasons: Dict[str, int] = {}
            for rec in self.shed:
                reasons[rec.reason] = reasons.get(rec.reason, 0) + 1
            out["faults"] = {
                "submitted": self.submitted,
                "completed": self.completed,
                "shed": self.num_shed,
                "shed_rate": self.shed_rate,
                "shed_reasons": reasons,
                "cancelled": self.num_cancelled,
                "preemptions": self.preemptions,
                "conserved": self.conserved,
                "degraded_requests": self.degraded_requests,
                "failures": self.failures,
                "recoveries": self.recoveries,
                "requeued_batches": self.requeued_batches,
                "retried_batches": sum(s.retried_batches
                                       for s in self.shard_stats),
                "retry_penalty_s": sum(s.retry_penalty_s
                                       for s in self.shard_stats),
                "stalls": self.stalls,
                "max_recovery_lag_ms": 1e3 * self.max_recovery_lag_s,
            }
        breakdown = self.tenant_breakdown()
        if set(breakdown) - {"default"}:
            # multi-tenant traffic only: single-tenant digests replay
            # byte-identically
            out["tenants"] = breakdown
        if self.shard_stats:
            makespan = self.sim_makespan_s
            out["shards"] = [s.as_dict(makespan) for s in self.shard_stats]
        if self.cache_stats is not None:
            out["cache"] = self.cache_stats.as_dict()
        if self.max_verify_error is not None:
            out["max_verify_error"] = self.max_verify_error
        return out


class StreamingEngine:
    """Online admit/tick serving loop over N simulated devices.

    One live serving *session*: simulated time only moves forward, and
    the engine holds the admission queue, the dispatcher, and the device
    shards (with their installed-pattern state) for its whole lifetime.
    ``adapter`` supplies the sparsity ladder, latency model and (via its
    ``manager``) the mask installation path; ``cache`` memoizes mask
    derivation and sparse-format conversion across batches.

    ``initial_device_state`` maps shard id → installed sparsity for
    devices provisioned before this session (a device that served an
    earlier trace keeps its masks); unlisted shards start from the
    adapter's own installed state.  ``verify`` re-runs every batch
    member individually and records the worst absolute deviation —
    padding exactness at roughly double the compute, excluded from the
    measured wall time.

    ``retain_results=False`` drops each request's result record (and its
    output array) once it is handed out by :meth:`tick`/:meth:`drain`,
    bounding a long-lived session's memory; :meth:`report` then carries
    only the aggregate shard/event accounting, so per-request latency
    percentiles must be computed by the caller from the released
    completions.
    """

    def __init__(self, model, adapter: RuntimeAdapter, *, max_batch: int = 8,
                 max_wait_s: float = 0.05, cache: Optional[ArtifactCache] = None,
                 pad_id: int = 0, dvfs: Optional[DVFSTable] = None,
                 verify: bool = False, reinstall_per_batch: bool = True,
                 devices: int = 1, policy: str = "round-robin",
                 time_sliced: bool = True, prewarm: bool = False,
                 drain_policy: str = "fifo", fairness_window: int = 4,
                 adaptive_window: int = 8, adaptive_threshold: float = 0.5,
                 adaptive_low_threshold: Optional[float] = None,
                 initial_device_state: Optional[Dict[int, Optional[float]]] = None,
                 retain_results: bool = True,
                 fast_forward: bool = True,
                 decode: Optional[DecodeOptions] = None,
                 faults: Optional[FaultPlan] = None,
                 shed_policy: str = "none",
                 max_queue: Optional[int] = None,
                 probe_backoff_s: float = 0.005,
                 preempt_policy: str = "off",
                 cancel_after_s: Optional[float] = None,
                 tenant_weights: Optional[Dict[str, float]] = None,
                 admission_estimate: str = "remaining") -> None:
        if devices < 1:
            raise ValueError("devices must be at least 1")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown dispatch policy {policy!r}; options: {list(POLICIES)}")
        if drain_policy not in DRAIN_POLICIES:
            raise ValueError(f"unknown drain policy {drain_policy!r}; "
                             f"options: {list(DRAIN_POLICIES)}")
        if not np.isfinite(max_wait_s) or max_wait_s < 0:
            raise ValueError("max_wait_s must be finite and non-negative")
        if shed_policy not in SHED_POLICIES:
            raise ValueError(f"unknown shed policy {shed_policy!r}; "
                             f"options: {list(SHED_POLICIES)}")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be at least 1 (or None)")
        if preempt_policy not in PREEMPT_POLICIES:
            raise ValueError(f"unknown preempt policy {preempt_policy!r}; "
                             f"options: {list(PREEMPT_POLICIES)}")
        if cancel_after_s is not None and (
                not np.isfinite(cancel_after_s) or cancel_after_s <= 0):
            raise ValueError(
                "cancel_after_s must be finite and positive (or None)")
        if tenant_weights is not None:
            for tenant, weight in tenant_weights.items():
                if not tenant:
                    raise ValueError("tenant names must be non-empty")
                if np.isnan(weight) or not np.isfinite(weight) or weight <= 0:
                    raise ValueError(
                        f"tenant weight for {tenant!r} must be finite and "
                        "positive")
        if admission_estimate not in ("remaining", "full"):
            raise ValueError(
                f"unknown admission estimate {admission_estimate!r}; "
                "options: ['remaining', 'full']")
        self.model = model
        self.adapter = adapter
        self.cache = cache
        if cache is not None and adapter.manager is not None:
            adapter.manager.attach_cache(cache)
        self.pad_id = pad_id
        self.dvfs = dvfs or DVFSTable()
        self.verify = verify
        self.reinstall_per_batch = reinstall_per_batch
        # serve-path forwards default to the compiled zero-autograd plan
        # (bit-identical to the eager path); the plan is built lazily on
        # the first executed batch and recompiles itself only when a
        # weight or installed mask actually changes (O(1) token check).
        # The grouped DecodeOptions is authoritative when supplied; the
        # flat fast_forward kwarg survives for callers predating it.
        self.decode_options = (decode if decode is not None
                               else DecodeOptions(fast_forward=fast_forward))
        self.fast_forward = self.decode_options.fast_forward
        self._plan = None
        self._decoder = None
        self._decoder_tried = False
        self.time_sliced = time_sliced
        self.prewarm = prewarm
        self.policy = policy
        self.ladder: Dict[float, object] = dict(adapter.candidates)
        self.fallback_sparsity: float = adapter.candidates[-1][0]
        self._switch_cost_s: Dict[float, float] = {
            sparsity: adapter.reconfigurator.pattern_switch(
                adapter.workload, len(pset),
                adapter.hardware_pattern_size).seconds
            for sparsity, pset in self.ladder.items()}
        self.admission = AdmissionQueue(max_batch, max_wait_s,
                                        key_fn=self._compat_key)
        self.dispatcher = Dispatcher(policy, switch_cost_s=self._switch_cost_s)
        self.shards = [DeviceShard(i, drain_policy=drain_policy,
                                   fairness_window=fairness_window,
                                   adaptive_window=adaptive_window,
                                   adaptive_threshold=adaptive_threshold,
                                   adaptive_low_threshold=adaptive_low_threshold)
                       for i in range(devices)]
        state = dict(initial_device_state or {})
        for shard in self.shards:
            # a device resumes with whatever it had installed last session;
            # otherwise it inherits the adapter's provisioning (deploy-time
            # installs are shared — every replica ships with the masks)
            shard.active_sparsity = state.get(shard.shard_id,
                                              adapter.active_sparsity)
            shard.expected_sparsity = shard.active_sparsity
        # -- event loop state ------------------------------------------
        self.retain_results = retain_results
        self.now_s = 0.0
        self._heap: List[Tuple[float, int, int, object]] = []
        self._tiebreak = itertools.count()
        self._seq = 0
        self._results: List[RequestResult] = []
        self._pending_done: List[Tuple[float, int, RequestResult]] = []
        self._events: List[Tuple[int, AdaptationEvent]] = []
        self._prewarmed: set = set()
        self._scheduled_ready: Dict[int, float] = {}
        self._worst_err = 0.0
        self._verify_wall = 0.0
        self._wall = 0.0
        self._cache_start = (cache.stats.snapshot()
                             if cache is not None else None)
        # -- fault tolerance + admission control -----------------------
        self.shed_policy = shed_policy
        self.max_queue = max_queue
        self.injector = (FaultInjector(faults, devices, probe_backoff_s)
                         if faults is not None else None)
        # -- preemption / cancellation / tenant isolation --------------
        self.preempt_policy = preempt_policy
        self.cancel_after_s = cancel_after_s
        self.tenant_weights = (dict(tenant_weights)
                               if tenant_weights is not None else None)
        # "remaining" charges only the open group's residual batching
        # window in the shed estimate; "full" keeps the historical
        # full-max_wait_s pessimism for digest replay
        self.admission_estimate = admission_estimate
        self._cancelled: List[CancelRecord] = []
        # requests cancelled before their arrival event was processed,
        # and the ids whose arrivals have been processed (so a cancel
        # can tell "not arrived yet" from "already terminal")
        self._cancel_pending: set = set()
        self._arrived: set = set()
        self._shed: List[ShedRecord] = []
        self._submitted = 0
        self._completed = 0
        # work that had nowhere to go during a total outage, held until
        # a shard rejoins (or shed if the last recovery is cancelled)
        self._parked: List[QueuedBatch] = []
        self._parked_decode: List[DecodeJob] = []
        # per shard: the last executed batch/boundary, the only work that
        # can straddle a later crash instant (events process in time
        # order, so everything earlier finished before this one began)
        self._inflight: Dict[int, tuple] = {}
        if self.injector is not None:
            for f in self.injector.ordered():
                heapq.heappush(self._heap, (f.at_s, _FAULT,
                                            next(self._tiebreak),
                                            ("fault", f)))

    # ------------------------------------------------------------------
    @property
    def max_batch(self) -> int:
        return self.admission.max_batch

    @property
    def max_wait_s(self) -> float:
        return self.admission.max_wait_s

    @property
    def verify_wall_s(self) -> float:
        """Wall seconds spent on verification (excluded from wall_seconds)."""
        return self._verify_wall

    def _level(self, name: str) -> VFLevel:
        return self.dvfs[name]

    def _forward(self):
        """The compiled zero-autograd forward plan (None = eager path)."""
        if not self.fast_forward:
            return None
        if self._plan is None:
            try:
                self._plan = compile_inference(self.model)
            except UnsupportedModel:
                # unknown architecture: the designed fallback — serve
                # through the eager Tensor path instead (same bits)
                self.fast_forward = False
                return None
            except ValueError as exc:
                # a *supported* model that cannot compile (left in
                # training mode, say) is a misconfiguration; falling
                # back silently would hide a large perf regression
                warnings.warn(
                    f"compile_inference failed ({exc}); serving through "
                    "the eager Tensor path", RuntimeWarning, stacklevel=2)
                self.fast_forward = False
                return None
        return self._plan

    def _decode_plan(self):
        """The shared KV-cached decode plane (None = eager sessions)."""
        if not self.fast_forward:
            return None
        if self._decoder is None and not self._decoder_tried:
            self._decoder_tried = True
            try:
                self._decoder = compile_decode(self.model,
                                               plan=self._forward())
            except UnsupportedModel:
                self._decoder = None
            except ValueError as exc:
                warnings.warn(
                    f"compile_decode failed ({exc}); decode streams run "
                    "eager sessions", RuntimeWarning, stacklevel=2)
                self._decoder = None
        return self._decoder

    def _decode_session(self) -> DecodeSession:
        """A fresh lane session sharing the engine-wide decode plane."""
        decoder = self._decode_plan()
        if decoder is not None:
            return DecodeSession(self.model, decoder=decoder)
        return DecodeSession(self.model, compiled=False)

    def _compat_key(self, request: InferenceRequest) -> Hashable:
        """Requests batch together iff they resolve to one operating point."""
        level = self._level(request.level_name)
        sparsity = self.adapter.feasible_sparsity(level, request.deadline_s)
        return (request.level_name, sparsity)

    def device_state(self) -> Dict[int, Optional[float]]:
        """Installed sparsity per device (to seed a follow-up session)."""
        return {s.shard_id: s.active_sparsity for s in self.shards}

    def backlog(self) -> int:
        """Requests waiting in open groups plus batches queued on devices."""
        return len(self.admission) + sum(
            len(b) for s in self.shards for q in s.queues.values() for b in q)

    def next_event_s(self) -> Optional[float]:
        """Simulated time of the next pending event or completion."""
        times = []
        if self._heap:
            times.append(self._heap[0][0])
        if self._pending_done:
            times.append(self._pending_done[0][0])
        return min(times) if times else None

    # ------------------------------------------------------------------
    # public loop API
    # ------------------------------------------------------------------
    def submit(self, request: InferenceRequest,
               arrival_s: Optional[float] = None) -> None:
        """File one request; it reaches admission at its arrival time.

        ``arrival_s`` overrides the request's own ``arrival_s`` (the
        request is restamped).  Arrivals may not predate simulated time
        already ticked past — the loop cannot rewrite history.
        """
        start = time.perf_counter()
        if arrival_s is not None:
            request.arrival_s = arrival_s
        if request.arrival_s < self.now_s:
            raise ValueError(
                f"request {request.req_id} arrives at {request.arrival_s:.6f}s "
                f"but the loop already advanced to {self.now_s:.6f}s")
        self._submitted += 1
        heapq.heappush(self._heap, (request.arrival_s, _ARRIVAL,
                                    next(self._tiebreak), request))
        self._wall += time.perf_counter() - start

    def submit_decode(self, request: InferenceRequest,
                      config: Optional[GenerationConfig] = None,
                      arrival_s: Optional[float] = None) -> None:
        """File one decode stream: ``request.tokens`` is the prompt.

        The stream is routed at arrival and joins its device's rolling
        decode batch at the next token boundary; it leaves on eos or
        after ``max_new_tokens`` (from ``config`` or the engine's
        :class:`DecodeOptions` defaults).  Its completion surfaces
        through :meth:`tick`/:meth:`drain` like any request, with
        ``output`` a :class:`~repro.nn.generation.GenerationResult`.
        """
        start = time.perf_counter()
        if arrival_s is not None:
            request.arrival_s = arrival_s
        if request.arrival_s < self.now_s:
            raise ValueError(
                f"request {request.req_id} arrives at {request.arrival_s:.6f}s "
                f"but the loop already advanced to {self.now_s:.6f}s")
        cfg = (config if config is not None
               else self.decode_options.generation_config()).validate()
        job = DecodeJob(request=request, config=cfg)
        self._submitted += 1
        heapq.heappush(self._heap, (request.arrival_s, _ARRIVAL,
                                    next(self._tiebreak), job))
        self._wall += time.perf_counter() - start

    def cancel(self, request_id: int,
               at_s: Optional[float] = None) -> None:
        """Withdraw a request; the retraction lands at ``at_s`` (or now).

        The cancel is an event on the global heap — ordered after fault
        events and before arrivals at the same instant — so any schedule
        of submits/ticks retracts exactly the same work.  Whatever stage
        the request has reached (pre-arrival, open admission group,
        queued or parked batch, pending decode job, in-flight result
        not yet at its completion instant) it is pulled back and
        recorded as a :class:`~repro.serve.faults.CancelRecord`; a
        request that already completed (or was shed) is left alone — the
        cancel arrived too late and is a no-op.  In-flight device time
        is not refunded: the retracted member's result is suppressed,
        but its batch's clock advance stands.
        """
        when = self.now_s if at_s is None else at_s
        if when < self.now_s:
            raise ValueError(
                f"cancel of request {request_id} at {when:.6f}s predates "
                f"simulated time {self.now_s:.6f}s")
        heapq.heappush(self._heap, (when, _CANCEL, next(self._tiebreak),
                                    request_id))

    def tick(self, until_s: float) -> List[RequestResult]:
        """Advance simulated time to ``until_s``; completions in order.

        Processes every event (arrival, window close, shard execution)
        due by ``until_s`` and returns the requests whose simulated
        completion lands at or before it, ordered by completion time.

        Submit every arrival at or before ``until_s`` *before* ticking
        to it: the heap orders same-instant arrivals ahead of window
        closes, but a tick cannot wait for arrivals it has not been
        handed yet — ticking to ``t`` and only then submitting a
        ``t``-stamped request lets a window deadline at exactly ``t``
        close first (the loop cannot know more arrivals share the
        instant).
        """
        if until_s < self.now_s:
            raise ValueError("simulated time must advance monotonically")
        start = time.perf_counter()
        self._advance(until_s)
        self.now_s = max(self.now_s, until_s)
        out = self._release(until_s)
        self._wall += time.perf_counter() - start
        return out

    def drain(self) -> List[RequestResult]:
        """Run the loop to exhaustion; every remaining completion."""
        start = time.perf_counter()
        self._advance(None)
        out = self._release(float("inf"))
        self._wall += time.perf_counter() - start
        return out

    def play(self, requests, *, drain: bool = True) -> List[RequestResult]:
        """Feed an arrival-ordered request stream through the loop online.

        The one correct feeding discipline, shared by the CLI, the
        streaming bench and the tests: each request is submitted, and
        simulated time advances *lagging one arrival behind* — the loop
        only ticks to an instant once every arrival at that instant has
        been submitted, so same-instant ties batch exactly as the
        offline wrapper would (ticking eagerly to each arrival would let
        a window deadline at that instant close ahead of its same-time
        peers).  With ``drain=True`` the tail runs to exhaustion.
        Returns the released completions in completion order.
        """
        out: List[RequestResult] = []
        prev: Optional[float] = None
        for request in requests:
            if prev is not None and request.arrival_s > prev:
                out.extend(self.tick(prev))
            self.submit(request)
            prev = request.arrival_s
        if drain:
            out.extend(self.drain())
        return out

    def report(self) -> ServeReport:
        """Digest of everything executed so far (deterministic order)."""
        report = ServeReport(policy=self.policy, time_sliced=self.time_sliced)
        report.results = sorted(
            (r for r in self._results if not r.canceled),
            key=lambda r: (r.batch_id, r.request.req_id))
        report.events = [e for _, e in sorted(self._events,
                                              key=lambda t: t[0])]
        report.shard_stats = [s.stats for s in self.shards]
        report.shed = list(self._shed)
        report.cancelled = list(self._cancelled)
        report.submitted = self._submitted
        report.completed = self._completed
        report.wall_seconds = max(0.0, self._wall - self._verify_wall)
        if self.cache is not None:
            # delta over this session only: each report describes its own
            # run, not the cache's lifetime
            end = self.cache.stats
            report.cache_stats = CacheStats(
                hits=end.hits - self._cache_start.hits,
                misses=end.misses - self._cache_start.misses,
                evictions=end.evictions - self._cache_start.evictions,
                invalidations=end.invalidations - self._cache_start.invalidations)
        if self.verify:
            report.max_verify_error = self._worst_err
        return report

    # ------------------------------------------------------------------
    # event loop internals
    # ------------------------------------------------------------------
    def _advance(self, horizon_s: Optional[float]) -> None:
        while self._heap:
            when, kind, _, payload = self._heap[0]
            if horizon_s is not None and when > horizon_s:
                return
            heapq.heappop(self._heap)
            self.now_s = max(self.now_s, when)
            if kind == _FAULT:
                self._on_fault(payload, when)
            elif kind == _CANCEL:
                self._on_cancel(payload, when)
            elif kind == _ARRIVAL:
                self._on_arrival(payload, when)
            elif kind == _WINDOW_CLOSE:
                key, generation = payload
                group = self.admission.close_generation(key, generation)
                if group is not None:
                    self._admit(group)
            else:  # _SHARD_READY
                self._on_shard_ready(payload, when)
        if horizon_s is None and (self._parked or self._parked_decode):
            # drain must never hang: if the heap is exhausted with work
            # still parked, no recovery is coming (the probe chain was
            # abandoned by a permanent outage) — shed, don't lose
            parked, self._parked = self._parked, []
            for qb in parked:
                self._shed_batch(qb, self.now_s, "no_device")
            jobs, self._parked_decode = self._parked_decode, []
            for job in jobs:
                self._shed_request(job.request, self.now_s, "no_device")

    # ------------------------------------------------------------------
    # fault handling (crash / failover / probe / stall / slow)
    # ------------------------------------------------------------------
    def _available_shards(self) -> List[DeviceShard]:
        return [s for s in self.shards if s.available]

    def _recovery_pending(self) -> bool:
        """Is any downed shard scheduled to come back (finite outage)?"""
        return any(not s.available and s.down_until is not None
                   and np.isfinite(s.down_until) for s in self.shards)

    def _push_fault(self, when: float, payload: tuple) -> None:
        heapq.heappush(self._heap,
                       (when, _FAULT, next(self._tiebreak), payload))

    def _on_fault(self, payload: tuple, now: float) -> None:
        op = payload[0]
        if op == "fault":
            f: ShardFault = payload[1]
            shard = self.shards[f.shard_id]
            if f.kind == "crash":
                self._crash_shard(shard, now, f.duration_s)
            elif f.kind == "stall" and shard.available:
                shard.stall(now + f.duration_s)
                self._push_fault(now + f.duration_s,
                                 ("window_end", f.shard_id))
            elif f.kind == "slow" and shard.available:
                shard.slow(f.factor)
                self._push_fault(now + f.duration_s,
                                 ("slow_end", f.shard_id))
        elif op == "probe":
            _, shard_id, interval = payload
            shard = self.shards[shard_id]
            if shard.available:
                return  # stale probe: the shard already rejoined
            if shard.down_until is None or not np.isfinite(shard.down_until):
                return  # the outage became permanent: abandon the chain
            if now >= shard.down_until:
                self._rejoin_shard(shard, now)
            else:
                # exponential backoff: each missed probe doubles the wait,
                # so a long outage costs O(log) probes and the detection
                # lag is bounded by the last interval
                self._push_fault(now + 2 * interval,
                                 ("probe", shard_id, 2 * interval))
        elif op == "slow_end":
            self.shards[payload[1]].slow_end()
        else:  # "window_end": a stall window closed
            self.shards[payload[1]].restore()

    def _crash_shard(self, shard: DeviceShard, now: float,
                     duration_s: float) -> None:
        went_down = shard.available
        retry: Optional[QueuedBatch] = None
        retry_jobs: List[DecodeJob] = []
        if went_down:
            entry = self._inflight.pop(shard.shard_id, None)
            if entry is not None and entry[-1] > now:
                # the last executed batch/boundary straddles the crash:
                # members already streamed out (completion <= now) keep
                # their results, the rest are retracted and re-execute —
                # on the *full original membership*, so the recomputed
                # bits are identical and only not-yet-done members emit
                if entry[0] == "batch":
                    _, qb, emitted, end = entry
                    retry = self._retract_inflight_batch(shard, qb,
                                                         emitted, end, now)
                    if retry is not None:
                        shard.stats.requeued_batches += 1
                else:  # decode boundary: streams finished past the crash
                    _, pairs, _ = entry
                    for result, job in pairs:
                        if result.completion_s > now and not result.canceled:
                            # a member already cancel-retracted is
                            # terminal — it neither refunds again nor
                            # restarts its stream
                            result.canceled = True
                            self._completed -= 1
                            shard.stats.decode_streams -= 1
                            retry_jobs.append(job)
        batches, jobs = shard.fail(now, now + duration_s)
        if not went_down:
            return  # overlapping crash: the outage was extended, that's all
        if np.isfinite(duration_s):
            backoff = (self.injector.probe_backoff_s
                       if self.injector is not None else 0.005)
            self._push_fault(now + backoff, ("probe", shard.shard_id, backoff))
        for qb in batches:
            qb.requeues += 1  # every failover is charged like a switch
        for qb in ([retry] if retry is not None else []) + batches:
            qb.ready_s = max(qb.ready_s, now)
            self._dispatch_batch(qb)
        for job in retry_jobs + jobs:
            self._dispatch_decode(job)

    def _retract_inflight_batch(self, shard: DeviceShard, qb: QueuedBatch,
                                emitted: List[RequestResult], end: float,
                                now: float,
                                new_seq: Optional[int] = None
                                ) -> Optional[QueuedBatch]:
        """Retract the not-yet-completed members of an in-flight batch.

        Crash failover and running-batch preemption share this path:
        members whose completion already streamed out (or were cancel-
        retracted — terminal either way) stay done, the rest have their
        results suppressed and re-execute on the full original
        membership.  Returns the retry batch to re-dispatch, or ``None``
        when every member is already accounted for.
        """
        lost = [r for r in emitted if r.completion_s > now and not r.canceled]
        if not lost:
            return None
        done_now = {r.request.req_id for r in emitted
                    if r.completion_s <= now or r.canceled}
        done = tuple(sorted(set(qb.done_ids) | done_now))
        for r in lost:
            r.canceled = True
        self._completed -= len(lost)
        shard.rollback_inflight(
            now, len(lost), end,
            lost_batch=not any(r.completion_s <= now for r in emitted))
        return QueuedBatch(qb.seq if new_seq is None else new_seq,
                           qb.requests, qb.level_name, now, qb.est_service_s,
                           sparsity=qb.sparsity, requeues=qb.requeues + 1,
                           done_ids=done)

    def _rejoin_shard(self, shard: DeviceShard, now: float) -> None:
        shard.rejoin(now)
        parked, self._parked = self._parked, []
        for qb in parked:
            qb.ready_s = max(qb.ready_s, now)
            self._dispatch_batch(qb)
        jobs, self._parked_decode = self._parked_decode, []
        for job in jobs:
            self._dispatch_decode(job)
        self._schedule_shard(shard)

    def _dispatch_batch(self, qb: QueuedBatch) -> Optional[DeviceShard]:
        """Route a batch over the *available* shards (park/shed if none)."""
        avail = self._available_shards()
        if not avail:
            if self._recovery_pending():
                self._parked.append(qb)
            else:
                self._shed_batch(qb, self.now_s, "no_device")
            return None
        shard = self.dispatcher.route(qb, avail)
        self._schedule_shard(shard)
        return shard

    def _dispatch_decode(self, job: DecodeJob) -> None:
        """Route a decode job to an available shard's lane (park/shed)."""
        avail = self._available_shards()
        if not avail:
            if self._recovery_pending():
                self._parked_decode.append(job)
            else:
                self._shed_request(job.request, self.now_s, "no_device")
            return
        sparsity = job.compat_key[1]
        probe = QueuedBatch(-1, [job.request], job.request.level_name,
                            self.now_s, job.est_service_s, sparsity=sparsity)
        shard = self.dispatcher.place(probe, avail)
        # the lane consumes load like an enqueued batch would, minus the
        # queue itself: the stream holds its device one token at a time
        shard.assigned_est_s += job.est_service_s
        if sparsity is not None:
            shard.expected_sparsity = sparsity
        shard.decode.add_pending(job)
        self._schedule_shard(shard)

    def _shed_request(self, request: InferenceRequest, now: float,
                      reason: str, est: Optional[float] = None) -> None:
        self._shed.append(ShedRecord(request, now, reason, est))

    def _shed_batch(self, qb: QueuedBatch, now: float, reason: str) -> None:
        done = set(qb.done_ids)
        for req in qb.requests:
            if req.req_id not in done:
                self._shed_request(req, now, reason)

    # ------------------------------------------------------------------
    # cancellation (explicit client withdrawal — a terminal state)
    # ------------------------------------------------------------------
    def _record_cancel(self, request: InferenceRequest, now: float,
                       where: str) -> None:
        self._cancelled.append(CancelRecord(request, now, where))

    @staticmethod
    def _batch_member(qb: QueuedBatch, req_id: int
                      ) -> Optional[InferenceRequest]:
        """The live (not-done) member with ``req_id``, if any."""
        if req_id in qb.done_ids:
            return None
        return next((r for r in qb.requests if r.req_id == req_id), None)

    def _cancel_from_batch(self, qb: QueuedBatch, req: InferenceRequest,
                           now: float, shard: Optional[DeviceShard] = None,
                           parked: bool = False) -> None:
        """Suppress one member of a queued/parked batch.

        The membership itself is preserved — a later execution still
        computes the full batch, so the surviving members' bits are
        untouched — the cancelled member just joins ``done_ids`` and
        never emits.  A batch left with no live members is dropped
        outright (a clean serve of the survivors would never have
        executed it).
        """
        done = set(qb.done_ids) | {req.req_id}
        qb.done_ids = tuple(sorted(done))
        if len(done) == len(qb.requests):
            if parked:
                self._parked.remove(qb)
            elif shard is not None:
                shard.retract(qb.seq)
        self._record_cancel(req, now, "parked" if parked else "queued")

    def _on_cancel(self, req_id: int, now: float) -> None:
        """Retract ``req_id`` from wherever it currently lives.

        At most one stage can hold a request at any instant, so the
        search order only affects speed, not outcome.  A request found
        nowhere already reached a terminal state (completed, shed,
        previously cancelled, or an active decode stream — which holds
        live session state and runs to completion): the cancel is a
        deterministic no-op.
        """
        if req_id not in self._arrived:
            self._cancel_pending.add(req_id)
            return
        req = self.admission.remove(req_id)
        if req is not None:
            self._record_cancel(req, now, "admission")
            return
        for shard in self.shards:
            for qb in shard.queued_batches():
                member = self._batch_member(qb, req_id)
                if member is not None:
                    self._cancel_from_batch(qb, member, now, shard=shard)
                    return
        for qb in self._parked:
            member = self._batch_member(qb, req_id)
            if member is not None:
                self._cancel_from_batch(qb, member, now, parked=True)
                return
        for shard in self.shards:
            job = shard.decode.remove_pending(req_id)
            if job is not None:
                self._record_cancel(job.request, now, "decode_pending")
                return
        for job in self._parked_decode:
            if job.request.req_id == req_id:
                self._parked_decode.remove(job)
                self._record_cancel(job.request, now, "decode_pending")
                return
        for shard_id in sorted(self._inflight):
            entry = self._inflight[shard_id]
            results = (entry[2] if entry[0] == "batch"
                       else [r for r, _ in entry[1]])
            for result in results:
                if (result.request.req_id == req_id and not result.canceled
                        and result.completion_s > now):
                    # retract the result before its completion instant;
                    # the device time already spent is not refunded
                    result.canceled = True
                    self._completed -= 1
                    if entry[0] == "decode":
                        self.shards[shard_id].stats.decode_streams -= 1
                    self._record_cancel(result.request, now, "inflight")
                    return

    # ------------------------------------------------------------------
    # admission control (deadline-aware shedding / graceful degradation)
    # ------------------------------------------------------------------
    def _single_est_s(self, level: VFLevel, sparsity: Optional[float]) -> float:
        return self.adapter.latency.batch_latency_s(
            self.adapter.workload, level, 1,
            sparsity if sparsity is not None else self.fallback_sparsity,
            SparsityKind.PATTERN, self.adapter.hardware_pattern_size)

    def _admission_estimate_s(self, now: float, service_s: float,
                              key: Optional[Hashable] = None) -> float:
        """Deterministic completion estimate for a request arriving now.

        Pessimistic by design: the batching-window wait, plus the
        earliest instant an available device runs dry (its clock plus
        queued backlog), plus the single-request service time at the
        candidate operating point.  Every input is a pure function of
        the executed event history, so the estimate — and therefore the
        shed decision — is tick-granularity independent.

        The default ``"remaining"`` estimate charges only the residual
        window of the open group a ``key``-compatible request would
        actually join (nothing at all when the admission would flush it
        full); the historical ``"full"`` mode always charged a whole
        ``max_wait_s``, which over-shed mid-window arrivals badly enough
        that the docs used to recommend shrinking ``--window-ms`` to
        compensate.
        """
        avail = self._available_shards()
        if not avail:
            return float("inf")
        free = min(max(s.clock_s, now) + s.pending_s for s in avail)
        wait = now + self.max_wait_s
        if self.admission_estimate == "remaining" and key is not None:
            group = self.admission.open_group(key)
            if group is not None:
                wait = (now if len(group.requests) + 1 >= self.max_batch
                        else group.deadline_s)
        return max(wait, free) + service_s

    def _tenant_share(self, tenant: str) -> float:
        """The tenant's weighted share of the bounded queue, >= 1 slot.

        The one-slot floor is the starvation guard: no matter how the
        weights divide ``max_queue``, every tenant can always hold at
        least one request in the system, so every live tenant makes
        progress even under a hot-tenant flood.
        """
        weights = self.tenant_weights or {}
        total = sum(weights.values())
        if tenant in weights:
            w = weights[tenant]
        else:
            # unlisted tenants join as weight-1 participants
            w = 1.0
            total += 1.0
        if self.max_queue is None or total <= 0:
            return float("inf")
        return max(1.0, self.max_queue * w / total)

    def _tenant_backlog(self, tenant: str) -> int:
        """This tenant's live requests waiting anywhere in the system.

        The per-tenant analogue of :meth:`backlog` (open admission
        groups + queued batches), extended over parked work and pending
        decode jobs; every term is a pure function of the executed event
        history, so quota decisions are tick-granularity independent.
        """
        count = sum(1 for r in self.admission.waiting()
                    if r.tenant == tenant)
        batches = [qb for s in self.shards for qb in s.queued_batches()]
        batches.extend(self._parked)
        for qb in batches:
            done = set(qb.done_ids)
            count += sum(1 for r in qb.requests
                         if r.req_id not in done and r.tenant == tenant)
        jobs = [job for s in self.shards for _, _, job in s.decode.pending]
        jobs.extend(self._parked_decode)
        count += sum(1 for job in jobs if job.request.tenant == tenant)
        return count

    def _admission_control(self, request: InferenceRequest,
                           now: float) -> bool:
        """Overload defenses at arrival; ``False`` = the request was shed.

        Runs *before* the request touches the admission queue, so shed
        requests never influence micro-batch grouping and a degraded
        request is re-stamped before its compatibility key is computed —
        the survivors form exactly the batches a fault-free serve of the
        surviving set would form (the bit-exactness invariant).
        """
        if self.max_queue is not None and self.backlog() >= self.max_queue:
            self._shed_request(request, now, "queue_full")
            return False
        if (self.tenant_weights is not None and self.max_queue is not None
                and (self._tenant_backlog(request.tenant)
                     >= self._tenant_share(request.tenant))):
            # weighted fair admission: the tenant flooded past its share
            # of the bounded queue; everyone else's share stays intact
            self._shed_request(request, now, "tenant_quota")
            return False
        if self.shed_policy == "none":
            return True
        level = self._level(request.level_name)
        budget = request.arrival_s + request.slo
        resolved = self.adapter.feasible_sparsity(level, request.deadline_s)
        est = self._admission_estimate_s(
            now, self._single_est_s(level, resolved),
            key=(request.level_name, resolved))
        if resolved is not None and est <= budget:
            return True
        if self.shed_policy == "degrade":
            # the paper's accuracy-for-deadline trade as an overload
            # response: walk the sparser (faster) rungs, least degraded
            # first, and serve at the first one whose estimate fits the
            # SLO instead of shedding.  The deadline is re-stamped to the
            # rung's predicted latency so the adapter resolves exactly
            # that rung; the original deadline is kept on the request.
            slo = request.slo
            for sparsity, _ in self.adapter.candidates:
                if resolved is not None and sparsity <= resolved:
                    continue
                lat = self.adapter.latency.latency_s(
                    self.adapter.workload, level, sparsity,
                    SparsityKind.PATTERN, self.adapter.hardware_pattern_size)
                if lat > slo:
                    continue  # keep the slo >= deadline invariant
                rung_est = self._admission_estimate_s(
                    now, self._single_est_s(level, sparsity),
                    key=(request.level_name, sparsity))
                if rung_est <= budget:
                    request.degraded_from_s = request.deadline_s
                    request.slo_s = slo
                    request.deadline_s = lat
                    return True
        self._shed_request(request, now, "deadline", est)
        return False

    def _on_arrival(self, request: InferenceRequest, now: float) -> None:
        req = request.request if isinstance(request, DecodeJob) else request
        self._arrived.add(req.req_id)
        if req.req_id in self._cancel_pending:
            # cancelled before the arrival was processed: the request
            # never touches admission, exactly like a fault-free serve
            # of the survivors
            self._cancel_pending.discard(req.req_id)
            self._record_cancel(req, now, "pre_admission")
            return
        if self.cancel_after_s is not None:
            # engine-wide client timeout: every arrival arms a cancel at
            # arrival + cancel_after_s (a no-op if it completes first)
            heapq.heappush(self._heap,
                           (now + self.cancel_after_s, _CANCEL,
                            next(self._tiebreak), req.req_id))
        if isinstance(request, DecodeJob):
            self._place_decode(request, now)
            return
        if ((self.shed_policy != "none" or self.max_queue is not None
                or self.tenant_weights is not None)
                and not self._admission_control(request, now)):
            return
        full, window = self.admission.add(request, now)
        if window is not None:
            deadline, key, generation = window
            heapq.heappush(self._heap, (deadline, _WINDOW_CLOSE,
                                        next(self._tiebreak),
                                        (key, generation)))
        if full is not None:
            self._admit(full)

    def _place_decode(self, job: DecodeJob, now: float) -> None:
        """Route an arrived decode stream to a device's lane."""
        req = job.request
        level = self._level(req.level_name)
        job.compat_key = self._compat_key(req)
        sparsity = job.compat_key[1]
        per_token = self.adapter.latency.batch_latency_s(
            self.adapter.workload, level, 1,
            sparsity if sparsity is not None else self.fallback_sparsity,
            SparsityKind.PATTERN, self.adapter.hardware_pattern_size)
        job.est_service_s = per_token * job.config.max_new_tokens
        self._dispatch_decode(job)

    def _admit(self, group: FlushedGroup) -> None:
        """A closed micro-batch enters the system: resolve, route, queue."""
        seq = self._seq
        self._seq += 1
        requests = group.requests
        level = self._level(requests[0].level_name)
        sparsity = self.adapter.feasible_sparsity(
            level, min(r.deadline_s for r in requests))
        est = self.adapter.latency.batch_latency_s(
            self.adapter.workload, level, len(requests),
            sparsity if sparsity is not None else self.fallback_sparsity,
            SparsityKind.PATTERN, self.adapter.hardware_pattern_size)
        qb = QueuedBatch(seq, list(requests), level.name, group.ready_s, est,
                         sparsity=sparsity)
        shard = self._dispatch_batch(qb)
        if shard is None:
            return  # total outage: parked for recovery or shed, not lost
        if (self.prewarm and shard.shard_id not in self._prewarmed
                and shard.active_sparsity is None and sparsity is not None):
            # deploy-time provisioning: the device's first pattern set is
            # installed before traffic, so it is not charged to the timeline
            shard.active_sparsity = sparsity
        self._prewarmed.add(shard.shard_id)
        if self.preempt_policy != "off":
            self._maybe_preempt(shard, qb, self.now_s)

    # ------------------------------------------------------------------
    # preemption (deadline-driven retraction of placed work)
    # ------------------------------------------------------------------
    @staticmethod
    def _batch_budget(qb: QueuedBatch) -> float:
        """The batch's SLO budget: its tightest live member's deadline."""
        done = set(qb.done_ids)
        return min((r.arrival_s + r.slo for r in qb.requests
                    if r.req_id not in done), default=float("inf"))

    def _maybe_preempt(self, shard: DeviceShard, qb: QueuedBatch,
                       now: float) -> None:
        """Pull looser-budget work off ``qb``'s shard if ``qb`` needs it.

        Runs right after admission routing.  While the freshly placed
        batch's completion estimate overshoots its SLO budget, the
        scheduler retracts the shard's largest *strictly looser-budget*
        queued batch and sends it back through the dispatcher (with a
        fresh sequence number, so it drains behind the preemptor even if
        it lands back here, and one requeue charged — the same
        pattern-switch-equivalent a crash failover pays).  Under
        ``"running"`` the shard's in-flight batch is fair game too,
        retracted through the crash machinery so completed members keep
        their (bit-identical) results and the full original membership
        re-executes.  Every decision is a pure function of the event
        history — preemption is exactly as deterministic and
        tick-granularity independent as the rest of the loop.
        """
        budget = self._batch_budget(qb)
        if not np.isfinite(budget):
            return
        if max(now, qb.ready_s) + qb.est_service_s > budget:
            return  # infeasible even alone: preempting others buys nothing

        def eta() -> float:
            # when qb plausibly completes: the device drains everything
            # ahead of it (clock + pending backlog minus qb itself), then
            # runs qb
            ahead = max(0.0, shard.pending_s - qb.est_service_s)
            return (max(max(shard.clock_s, now) + ahead, qb.ready_s)
                    + qb.est_service_s)

        moved: set = set()
        guard = len(qb.requests) + sum(len(b)
                                       for q in shard.queues.values()
                                       for b in q) + 2
        while eta() > budget and guard > 0:
            guard -= 1
            victims = [v for v in shard.queued_batches()
                       if v.seq != qb.seq and v.seq not in moved
                       and self._batch_budget(v) > budget]
            if victims:
                victim = max(victims,
                             key=lambda v: (v.est_service_s, -v.seq))
                shard.retract(victim.seq)
                # a fresh seq orders the victim behind the preemptor under
                # fifo drain wherever it re-lands
                victim.seq = self._seq
                self._seq += 1
                victim.requeues += 1
                victim.ready_s = max(victim.ready_s, now)
                shard.stats.preempted_batches += 1
                moved.add(victim.seq)
                self._dispatch_batch(victim)
                continue
            if self.preempt_policy == "running":
                entry = self._inflight.get(shard.shard_id)
                if (entry is not None and entry[0] == "batch"
                        and entry[-1] > now
                        and self._batch_budget(entry[1]) > budget):
                    _, vqb, emitted, end = entry
                    retry = self._retract_inflight_batch(
                        shard, vqb, emitted, end, now, new_seq=self._seq)
                    if retry is not None:
                        self._seq += 1
                        del self._inflight[shard.shard_id]
                        shard.stats.preempted_batches += 1
                        moved.add(retry.seq)
                        self._dispatch_batch(retry)
                        # the rollback freed the device at now; re-arm it
                        self._schedule_shard(shard)
                        continue
            return  # nothing (left) worth preempting

    def _schedule_shard(self, shard: DeviceShard) -> None:
        when = shard.next_event_s()
        if when is None or self._scheduled_ready.get(shard.shard_id) == when:
            return
        self._scheduled_ready[shard.shard_id] = when
        heapq.heappush(self._heap, (when, _SHARD_READY,
                                    next(self._tiebreak), shard.shard_id))

    def _on_shard_ready(self, shard_id: int, now: float) -> None:
        shard = self.shards[shard_id]
        if self._scheduled_ready.get(shard_id) == now:
            del self._scheduled_ready[shard_id]
        if not shard.available:
            return  # stale event for a downed shard; its work failed over
        while True:
            when = shard.next_event_s()
            if when is None:
                return
            if when > now:
                # the device's next chance moved (it just ran a batch, or
                # this event was stale); re-arm and yield the loop
                self._schedule_shard(shard)
                return
            decode_due = shard.decode.due_s(shard.clock_s)
            queue_due = shard.queue_event_s()
            if decode_due is not None and (queue_due is None
                                           or decode_due <= queue_due):
                # token boundaries win ties: the decode lane is the
                # latency-critical traffic and each boundary is short
                self._decode_tick(shard, when)
            else:
                batch = shard.pop_next()
                self._execute(shard, batch)

    # ------------------------------------------------------------------
    # execution (one batch on one device)
    # ------------------------------------------------------------------
    def _resolve_operating_point(self, shard: DeviceShard, level: VFLevel,
                                 qb: QueuedBatch
                                 ) -> Tuple[AdaptationEvent, float, float, bool]:
        """Adaptation decision against the shard's own installed state.

        Returns ``(event, effective_sparsity, switch_seconds, installed)``
        where ``switch_seconds`` is the total reconfiguration cost this
        batch pays on its device (planned switch and/or cold-start
        fallback) and ``installed`` says whether the device physically
        installed a pattern set for this batch (for per-shard switch
        accounting — the fallback install is not an adapter switch, but
        it is a device one).
        """
        event = self.adapter.plan(level,
                                  min(r.deadline_s for r in qb.requests),
                                  shard.active_sparsity, chosen=qb.sparsity)
        effective = event.chosen_sparsity
        switch_s = event.switch.seconds if event.switch is not None else 0.0
        installed = event.switched
        if effective is None:
            # Infeasible deadline: keep whatever this device has installed
            # (no phantom swap).  Only when nothing is installed yet fall
            # back to the sparsest set — a real switch, charged as one.
            if shard.active_sparsity is not None:
                effective = shard.active_sparsity
            else:
                effective = self.fallback_sparsity
                pset = self.ladder[effective]
                stats = self.adapter.reconfigurator.pattern_switch(
                    self.adapter.workload, len(pset),
                    self.adapter.hardware_pattern_size)
                switch_s += stats.seconds
                installed = True
        shard.active_sparsity = effective
        return event, effective, switch_s, installed

    def _execute(self, shard: DeviceShard, qb: QueuedBatch) -> None:
        group = qb.requests
        level = self._level(qb.level_name)
        event, effective, switch_s, installed = \
            self._resolve_operating_point(shard, level, qb)
        pset = self.ladder[effective]
        manager = self.adapter.manager
        if manager is not None and (self.reinstall_per_batch
                                    or manager.active_set is not pset):
            manager.apply(pset)
        # keep the shared adapter's view in sync with the masks resident on
        # the model, so code mixing the loop with direct adapter.adapt
        # calls never re-charges a switch for an already-installed set
        self.adapter.active_sparsity = effective
        fwd = self._forward()
        outputs = run_padded(self.model, group, self.pad_id, forward=fwd)
        done = set(qb.done_ids)
        if self.verify:
            # excluded from the timed hot path: doubles the compute
            verify_start = time.perf_counter()
            for req, out in zip(group, outputs):
                if req.req_id in done:
                    continue
                solo = run_padded(self.model, [req], self.pad_id,
                                  forward=fwd)[0]
                self._worst_err = max(self._worst_err,
                                      float(np.abs(out - solo).max()))
            self._verify_wall += time.perf_counter() - verify_start

        if qb.requeues:
            # retry accounting: failing a batch over costs the system one
            # reconfiguration's worth of time per requeue — the new
            # device re-stages the batch like a pattern switch
            penalty = qb.requeues * self._switch_cost_s[effective]
            switch_s += penalty
            shard.stats.retried_batches += 1
            shard.stats.retry_penalty_s += penalty
        offsets = self.adapter.latency.batch_completion_offsets_s(
            self.adapter.workload, level, len(group), effective,
            SparsityKind.PATTERN, self.adapter.hardware_pattern_size)
        if shard.slowdown != 1.0:
            # a slow window stretches compute, not the switch cost
            offsets = [o * shard.slowdown for o in offsets]
        service = switch_s + offsets[-1]
        begin = max(shard.clock_s, qb.ready_s)
        completion = begin + service
        shard.record(qb, service, completion, installed,
                     members=(len(group) - len(done)) if done else None)
        emitted: List[RequestResult] = []
        for i, (req, out) in enumerate(zip(group, outputs)):
            if req.req_id in done:
                # completed before the crash that requeued this batch;
                # the original (bit-identical) result already stands
                continue
            member_service = (switch_s + offsets[i]
                              if self.time_sliced else service)
            result = RequestResult(
                request=req, output=out, batch_id=qb.seq,
                batch_size=len(group),
                queue_wait_s=begin - req.arrival_s,
                service_s=member_service,
                completion_s=begin + member_service,
                sparsity=effective, shard_id=shard.shard_id)
            if self.retain_results:
                # kept for report(); long-lived sessions opt out and
                # consume completions from tick()/drain() instead
                self._results.append(result)
            heapq.heappush(self._pending_done,
                           (result.completion_s, next(self._tiebreak), result))
            emitted.append(result)
            self._completed += 1
        self._inflight[shard.shard_id] = ("batch", qb, emitted, completion)
        self._events.append((qb.seq, event))

    # ------------------------------------------------------------------
    # decode lane (one token boundary on one device)
    # ------------------------------------------------------------------
    def _decode_tick(self, shard: DeviceShard, now: float) -> None:
        """Advance every decode stream on ``shard`` by one token.

        Pending streams whose arrival has passed join first (continuous
        batching: membership changes only at boundaries), then each
        operating-point group runs one stacked decode step — grouped by
        context length inside the session, so nothing is padded and
        every stream's bits match a solo run.  Switch costs are resolved
        per group against this device's installed state, exactly like a
        batch execution, and each group's step is an
        :class:`AdaptationEvent` in the report.
        """
        lane = shard.decode
        begin = max(shard.clock_s, now)
        lane.admit(begin, self._decode_session)
        clock = begin
        tokens = 0
        finished = 0
        switches = 0
        pairs: List[tuple] = []
        for key in lane.group_keys():
            group = lane.groups[key]
            session = group.session
            active = [group.streams[sid] for sid in sorted(group.streams)
                      if not session.finished(sid)]
            if not active:
                continue
            seq = self._seq
            self._seq += 1
            level = self._level(key[0])
            reqs = [s.job.request for s in active]
            qb = QueuedBatch(seq, reqs, key[0], begin, 0.0, sparsity=key[1])
            event, effective, switch_s, installed = \
                self._resolve_operating_point(shard, level, qb)
            pset = self.ladder[effective]
            manager = self.adapter.manager
            if manager is not None and (self.reinstall_per_batch
                                        or manager.active_set is not pset):
                # an identical re-install keeps every cache_token stable,
                # so the decode plane's KV state survives; a real switch
                # bumps the tokens and invalidates it — the correctness
                # the recompile-on-mask-install tests pin
                manager.apply(pset)
            self.adapter.active_sparsity = effective
            emitted = session.step()
            per_token = self.adapter.latency.batch_latency_s(
                self.adapter.workload, level, len(active), effective,
                SparsityKind.PATTERN, self.adapter.hardware_pattern_size)
            if shard.slowdown != 1.0:
                per_token *= shard.slowdown
            service = switch_s + per_token
            clock += service
            tokens += len(emitted)
            if installed:
                switches += 1
            self._events.append((seq, event))
            for stream in active:
                if not session.finished(stream.sid):
                    continue
                finished += 1
                del group.streams[stream.sid]
                result = RequestResult(
                    request=stream.job.request,
                    output=session.result(stream.sid), batch_id=seq,
                    batch_size=len(active),
                    queue_wait_s=stream.join_s - stream.job.request.arrival_s,
                    service_s=clock - stream.join_s,
                    completion_s=clock,
                    sparsity=effective, shard_id=shard.shard_id)
                if self.retain_results:
                    self._results.append(result)
                heapq.heappush(
                    self._pending_done,
                    (result.completion_s, next(self._tiebreak), result))
                pairs.append((result, stream.job))
                self._completed += 1
        lane.prune()
        if clock > begin or tokens:
            self._inflight[shard.shard_id] = ("decode", pairs, clock)
            shard.record_decode(clock - begin, clock, tokens, finished,
                                switches)

    def _release(self, until_s: float) -> List[RequestResult]:
        out = []
        while self._pending_done and self._pending_done[0][0] <= until_s:
            result = heapq.heappop(self._pending_done)[2]
            if not result.canceled:
                # a canceled result was retracted by a crash before its
                # completion instant; its request re-executes elsewhere
                out.append(result)
        return out
