"""Scenario-driven load generation for the serving engine.

Each scenario is a *lazy arrival iterator*: a generator emitting a
deterministic (seeded) stream of
:class:`~repro.serve.batcher.InferenceRequest` one arrival at a time, so
an online caller can pull the next request, ``tick`` the streaming loop
to its arrival, and ``submit`` it — no trace materialized up front.  The
offline API is a thin wrapper (``build_scenario`` returns
``list(stream_scenario(...))``), so both views draw the identical
distribution.  The deployment stories, from the paper's run-time
reconfiguration argument:

- ``steady``  — a translation-style service: regular arrivals, uniform
  sequence lengths, one V/F level, a comfortable deadline.  The cache
  workhorse: one operating point, so every mask re-install after warm-up
  should hit.
- ``bursty``  — an interactive event feed: quiet gaps punctuated by
  request bursts with *tight* deadlines, alternating between two V/F
  levels — forcing the adapter to climb the sparsity ladder per burst.
- ``battery`` — a long discharge: the battery governor walks the V/F
  level down as charge drains, while sequence lengths follow a long-tail
  (mostly short, occasionally near ``max_len``) distribution.
- ``bandwidth`` — the paper's translation example: a fluctuating
  network-bandwidth trace (noisy sinusoid) mapped directly onto
  per-request deadline jitter — high bandwidth means the cloud covers
  translation (loose local deadline), a degraded link forces the local
  model to answer inside the interactive budget (tight deadline).

Each request carries two budgets (see
:class:`~repro.serve.batcher.InferenceRequest`): a *compute deadline* —
the paper's per-inference real-time constraint, expressed as a multiple
of the analytic dense latency so it lands inside the sparsity ladder's
feasibility window and actually moves the pattern choice — and an
end-to-end *SLO* that additionally budgets queueing, batching and one
pattern-set swap (~8.75 ms in the paper's calibration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.hardware.battery import Battery
from repro.hardware.dvfs import DVFSTable, BatteryGovernor
from repro.hardware.latency import LatencyModel, SparsityKind
from repro.hardware.workload import WorkloadProfile
from repro.serve.batcher import InferenceRequest
from repro.serve.faults import FaultPlan, ShardFault


@dataclass
class ScenarioConfig:
    """Shared knobs for every generator."""

    num_requests: int = 64
    vocab_size: int = 60
    seq_len: int = 12
    max_len: int = 16
    seed: int = 0


def _dense_latency(workload: WorkloadProfile, level, latency: LatencyModel) -> float:
    return latency.latency_s(workload, level, 0.0, SparsityKind.DENSE)


def _tokens(rng: np.random.Generator, length: int, vocab_size: int) -> np.ndarray:
    # token 0 is reserved as the pad id, so draw from [1, vocab)
    return rng.integers(1, vocab_size, size=length, dtype=np.int64)


# ---------------------------------------------------------------------------
# lazy generators (one request per pull; deterministic per seed)
# ---------------------------------------------------------------------------

def steady_translation(workload: WorkloadProfile, cfg: Optional[ScenarioConfig] = None,
                       latency: Optional[LatencyModel] = None,
                       rate_rps: float = 4000.0,
                       deadline_factor: float = 1.7,
                       slo_margin_s: float = 0.015
                       ) -> Iterator[InferenceRequest]:
    """Regular arrivals at one operating point (translation service)."""
    cfg = cfg or ScenarioConfig()
    latency = latency or LatencyModel()
    rng = np.random.default_rng(cfg.seed)
    level = DVFSTable()["l6"]
    deadline = deadline_factor * _dense_latency(workload, level, latency)
    gap = 1.0 / rate_rps
    t = 0.0
    for i in range(cfg.num_requests):
        t += gap * float(rng.uniform(0.8, 1.2))
        length = int(rng.integers(max(2, cfg.seq_len - 2), cfg.seq_len + 1))
        yield InferenceRequest(i, _tokens(rng, length, cfg.vocab_size),
                               arrival_s=t, deadline_s=deadline,
                               level_name=level.name,
                               slo_s=deadline + slo_margin_s)


def bursty_interactive(workload: WorkloadProfile, cfg: Optional[ScenarioConfig] = None,
                       latency: Optional[LatencyModel] = None,
                       burst_size: int = 8, burst_gap_s: float = 0.5,
                       deadline_factors: Sequence[float] = (1.7, 1.2),
                       slo_margin_s: float = 0.02,
                       spread_s: float = 2e-4) -> Iterator[InferenceRequest]:
    """Bursts of near-simultaneous arrivals with alternating tightness.

    Successive bursts cycle through ``deadline_factors`` (and V/F
    levels), so the adapter lands on a *different* rung of the sparsity
    ladder per burst — repeated pattern-set swaps that revisit earlier
    sets, which is exactly the access pattern the artifact cache serves.
    ``spread_s`` bounds the arrival jitter inside one burst (near-zero by
    default; the streaming bench widens it so the admission window has
    something to trade).
    """
    cfg = cfg or ScenarioConfig()
    latency = latency or LatencyModel()
    rng = np.random.default_rng(cfg.seed)
    table = DVFSTable()
    levels = [table["l6"], table["l4"]]
    t = 0.0
    burst = 0
    emitted = 0
    while emitted < cfg.num_requests:
        level = levels[burst % len(levels)]
        factor = deadline_factors[burst % len(deadline_factors)]
        deadline = factor * _dense_latency(workload, level, latency)
        for _ in range(min(burst_size, cfg.num_requests - emitted)):
            t += float(rng.uniform(0.0, spread_s))
            length = int(rng.integers(2, cfg.max_len + 1))
            yield InferenceRequest(emitted, _tokens(rng, length, cfg.vocab_size),
                                   arrival_s=t, deadline_s=deadline,
                                   level_name=level.name,
                                   slo_s=deadline + slo_margin_s)
            emitted += 1
        t += burst_gap_s
        burst += 1


def battery_drain_longtail(workload: WorkloadProfile,
                           cfg: Optional[ScenarioConfig] = None,
                           latency: Optional[LatencyModel] = None,
                           deadline_factor: float = 1.05,
                           slo_margin_s: float = 0.08,
                           drain_per_request: float = 0.012
                           ) -> Iterator[InferenceRequest]:
    """Battery discharge walks the governor down the V/F ladder.

    The compute deadline is *fixed* for the whole trace (a multiple of
    the dense latency at the lowest level), so as the governor drops the
    V/F level the adapter must climb the sparsity ladder — the paper's
    E3 story.  Sequence lengths are long-tailed (geometric, clipped to
    ``max_len``): most requests are short status checks, a few are
    full-context jobs; the generous SLO reflects background traffic.
    """
    cfg = cfg or ScenarioConfig()
    latency = latency or LatencyModel()
    rng = np.random.default_rng(cfg.seed)
    table = DVFSTable().subset(["l3", "l4", "l6"])
    governor = BatteryGovernor(table)
    battery = Battery(budget_j=1.0)
    deadline = deadline_factor * _dense_latency(workload, table["l3"], latency)
    t = 0.0
    for i in range(cfg.num_requests):
        t += float(rng.uniform(5e-3, 2e-2))
        level = governor.level_for(battery.fraction)
        length = min(cfg.max_len, 2 + int(rng.geometric(0.35)))
        yield InferenceRequest(i, _tokens(rng, length, cfg.vocab_size),
                               arrival_s=t, deadline_s=deadline,
                               level_name=level.name,
                               slo_s=deadline + slo_margin_s)
        battery.draw(min(battery.remaining_j, drain_per_request))


def bandwidth_fluctuation(workload: WorkloadProfile,
                          cfg: Optional[ScenarioConfig] = None,
                          latency: Optional[LatencyModel] = None,
                          rate_rps: float = 3000.0,
                          period_s: float = 0.01,
                          amplitude: float = 0.8,
                          noise: float = 0.1,
                          tight_factor: float = 1.05,
                          loose_factor: float = 1.9,
                          slo_margin_s: float = 0.02
                          ) -> Iterator[InferenceRequest]:
    """The paper's translation example: network bandwidth drives deadlines.

    "Local language translation for on-line interactive events with a
    fluctuating network bandwidth": while bandwidth is high the cloud
    handles translation and the local model only backstops (loose
    deadline); as bandwidth collapses the local model must answer inside
    the interactive budget (tight deadline).  The trace models relative
    bandwidth as a sinusoid with multiplicative log-normal noise and maps
    it *directly onto per-request deadline jitter* — each request's
    compute deadline interpolates between ``tight_factor`` and
    ``loose_factor`` (multiples of the dense latency) with the
    instantaneous normalized bandwidth, so the adapter rides up and down
    the sparsity ladder as the link degrades and recovers.
    """
    cfg = cfg or ScenarioConfig()
    latency = latency or LatencyModel()
    rng = np.random.default_rng(cfg.seed)
    level = DVFSTable()["l6"]
    dense = _dense_latency(workload, level, latency)
    gap = 1.0 / rate_rps
    t = 0.0
    for i in range(cfg.num_requests):
        t += gap * float(rng.uniform(0.7, 1.3))
        # relative bandwidth in [1 - amplitude, 1 + amplitude], noisy
        bw = (1.0 + amplitude * np.sin(2.0 * np.pi * t / period_s)) * float(
            np.exp(noise * rng.normal()))
        norm = float(np.clip((bw - (1.0 - amplitude)) / (2.0 * amplitude), 0.0, 1.0))
        deadline = (tight_factor + (loose_factor - tight_factor) * norm) * dense
        length = int(rng.integers(max(2, cfg.seq_len - 3), cfg.seq_len + 1))
        yield InferenceRequest(i, _tokens(rng, length, cfg.vocab_size),
                               arrival_s=t, deadline_s=deadline,
                               level_name=level.name,
                               slo_s=deadline + slo_margin_s)


# ---------------------------------------------------------------------------
# fault overlays (schedules of shard failures layered onto any scenario)
# ---------------------------------------------------------------------------

def flaky_fault_overlay(devices: int, horizon_s: float, seed: int = 0,
                        crash_rate: float = 1.0, stall_rate: float = 1.0,
                        slow_rate: float = 1.0) -> FaultPlan:
    """A seeded schedule of shard crashes, stalls and slow windows.

    The overlay is independent of the traffic scenario it rides on: it
    only needs the shard count and the trace horizon.  Event *counts*
    scale with the ``*_rate`` multipliers (defaults draw roughly one
    crash, one stall and one slow window per four shards over the
    horizon); times, victims, durations and slowdown factors all come
    from one ``numpy`` generator, so a (devices, horizon, seed) triple
    names exactly one plan.  Crash outages are finite (between 10% and
    35% of the horizon) so the failover path always exercises the
    re-probe/rejoin arc, never a permanent loss.
    """
    if devices < 1:
        raise ValueError("devices must be at least 1")
    if not np.isfinite(horizon_s) or horizon_s <= 0.0:
        raise ValueError("horizon_s must be positive and finite")
    rng = np.random.default_rng(seed)
    events: List[ShardFault] = []

    def _draws(rate: float) -> int:
        if rate < 0.0:
            raise ValueError("fault rates must be non-negative")
        mean = rate * max(1, devices) / 4.0
        return int(rng.poisson(mean)) if mean > 0.0 else 0

    crash_draws = _draws(crash_rate)  # validates the rate even when zero
    for _ in range(max(1, crash_draws) if crash_rate > 0 else 0):
        at = float(rng.uniform(0.05, 0.6)) * horizon_s
        down = float(rng.uniform(0.10, 0.35)) * horizon_s
        events.append(ShardFault("crash", int(rng.integers(devices)), at, down))
    for _ in range(_draws(stall_rate)):
        at = float(rng.uniform(0.05, 0.9)) * horizon_s
        hold = float(rng.uniform(0.02, 0.10)) * horizon_s
        events.append(ShardFault("stall", int(rng.integers(devices)), at, hold))
    for _ in range(_draws(slow_rate)):
        at = float(rng.uniform(0.05, 0.8)) * horizon_s
        span = float(rng.uniform(0.05, 0.20)) * horizon_s
        events.append(ShardFault("slow", int(rng.integers(devices)), at, span,
                                 factor=float(rng.uniform(1.5, 4.0))))
    return FaultPlan(sorted(events, key=lambda f: (f.at_s, f.shard_id, f.kind)))


SCENARIOS: Dict[str, Callable[..., Iterator[InferenceRequest]]] = {
    "steady": steady_translation,
    "bursty": bursty_interactive,
    "battery": battery_drain_longtail,
    "bandwidth": bandwidth_fluctuation,
}


def stream_scenario(name: str, workload: WorkloadProfile,
                    cfg: Optional[ScenarioConfig] = None,
                    latency: Optional[LatencyModel] = None,
                    **kwargs) -> Iterator[InferenceRequest]:
    """Lazily stream a named traffic scenario, one arrival at a time."""
    try:
        gen = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; options: {sorted(SCENARIOS)}") from None
    return gen(workload, cfg=cfg, latency=latency, **kwargs)


def build_scenario(name: str, workload: WorkloadProfile,
                   cfg: Optional[ScenarioConfig] = None,
                   latency: Optional[LatencyModel] = None,
                   **kwargs) -> List[InferenceRequest]:
    """Materialize a named traffic trace (offline view of the stream)."""
    return list(stream_scenario(name, workload, cfg=cfg, latency=latency,
                                **kwargs))


def assign_tenants(requests: Sequence[InferenceRequest], tenants: int,
                   prefix: str = "t") -> List[InferenceRequest]:
    """Stamp a trace with round-robin tenant ids (``t0``, ``t1``, ...).

    The deterministic multi-tenant overlay the CLI's ``--tenants`` flag
    applies: request ``req_id % tenants`` belongs to tenant
    ``f"{prefix}{req_id % tenants}"``, so the assignment is a pure
    function of the trace (no RNG to keep in sync) and identical for
    any tick schedule.  Requests are restamped in place and the list is
    returned for chaining.
    """
    if tenants < 1:
        raise ValueError("tenants must be at least 1")
    out = list(requests)
    for req in out:
        req.tenant = f"{prefix}{req.req_id % tenants}"
    return out
