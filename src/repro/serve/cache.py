"""LRU artifact cache for run-time reconfiguration, with a byte budget.

Serving traffic re-installs masks and sparse-format conversions far more
often than it changes them: a steady workload swaps pattern sets rarely,
yet the single-request path re-derives every layer's pattern mask (an
``einsum`` over all tiles) and re-packs sparse payloads on every call.
This module caches those derived artifacts keyed by
``(layer, pattern_set, format)`` so a reconfiguration swap back to a
previously seen operating point costs a dictionary lookup instead of a
recomputation — the software analogue of the paper's claim that a pattern
switch moves only kilobytes.

Because the cache stands in for *device-resident memory*, it is bounded
by **bytes**, not entries: every stored artifact is charged its real
footprint (:func:`artifact_nbytes` — ndarray ``nbytes``, a format's own
``nbytes()`` accounting, bit-packed masks their packed size) and the
least-recently-used artifacts are evicted until the total fits the
budget.  A 1-bit-per-position packed mask therefore costs the cache 64x
less than the float mask it reconstructs, exactly the paper's
storage-format argument.

The cache is deliberately small and generic:

- :class:`LRUCache` — bounded mapping with least-recently-used eviction
  (entry capacity and/or byte budget) and hit/miss/eviction accounting;
- :class:`ArtifactCache` — namespaced keys for pattern masks
  (``("mask", layer, set_digest)``) and format conversions
  (``("fmt", layer, weight_token, fmt)``), plus targeted invalidation
  when weights change or a pattern set is retired.

Cached masks assume the underlying weights are frozen (the deployment
regime after Level-1 training); call :meth:`ArtifactCache.invalidate`
after any weight update.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, Optional, Tuple

import numpy as np


def artifact_nbytes(value: Any) -> int:
    """Best-effort device-memory footprint of a cached artifact.

    ndarrays report ``nbytes``; the sparse formats and
    :class:`~repro.core.patterns.PackedMask` report their own exact byte
    accounting (``nbytes`` attribute or method); containers sum their
    members; everything else falls back to ``sys.getsizeof``.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    # a format's resident footprint (storage + materialized kernel tables)
    # trumps its storage-only nbytes(): the cache holds the live object
    resident = getattr(value, "resident_nbytes", None)
    if callable(resident):
        return int(resident())
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes() if callable(nbytes) else nbytes)
    if isinstance(value, (tuple, list, set, frozenset)):
        return sum(artifact_nbytes(v) for v in value)
    if isinstance(value, dict):
        return sum(artifact_nbytes(v) for v in value.values())
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    return int(sys.getsizeof(value))


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions, self.invalidations)

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    Two independent bounds, either or both active:

    - ``capacity`` bounds the number of entries (``None`` = unbounded);
    - ``budget_bytes`` bounds the summed :func:`artifact_nbytes` of the
      stored values (``None`` = unbounded) — size-aware eviction, so one
      huge artifact can displace many small ones and vice versa.

    Setting either bound to 0 disables caching (every lookup misses,
    nothing is stored), which lets callers keep one code path.  An
    artifact larger than the whole byte budget is never stored — caching
    it would evict everything else for a single entry.  Both ``get`` and
    ``put`` refresh an entry's recency.
    """

    def __init__(self, capacity: Optional[int] = 128,
                 budget_bytes: Optional[int] = None) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError("capacity cannot be negative")
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError("budget_bytes cannot be negative")
        self.capacity = capacity
        self.budget_bytes = budget_bytes
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._sizes: Dict[Hashable, int] = {}
        self.total_bytes = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def keys(self) -> Iterable[Hashable]:
        return list(self._data.keys())

    def entry_nbytes(self, key: Hashable) -> Optional[int]:
        """Accounted size of one entry (None when absent)."""
        return self._sizes.get(key)

    # ------------------------------------------------------------------
    def _drop(self, key: Hashable) -> None:
        del self._data[key]
        self.total_bytes -= self._sizes.pop(key, 0)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, counting a hit or miss."""
        if key in self._data:
            self.stats.hits += 1
            self._data.move_to_end(key)
            return self._data[key]
        self.stats.misses += 1
        return default

    def put(self, key: Hashable, value: Any,
            nbytes: Optional[int] = None) -> None:
        """Insert/refresh ``key``, evicting LRU entries past either bound.

        ``nbytes`` overrides the :func:`artifact_nbytes` estimate when the
        caller knows the artifact's real footprint.
        """
        if self.capacity == 0 or self.budget_bytes == 0:
            return
        # sizing walks containers recursively: skip it entirely when no
        # byte bound would ever consult the result
        if self.budget_bytes is None:
            size = 0
        else:
            size = artifact_nbytes(value) if nbytes is None else int(nbytes)
        if self.budget_bytes is not None and size > self.budget_bytes:
            # oversized artifact: storing it would flush the whole cache
            if key in self._data:
                self._drop(key)
            return
        if key in self._data:
            self.total_bytes -= self._sizes.get(key, 0)
            self._data.move_to_end(key)
        self._data[key] = value
        self._sizes[key] = size
        self.total_bytes += size
        while ((self.capacity is not None and len(self._data) > self.capacity)
               or (self.budget_bytes is not None
                   and self.total_bytes > self.budget_bytes)):
            lru_key = next(iter(self._data))
            self._drop(lru_key)
            self.stats.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """``get`` with a fallback producer; stores the computed value."""
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            value = compute()
            self.put(key, value)
        return value

    def invalidate(self, predicate: Optional[Callable[[Hashable], bool]] = None) -> int:
        """Drop entries whose key satisfies ``predicate`` (None = all).

        Returns the number of entries removed.
        """
        if predicate is None:
            removed = len(self._data)
            self._data.clear()
            self._sizes.clear()
            self.total_bytes = 0
        else:
            doomed = [k for k in self._data if predicate(k)]
            for k in doomed:
                self._drop(k)
            removed = len(doomed)
        self.stats.invalidations += removed
        return removed


@dataclass
class ArtifactCache:
    """Byte-budgeted cache for the two serving hot-path artifacts.

    - *masks*: ``(PackedMask, pattern_ids)`` pairs derived from
      :func:`repro.core.patterns.pattern_mask_for_matrix` and bit-packed
      by the :class:`~repro.core.patterns.MaskManager`, keyed by
      ``(layer, pattern_set_digest)``;
    - *formats*: packed sparse matrices from :mod:`repro.sparse.formats`,
      keyed by ``(layer, weight_token, format)`` where the token is the
      owning layer's O(1) version counter
      (:attr:`repro.nn.layers.Linear.cache_token`).

    One shared :class:`LRUCache` backs both namespaces, bounded by
    ``budget_bytes`` (default 8 MiB) — the slice of device memory the
    deployment reserves for resident reconfiguration artifacts.  Eviction
    is size-aware LRU over :func:`artifact_nbytes`, so cache pressure
    follows real artifact footprints instead of an entry count.
    """

    budget_bytes: int = 8 << 20
    store: LRUCache = field(init=False)

    def __post_init__(self) -> None:
        self.store = LRUCache(capacity=None, budget_bytes=self.budget_bytes)

    @property
    def stats(self) -> CacheStats:
        return self.store.stats

    @property
    def bytes_in_use(self) -> int:
        """Accounted footprint of everything currently cached."""
        return self.store.total_bytes

    # -- key builders ---------------------------------------------------
    @staticmethod
    def mask_key(layer: str, set_digest: str, owner: str = "") -> Tuple[str, ...]:
        """``owner`` isolates entries of distinct mask managers: masks are
        derived from weights, so managers over different models must never
        share entries even when layer names and set digests coincide."""
        return ("mask", layer, set_digest, owner)

    @staticmethod
    def format_key(layer: str, weight_digest: str, fmt: str,
                   config: str = "") -> Tuple[str, ...]:
        """``config`` carries format parameters the payload depends on
        beyond the weight content (pattern-set digest, block count)."""
        return ("fmt", layer, weight_digest, fmt, config)

    # -- mask namespace -------------------------------------------------
    def get_mask(self, layer: str, set_digest: str, compute: Callable[[], Any],
                 owner: str = "") -> Any:
        return self.store.get_or_compute(self.mask_key(layer, set_digest, owner),
                                         compute)

    # -- format namespace -----------------------------------------------
    def get_format(self, layer: str, weight_digest: str, fmt: str,
                   compute: Callable[[], Any], config: str = "") -> Any:
        return self.store.get_or_compute(
            self.format_key(layer, weight_digest, fmt, config), compute)

    # -- invalidation ---------------------------------------------------
    def invalidate(self, layer: Optional[str] = None,
                   set_digest: Optional[str] = None,
                   owner: Optional[str] = None) -> int:
        """Drop matching entries; all filters None clears everything.

        ``layer`` matches either namespace.  ``set_digest`` retires a
        pattern set from both namespaces: it matches the mask entries'
        set digest and the format entries' config field (which carries
        the pattern-set digest for pattern conversions).  ``owner``
        drops one mask manager's entries — the weight-update path —
        without touching format conversions, whose version-token keys
        (layer uid + weight/mask update counters) already miss on any
        declared weight or mask change.
        """
        if layer is None and set_digest is None and owner is None:
            return self.store.invalidate()

        def doomed(key: Hashable) -> bool:
            if not isinstance(key, tuple) or len(key) < 3:
                return False
            if layer is not None and key[1] != layer:
                return False
            if set_digest is not None:
                digest_field = key[2] if key[0] == "mask" else key[4]
                if digest_field != set_digest:
                    return False
            if owner is not None and (key[0] != "mask" or key[3] != owner):
                return False
            return True

        return self.store.invalidate(doomed)
