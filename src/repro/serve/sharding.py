"""Simulated multi-device sharding: device shards, queues, dispatch policies.

The serving engine scales out by routing micro-batches across ``N``
simulated devices.  Each :class:`DeviceShard` owns

- its own simulated clock and busy-time accounting,
- *per-V/F-level FIFO queues*: a batch is enqueued under the V/F level in
  force when its requests arrived, so traffic at different operating
  points never interleaves inside one queue, and
- its own installed-pattern state (``active_sparsity``): pattern-set
  switches are a *per-device* cost, so each shard pays for its own swaps
  independently of what its neighbours have installed.

Shards are *event-driven*: the streaming loop (not a one-pass drain)
owns the timeline.  A shard advertises when it can next act
(:meth:`DeviceShard.next_event_s` — it is idle and a queued batch is
ready) and the loop pops its next batch (:meth:`DeviceShard.pop_next`)
at that instant, so per-device clocks advance interleaved with
admissions instead of each shard being drained to exhaustion.  The
legacy :meth:`DeviceShard.drain` generator is a thin wrapper (reset the
policy state, pop until empty) kept for full-queue use and tests.  Both
routing and draining know about reconfiguration:

- **drain policies** — ``fifo`` follows the global flush order (min
  ``seq`` across queue heads; a one-shard engine reproduces the serial
  engine's schedule exactly, the property the time-slicing exactness
  tests pin down).  ``level-affinity`` serves one V/F level *run-to-run*:
  staying on a level keeps its pattern set resident, so rung-alternating
  bursts stop re-switching per batch.  A ``fairness_window`` bounds each
  run — after that many consecutive batches from one level while another
  level has queued work, the drain rotates to the level with the oldest
  waiting head, so no level starves under saturation.  ``adaptive``
  starts out ``fifo`` and flips itself to ``level-affinity`` when the
  shard's observed pattern-switch rate over a sliding window of executed
  batches crosses a threshold — a mixed fleet tunes itself per device
  instead of pinning one policy engine-wide.
- **dispatch policies** — ``round-robin`` and ``least-loaded`` as before,
  plus ``switch-aware``: least-loaded's backlog estimate *plus the cost
  of the pattern swap this placement would trigger* on each candidate
  shard, so batches gravitate to devices that already hold their pattern
  set and reconfiguration traffic concentrates instead of spraying
  across the fleet.  Load policies score ``assigned_est_s`` — the
  cumulative service estimate ever routed to a shard this run — which is
  independent of how far each shard's execution has progressed, so a
  routing decision depends only on the admission stream, never on tick
  granularity (and matches what the old route-everything-first offline
  engine saw).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.serve.batcher import InferenceRequest
from repro.serve.decode import DecodeJob, DecodeLane
from repro.serve.faults import DEGRADED, DOWN, HEALTHY

POLICIES = ("round-robin", "least-loaded", "switch-aware")
DRAIN_POLICIES = ("fifo", "level-affinity", "adaptive")


@dataclass
class QueuedBatch:
    """One routed micro-batch: the unit the dispatcher moves around."""

    seq: int  # global flush order; becomes the report's batch_id
    requests: List[InferenceRequest]
    level_name: str
    ready_s: float  # earliest dispatch time (full batch / window rule)
    est_service_s: float  # analytic service estimate used for routing
    # feasible sparsity resolved at routing time (None = infeasible);
    # carried so the drain phase never repeats the ladder walk
    sparsity: Optional[float] = None
    # failover bookkeeping: how many times this batch was pulled off a
    # dead shard (each requeue is charged like a pattern switch at
    # execution), and which members already completed before a crash
    # retracted the rest (the re-execution recomputes the full batch —
    # identical membership keeps the bits identical — but only emits
    # results for members not already done)
    requeues: int = 0
    done_ids: Tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.requests)


@dataclass
class ShardStats:
    """Per-device digest of one serving run."""

    shard_id: int
    requests: int = 0
    batches: int = 0
    busy_s: float = 0.0
    last_completion_s: float = 0.0
    switches: int = 0
    # adaptive drain: how often the shard re-picked its own policy (with
    # the hysteresis band enabled a shard can flip fifo -> level-affinity
    # and back as traffic phases change) and what it ended on
    policy_flips: int = 0
    drain_policy: str = "fifo"
    # continuous-batching decode lane traffic (token boundaries executed
    # on this device and streams completed here)
    decode_streams: int = 0
    decode_tokens: int = 0
    # fault-tolerance accounting: crash/recovery counts, batches pulled
    # off this shard when it died, failed-over batches re-executed here
    # (with the pattern-switch-like penalty they paid), transient stall
    # windows, the worst detection lag between physical recovery and the
    # re-probe that noticed it, and the health the run ended on
    failures: int = 0
    recoveries: int = 0
    requeued_batches: int = 0
    retried_batches: int = 0
    retry_penalty_s: float = 0.0
    stalls: int = 0
    recovery_lag_s: float = 0.0
    health: str = HEALTHY
    # deadline-driven preemption: batches pulled back off this shard
    # (queued or in-flight) to let a tighter-deadline batch run first;
    # each preemption is charged like a pattern switch at re-execution,
    # through the same requeue accounting as crash failover
    preempted_batches: int = 0

    @property
    def service_throughput_rps(self) -> float:
        """Requests/second while the device is actually busy."""
        return self.requests / self.busy_s if self.busy_s > 0 else 0.0

    def utilization(self, makespan_s: float) -> float:
        return self.busy_s / makespan_s if makespan_s > 0 else 0.0

    def as_dict(self, makespan_s: float = 0.0) -> dict:
        return {
            "shard_id": self.shard_id,
            "requests": self.requests,
            "batches": self.batches,
            "busy_s": self.busy_s,
            "last_completion_s": self.last_completion_s,
            "switches": self.switches,
            "policy_flips": self.policy_flips,
            "drain_policy": self.drain_policy,
            "decode_streams": self.decode_streams,
            "decode_tokens": self.decode_tokens,
            "failures": self.failures,
            "recoveries": self.recoveries,
            "requeued_batches": self.requeued_batches,
            "retried_batches": self.retried_batches,
            "retry_penalty_s": self.retry_penalty_s,
            "stalls": self.stalls,
            "recovery_lag_s": self.recovery_lag_s,
            "health": self.health,
            "preempted_batches": self.preempted_batches,
            "service_throughput_rps": self.service_throughput_rps,
            "utilization": self.utilization(makespan_s),
        }


class DeviceShard:
    """One simulated device: per-V/F-level queues plus its own timeline.

    ``enqueue`` files a batch under its V/F level; the event loop asks
    :meth:`next_event_s` when the shard can next start a batch and
    :meth:`pop_next` for which one, according to ``drain_policy``:

    - ``fifo`` — global flush order (min ``seq`` across queue heads; each
      per-level queue is FIFO, so this is a stable merge);
    - ``level-affinity`` — stay on the current level while it has queued
      batches, rotating to the oldest-waiting other level after
      ``fairness_window`` consecutive batches once another level is
      waiting.  Level runs amortize the pattern set resident for that
      level across the whole run;
    - ``adaptive`` — behave as ``fifo`` until the observed pattern-switch
      rate over the last ``adaptive_window`` executed batches reaches
      ``adaptive_threshold``, then flip to ``level-affinity``.  A shard
      fed steady single-rung traffic keeps FIFO's exact global order; a
      shard hammered by rung-alternating bursts starts amortizing
      pattern residency on its own.  With ``adaptive_low_threshold`` set
      (the hysteresis band) the flip is reversible: once the post-flip
      switch rate over a full window falls to the lower band — the
      traffic phase changed, affinity no longer buys anything — the
      shard flips back to fifo.  The switch history is cleared at every
      flip so each decision uses only evidence gathered under the policy
      in force (otherwise affinity's own switch savings would
      immediately re-trigger the flip-back).  ``None`` (default) keeps
      the historical one-way behaviour.

    The affinity run state persists across pops, so incremental
    event-loop use and a one-shot :meth:`drain` walk the same policy.

    The shard's installed-pattern state (``active_sparsity``) is updated
    by the engine as it executes, because a pattern swap happens on
    *this* device no matter what the other shards run.
    ``expected_sparsity`` is the routing-time twin: the dispatcher's
    prediction of what will be resident once the already-assigned batches
    ran, used by switch-aware placement scoring.
    """

    def __init__(self, shard_id: int, drain_policy: str = "fifo",
                 fairness_window: int = 4, adaptive_window: int = 8,
                 adaptive_threshold: float = 0.5,
                 adaptive_low_threshold: Optional[float] = None) -> None:
        if drain_policy not in DRAIN_POLICIES:
            raise ValueError(f"unknown drain policy {drain_policy!r}; "
                             f"options: {list(DRAIN_POLICIES)}")
        if fairness_window < 1:
            raise ValueError("fairness_window must be at least 1")
        if adaptive_window < 1:
            raise ValueError("adaptive_window must be at least 1")
        if not 0.0 < adaptive_threshold <= 1.0:
            raise ValueError("adaptive_threshold must be in (0, 1]")
        if adaptive_low_threshold is not None and not (
                0.0 <= adaptive_low_threshold < adaptive_threshold):
            raise ValueError(
                "adaptive_low_threshold must be in [0, adaptive_threshold)")
        self.shard_id = shard_id
        self.drain_policy = drain_policy
        self.fairness_window = fairness_window
        self.adaptive_window = adaptive_window
        self.adaptive_threshold = adaptive_threshold
        self.adaptive_low_threshold = adaptive_low_threshold
        self.queues: Dict[str, Deque[QueuedBatch]] = {}
        self.clock_s = 0.0
        # estimated not-yet-executed backlog — introspection only; routing
        # scores the cumulative assigned_est_s below, never this
        self.pending_s = 0.0
        # cumulative service estimate ever routed here (never decremented):
        # the dispatcher's load signal, independent of execution progress
        self.assigned_est_s = 0.0
        self.active_sparsity: Optional[float] = None
        self.expected_sparsity: Optional[float] = None
        # health state machine (healthy / degraded / down): transient
        # stall/slow windows degrade, a crash takes the shard down until
        # ``down_until`` (inf = permanently); ``slowdown`` scales compute
        # time while a slow window is in force (timing only — outputs
        # are never touched by a slowdown)
        self.health: str = HEALTHY
        self.down_until: Optional[float] = None
        self.slowdown: float = 1.0
        # rolling decode batch resident on this device (continuous
        # batching: streams join/leave at token boundaries)
        self.decode = DecodeLane()
        self.stats = ShardStats(shard_id, drain_policy=self._base_policy())
        # persistent drain-policy state (level-affinity run tracking)
        self._current_level: Optional[str] = None
        self._run = 0
        # adaptive drain: sliding window of per-batch device-switch flags
        self._switch_history: Deque[bool] = deque(maxlen=adaptive_window)

    def _base_policy(self) -> str:
        return "fifo" if self.drain_policy == "adaptive" else self.drain_policy

    @property
    def effective_drain_policy(self) -> str:
        """The policy in force right now (adaptive shards re-pick theirs)."""
        return self.stats.drain_policy

    @property
    def switch_rate(self) -> float:
        """Fraction of recently executed batches that swapped pattern sets."""
        if not self._switch_history:
            return 0.0
        return sum(self._switch_history) / len(self._switch_history)

    # -- queueing ------------------------------------------------------
    def enqueue(self, batch: QueuedBatch) -> None:
        self.queues.setdefault(batch.level_name, deque()).append(batch)
        self.pending_s += batch.est_service_s
        self.assigned_est_s += batch.est_service_s
        if batch.sparsity is not None:
            self.expected_sparsity = batch.sparsity

    def backlog(self) -> int:
        """Number of queued, not-yet-executed batches."""
        return sum(len(q) for q in self.queues.values())

    def queued_batches(self) -> List[QueuedBatch]:
        """Every queued batch, in flush order (deterministic)."""
        return sorted((b for q in self.queues.values() for b in q),
                      key=lambda b: b.seq)

    def retract(self, seq: int) -> Optional[QueuedBatch]:
        """Pull one queued batch back out (preemption / cancellation).

        Reverses :meth:`enqueue`'s pending-time accounting but leaves
        ``assigned_est_s`` alone — that is the dispatcher's cumulative
        routing signal and must stay a pure function of the admission
        stream.  Affinity run state survives; a retracted current level
        simply runs dry and the next pop rotates as usual.
        """
        for name, q in self.queues.items():
            for batch in q:
                if batch.seq == seq:
                    q.remove(batch)
                    if not q:
                        del self.queues[name]
                    self.pending_s = max(0.0,
                                         self.pending_s - batch.est_service_s)
                    return batch
        return None

    def _oldest_head(self, exclude: Optional[str] = None) -> Optional[str]:
        """Level whose queue head was flushed earliest (min seq)."""
        heads = [(q[0].seq, name) for name, q in self.queues.items()
                 if q and name != exclude]
        return min(heads)[1] if heads else None

    # -- event-driven interface (driven by the streaming loop) ---------
    def queue_event_s(self) -> Optional[float]:
        """Earliest simulated time this shard can start its next batch.

        ``None`` when nothing is queued; otherwise the device is free at
        ``clock_s`` and some queued batch is dispatchable at its
        ``ready_s``, so the shard can act at the max of its clock and the
        earliest ready time.  (The batch the policy then picks may carry
        a later ``ready_s`` — the begin time still honours it.)
        """
        if not any(self.queues.values()):
            return None
        earliest = min(q[0].ready_s for q in self.queues.values() if q)
        return max(self.clock_s, earliest)

    def next_event_s(self) -> Optional[float]:
        """Earliest time this shard can act: batch dispatch or a decode
        token boundary, whichever comes first (the engine breaks the tie
        in favour of the latency-critical decode lane)."""
        times = [t for t in (self.queue_event_s(),
                             self.decode.due_s(self.clock_s))
                 if t is not None]
        return min(times) if times else None

    def pop_next(self) -> Optional[QueuedBatch]:
        """Pop the next batch per the drain policy (None when empty)."""
        if self.effective_drain_policy == "fifo":
            self._current_level = self._oldest_head()
            self._run = 0
        else:  # level-affinity
            current = self._current_level
            others_waiting = any(q for name, q in self.queues.items()
                                 if name != current and q)
            stay = (current is not None
                    and self.queues.get(current)
                    and not (others_waiting
                             and self._run >= self.fairness_window))
            if not stay:
                nxt = self._oldest_head(exclude=current)
                self._current_level = (nxt if nxt is not None
                                       else self._oldest_head())
                self._run = 0
        if self._current_level is None:
            return None
        batch = self.queues[self._current_level].popleft()
        self._run += 1
        self.pending_s = max(0.0, self.pending_s - batch.est_service_s)
        return batch

    def drain(self) -> Iterator[QueuedBatch]:
        """Yield all queued batches per the drain policy (full-queue walk)."""
        self._current_level = None
        self._run = 0
        while True:
            batch = self.pop_next()
            if batch is None:
                return
            yield batch

    # -- health state machine (driven by the engine's fault events) ----
    @property
    def available(self) -> bool:
        """Can this shard accept and execute work right now?"""
        return self.health != DOWN

    def fail(self, now_s: float, down_until_s: float
             ) -> Tuple[List[QueuedBatch], List[DecodeJob]]:
        """Crash: go down and hand back every piece of queued work.

        Returns ``(batches, decode_jobs)`` in deterministic order
        (batches by flush seq, decode jobs pending-then-active) for the
        engine to fail over to healthy shards.  The in-flight batch — at
        most one can straddle the crash instant, since the fault event
        sorts ahead of the shard's next ready event — is the *engine's*
        to retract; by the time ``fail`` runs the clock is already
        clamped back to the crash instant.
        """
        if self.health == DOWN:
            # overlapping crash: extend the outage, nothing new to evict
            self.down_until = max(self.down_until or 0.0, down_until_s)
            return [], []
        self.health = DOWN
        self.down_until = down_until_s
        self.clock_s = min(self.clock_s, now_s)
        self.stats.failures += 1
        self.stats.health = DOWN
        batches = sorted((b for q in self.queues.values() for b in q),
                         key=lambda b: b.seq)
        self.queues.clear()
        self.pending_s = 0.0
        self.stats.requeued_batches += len(batches)
        self._current_level = None
        self._run = 0
        return batches, self.decode.evacuate()

    def rejoin(self, now_s: float) -> None:
        """A re-probe found the shard back up: rejoin the fleet."""
        if self.down_until is not None:
            self.stats.recovery_lag_s = max(self.stats.recovery_lag_s,
                                            now_s - self.down_until)
        self.down_until = None
        self.clock_s = max(self.clock_s, now_s)
        self.stats.recoveries += 1
        # leave DOWN explicitly, then re-derive healthy-vs-degraded (a
        # slowdown window may still be open); ``restore`` alone would
        # early-return on the DOWN guard and strand the shard
        self.health = HEALTHY
        self.restore()

    def stall(self, until_s: float) -> None:
        """Freeze until ``until_s``: the clock jumps, no work is lost."""
        self.clock_s = max(self.clock_s, until_s)
        self.stats.stalls += 1
        if self.health == HEALTHY:
            self.health = DEGRADED
            self.stats.health = DEGRADED

    def slow(self, factor: float) -> None:
        """Enter a slowdown window: compute takes ``factor``× longer."""
        self.slowdown = factor
        if self.health == HEALTHY:
            self.health = DEGRADED
            self.stats.health = DEGRADED

    def slow_end(self) -> None:
        self.slowdown = 1.0
        self.restore()

    def restore(self) -> None:
        """Re-derive health once a window ends (down shards stay down)."""
        if self.health == DOWN:
            return
        self.health = HEALTHY if self.slowdown == 1.0 else DEGRADED
        self.stats.health = self.health

    def rollback_inflight(self, now_s: float, lost_members: int,
                          batch_end_s: float, lost_batch: bool) -> None:
        """Retract the accounting tail of a batch killed mid-execution.

        The batch occupied this device from its begin to ``batch_end_s``;
        a crash at ``now_s`` inside that window means the tail never
        happened — the surviving members' results (completions at or
        before the crash) stand, the rest re-execute elsewhere.
        """
        self.stats.busy_s = max(0.0,
                                self.stats.busy_s - max(0.0, batch_end_s - now_s))
        self.stats.requests -= lost_members
        if lost_batch:
            self.stats.batches -= 1
        self.stats.last_completion_s = min(self.stats.last_completion_s, now_s)
        self.clock_s = min(self.clock_s, now_s)

    # -- execution accounting (called by the engine) -------------------
    def record_decode(self, service_s: float, completion_s: float,
                      tokens: int, finished: int, switches: int) -> None:
        """Account one decode token boundary (all lane groups advanced).

        Decode boundaries move the device clock and busy time like a
        batch does, but stay out of the drain-policy switch history —
        the adaptive drain reasons about queued batch traffic only.
        """
        self.clock_s = completion_s
        self.stats.busy_s += service_s
        self.stats.last_completion_s = completion_s
        self.stats.decode_tokens += tokens
        self.stats.decode_streams += finished
        self.stats.switches += switches

    def record(self, batch: QueuedBatch, service_s: float, completion_s: float,
               switched: bool, members: Optional[int] = None) -> None:
        # ``members`` overrides the request count for failover re-executions:
        # the full batch recomputes (identical membership keeps the bits
        # identical) but only not-yet-done members complete here
        self.clock_s = completion_s
        self.stats.requests += len(batch) if members is None else members
        self.stats.batches += 1
        self.stats.busy_s += service_s
        self.stats.last_completion_s = completion_s
        if switched:
            self.stats.switches += 1
        self._switch_history.append(switched)
        if (self.drain_policy != "adaptive"
                or len(self._switch_history) < self.adaptive_window):
            return
        if (self.stats.drain_policy == "fifo"
                and self.switch_rate >= self.adaptive_threshold):
            # enough evidence of rung-thrashing: amortize pattern
            # residency from here on; history is cleared so a flip-back
            # decision only weighs batches executed *under* affinity
            self.stats.drain_policy = "level-affinity"
            self.stats.policy_flips += 1
            self._switch_history.clear()
        elif (self.stats.drain_policy == "level-affinity"
              and self.adaptive_low_threshold is not None
              and self.switch_rate <= self.adaptive_low_threshold):
            # hysteresis band: a full affinity-era window with (almost)
            # no switches means the traffic phase changed — affinity is
            # no longer buying anything, so return to fifo's exact
            # global flush order (outputs are unaffected either way:
            # drain order never changes batch membership)
            self.stats.drain_policy = "fifo"
            self.stats.policy_flips += 1
            self._switch_history.clear()


@dataclass
class Dispatcher:
    """Routes micro-batches to shards.

    - ``round-robin``   — batch ``seq`` goes to shard ``seq % N``; ignores
      load, so heterogeneous batch costs can pile onto one device.
    - ``least-loaded``  — the shard with the smallest cumulative load
      estimate (``assigned_est_s``: the sum of the analytic service
      estimates of every batch already assigned to it this run); ties
      break toward the lowest shard id, keeping the assignment
      deterministic.  Scoring cumulative assignments rather than the
      live backlog makes every placement a pure function of the
      admission stream — the same trace routes identically whether it is
      replayed offline or ticked through the streaming loop.
    - ``switch-aware``  — least-loaded's load estimate *plus* the
      simulated pattern-swap cost this placement would trigger: a
      candidate shard whose ``expected_sparsity`` differs from the
      batch's resolved sparsity is charged ``switch_cost_s[sparsity]``
      seconds.  Batches therefore prefer devices already holding their
      pattern set, and a swap is only taken when the load imbalance
      outweighs it.
    """

    policy: str = "round-robin"
    # per-sparsity simulated swap cost (seconds), supplied by the engine
    # from its reconfigurator model; only consulted by ``switch-aware``
    switch_cost_s: Mapping[float, float] = field(default_factory=dict)
    routed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown dispatch policy {self.policy!r}; options: {list(POLICIES)}")

    def _placement_cost(self, batch: QueuedBatch, shard: DeviceShard) -> float:
        """Estimated cost of assigning ``batch`` to ``shard``."""
        cost = shard.assigned_est_s
        if (batch.sparsity is not None
                and batch.sparsity != shard.expected_sparsity):
            cost += self.switch_cost_s.get(batch.sparsity, 0.0)
        return cost

    def place(self, batch: QueuedBatch,
              shards: Sequence[DeviceShard]) -> DeviceShard:
        """Pick a shard for ``batch`` without enqueueing it.

        Decode placements go through here — the job joins the shard's
        decode lane rather than a batch queue, but it consumes a routing
        slot (round-robin position, load/switch scoring) exactly like a
        batch placement does.
        """
        if not shards:
            raise ValueError("cannot route without shards")
        if self.policy == "round-robin":
            shard = shards[self.routed % len(shards)]
        elif self.policy == "least-loaded":
            shard = min(shards, key=lambda s: (s.assigned_est_s, s.shard_id))
        else:  # switch-aware
            shard = min(shards,
                        key=lambda s: (self._placement_cost(batch, s),
                                       s.shard_id))
        self.routed += 1
        return shard

    def route(self, batch: QueuedBatch, shards: Sequence[DeviceShard]) -> DeviceShard:
        """Pick a shard for ``batch`` and enqueue it there."""
        shard = self.place(batch, shards)
        shard.enqueue(batch)
        return shard
