"""Simulated multi-device sharding: device shards, queues, dispatch policies.

The serving engine scales out by routing micro-batches across ``N``
simulated devices.  Each :class:`DeviceShard` owns

- its own simulated clock and busy-time accounting,
- *per-V/F-level FIFO queues*: a batch is enqueued under the V/F level in
  force when its requests arrived, so traffic at different operating
  points never interleaves inside one queue (and a future drain policy
  can serve a whole level run-to-run to amortize reconfiguration), and
- its own installed-pattern state (``active_sparsity``): pattern-set
  switches are a *per-device* cost, so each shard pays for its own swaps
  independently of what its neighbours have installed.

Routing is a two-phase simulation: the :class:`Dispatcher` first assigns
every micro-batch to a shard (``round-robin`` or ``least-loaded``), then
each shard drains its queues on its own timeline.  Draining follows the
global flush order (the per-level queues are FIFO and the shard always
serves the queue whose head was flushed earliest), so a one-shard engine
reproduces the serial engine's schedule exactly — the property the
time-slicing exactness tests pin down.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Sequence

from repro.serve.batcher import InferenceRequest

POLICIES = ("round-robin", "least-loaded")


@dataclass
class QueuedBatch:
    """One routed micro-batch: the unit the dispatcher moves around."""

    seq: int  # global flush order; becomes the report's batch_id
    requests: List[InferenceRequest]
    level_name: str
    ready_s: float  # earliest dispatch time (full batch / window rule)
    est_service_s: float  # analytic service estimate used for routing
    # feasible sparsity resolved at routing time (None = infeasible);
    # carried so the drain phase never repeats the ladder walk
    sparsity: Optional[float] = None

    def __len__(self) -> int:
        return len(self.requests)


@dataclass
class ShardStats:
    """Per-device digest of one serving run."""

    shard_id: int
    requests: int = 0
    batches: int = 0
    busy_s: float = 0.0
    last_completion_s: float = 0.0
    switches: int = 0

    @property
    def service_throughput_rps(self) -> float:
        """Requests/second while the device is actually busy."""
        return self.requests / self.busy_s if self.busy_s > 0 else 0.0

    def utilization(self, makespan_s: float) -> float:
        return self.busy_s / makespan_s if makespan_s > 0 else 0.0

    def as_dict(self, makespan_s: float = 0.0) -> dict:
        return {
            "shard_id": self.shard_id,
            "requests": self.requests,
            "batches": self.batches,
            "busy_s": self.busy_s,
            "last_completion_s": self.last_completion_s,
            "switches": self.switches,
            "service_throughput_rps": self.service_throughput_rps,
            "utilization": self.utilization(makespan_s),
        }


class DeviceShard:
    """One simulated device: per-V/F-level queues plus its own timeline.

    ``enqueue`` files a batch under its V/F level; ``drain`` yields the
    queued batches in global flush order (min ``seq`` across queue heads —
    each per-level queue is FIFO, so this is a stable merge).  The shard's
    installed-pattern state (``active_sparsity``) is updated by the engine
    as it executes, because a pattern swap happens on *this* device no
    matter what the other shards run.
    """

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.queues: Dict[str, Deque[QueuedBatch]] = {}
        self.clock_s = 0.0
        self.pending_s = 0.0  # estimated backlog, maintained by routing/drain
        self.active_sparsity: Optional[float] = None
        self.stats = ShardStats(shard_id)

    # -- queueing ------------------------------------------------------
    def enqueue(self, batch: QueuedBatch) -> None:
        self.queues.setdefault(batch.level_name, deque()).append(batch)
        self.pending_s += batch.est_service_s

    def backlog(self) -> int:
        """Number of queued, not-yet-executed batches."""
        return sum(len(q) for q in self.queues.values())

    def drain(self) -> Iterator[QueuedBatch]:
        """Yield queued batches in global flush order across level queues."""
        while True:
            heads = [(q[0].seq, name) for name, q in self.queues.items() if q]
            if not heads:
                return
            _, level_name = min(heads)
            batch = self.queues[level_name].popleft()
            self.pending_s = max(0.0, self.pending_s - batch.est_service_s)
            yield batch

    # -- execution accounting (called by the engine) -------------------
    def record(self, batch: QueuedBatch, service_s: float, completion_s: float,
               switched: bool) -> None:
        self.clock_s = completion_s
        self.stats.requests += len(batch)
        self.stats.batches += 1
        self.stats.busy_s += service_s
        self.stats.last_completion_s = completion_s
        if switched:
            self.stats.switches += 1


@dataclass
class Dispatcher:
    """Routes micro-batches to shards.

    - ``round-robin``   — batch ``seq`` goes to shard ``seq % N``; ignores
      load, so heterogeneous batch costs can pile onto one device.
    - ``least-loaded``  — the shard with the smallest estimated backlog
      (sum of the analytic service estimates of the batches already
      assigned to it); ties break toward the lowest shard id, keeping the
      assignment deterministic.
    """

    policy: str = "round-robin"
    routed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown dispatch policy {self.policy!r}; options: {list(POLICIES)}")

    def route(self, batch: QueuedBatch, shards: Sequence[DeviceShard]) -> DeviceShard:
        """Pick a shard for ``batch`` and enqueue it there."""
        if not shards:
            raise ValueError("cannot route without shards")
        if self.policy == "round-robin":
            shard = shards[self.routed % len(shards)]
        else:  # least-loaded
            shard = min(shards, key=lambda s: (s.pending_s, s.shard_id))
        shard.enqueue(batch)
        self.routed += 1
        return shard
