"""Simulated multi-device sharding: device shards, queues, dispatch policies.

The serving engine scales out by routing micro-batches across ``N``
simulated devices.  Each :class:`DeviceShard` owns

- its own simulated clock and busy-time accounting,
- *per-V/F-level FIFO queues*: a batch is enqueued under the V/F level in
  force when its requests arrived, so traffic at different operating
  points never interleaves inside one queue, and
- its own installed-pattern state (``active_sparsity``): pattern-set
  switches are a *per-device* cost, so each shard pays for its own swaps
  independently of what its neighbours have installed.

Routing is a two-phase simulation: the :class:`Dispatcher` first assigns
every micro-batch to a shard, then each shard drains its queues on its
own timeline.  Both phases know about reconfiguration:

- **drain policies** — ``fifo`` follows the global flush order (min
  ``seq`` across queue heads; a one-shard engine reproduces the serial
  engine's schedule exactly, the property the time-slicing exactness
  tests pin down).  ``level-affinity`` serves one V/F level *run-to-run*:
  staying on a level keeps its pattern set resident, so rung-alternating
  bursts stop re-switching per batch.  A ``fairness_window`` bounds each
  run — after that many consecutive batches from one level while another
  level has queued work, the drain rotates to the level with the oldest
  waiting head, so no level starves under saturation.
- **dispatch policies** — ``round-robin`` and ``least-loaded`` as before,
  plus ``switch-aware``: least-loaded's backlog estimate *plus the cost
  of the pattern swap this placement would trigger* on each candidate
  shard, so batches gravitate to devices that already hold their pattern
  set and reconfiguration traffic concentrates instead of spraying
  across the fleet.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.serve.batcher import InferenceRequest

POLICIES = ("round-robin", "least-loaded", "switch-aware")
DRAIN_POLICIES = ("fifo", "level-affinity")


@dataclass
class QueuedBatch:
    """One routed micro-batch: the unit the dispatcher moves around."""

    seq: int  # global flush order; becomes the report's batch_id
    requests: List[InferenceRequest]
    level_name: str
    ready_s: float  # earliest dispatch time (full batch / window rule)
    est_service_s: float  # analytic service estimate used for routing
    # feasible sparsity resolved at routing time (None = infeasible);
    # carried so the drain phase never repeats the ladder walk
    sparsity: Optional[float] = None

    def __len__(self) -> int:
        return len(self.requests)


@dataclass
class ShardStats:
    """Per-device digest of one serving run."""

    shard_id: int
    requests: int = 0
    batches: int = 0
    busy_s: float = 0.0
    last_completion_s: float = 0.0
    switches: int = 0

    @property
    def service_throughput_rps(self) -> float:
        """Requests/second while the device is actually busy."""
        return self.requests / self.busy_s if self.busy_s > 0 else 0.0

    def utilization(self, makespan_s: float) -> float:
        return self.busy_s / makespan_s if makespan_s > 0 else 0.0

    def as_dict(self, makespan_s: float = 0.0) -> dict:
        return {
            "shard_id": self.shard_id,
            "requests": self.requests,
            "batches": self.batches,
            "busy_s": self.busy_s,
            "last_completion_s": self.last_completion_s,
            "switches": self.switches,
            "service_throughput_rps": self.service_throughput_rps,
            "utilization": self.utilization(makespan_s),
        }


class DeviceShard:
    """One simulated device: per-V/F-level queues plus its own timeline.

    ``enqueue`` files a batch under its V/F level; ``drain`` yields the
    queued batches according to ``drain_policy``:

    - ``fifo`` — global flush order (min ``seq`` across queue heads; each
      per-level queue is FIFO, so this is a stable merge);
    - ``level-affinity`` — stay on the current level while it has queued
      batches, rotating to the oldest-waiting other level after
      ``fairness_window`` consecutive batches once another level is
      waiting.  Level runs amortize the pattern set resident for that
      level across the whole run.

    The shard's installed-pattern state (``active_sparsity``) is updated
    by the engine as it executes, because a pattern swap happens on
    *this* device no matter what the other shards run.
    ``expected_sparsity`` is the routing-time twin: the dispatcher's
    prediction of what will be resident once the already-assigned batches
    ran, used by switch-aware placement scoring.
    """

    def __init__(self, shard_id: int, drain_policy: str = "fifo",
                 fairness_window: int = 4) -> None:
        if drain_policy not in DRAIN_POLICIES:
            raise ValueError(f"unknown drain policy {drain_policy!r}; "
                             f"options: {list(DRAIN_POLICIES)}")
        if fairness_window < 1:
            raise ValueError("fairness_window must be at least 1")
        self.shard_id = shard_id
        self.drain_policy = drain_policy
        self.fairness_window = fairness_window
        self.queues: Dict[str, Deque[QueuedBatch]] = {}
        self.clock_s = 0.0
        self.pending_s = 0.0  # estimated backlog, maintained by routing/drain
        self.active_sparsity: Optional[float] = None
        self.expected_sparsity: Optional[float] = None
        self.stats = ShardStats(shard_id)

    # -- queueing ------------------------------------------------------
    def enqueue(self, batch: QueuedBatch) -> None:
        self.queues.setdefault(batch.level_name, deque()).append(batch)
        self.pending_s += batch.est_service_s
        if batch.sparsity is not None:
            self.expected_sparsity = batch.sparsity

    def backlog(self) -> int:
        """Number of queued, not-yet-executed batches."""
        return sum(len(q) for q in self.queues.values())

    def _oldest_head(self, exclude: Optional[str] = None) -> Optional[str]:
        """Level whose queue head was flushed earliest (min seq)."""
        heads = [(q[0].seq, name) for name, q in self.queues.items()
                 if q and name != exclude]
        return min(heads)[1] if heads else None

    def drain(self) -> Iterator[QueuedBatch]:
        """Yield queued batches according to the drain policy."""
        current: Optional[str] = None
        run = 0
        while True:
            if self.drain_policy == "fifo":
                current = self._oldest_head()
            else:  # level-affinity
                others_waiting = any(q for name, q in self.queues.items()
                                     if name != current and q)
                stay = (current is not None
                        and self.queues.get(current)
                        and not (others_waiting
                                 and run >= self.fairness_window))
                if not stay:
                    nxt = self._oldest_head(exclude=current)
                    current = nxt if nxt is not None else self._oldest_head()
                    run = 0
            if current is None:
                return
            batch = self.queues[current].popleft()
            run += 1
            self.pending_s = max(0.0, self.pending_s - batch.est_service_s)
            yield batch

    # -- execution accounting (called by the engine) -------------------
    def record(self, batch: QueuedBatch, service_s: float, completion_s: float,
               switched: bool) -> None:
        self.clock_s = completion_s
        self.stats.requests += len(batch)
        self.stats.batches += 1
        self.stats.busy_s += service_s
        self.stats.last_completion_s = completion_s
        if switched:
            self.stats.switches += 1


@dataclass
class Dispatcher:
    """Routes micro-batches to shards.

    - ``round-robin``   — batch ``seq`` goes to shard ``seq % N``; ignores
      load, so heterogeneous batch costs can pile onto one device.
    - ``least-loaded``  — the shard with the smallest estimated backlog
      (sum of the analytic service estimates of the batches already
      assigned to it); ties break toward the lowest shard id, keeping the
      assignment deterministic.
    - ``switch-aware``  — least-loaded's backlog *plus* the simulated
      pattern-swap cost this placement would trigger: a candidate shard
      whose ``expected_sparsity`` differs from the batch's resolved
      sparsity is charged ``switch_cost_s[sparsity]`` seconds.  Batches
      therefore prefer devices already holding their pattern set, and a
      swap is only taken when the load imbalance outweighs it.
    """

    policy: str = "round-robin"
    # per-sparsity simulated swap cost (seconds), supplied by the engine
    # from its reconfigurator model; only consulted by ``switch-aware``
    switch_cost_s: Mapping[float, float] = field(default_factory=dict)
    routed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown dispatch policy {self.policy!r}; options: {list(POLICIES)}")

    def _placement_cost(self, batch: QueuedBatch, shard: DeviceShard) -> float:
        """Estimated seconds until ``shard`` would finish ``batch``."""
        cost = shard.pending_s
        if (batch.sparsity is not None
                and batch.sparsity != shard.expected_sparsity):
            cost += self.switch_cost_s.get(batch.sparsity, 0.0)
        return cost

    def route(self, batch: QueuedBatch, shards: Sequence[DeviceShard]) -> DeviceShard:
        """Pick a shard for ``batch`` and enqueue it there."""
        if not shards:
            raise ValueError("cannot route without shards")
        if self.policy == "round-robin":
            shard = shards[self.routed % len(shards)]
        elif self.policy == "least-loaded":
            shard = min(shards, key=lambda s: (s.pending_s, s.shard_id))
        else:  # switch-aware
            shard = min(shards,
                        key=lambda s: (self._placement_cost(batch, s),
                                       s.shard_id))
        shard.enqueue(batch)
        self.routed += 1
        return shard
