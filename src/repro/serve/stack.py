"""One-call construction of a demo serving stack.

The `rt3 serve` CLI command and ``benchmarks/bench_serve.py`` serve the
same tiny Transformer through the same ladder/adapter/engine recipe; this
module is the single copy of that recipe so the CLI's behaviour cannot
drift from the bench that is supposed to mirror it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.patterns import MaskManager, random_pattern_set
from repro.core.runtime_policy import RuntimeAdapter
from repro.hardware.workload import WorkloadProfile, profile_from_model
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.serve.cache import ArtifactCache
from repro.serve.decode import DecodeOptions
from repro.serve.engine import ServeEngine
from repro.serve.faults import FaultPlan
from repro.serve.streaming import StreamingEngine


@dataclass
class StackConfig:
    """Knobs of the demo serving stack (defaults match the bench)."""

    dim: int = 32
    vocab_size: int = 60
    seq_len: int = 12
    max_len: int = 16
    pattern_size: int = 8
    patterns_per_set: int = 3
    sparsities: Sequence[float] = (0.3, 0.5, 0.7, 0.9)
    seed: int = 0
    max_batch: int = 8
    window_s: float = 0.05
    use_cache: bool = True
    # device memory reserved for resident masks/format conversions; the
    # ArtifactCache evicts size-aware LRU past this budget
    cache_budget_bytes: int = 8 << 20
    verify: bool = False
    devices: int = 1
    policy: str = "round-robin"
    time_sliced: bool = True
    prewarm: bool = False
    drain_policy: str = "fifo"
    fairness_window: int = 4
    # adaptive drain: per-shard flip to level-affinity once the observed
    # switch rate over `adaptive_window` batches reaches the threshold;
    # the optional lower band makes the flip reversible (hysteresis) —
    # a shard whose post-flip switch rate collapses returns to fifo
    adaptive_window: int = 8
    adaptive_threshold: float = 0.5
    adaptive_low_threshold: Optional[float] = None
    # decode/fast-forward knobs travel as one grouped sub-config (the
    # decode-lane sampling defaults plus the compiled-plane switch); the
    # CLI's --decode-* and --no-fast-forward flags thread into it
    decode: DecodeOptions = field(default_factory=DecodeOptions)
    # deprecated flat alias for decode.fast_forward, kept so existing
    # StackConfig(fast_forward=...) callers keep working; when set it
    # overrides the grouped value at construction and reads stay in sync
    fast_forward: Optional[bool] = None
    # streaming=True builds the online StreamingEngine (submit/tick/drain)
    # instead of the offline trace wrapper; max_wait_s overrides window_s
    # as its admission window when set
    streaming: bool = False
    max_wait_s: Optional[float] = None
    # fault tolerance: a FaultPlan of shard crash/stall/slow events (times
    # are simulated seconds from session start), the admission overload
    # defenses (shed_policy: none|reject|degrade, bounded queue), and the
    # first re-probe interval for downed shards (doubling per miss)
    faults: Optional[FaultPlan] = None
    shed_policy: str = "none"
    max_queue: Optional[int] = None
    probe_backoff_s: float = 0.005
    # scheduler defenses: deadline-driven preemption of placed work
    # (off|queued|running), an engine-wide client cancellation timeout,
    # per-tenant weighted fair shares of the bounded queue, and which
    # batching-window estimate the shed policies consult ("remaining"
    # charges only the open group's residual window; "full" keeps the
    # historical whole-max_wait_s pessimism)
    preempt_policy: str = "off"
    cancel_after_s: Optional[float] = None
    tenant_weights: Optional[Dict[str, float]] = None
    admission_estimate: str = "remaining"

    def __post_init__(self) -> None:
        if self.fast_forward is not None:
            self.decode.fast_forward = self.fast_forward
        self.fast_forward = self.decode.fast_forward


def build_serving_stack(cfg: Optional[StackConfig] = None
                        ) -> Tuple[TransformerLM, WorkloadProfile,
                                   Union[ServeEngine, StreamingEngine]]:
    """Model + workload profile + ready-to-serve engine.

    With ``cfg.streaming=True`` the third element is the online
    :class:`StreamingEngine` session; otherwise the offline
    :class:`ServeEngine` wrapper (whose :meth:`~ServeEngine.streaming`
    hands out a session on demand).
    """
    cfg = cfg or StackConfig()
    model = TransformerLM(TransformerConfig(
        vocab_size=cfg.vocab_size, dim=cfg.dim, num_heads=2,
        ffn_dim=2 * cfg.dim, max_len=cfg.max_len, dropout=0.0,
        seed=cfg.seed)).eval()
    workload = profile_from_model(model, seq_len=cfg.seq_len)
    rng = np.random.default_rng(cfg.seed)
    ladder = {s: random_pattern_set(cfg.pattern_size, s, cfg.patterns_per_set, rng)
              for s in cfg.sparsities}
    adapter = RuntimeAdapter(ladder, workload, manager=MaskManager(model),
                             hardware_pattern_size=cfg.pattern_size)
    cache = (ArtifactCache(budget_bytes=cfg.cache_budget_bytes)
             if cfg.use_cache else None)
    engine = ServeEngine(model, adapter, max_batch=cfg.max_batch,
                         window_s=cfg.window_s, cache=cache, verify=cfg.verify,
                         devices=cfg.devices, policy=cfg.policy,
                         time_sliced=cfg.time_sliced, prewarm=cfg.prewarm,
                         drain_policy=cfg.drain_policy,
                         fairness_window=cfg.fairness_window,
                         adaptive_window=cfg.adaptive_window,
                         adaptive_threshold=cfg.adaptive_threshold,
                         adaptive_low_threshold=cfg.adaptive_low_threshold,
                         decode=cfg.decode,
                         faults=cfg.faults, shed_policy=cfg.shed_policy,
                         max_queue=cfg.max_queue,
                         probe_backoff_s=cfg.probe_backoff_s,
                         preempt_policy=cfg.preempt_policy,
                         cancel_after_s=cfg.cancel_after_s,
                         tenant_weights=cfg.tenant_weights,
                         admission_estimate=cfg.admission_estimate)
    if cfg.streaming:
        return model, workload, engine.streaming(max_wait_s=cfg.max_wait_s)
    return model, workload, engine
