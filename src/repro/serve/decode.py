"""Continuous-batching decode lane: options, jobs and per-shard state.

Token-by-token generation is the latency-critical half of the paper's
interactive-translation story, and it batches differently from one-shot
inference: a decode stream occupies its device for ``max_new_tokens``
*token boundaries*, and the right scheduling unit is the boundary, not
the request.  :class:`DecodeLane` is the per-device half of that model —
a rolling batch that streams join (when their arrival passes) and leave
(on eos or token budget) at boundaries, grouped by the same operating
point compatibility key the admission queue uses, with each group
advanced by a shared :class:`~repro.nn.generation.DecodeSession` so
equal-length contexts run as one stacked (bit-exact) decode step and
nothing is ever padded to the longest member.

:class:`DecodeOptions` is the grouped sub-config consolidating the
decode/fast-forward knobs that previously travelled the
DeviceShard→Streaming→Serve→CLI chain as flat kwargs; ``StackConfig``
embeds one and the engines thread it through unchanged.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.nn.generation import DecodeSession, GenerationConfig
from repro.serve.batcher import InferenceRequest

__all__ = ["DecodeJob", "DecodeLane", "DecodeOptions"]


@dataclass
class DecodeOptions:
    """Decode-plane knobs as one value object.

    ``fast_forward`` is the consolidated home of the old flat engine
    kwarg: it gates both the compiled full-sequence plan and the
    KV-cached decode plane (``False`` = eager Tensor forwards, same
    bits).  The sampling fields are the defaults applied to decode
    requests submitted without their own
    :class:`~repro.nn.generation.GenerationConfig`.
    """

    max_new_tokens: int = 8
    top_k: Optional[int] = None
    temperature: float = 1.0
    seed: Optional[int] = None
    eos_id: Optional[int] = None
    fast_forward: bool = True

    def generation_config(self) -> GenerationConfig:
        return GenerationConfig(
            max_new_tokens=self.max_new_tokens, top_k=self.top_k,
            temperature=self.temperature, seed=self.seed,
            eos_id=self.eos_id).validate()


@dataclass
class DecodeJob:
    """One submitted decode request awaiting (or holding) a lane slot."""

    request: InferenceRequest
    config: GenerationConfig
    # stamped by the engine at submit time so the lane never recomputes
    # operating-point compatibility
    compat_key: Hashable = None
    est_service_s: float = 0.0


class _LaneStream:
    __slots__ = ("sid", "job", "join_s")

    def __init__(self, sid: int, job: DecodeJob, join_s: float) -> None:
        self.sid = sid
        self.job = job
        self.join_s = join_s


class _LaneGroup:
    """One compat-key's rolling batch: a session plus stream bookkeeping."""

    __slots__ = ("session", "streams")

    def __init__(self, session: DecodeSession) -> None:
        self.session = session
        self.streams: Dict[int, _LaneStream] = {}


class DecodeLane:
    """Per-device rolling decode batch, driven by the streaming loop.

    ``add_pending`` files a routed job; ``due_s`` advertises when the
    device next has decode work (immediately while any stream is active,
    else when the earliest pending arrival joins); ``admit`` moves due
    jobs into their compat group's session at a token boundary.  The
    engine owns the actual token step — the lane only keeps membership,
    join times and the pending heap.
    """

    def __init__(self) -> None:
        self.pending: List[Tuple[float, int, DecodeJob]] = []
        self.groups: Dict[Hashable, _LaneGroup] = {}
        self._tiebreak = itertools.count()

    def add_pending(self, job: DecodeJob) -> None:
        heapq.heappush(self.pending,
                       (job.request.arrival_s, next(self._tiebreak), job))

    def has_active(self) -> bool:
        return any(not g.session.finished() for g in self.groups.values())

    def due_s(self, clock_s: float) -> Optional[float]:
        """When the device can next run a decode boundary (None = never)."""
        if self.has_active():
            return clock_s
        if self.pending:
            return max(clock_s, self.pending[0][0])
        return None

    def admit(self, now_s: float, session_factory) -> int:
        """Join every pending job whose arrival has passed; count joined."""
        joined = 0
        while self.pending and self.pending[0][0] <= now_s:
            _, _, job = heapq.heappop(self.pending)
            group = self.groups.get(job.compat_key)
            if group is None:
                group = _LaneGroup(session_factory())
                self.groups[job.compat_key] = group
            sid = group.session.submit_prompt(job.request.tokens, job.config)
            group.streams[sid] = _LaneStream(sid, job, now_s)
            joined += 1
        return joined

    def remove_pending(self, req_id: int) -> Optional[DecodeJob]:
        """Retract one not-yet-admitted job (cancellation).

        Only pending jobs are retractable: a stream already admitted to
        a lane group holds live session state and runs to completion.
        Returns the job, or ``None`` when no pending entry matches.
        """
        for entry in self.pending:
            if entry[2].request.req_id == req_id:
                self.pending.remove(entry)
                heapq.heapify(self.pending)
                return entry[2]
        return None

    def group_keys(self) -> List[Hashable]:
        """Deterministic group order (None sparsity sorts first)."""
        return sorted(self.groups,
                      key=lambda k: (k[0], -1.0 if k[1] is None else k[1]))

    def evacuate(self) -> List[DecodeJob]:
        """Pull every job off the lane (pending *and* active) for failover.

        Called when the owning device goes down: sessions are closed and
        active streams restart from their prompt on whatever device they
        land on next.  Decode is deterministic in (prompt, config) — the
        per-stream sampling RNG is seeded at prompt submission — so the
        regenerated stream is bit-identical to an uninterrupted run.
        Jobs come back in deterministic order: pending by arrival, then
        active streams in group/sid order.
        """
        jobs = [job for _, _, job in sorted(self.pending)]
        self.pending = []
        for key in self.group_keys():
            group = self.groups[key]
            jobs.extend(group.streams[sid].job
                        for sid in sorted(group.streams))
            group.streams.clear()
            group.session.close()
        self.groups = {}
        return jobs

    def prune(self) -> None:
        """Drop groups whose every stream has finished and been read out."""
        for key in list(self.groups):
            group = self.groups[key]
            if not group.streams and group.session.finished():
                group.session.close()
                del self.groups[key]
