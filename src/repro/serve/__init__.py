"""Sharded batched inference serving: micro-batching, caching, scenarios.

The production half of run-time reconfiguration: instead of one request
at a time through :class:`~repro.core.runtime_policy.RuntimeAdapter`,
traffic is grouped into padded micro-batches per operating point and
routed across ``N`` simulated devices, masks and sparse-format
conversions are memoized in an LRU artifact cache, and scenario
generators replay the paper's deployment stories as request traces.

Layout
------
- :mod:`~repro.serve.batcher`   — requests, padding-exact vectorized
  forwards, the compatibility-keyed micro-batcher;
- :mod:`~repro.serve.sharding`  — :class:`DeviceShard` (per-V/F-level
  FIFO queues, per-device clock and installed-pattern state; drain
  policies ``fifo`` — global flush order — and ``level-affinity`` —
  serve one V/F level run-to-run, bounded by a fairness window, so the
  level's pattern set stays resident) and the :class:`Dispatcher`
  routing policies ``round-robin`` / ``least-loaded`` / ``switch-aware``
  (least-loaded plus the simulated cost of the pattern swap a placement
  would trigger, so batches gravitate to devices already holding their
  pattern set);
- :mod:`~repro.serve.engine`    — the sharded :class:`ServeEngine` with
  the *time-sliced* completion model: each request finishes at its own
  offset inside the batch (overhead + its share of MAC work) instead of
  paying the whole batch service time, which sharpens p50 under light
  load without moving any batch's end time;
- :mod:`~repro.serve.scenarios` — ``steady`` / ``bursty`` / ``battery``
  / ``bandwidth`` traffic generators; ``bandwidth`` is the paper's
  translation example, a fluctuating network-bandwidth trace driving
  per-request deadline jitter;
- :mod:`~repro.serve.cache`     — the byte-budgeted LRU
  :class:`ArtifactCache`: artifacts are charged their honest device
  footprint (masks bit-packed, one bit per position) and evicted
  size-aware LRU past the budget, modelling the slice of device memory
  reserved for resident reconfiguration state.

CLI and benchmarking
--------------------
``rt3 serve --scenario bursty --devices 4 --policy switch-aware
--drain-policy level-affinity`` serves a scenario on a sharded demo
stack (``--no-time-slice`` restores whole-batch completions;
``--cache-budget-kb`` sizes the artifact cache).
``benchmarks/bench_serve.py`` measures the batched-vs-single speedup
and the multi-device scaling (digest in
``benchmarks/results/BENCH_serve.json``);
``benchmarks/bench_kernels.py`` measures the sparse kernels'
wall-clock and op counts (``BENCH_kernels.json``).  CI regresses every
PR against the committed copies of both digests via
``scripts/check_bench_regression.py``: serve fails on a >15%
simulated-throughput drop or >20% simulated-p95 rise, kernels on any
op-count drift, exactness breach, or the grouped pattern kernel
falling below its speedup floor (absolute wall-clock numbers are
reported but not gated — they depend on the runner).
"""

from repro.serve.batcher import (
    InferenceRequest,
    MicroBatcher,
    RequestResult,
    pad_batch,
    run_padded,
)
from repro.serve.cache import ArtifactCache, CacheStats, LRUCache, artifact_nbytes
from repro.serve.engine import ServeEngine, ServeReport
from repro.serve.sharding import (
    DRAIN_POLICIES,
    POLICIES,
    DeviceShard,
    Dispatcher,
    QueuedBatch,
    ShardStats,
)
from repro.serve.stack import StackConfig, build_serving_stack
from repro.serve.scenarios import (
    SCENARIOS,
    ScenarioConfig,
    bandwidth_fluctuation,
    battery_drain_longtail,
    build_scenario,
    bursty_interactive,
    steady_translation,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "DRAIN_POLICIES",
    "DeviceShard",
    "Dispatcher",
    "artifact_nbytes",
    "InferenceRequest",
    "LRUCache",
    "MicroBatcher",
    "POLICIES",
    "QueuedBatch",
    "RequestResult",
    "SCENARIOS",
    "ScenarioConfig",
    "ServeEngine",
    "ServeReport",
    "ShardStats",
    "StackConfig",
    "bandwidth_fluctuation",
    "battery_drain_longtail",
    "build_scenario",
    "build_serving_stack",
    "bursty_interactive",
    "pad_batch",
    "run_padded",
    "steady_translation",
]
