"""Event-driven streaming inference serving: admit, batch, route, tick.

The production half of run-time reconfiguration: requests enter an
*online admission loop* (:class:`StreamingEngine`) one arrival at a
time, compatible requests (same V/F level + feasible pattern sparsity)
form padded micro-batches under a configurable batching window, and
batches are routed at admission time across ``N`` simulated devices
whose clocks are advanced by a global event heap (arrivals, batch-window
closes, device executions).  Masks and sparse-format conversions are
memoized in an LRU artifact cache, and scenario generators stream the
paper's deployment stories as lazy arrival iterators.

Layout
------
- :mod:`~repro.serve.batcher`   — requests, padding-exact vectorized
  forwards, and the two halves of micro-batching: the incremental
  :class:`AdmissionQueue` (admit one request at a time; flush on
  ``max_batch`` or at the group's window deadline) and the offline
  :class:`MicroBatcher` wrapper that replays a known trace through it.
  ``run_padded`` executes each batch through the **zero-autograd
  forward plane** by default: the engines hand it a
  :class:`~repro.nn.inference.CompiledForward` plan (pure ndarray ops,
  bit-identical float64 outputs, no graph construction — asserted by a
  regression test that a fast-path serve allocates zero Tensors), with
  the eager ``no_grad`` Tensor path kept as the fallback for unknown
  architectures and behind ``--no-fast-forward``;
- :mod:`~repro.serve.streaming` — the :class:`StreamingEngine` event
  loop (``submit`` / ``tick`` / ``drain``): one simulated-time heap
  over arrivals, window closes and shard executions.  Semantics are
  tick-granularity independent — any feeding schedule of the same
  arrival stream produces the same admissions, placements and
  simulated timeline;
- :mod:`~repro.serve.engine`    — the offline :class:`ServeEngine`
  wrapper: ``serve(trace)`` submits the whole trace into a streaming
  session and drains it, preserving the historical trace-at-once API on
  top of the online core (with the default ``fifo`` drain the simulated
  metrics are exactly the pre-streaming engine's; affinity-style drains
  decide online, from the batches admitted by each decision instant);
- :mod:`~repro.serve.decode`    — the continuous-batching decode plane:
  :class:`DecodeOptions` (the grouped decode/fast-forward sub-config
  ``StackConfig`` embeds) and the per-device :class:`DecodeLane` — a
  rolling batch that streams join (arrival) and leave (eos / token
  budget) at *token boundaries*, grouped by operating-point
  compatibility key and advanced through a shared KV-cached
  :class:`~repro.nn.generation.DecodeSession` (bit-identical to solo
  eager generation; ``submit_decode`` / ``serve_decode`` feed it);
- :mod:`~repro.serve.sharding`  — :class:`DeviceShard` (per-V/F-level
  FIFO queues, per-device clock and installed-pattern state, and the
  event-driven ``next_event_s``/``pop_next`` interface the loop drives;
  drain policies ``fifo`` — global flush order — ``level-affinity`` —
  serve one V/F level run-to-run under a fairness window — and
  ``adaptive`` — flip to level-affinity when the shard's observed
  switch rate crosses a threshold, and back to fifo when it falls to
  the optional ``adaptive_low_threshold`` hysteresis band) and the
  :class:`Dispatcher` routing
  policies ``round-robin`` / ``least-loaded`` / ``switch-aware``
  (least-loaded plus the simulated cost of the pattern swap a placement
  would trigger);
- :mod:`~repro.serve.scenarios` — ``steady`` / ``bursty`` / ``battery``
  / ``bandwidth`` lazy traffic streams (``stream_scenario``) with the
  offline ``build_scenario`` materializer; ``bandwidth`` is the paper's
  translation example, a fluctuating network-bandwidth trace driving
  per-request deadline jitter; ``flaky_fault_overlay`` layers a seeded
  schedule of shard failures onto any of them;
- :mod:`~repro.serve.faults`    — deterministic fault injection and the
  failure-handling vocabulary: :class:`FaultPlan` schedules of
  :class:`ShardFault` crash/stall/slow events (``FaultPlan.parse`` reads
  the CLI's ``kind:shard@at[+duration][xfactor]`` spec), the
  :class:`FaultInjector` that validates one against a device fleet, the
  shard health states (``HEALTHY``/``DEGRADED``/``DOWN``) and the
  admission shed policies (``none``/``reject``/``degrade``) with their
  per-request :class:`ShedRecord` accounting.  A crashed shard's queued
  and in-flight work fails over to healthy shards (charged like a
  pattern switch), downed shards re-probe with exponential backoff, and
  every completed output stays bit-identical to a fault-free serve of
  the surviving requests.  The same vocabulary covers the scheduler
  defenses: ``PREEMPT_POLICIES`` (``off``/``queued``/``running``
  deadline-driven preemption of placed work) and :class:`CancelRecord`
  (explicit request withdrawal as a terminal state, extending
  conservation to ``completed + shed + cancelled == submitted``);
- :mod:`~repro.serve.cache`     — the byte-budgeted LRU
  :class:`ArtifactCache`: artifacts are charged their honest device
  footprint (masks bit-packed, one bit per position) and evicted
  size-aware LRU past the budget, modelling the slice of device memory
  reserved for resident reconfiguration state.

CLI and benchmarking
--------------------
``rt3 serve --scenario bursty --streaming --max-wait-ms 10 --verify``
feeds a scenario arrival-by-arrival through the online loop;
``rt3 serve --scenario bursty --devices 4 --policy switch-aware
--drain-policy level-affinity`` serves the same trace offline
(``--drain-policy adaptive`` lets each device pick for itself;
``--no-time-slice`` restores whole-batch completions;
``--cache-budget-kb`` sizes the artifact cache).
``rt3 serve --scenario bursty --devices 4 --window-ms 2 --faults flaky
--shed-policy degrade`` injects a seeded shard-failure overlay and
degrades infeasible requests to sparser patterns before shedding
(``--faults 'crash:1@0.2+0.3'`` scripts an exact schedule;
``--shed-policy reject`` sheds on predicted SLO misses; ``--max-queue``
bounds the admission backlog; ``--probe-backoff-ms`` tunes downed-shard
re-probing).
``rt3 serve --scenario bursty --preempt-policy running --tenants 2
--tenant-weight t0=3 --max-queue 32 --cancel-after 50`` adds the
scheduler defenses: deadline-driven preemption of queued (or in-flight)
batches, a client cancellation timeout, and weighted fair per-tenant
admission shares (``--admission-estimate full`` restores the historical
whole-window shed estimate).
``benchmarks/bench_serve.py`` measures the batched-vs-single speedup
and the multi-device scaling (``BENCH_serve.json``);
``benchmarks/bench_stream.py`` sweeps the admission window on bursty
traffic — throughput/efficiency vs p50/p95, exactness against the
per-request oracle (``BENCH_stream.json``);
``benchmarks/bench_kernels.py`` measures the sparse kernels
(``BENCH_kernels.json``); ``benchmarks/bench_forward.py`` measures the
compiled forward plane against the eager Tensor path — wall clock,
autograd node counts, scratch allocations, bit-exactness
(``BENCH_forward.json``).  CI regresses every PR against the committed
digests via ``scripts/check_bench_regression.py`` (serve: simulated
throughput/p95 drift + exactness; stream: exactness, batching
monotonicity, endpoint drift; kernels: op counts, exactness, speedup
floor; table/table2: deterministic row/run-total equality; forward:
bit-exactness, node/alloc counts, speedup floor).
``benchmarks/bench_faults.py`` injects a deterministic shard outage on
bursty traffic and asserts the fault-tolerance invariants —
conservation (completed + shed == submitted), bit-exact completed
outputs vs a fault-free serve of the surviving set, and a strictly
lower shed rate for ``degrade`` than ``reject`` (``BENCH_faults.json``).
"""

from repro.serve.batcher import (
    AdmissionQueue,
    FlushedGroup,
    InferenceRequest,
    MicroBatcher,
    RequestResult,
    pad_batch,
    run_padded,
)
from repro.serve.cache import ArtifactCache, CacheStats, LRUCache, artifact_nbytes
from repro.serve.decode import DecodeJob, DecodeLane, DecodeOptions
from repro.serve.engine import ServeEngine
from repro.serve.faults import (
    DEGRADED,
    DOWN,
    FAULT_KINDS,
    HEALTHY,
    PREEMPT_POLICIES,
    SHED_POLICIES,
    CancelRecord,
    FaultInjector,
    FaultPlan,
    ShardFault,
    ShedRecord,
)
from repro.serve.streaming import ServeReport, StreamingEngine
from repro.serve.sharding import (
    DRAIN_POLICIES,
    POLICIES,
    DeviceShard,
    Dispatcher,
    QueuedBatch,
    ShardStats,
)
from repro.serve.stack import StackConfig, build_serving_stack
from repro.serve.scenarios import (
    SCENARIOS,
    ScenarioConfig,
    assign_tenants,
    bandwidth_fluctuation,
    battery_drain_longtail,
    build_scenario,
    bursty_interactive,
    flaky_fault_overlay,
    steady_translation,
    stream_scenario,
)

__all__ = [
    "AdmissionQueue",
    "ArtifactCache",
    "CacheStats",
    "DEGRADED",
    "DOWN",
    "DRAIN_POLICIES",
    "CancelRecord",
    "DecodeJob",
    "DecodeLane",
    "DecodeOptions",
    "DeviceShard",
    "Dispatcher",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FlushedGroup",
    "HEALTHY",
    "artifact_nbytes",
    "InferenceRequest",
    "LRUCache",
    "MicroBatcher",
    "POLICIES",
    "PREEMPT_POLICIES",
    "QueuedBatch",
    "RequestResult",
    "SCENARIOS",
    "SHED_POLICIES",
    "ScenarioConfig",
    "ServeEngine",
    "ServeReport",
    "ShardFault",
    "ShardStats",
    "ShedRecord",
    "StackConfig",
    "StreamingEngine",
    "assign_tenants",
    "bandwidth_fluctuation",
    "battery_drain_longtail",
    "build_scenario",
    "build_serving_stack",
    "bursty_interactive",
    "flaky_fault_overlay",
    "pad_batch",
    "run_padded",
    "steady_translation",
    "stream_scenario",
]
