"""Batched inference serving: micro-batching, artifact caching, scenarios.

The production half of run-time reconfiguration: instead of one request
at a time through :class:`~repro.core.runtime_policy.RuntimeAdapter`,
traffic is grouped into padded micro-batches per operating point, masks
and sparse-format conversions are memoized in an LRU artifact cache, and
scenario generators replay the paper's deployment stories (steady
translation, bursty interactive events, battery drain) as request
traces.
"""

from repro.serve.batcher import (
    InferenceRequest,
    MicroBatcher,
    RequestResult,
    pad_batch,
    run_padded,
)
from repro.serve.cache import ArtifactCache, CacheStats, LRUCache
from repro.serve.engine import ServeEngine, ServeReport
from repro.serve.stack import StackConfig, build_serving_stack
from repro.serve.scenarios import (
    SCENARIOS,
    ScenarioConfig,
    battery_drain_longtail,
    build_scenario,
    bursty_interactive,
    steady_translation,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "InferenceRequest",
    "LRUCache",
    "MicroBatcher",
    "RequestResult",
    "SCENARIOS",
    "ScenarioConfig",
    "ServeEngine",
    "ServeReport",
    "StackConfig",
    "battery_drain_longtail",
    "build_scenario",
    "build_serving_stack",
    "bursty_interactive",
    "pad_batch",
    "run_padded",
    "steady_translation",
]
