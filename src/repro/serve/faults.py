"""Deterministic fault injection for the serving core.

The paper's premise is staying inside real-time deadlines *as conditions
degrade*; this module supplies the degraded conditions.  A
:class:`FaultPlan` is a seeded, fully explicit schedule of shard events
— crash at ``t`` (with finite or permanent duration), transient stall
windows, slowdown factors — that the streaming engine folds into its
one global event heap, so a faulty run is exactly as deterministic and
tick-granularity independent as a healthy one.  Three pieces:

- :class:`ShardFault` / :class:`FaultPlan` — the schedule.  Plans are
  value objects: build them programmatically, via
  :meth:`FaultPlan.parse` (the CLI's ``--faults`` spec string), via
  :meth:`FaultPlan.outage` (the single-outage acceptance shape), or via
  the seeded :func:`~repro.serve.scenarios.flaky_fault_overlay`
  generator.
- :class:`FaultInjector` — validates a plan against a device count and
  hands the engine the time-ordered events plus the re-probe backoff
  (downed shards are re-probed at exponentially growing intervals;
  recovery is *detected* at the first probe past the outage, so the
  detection lag is bounded by the last backoff interval).
- :class:`ShedRecord` / :data:`SHED_POLICIES` — the admission-control
  half: what the engine records when it refuses a request instead of
  silently losing it.  Conservation (``completed + shed == submitted``)
  is the invariant every chaos test and the faults bench gate.

Health states are plain strings so they serialize straight into shard
digests: ``healthy`` → ``degraded`` (stalled / slowed but serving) →
``down`` (crashed; queued and in-flight work fails over).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.serve.batcher import InferenceRequest

__all__ = [
    "CancelRecord",
    "DEGRADED",
    "DOWN",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "HEALTHY",
    "PREEMPT_POLICIES",
    "SHED_POLICIES",
    "ShardFault",
    "ShedRecord",
]

HEALTHY = "healthy"
DEGRADED = "degraded"
DOWN = "down"

FAULT_KINDS = ("crash", "stall", "slow")

# admission overload defenses: "none" admits everything (the historical
# behaviour), "reject" sheds a request at admission when its estimated
# completion already misses the SLO, "degrade" first retries sparser
# (lower-latency) pattern rungs — the paper's accuracy-for-deadline
# trade as an overload response — and sheds only when no rung fits
SHED_POLICIES = ("none", "reject", "degrade")

# deadline-driven preemption: "off" never disturbs placed work (the
# historical behaviour), "queued" lets a tight-deadline admission pull a
# looser-deadline batch back out of its shard's queue and re-route it
# (charged one pattern-switch-equivalent, like a crash failover),
# "running" additionally retracts the shard's in-flight batch through
# the same machinery crash recovery uses — the full original membership
# re-executes, so completed outputs stay bit-identical
PREEMPT_POLICIES = ("off", "queued", "running")


@dataclass
class ShardFault:
    """One scheduled event on one simulated device.

    - ``crash`` — the shard goes down at ``at_s`` for ``duration_s``
      simulated seconds (``inf`` = permanently); queued and in-flight
      work fails over to healthy shards.
    - ``stall`` — the shard freezes for ``duration_s`` (its clock jumps
      past the window); timing only, no work is lost.
    - ``slow`` — the shard's compute runs ``factor``× slower until the
      window ends; timing only, outputs are untouched.
    """

    kind: str
    shard_id: int
    at_s: float
    duration_s: float = float("inf")
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; options: {list(FAULT_KINDS)}")
        if self.shard_id < 0:
            raise ValueError("shard_id must be non-negative")
        if not math.isfinite(self.at_s) or self.at_s < 0:
            raise ValueError("fault time must be finite and non-negative")
        if math.isnan(self.duration_s) or self.duration_s <= 0:
            raise ValueError("fault duration must be positive")
        if self.kind != "crash" and not math.isfinite(self.duration_s):
            raise ValueError(f"{self.kind} windows must have a finite duration")
        if self.kind == "slow" and self.factor <= 1.0:
            raise ValueError("slowdown factor must be > 1")

    @property
    def end_s(self) -> float:
        return self.at_s + self.duration_s


@dataclass
class FaultPlan:
    """A deterministic schedule of shard faults for one serving session.

    Times are simulated seconds from session start (the offline
    :meth:`~repro.serve.engine.ServeEngine.serve` wrapper builds a fresh
    session per trace, so a plan replays identically on every call).
    """

    events: List[ShardFault] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def ordered(self) -> List[ShardFault]:
        """Events in deterministic injection order."""
        return sorted(self.events,
                      key=lambda f: (f.at_s, f.shard_id,
                                     FAULT_KINDS.index(f.kind)))

    def validate(self, devices: int) -> "FaultPlan":
        for f in self.events:
            if f.shard_id >= devices:
                raise ValueError(
                    f"fault targets shard {f.shard_id} but the engine has "
                    f"{devices} device(s)")
        return self

    @classmethod
    def outage(cls, shard_id: int, at_s: float,
               duration_s: float = float("inf")) -> "FaultPlan":
        """The acceptance shape: one shard down for one window."""
        return cls([ShardFault("crash", shard_id, at_s, duration_s)])

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the CLI spec: ``kind:shard@at[+duration][xfactor],...``

        Examples: ``crash:1@0.2+0.3`` (shard 1 down 0.2s–0.5s),
        ``crash:0@1.0`` (permanent), ``slow:2@0.1+0.2x3`` (3× slower),
        ``stall:0@0.5+0.05``.  Times are simulated seconds.
        """
        events: List[ShardFault] = []
        for part in filter(None, (p.strip() for p in spec.split(","))):
            try:
                kind, rest = part.split(":", 1)
                shard_txt, timing = rest.split("@", 1)
                factor = 1.0
                if "x" in timing:
                    timing, factor_txt = timing.split("x", 1)
                    factor = float(factor_txt)
                if "+" in timing:
                    at_txt, dur_txt = timing.split("+", 1)
                    at_s, duration_s = float(at_txt), float(dur_txt)
                else:
                    at_s, duration_s = float(timing), float("inf")
                events.append(ShardFault(kind.strip(), int(shard_txt),
                                         at_s, duration_s, factor))
            except (ValueError, IndexError) as exc:
                raise ValueError(
                    f"bad fault spec {part!r} (expected "
                    f"kind:shard@at[+duration][xfactor]): {exc}") from exc
        if not events:
            raise ValueError("fault spec parsed to zero events")
        return cls(events)


class FaultInjector:
    """Binds a :class:`FaultPlan` to an engine's device count.

    The engine asks for :meth:`ordered` events once at session start and
    folds them into its global heap; ``probe_backoff_s`` is the first
    re-probe interval for a downed shard (each subsequent probe doubles
    it, so a long outage costs O(log) probe events, and a permanently
    downed shard is abandoned after its plan says it never returns).
    """

    def __init__(self, plan: FaultPlan, devices: int,
                 probe_backoff_s: float = 0.005) -> None:
        if probe_backoff_s <= 0 or not math.isfinite(probe_backoff_s):
            raise ValueError("probe_backoff_s must be finite and positive")
        self.plan = plan.validate(devices)
        self.devices = devices
        self.probe_backoff_s = probe_backoff_s

    def ordered(self) -> List[ShardFault]:
        return self.plan.ordered()


@dataclass
class ShedRecord:
    """One request the engine refused instead of silently losing.

    ``reason`` is one of ``deadline`` (estimated completion already past
    the SLO at admission), ``queue_full`` (bounded admission queue),
    ``tenant_quota`` (the request's tenant exhausted its weighted share
    of the bounded queue), or ``no_device`` (no shard up and none coming
    back).
    """

    request: InferenceRequest
    time_s: float
    reason: str
    est_completion_s: Optional[float] = None


@dataclass
class CancelRecord:
    """One request retracted by an explicit cancellation.

    Cancellation is a *terminal* state distinct from shedding (the
    client withdrew the request; the engine did not refuse it) and from
    the internal crash-retraction flag on results (which implies a
    re-execution).  ``where`` says how far the request had travelled
    when the cancel caught it: ``pre_admission`` (cancel landed before
    the arrival event), ``admission`` (waiting in an open micro-batch
    group), ``queued`` (member of a batch queued on a device),
    ``parked`` (held through a total outage), ``decode_pending``
    (decode stream not yet admitted to a lane), or ``inflight`` (result
    retracted before its completion instant; the device time already
    spent is not refunded).  Conservation extends to
    ``completed + shed + cancelled == submitted``.
    """

    request: InferenceRequest
    time_s: float
    where: str
