"""Basic layers: Linear, Embedding, LayerNorm, Dropout, activations.

``Linear`` is the pruning target throughout RT3: both block-structured
pruning and pattern pruning operate on its 2-D ``weight``.  It therefore
exposes an optional persistent ``mask`` that is multiplied into the weight
on every forward, so masked (pruned) positions contribute neither to the
output nor — because the product blocks the gradient path through the mask
zeros from updating effective weights — to subsequent inference.
"""

from __future__ import annotations

import itertools
import math
from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


# process-unique Linear ids: cache tokens must never collide across
# coexisting models even when layer names and shapes coincide
_linear_uid = itertools.count()


class Linear(Module):
    """Affine map ``y = x W^T + b`` with optional pruning mask on ``W``.

    ``weight`` has shape ``(out_features, in_features)`` (torch convention).
    ``set_mask`` installs a 0/1 ndarray of the same shape; pass ``None`` to
    clear it.  The mask is applied multiplicatively on forward, so joint
    training through different masks (Fig. 2 of the paper) just swaps masks.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        bound = 1.0 / math.sqrt(in_features)
        rng = _rng(seed)
        self.weight = Parameter(rng.uniform(-bound, bound, size=(out_features, in_features)),
                                name="weight")
        if bias:
            self.bias = Parameter(rng.uniform(-bound, bound, size=(out_features,)), name="bias")
        else:
            self.bias = None
        self.mask: Optional[np.ndarray] = None
        self._uid = next(_linear_uid)
        self._mask_version = 0

    def set_mask(self, mask: Optional[np.ndarray]) -> None:
        if mask is not None:
            mask = np.asarray(mask, dtype=np.float64)
            if mask.shape != self.weight.shape:
                raise ValueError(f"mask shape {mask.shape} != weight shape {self.weight.shape}")
            # content-addressed fast path: re-installing a mask identical
            # to the resident one changes nothing, so keep the cache token
            # stable — downstream format conversions stay hits instead of
            # paying a token-bump miss on every re-install
            if self.mask is not None and np.array_equal(mask, self.mask):
                return
        elif self.mask is None:
            return
        self.mask = mask
        self._mask_version += 1

    @property
    def cache_token(self) -> str:
        """O(1) identity of the effective (masked) weight content.

        Combines the process-unique layer id, the weight's update counter
        (bumped by optimizers / ``load_state_dict``) and the mask install
        counter — everything ``weight * mask`` depends on — so caches can
        key on this token instead of hashing the weight bytes, which
        dominated small-layer lookups (ROADMAP open item).  Two tokens are
        equal iff they describe the same layer with no *effective* weight
        or mask change: ``set_mask`` content-compares against the resident
        mask and keeps the token stable when an identical mask is
        re-installed, so mask churn that changes nothing stays a cache hit.
        """
        return f"u{self._uid}.w{self.weight.version}.m{self._mask_version}"

    def effective_weight(self) -> Tensor:
        if self.mask is None:
            return self.weight
        return F.mul(self.weight, Tensor(self.mask))

    def forward(self, x: Tensor) -> Tensor:
        w = self.effective_weight()
        out = F.matmul(x, F.transpose(w))
        if self.bias is not None:
            out = F.add(out, self.bias)
        return out

    def sparsity(self) -> float:
        """Fraction of weight entries currently masked to zero."""
        if self.mask is None:
            return 0.0
        return float(1.0 - self.mask.mean())


class Embedding(Module):
    """Token embedding table of shape ``(num_embeddings, dim)``."""

    def __init__(self, num_embeddings: int, dim: int, seed: Optional[int] = None) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        rng = _rng(seed)
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, dim)), name="weight")

    def forward(self, indices) -> Tensor:
        return F.embedding(self.weight, indices)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim), name="gamma")
        self.beta = Parameter(np.zeros(dim), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        mu = F.mean(x, axis=-1, keepdims=True)
        centered = F.sub(x, mu)
        var = F.mean(F.mul(centered, centered), axis=-1, keepdims=True)
        inv = F.div(1.0, F.sqrt(F.add(var, self.eps)))
        normed = F.mul(centered, inv)
        return F.add(F.mul(normed, self.gamma), self.beta)


class Dropout(Module):
    """Inverted dropout; inert in eval mode."""

    def __init__(self, p: float = 0.1, seed: Optional[int] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout p must be in [0, 1)")
        self.p = p
        self._rng = _rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._seq = list(modules)
        for i, m in enumerate(modules):
            self._modules[str(i)] = m

    def forward(self, x: Tensor) -> Tensor:
        for m in self._seq:
            x = m(x)
        return x

    def __getitem__(self, idx: int) -> Module:
        return self._seq[idx]

    def __len__(self) -> int:
        return len(self._seq)


def prunable_linears(model: Module, min_features: int = 1) -> "dict[str, Linear]":
    """Return the named ``Linear`` layers of ``model`` eligible for pruning.

    RT3 prunes the big projection matrices (attention q/k/v/out and the FFN
    matrices); tiny layers (below ``min_features`` in either dimension) are
    skipped, matching the paper's practice of leaving classifier heads and
    embeddings dense.
    """
    out = {}
    for name, module in model.named_modules():
        if isinstance(module, Linear):
            if module.in_features >= min_features and module.out_features >= min_features:
                out[name] = module
    return out
