"""Learning-rate schedules used during backbone and joint training."""

from __future__ import annotations

from repro.nn.optim import Optimizer


class _Scheduler:
    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def step(self) -> float:
        self.step_count += 1
        self.optimizer.lr = self.get_lr(self.step_count)
        return self.optimizer.lr

    def get_lr(self, step: int) -> float:
        raise NotImplementedError


class ConstantLR(_Scheduler):
    """No-op schedule; keeps the base LR."""

    def get_lr(self, step: int) -> float:
        return self.base_lr


class StepLR(_Scheduler):
    """Multiply LR by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class LinearWarmupDecay(_Scheduler):
    """Linear warmup to base LR, then linear decay to zero at ``total_steps``."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int) -> None:
        super().__init__(optimizer)
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.warmup_steps = max(1, warmup_steps)
        self.total_steps = total_steps

    def get_lr(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        remaining = max(0, self.total_steps - step)
        return self.base_lr * remaining / (self.total_steps - self.warmup_steps)
