"""Optimizers (SGD with momentum, Adam) and gradient clipping."""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g
            p.bump_version()


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            p.bump_version()


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Clip global grad norm in place; returns the pre-clip norm."""
    params = [p for p in params if p.grad is not None]
    total = math.sqrt(sum(float((p.grad ** 2).sum()) for p in params))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
